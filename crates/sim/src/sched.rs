//! Deterministic discrete-event scheduler.
//!
//! A binary heap of timestamped events ordered by time, then priority
//! class, then a monotonic tiebreaker: two events at the same instant pop
//! in class order ([`EventQueue::schedule_first`] before
//! [`EventQueue::schedule`]) and in insertion order within a class — one
//! of the ingredients (with seeded randomness) that makes every
//! simulation run bit-for-bit reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dagbft_core::TimeMs;

/// A scheduled entry: `payload` due at `time`.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: TimeMs,
    class: u8,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.class == other.class && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest event pops first.
        (other.time, other.class, other.seq).cmp(&(self.time, self.class, self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event queue ordered by time, then priority class,
/// then insertion.
///
/// # Examples
///
/// ```
/// use dagbft_sim::sched::EventQueue;
///
/// let mut queue = EventQueue::new();
/// queue.schedule(10, "b");
/// queue.schedule(5, "a");
/// queue.schedule(10, "c");
/// assert_eq!(queue.pop(), Some((5, "a")));
/// assert_eq!(queue.pop(), Some((10, "b"))); // same time: insertion order
/// assert_eq!(queue.pop(), Some((10, "c")));
/// assert_eq!(queue.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: TimeMs,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> TimeMs {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// Events scheduled in the past are delivered at the current clock
    /// instead (time never goes backwards).
    pub fn schedule(&mut self, time: TimeMs, payload: E) {
        self.schedule_class(time, 1, payload);
    }

    /// Schedules `payload` at `time`, ahead of every plain
    /// [`EventQueue::schedule`] entry at the same instant regardless of
    /// insertion order.
    ///
    /// Used for request injections: a request submitted at time `t` must
    /// be visible to a dissemination firing at the same `t`, even though
    /// recurring timers are enqueued at construction — otherwise a
    /// boundary-time injection silently slips a whole interval.
    pub fn schedule_first(&mut self, time: TimeMs, payload: E) {
        self.schedule_class(time, 0, payload);
    }

    fn schedule_class(&mut self, time: TimeMs, class: u8, payload: E) {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time,
            class,
            seq,
            payload,
        });
    }

    /// Pops the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(TimeMs, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// The due time of the next event without popping it.
    pub fn peek_time(&self) -> Option<TimeMs> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest event only if `pred` accepts it — how the
    /// runner's burst delivery coalesces a run of same-instant deliveries
    /// to one server without disturbing any other event's order.
    pub fn pop_if(&mut self, pred: impl FnOnce(TimeMs, &E) -> bool) -> Option<(TimeMs, E)> {
        let head = self.heap.peek()?;
        if !pred(head.time, &head.payload) {
            return None;
        }
        self.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut queue = EventQueue::new();
        queue.schedule(30, 3);
        queue.schedule(10, 1);
        queue.schedule(20, 2);
        let order: Vec<i32> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion() {
        let mut queue = EventQueue::new();
        for i in 0..100 {
            queue.schedule(7, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_and_rejects_past() {
        let mut queue = EventQueue::new();
        queue.schedule(100, "late");
        assert_eq!(queue.pop().unwrap().0, 100);
        assert_eq!(queue.now(), 100);
        // Scheduling "in the past" clamps to now.
        queue.schedule(50, "past");
        assert_eq!(queue.pop().unwrap(), (100, "past"));
    }

    #[test]
    fn schedule_first_wins_same_instant_ties() {
        let mut queue = EventQueue::new();
        queue.schedule(10, "timer");
        queue.schedule_first(10, "injection");
        queue.schedule(5, "earlier");
        assert_eq!(queue.pop(), Some((5, "earlier")));
        // Despite later insertion, the injection precedes the timer.
        assert_eq!(queue.pop(), Some((10, "injection")));
        assert_eq!(queue.pop(), Some((10, "timer")));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut queue = EventQueue::new();
        queue.schedule(5, ());
        assert_eq!(queue.peek_time(), Some(5));
        assert_eq!(queue.now(), 0);
        assert_eq!(queue.len(), 1);
        assert!(!queue.is_empty());
    }
}
