//! Network models: latency distributions, loss, and partitions.
//!
//! The paper's only network assumption for building block DAGs is
//! Assumption 1 (reliable delivery between correct servers, eventually).
//! The default model delivers every message with a sampled latency. Lossy
//! and partitioned models *violate per-send delivery* but preserve the
//! assumption at the protocol level because gossip's `FWD` mechanism
//! (Algorithm 1, lines 10–13) re-requests missing blocks — experiment E10
//! measures exactly that recovery.

use std::collections::BTreeSet;

use dagbft_core::TimeMs;
use rand::rngs::StdRng;
use rand::Rng;

/// A message latency distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Latency {
    /// Every message takes exactly this long.
    Constant(TimeMs),
    /// Uniformly distributed in `[min, max]`.
    Uniform {
        /// Minimum latency.
        min: TimeMs,
        /// Maximum latency (inclusive).
        max: TimeMs,
    },
}

impl Latency {
    /// Samples one latency value.
    pub fn sample(&self, rng: &mut StdRng) -> TimeMs {
        match *self {
            Latency::Constant(value) => value,
            Latency::Uniform { min, max } => rng.gen_range(min..=max),
        }
    }
}

impl Default for Latency {
    fn default() -> Self {
        Latency::Uniform { min: 5, max: 30 }
    }
}

/// A temporary network partition: messages between group `a` and group `b`
/// are dropped during `[from, until)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// One side of the cut (server indices).
    pub a: BTreeSet<usize>,
    /// The other side of the cut.
    pub b: BTreeSet<usize>,
    /// Partition start (inclusive).
    pub from: TimeMs,
    /// Partition end (exclusive) — the heal time.
    pub until: TimeMs,
}

impl Partition {
    fn cuts(&self, from: usize, to: usize, now: TimeMs) -> bool {
        if now < self.from || now >= self.until {
            return false;
        }
        (self.a.contains(&from) && self.b.contains(&to))
            || (self.b.contains(&from) && self.a.contains(&to))
    }
}

/// The complete network model used by the simulator.
///
/// # Examples
///
/// ```
/// use dagbft_sim::{Latency, NetworkModel};
///
/// let net = NetworkModel::default().with_drop_rate(0.1);
/// assert_eq!(net.drop_rate, 0.1);
/// let _ = Latency::Constant(10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Point-to-point latency distribution.
    pub latency: Latency,
    /// Independent per-message drop probability in `[0, 1)`.
    pub drop_rate: f64,
    /// Scheduled partitions.
    pub partitions: Vec<Partition>,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            latency: Latency::default(),
            drop_rate: 0.0,
            partitions: Vec::new(),
        }
    }
}

impl NetworkModel {
    /// A perfectly reliable network with constant latency — useful for
    /// deterministic examples and latency math in tests.
    pub fn reliable_constant(latency: TimeMs) -> Self {
        NetworkModel {
            latency: Latency::Constant(latency),
            drop_rate: 0.0,
            partitions: Vec::new(),
        }
    }

    /// Sets the per-message drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1)` — a rate of 1 would drop every
    /// send forever, violating Assumption 1 beyond what `FWD` can repair.
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "drop rate must be in [0, 1)");
        self.drop_rate = rate;
        self
    }

    /// Sets the latency distribution.
    pub fn with_latency(mut self, latency: Latency) -> Self {
        self.latency = latency;
        self
    }

    /// Adds a partition window.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partitions.push(partition);
        self
    }

    /// Decides whether a message from `from` to `to` sent at `now` is lost.
    pub fn drops(&self, rng: &mut StdRng, from: usize, to: usize, now: TimeMs) -> bool {
        if self.partitions.iter().any(|p| p.cuts(from, to, now)) {
            return true;
        }
        self.drop_rate > 0.0 && rng.gen_bool(self.drop_rate)
    }

    /// Samples the delivery delay for one message.
    pub fn delay(&self, rng: &mut StdRng) -> TimeMs {
        self.latency.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn constant_latency() {
        let mut rng = rng();
        assert_eq!(Latency::Constant(7).sample(&mut rng), 7);
    }

    #[test]
    fn uniform_latency_in_range() {
        let mut rng = rng();
        let latency = Latency::Uniform { min: 3, max: 9 };
        for _ in 0..200 {
            let sample = latency.sample(&mut rng);
            assert!((3..=9).contains(&sample));
        }
    }

    #[test]
    fn reliable_never_drops() {
        let net = NetworkModel::reliable_constant(5);
        let mut rng = rng();
        for _ in 0..100 {
            assert!(!net.drops(&mut rng, 0, 1, 0));
        }
    }

    #[test]
    fn drop_rate_statistics() {
        let net = NetworkModel::default().with_drop_rate(0.5);
        let mut rng = rng();
        let dropped = (0..10_000).filter(|_| net.drops(&mut rng, 0, 1, 0)).count();
        assert!((4_000..6_000).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    #[should_panic(expected = "drop rate")]
    fn full_drop_rate_rejected() {
        let _ = NetworkModel::default().with_drop_rate(1.0);
    }

    #[test]
    fn partition_cuts_both_directions_within_window() {
        let partition = Partition {
            a: [0, 1].into_iter().collect(),
            b: [2].into_iter().collect(),
            from: 100,
            until: 200,
        };
        let net = NetworkModel::default().with_partition(partition);
        let mut rng = rng();
        assert!(net.drops(&mut rng, 0, 2, 150));
        assert!(net.drops(&mut rng, 2, 1, 150));
        assert!(!net.drops(&mut rng, 0, 1, 150)); // same side
        assert!(!net.drops(&mut rng, 0, 2, 99)); // before
        assert!(!net.drops(&mut rng, 0, 2, 200)); // healed
    }

    #[test]
    fn deterministic_given_seed() {
        let net = NetworkModel::default().with_drop_rate(0.3);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100)
                .map(|_| (net.drops(&mut rng, 0, 1, 0), net.delay(&mut rng)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
