//! Discrete-event simulation substrate for the block DAG framework.
//!
//! The paper assumes only *reliable delivery* between correct servers
//! (Assumption 1) and evaluates nothing empirically; this crate supplies
//! the testbed the reproduction runs on:
//!
//! * [`sched`] — a deterministic discrete-event scheduler (seeded, so every
//!   run is exactly reproducible);
//! * [`net`] — latency and loss models; with loss, eventual delivery is
//!   re-established by gossip's `FWD` mechanism, keeping Assumption 1;
//! * [`adversary`] — byzantine server behaviours: silence, crashes,
//!   equivocation (Figure 3), selective sending;
//! * [`metrics`] — the measurement plane: wire messages and bytes,
//!   signature operations, delivery latencies;
//! * [`runner`] — [`runner::Simulation`]: `n` servers running
//!   `shim(P)` over the simulated network, plus the workload driving them.
//!
//! # Examples
//!
//! Run byzantine reliable broadcast over a 4-server block DAG:
//!
//! ```
//! use dagbft_core::Label;
//! use dagbft_protocols::{Brb, BrbRequest};
//! use dagbft_sim::{Injection, SimConfig, Simulation};
//!
//! let config = SimConfig::new(4).with_max_time(10_000);
//! let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
//! sim.inject(Injection {
//!     at: 0,
//!     server: 0,
//!     label: Label::new(1),
//!     request: BrbRequest::Broadcast(42),
//! });
//! let outcome = sim.run();
//! // All four servers deliver 42.
//! assert_eq!(outcome.deliveries.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod metrics;
pub mod net;
pub mod runner;
pub mod sched;

pub use adversary::Role;
pub use metrics::{Delivery, NetMetrics};
pub use net::{Latency, NetworkModel, Partition};
pub use runner::{IngestMode, Injection, SimConfig, SimOutcome, Simulation};
