//! Byzantine server behaviours.
//!
//! §4 of the paper enumerates how byzantine servers can influence the DAG:
//! equivocating blocks (Figure 3), referencing a block multiple times,
//! never referencing a block, or staying silent — and argues the embedded
//! BFT protocol absorbs all of it. This module implements those behaviours
//! so the integration tests and experiment E12 can exercise them.
//!
//! Byzantine servers here still *validate* and store blocks (a byzantine
//! server gains nothing from corrupting its own view), but misbehave in
//! what they send. They run the raw [`Gossip`] layer without any
//! interpretation — they have no honest user to serve.

use std::collections::BTreeSet;

use dagbft_core::{Block, Gossip, GossipConfig, LabeledRequest, NetCommand, NetMessage, TimeMs};
use dagbft_crypto::{KeyRegistry, ServerId, Signature, Signer};

/// The behaviour of one server in a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// A correct server running `shim(P)`.
    Correct,
    /// Correct until `at`, then stops entirely (crash-stop).
    Crash {
        /// Crash time.
        at: TimeMs,
    },
    /// Correct until `crash_at`, down until `rejoin_at`, then recovered
    /// from its persisted DAG (§7 crash–recovery; `Shim::recover`).
    Restart {
        /// Crash time.
        crash_at: TimeMs,
        /// Recovery time.
        rejoin_at: TimeMs,
    },
    /// Byzantine: receives and validates but never sends anything.
    Silent,
    /// Byzantine: at its block with sequence number `at_seq`, builds two
    /// conflicting blocks (same `(n, k)`, different content) and sends one
    /// to the lower half of the servers, the other to the upper half —
    /// the paper's Figure 3.
    Equivocate {
        /// The sequence number at which to fork.
        at_seq: u64,
    },
    /// Byzantine: disseminates its own blocks only to `targets`, starving
    /// the rest (they must recover via `FWD` through third parties).
    SelectiveBroadcast {
        /// Servers that receive this server's blocks directly.
        targets: BTreeSet<usize>,
    },
    /// Byzantine: builds protocol-valid blocks but re-broadcasts each one
    /// `repeat` times per round — a slow-loris-style resource hold that
    /// stays just inside validity, soaking honest dedup and ingest
    /// capacity with traffic that can never advance the DAG.
    SlowLoris {
        /// Copies of each block sent per round (clamped to at least 1).
        repeat: usize,
    },
    /// Byzantine: until `until`, floods `per_round` forged blocks (null
    /// signatures, distinct contents) per round, then switches to fully
    /// correct behaviour — the probe for score decay: a reformed peer
    /// must regain standing once its offenses age out.
    FloodThenBehave {
        /// First round time at which the server behaves honestly.
        until: TimeMs,
        /// Forged blocks sent per flooding round (clamped to at least 1).
        per_round: usize,
    },
}

impl Role {
    /// Whether this role is byzantine (not merely crashed).
    pub fn is_byzantine(&self) -> bool {
        matches!(
            self,
            Role::Silent
                | Role::Equivocate { .. }
                | Role::SelectiveBroadcast { .. }
                | Role::SlowLoris { .. }
                | Role::FloodThenBehave { .. }
        )
    }
}

/// A byzantine server: honest gossip state, dishonest sending.
#[derive(Debug)]
pub struct ByzServer {
    gossip: Gossip,
    signer: Signer,
    role: Role,
    n: usize,
}

impl ByzServer {
    /// Creates a byzantine server with the given role.
    ///
    /// # Panics
    ///
    /// Panics if `role` is [`Role::Correct`] or [`Role::Crash`] (those run
    /// a real shim), or if `me` has no key in the registry.
    pub fn new(me: ServerId, n: usize, role: Role, registry: &KeyRegistry) -> Self {
        assert!(role.is_byzantine(), "ByzServer requires a byzantine role");
        let signer = registry.signer(me).expect("byzantine server has a key");
        ByzServer {
            gossip: Gossip::new(
                me,
                GossipConfig::for_n(n),
                signer.clone(),
                registry.verifier(),
            ),
            signer,
            role,
            n,
        }
    }

    /// The server identity.
    pub fn me(&self) -> ServerId {
        self.gossip.me()
    }

    /// Read access to the byzantine server's (honest) DAG.
    pub fn dag(&self) -> &dagbft_core::BlockDag {
        self.gossip.dag()
    }

    /// Handles an incoming message. Silent servers swallow everything;
    /// others take part in gossip (including answering `FWD`s, which only
    /// helps their blocks spread).
    pub fn on_message(
        &mut self,
        from: ServerId,
        message: NetMessage,
        now: TimeMs,
    ) -> Vec<NetCommand> {
        let commands = self.gossip.on_message(from, message, now);
        match self.role {
            Role::Silent => Vec::new(),
            _ => commands,
        }
    }

    /// Produces this round's dissemination, per role. Returns pre-routed
    /// `(destination, message)` pairs because byzantine sending is not a
    /// uniform broadcast.
    pub fn disseminate(&mut self, now: TimeMs) -> Vec<(ServerId, NetMessage)> {
        match self.role.clone() {
            Role::Silent => Vec::new(),
            Role::Equivocate { at_seq } => {
                let seq = self.gossip.next_seq();
                let (block_a, _) = self.gossip.disseminate(vec![], now);
                if seq.value() == at_seq {
                    // Build the conflicting twin: same builder and sequence
                    // number, different content (an extra junk request).
                    let twin = Block::build(
                        self.me(),
                        block_a.seq(),
                        block_a.preds().to_vec(),
                        vec![LabeledRequest {
                            label: dagbft_core::Label::new(u64::MAX),
                            payload: bytes_lit(b"equivocation"),
                        }],
                        &self.signer,
                    );
                    let mut out = Vec::new();
                    for target in 0..self.n {
                        let target_id = ServerId::new(target as u32);
                        if target_id == self.me() {
                            continue;
                        }
                        let block = if target < self.n / 2 { &block_a } else { &twin };
                        out.push((target_id, NetMessage::Block(block.clone())));
                    }
                    out
                } else {
                    self.broadcast_to_all(block_a)
                }
            }
            Role::SelectiveBroadcast { targets } => {
                let (block, _) = self.gossip.disseminate(vec![], now);
                targets
                    .iter()
                    .filter(|t| **t != self.me().index())
                    .map(|t| (ServerId::new(*t as u32), NetMessage::Block(block.clone())))
                    .collect()
            }
            Role::SlowLoris { repeat } => {
                let (block, _) = self.gossip.disseminate(vec![], now);
                let mut out = Vec::new();
                for _ in 0..repeat.max(1) {
                    out.extend(self.broadcast_to_all(block.clone()));
                }
                out
            }
            Role::FloodThenBehave { until, per_round } => {
                if now < until {
                    // Forged junk: null signatures over distinct contents,
                    // so every copy costs the receiver a failed verification
                    // before it can be rejected.
                    let seq = self.gossip.next_seq();
                    let mut out = Vec::new();
                    for i in 0..per_round.max(1) {
                        let forged = Block::build_with_signature(
                            self.me(),
                            seq,
                            vec![],
                            vec![LabeledRequest {
                                label: dagbft_core::Label::new(
                                    now.wrapping_mul(1_000_003).wrapping_add(i as u64),
                                ),
                                payload: bytes_lit(b"flood"),
                            }],
                            Signature::NULL,
                        );
                        out.extend(self.broadcast_to_all(forged));
                    }
                    out
                } else {
                    let (block, _) = self.gossip.disseminate(vec![], now);
                    self.broadcast_to_all(block)
                }
            }
            Role::Correct | Role::Crash { .. } | Role::Restart { .. } => {
                unreachable!("checked in new()")
            }
        }
    }

    fn broadcast_to_all(&self, block: Block) -> Vec<(ServerId, NetMessage)> {
        (0..self.n)
            .map(|i| ServerId::new(i as u32))
            .filter(|id| *id != self.me())
            .map(|id| (id, NetMessage::Block(block.clone())))
            .collect()
    }
}

fn bytes_lit(data: &'static [u8]) -> bytes::Bytes {
    bytes::Bytes::from_static(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(n: usize) -> KeyRegistry {
        KeyRegistry::generate(n, 9)
    }

    #[test]
    fn role_classification() {
        assert!(!Role::Correct.is_byzantine());
        assert!(!Role::Crash { at: 5 }.is_byzantine());
        assert!(!Role::Restart {
            crash_at: 5,
            rejoin_at: 10
        }
        .is_byzantine());
        assert!(Role::Silent.is_byzantine());
        assert!(Role::Equivocate { at_seq: 0 }.is_byzantine());
        assert!(Role::SelectiveBroadcast {
            targets: BTreeSet::new()
        }
        .is_byzantine());
    }

    #[test]
    #[should_panic(expected = "byzantine role")]
    fn correct_role_rejected() {
        let registry = registry(4);
        let _ = ByzServer::new(ServerId::new(0), 4, Role::Correct, &registry);
    }

    #[test]
    fn silent_server_sends_nothing() {
        let registry = registry(4);
        let mut server = ByzServer::new(ServerId::new(0), 4, Role::Silent, &registry);
        assert!(server.disseminate(0).is_empty());
        // Even FWD answers are suppressed.
        let other = registry.signer(ServerId::new(1)).unwrap();
        let block = Block::build(
            ServerId::new(1),
            dagbft_core::SeqNum::ZERO,
            vec![],
            vec![],
            &other,
        );
        let commands = server.on_message(ServerId::new(1), NetMessage::Block(block.clone()), 0);
        assert!(commands.is_empty());
        // But it did validate and store the block.
        assert!(server.dag().contains(&block.block_ref()));
    }

    #[test]
    fn equivocator_sends_conflicting_blocks_to_halves() {
        let registry = registry(4);
        let mut server = ByzServer::new(
            ServerId::new(0),
            4,
            Role::Equivocate { at_seq: 0 },
            &registry,
        );
        let sends = server.disseminate(0);
        assert_eq!(sends.len(), 3);
        let blocks: Vec<&Block> = sends
            .iter()
            .map(|(_, m)| match m {
                NetMessage::Block(b) => b,
                _ => panic!("expected block"),
            })
            .collect();
        // Same (builder, seq), at least two distinct refs.
        assert!(blocks.iter().all(|b| b.builder() == ServerId::new(0)));
        assert!(blocks.iter().all(|b| b.seq() == dagbft_core::SeqNum::ZERO));
        let distinct: BTreeSet<_> = blocks.iter().map(|b| b.block_ref()).collect();
        assert_eq!(distinct.len(), 2, "two conflicting versions");
        // Both versions carry valid signatures — equivocation is *valid*.
        for block in blocks {
            assert!(block.verify_signature(&registry.verifier()));
        }
    }

    #[test]
    fn equivocator_honest_after_fork() {
        let registry = registry(4);
        let mut server = ByzServer::new(
            ServerId::new(0),
            4,
            Role::Equivocate { at_seq: 0 },
            &registry,
        );
        let _fork = server.disseminate(0);
        let after = server.disseminate(10);
        let distinct: BTreeSet<_> = after
            .iter()
            .map(|(_, m)| match m {
                NetMessage::Block(b) => b.block_ref(),
                _ => panic!(),
            })
            .collect();
        assert_eq!(distinct.len(), 1, "single chain after the fork");
    }

    #[test]
    fn slow_loris_repeats_valid_blocks() {
        let registry = registry(4);
        let mut server = ByzServer::new(
            ServerId::new(0),
            4,
            Role::SlowLoris { repeat: 5 },
            &registry,
        );
        let sends = server.disseminate(0);
        // 5 copies × 3 targets, all the same valid block.
        assert_eq!(sends.len(), 15);
        let distinct: BTreeSet<_> = sends
            .iter()
            .map(|(_, m)| match m {
                NetMessage::Block(b) => b.block_ref(),
                _ => panic!("expected block"),
            })
            .collect();
        assert_eq!(distinct.len(), 1, "one block, many copies");
        for (_, message) in &sends {
            let NetMessage::Block(block) = message else {
                panic!("expected block");
            };
            assert!(block.verify_signature(&registry.verifier()));
        }
    }

    #[test]
    fn flood_then_behave_switches_to_honesty() {
        let registry = registry(4);
        let mut server = ByzServer::new(
            ServerId::new(0),
            4,
            Role::FloodThenBehave {
                until: 1_000,
                per_round: 4,
            },
            &registry,
        );
        let flood = server.disseminate(0);
        // 4 forged blocks × 3 targets, none of them verifiable.
        assert_eq!(flood.len(), 12);
        let mut refs = BTreeSet::new();
        for (_, message) in &flood {
            let NetMessage::Block(block) = message else {
                panic!("expected block");
            };
            assert!(!block.verify_signature(&registry.verifier()));
            refs.insert(block.block_ref());
        }
        assert_eq!(refs.len(), 4, "distinct contents per forged block");
        // Past `until`: honest dissemination, one valid block to everyone.
        let honest = server.disseminate(1_000);
        assert_eq!(honest.len(), 3);
        for (_, message) in &honest {
            let NetMessage::Block(block) = message else {
                panic!("expected block");
            };
            assert!(block.verify_signature(&registry.verifier()));
        }
    }

    #[test]
    fn selective_broadcast_restricts_targets() {
        let registry = registry(4);
        let targets: BTreeSet<usize> = [1].into_iter().collect();
        let mut server = ByzServer::new(
            ServerId::new(0),
            4,
            Role::SelectiveBroadcast { targets },
            &registry,
        );
        let sends = server.disseminate(0);
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].0, ServerId::new(1));
    }
}
