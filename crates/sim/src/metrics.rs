//! The measurement plane: what the experiments report.
//!
//! The paper's quantitative claims are structural — fewer wire messages
//! (compression, §4), fewer signatures (batching, §4), parallel instances
//! "for free" (§1), off-line interpretation (§1). These counters are the
//! common currency both the DAG embedding and the direct point-to-point
//! baseline report, so experiments E5–E11 can compare like with like.

use dagbft_core::{Label, TimeMs};
use dagbft_crypto::ServerId;

/// Wire-level traffic counters for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Messages handed to the transport (after adversarial suppression,
    /// before loss).
    pub messages_sent: u64,
    /// Total bytes of those messages (canonical wire encoding).
    pub bytes_sent: u64,
    /// Messages actually delivered.
    pub messages_delivered: u64,
    /// Messages lost to drop rate or partitions.
    pub messages_dropped: u64,
    /// Block messages among `messages_sent`.
    pub blocks_sent: u64,
    /// `FWD` requests among `messages_sent`.
    pub fwd_sent: u64,
}

impl NetMetrics {
    /// Records one send of `bytes` bytes.
    pub fn record_send(&mut self, bytes: usize, is_block: bool, is_fwd: bool) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        if is_block {
            self.blocks_sent += 1;
        }
        if is_fwd {
            self.fwd_sent += 1;
        }
    }

    /// Records the outcome of one send.
    pub fn record_outcome(&mut self, dropped: bool) {
        if dropped {
            self.messages_dropped += 1;
        } else {
            self.messages_delivered += 1;
        }
    }
}

/// One indication delivered to a server's user, with timing.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery<I> {
    /// Simulation time of delivery.
    pub at: TimeMs,
    /// The server whose user received the indication.
    pub server: ServerId,
    /// The protocol instance.
    pub label: Label,
    /// The indication itself.
    pub indication: I,
}

impl<I> Delivery<I> {
    /// Latency relative to the injection time of the instance's request.
    pub fn latency_from(&self, injected_at: TimeMs) -> TimeMs {
        self.at.saturating_sub(injected_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_send_classifies() {
        let mut metrics = NetMetrics::default();
        metrics.record_send(100, true, false);
        metrics.record_send(40, false, true);
        assert_eq!(metrics.messages_sent, 2);
        assert_eq!(metrics.bytes_sent, 140);
        assert_eq!(metrics.blocks_sent, 1);
        assert_eq!(metrics.fwd_sent, 1);
    }

    #[test]
    fn outcomes_partition_sends() {
        let mut metrics = NetMetrics::default();
        metrics.record_outcome(false);
        metrics.record_outcome(true);
        metrics.record_outcome(false);
        assert_eq!(metrics.messages_delivered, 2);
        assert_eq!(metrics.messages_dropped, 1);
    }

    #[test]
    fn delivery_latency() {
        let delivery = Delivery {
            at: 150,
            server: ServerId::new(0),
            label: Label::new(1),
            indication: (),
        };
        assert_eq!(delivery.latency_from(100), 50);
        assert_eq!(delivery.latency_from(200), 0); // saturates
    }
}
