//! The simulation runner: `n` servers running `shim(P)` over the simulated
//! network, with a workload and optional byzantine roles.
//!
//! The runner realizes the deployment of Figure 1: every correct server is
//! a [`Shim<P>`] whose [`NetCommand`]s are routed through the
//! [`NetworkModel`]; byzantine servers are [`ByzServer`]s. Dissemination is
//! requested on a per-server timer (Algorithm 3, lines 10–11), `FWD`
//! retries on another. Everything — keys, latencies, drops, event order —
//! derives from the seed, so runs are exactly reproducible.

use std::collections::{BTreeSet, HashMap};

use dagbft_codec::{WireDecode, WireEncode};
use dagbft_core::{
    accountability, AdmissionMode, BlockStore, DefenseConfig, DeterministicProtocol, Label,
    NetCommand, NetMessage, ProtocolConfig, RecoverError, RecoveryReport, Shim, ShimConfig,
    SnapshotProtocol, TimeMs,
};
use dagbft_crypto::{KeyRegistry, SchemeKind, ServerId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adversary::{ByzServer, Role};
use crate::metrics::{Delivery, NetMetrics};
use crate::net::NetworkModel;
use crate::sched::EventQueue;

/// One request injection: at time `at`, server `server` receives
/// `request(label, request)` from its user.
#[derive(Debug, Clone)]
pub struct Injection<P: DeterministicProtocol> {
    /// Injection time.
    pub at: TimeMs,
    /// Index of the receiving server.
    pub server: usize,
    /// The protocol instance label.
    pub label: Label,
    /// The request handed to `shim(P)`.
    pub request: P::Request,
}

/// How the runner hands deliveries to a correct server's shim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum IngestMode {
    /// One [`Shim::on_message`] call per delivered message (the
    /// historical behavior; every cross-PR fingerprint was pinned on it).
    #[default]
    PerMessage,
    /// Coalesce a run of same-instant deliveries to the same server into
    /// one [`Shim::on_message_burst`] call (up to `max` messages): blocks
    /// are indexed first, then verified and promoted in one
    /// cross-cascade pass — the deferred-admission hot path. Protocol
    /// outcomes are unchanged; block bytes may differ from
    /// [`IngestMode::PerMessage`] because the current block references
    /// newly admitted blocks in burst order.
    Burst {
        /// Maximum messages folded into one bracket.
        max: usize,
    },
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of servers.
    pub n: usize,
    /// Randomness seed (keys, latencies, drops).
    pub seed: u64,
    /// The embedded protocol's fault configuration.
    pub protocol: ProtocolConfig,
    /// Interval between a server's `disseminate()` calls.
    pub disseminate_every: TimeMs,
    /// Interval between `FWD`-retry timer ticks.
    pub tick_every: TimeMs,
    /// Hard stop time.
    pub max_time: TimeMs,
    /// Early stop once this many deliveries were observed (`None`: run to
    /// `max_time`).
    pub stop_after_deliveries: Option<usize>,
    /// The network model.
    pub network: NetworkModel,
    /// Per-server roles; missing entries default to [`Role::Correct`].
    pub roles: HashMap<usize, Role>,
    /// Cap on requests per block (Algorithm 3's `rqsts.get()`).
    pub max_requests_per_block: usize,
    /// Gossip admission engine for every correct server: the batched
    /// index (default), the scan oracle, or the parallel pipeline with a
    /// per-server verification worker pool. Whole-simulation byte
    /// equivalence across all three is asserted by
    /// `tests/cross_seed_determinism.rs`.
    pub admission: AdmissionMode,
    /// Delivery hand-off shape for correct servers (see [`IngestMode`]).
    pub ingest: IngestMode,
    /// Bound on each correct server's gossip pending buffer (see
    /// `dagbft_core::GossipConfig::pending_cap`).
    pub pending_cap: usize,
    /// Signature scheme for the whole server set: the HMAC stand-in
    /// (default — cheap, the determinism oracle) or real ed25519 with
    /// multi-scalar batch verification. Promotion orders and delivery
    /// sequences are identical under both; only signature bytes and
    /// per-operation cost differ.
    pub scheme: SchemeKind,
    /// Peer-defense configuration for every correct server (scored
    /// admission, rate limits, bans — see `dagbft_core::DefenseConfig`).
    /// Disabled by default: every pinned fingerprint predates the defense
    /// layer and must stay byte-identical without it.
    pub defense: DefenseConfig,
}

impl SimConfig {
    /// A default configuration for `n` servers: seed 42, 50 ms
    /// dissemination, default latency, no faults, 60 simulated seconds.
    pub fn new(n: usize) -> Self {
        SimConfig {
            n,
            seed: 42,
            protocol: ProtocolConfig::for_n(n),
            disseminate_every: 50,
            tick_every: 100,
            max_time: 60_000,
            stop_after_deliveries: None,
            network: NetworkModel::default(),
            roles: HashMap::new(),
            max_requests_per_block: 1024,
            admission: AdmissionMode::default(),
            ingest: IngestMode::default(),
            pending_cap: dagbft_core::DEFAULT_PENDING_CAP,
            scheme: SchemeKind::default(),
            defense: DefenseConfig::default(),
        }
    }

    /// Sets the randomness seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the network model.
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Sets the dissemination interval.
    pub fn with_disseminate_every(mut self, interval: TimeMs) -> Self {
        self.disseminate_every = interval;
        self
    }

    /// Sets the hard stop time.
    pub fn with_max_time(mut self, max_time: TimeMs) -> Self {
        self.max_time = max_time;
        self
    }

    /// Stops the run early after `count` deliveries.
    pub fn with_stop_after_deliveries(mut self, count: usize) -> Self {
        self.stop_after_deliveries = Some(count);
        self
    }

    /// Assigns a role to one server.
    pub fn with_role(mut self, server: usize, role: Role) -> Self {
        self.roles.insert(server, role);
        self
    }

    /// Selects the gossip admission engine for all correct servers.
    pub fn with_admission(mut self, admission: AdmissionMode) -> Self {
        self.admission = admission;
        self
    }

    /// Selects the delivery hand-off shape for correct servers.
    pub fn with_ingest(mut self, ingest: IngestMode) -> Self {
        self.ingest = ingest;
        self
    }

    /// Bounds each correct server's gossip pending buffer.
    pub fn with_pending_cap(mut self, cap: usize) -> Self {
        self.pending_cap = cap.max(1);
        self
    }

    /// Selects the signature scheme for the whole server set.
    pub fn with_scheme(mut self, scheme: SchemeKind) -> Self {
        self.scheme = scheme;
        self
    }

    /// Configures the peer-defense layer on every correct server.
    pub fn with_defense(mut self, defense: DefenseConfig) -> Self {
        self.defense = defense;
        self
    }

    /// Number of byzantine servers configured.
    pub fn byzantine_count(&self) -> usize {
        self.roles.values().filter(|r| r.is_byzantine()).count()
    }
}

/// A server slot in the simulation.
enum Server<P: DeterministicProtocol> {
    Correct(Box<Shim<P>>),
    Byzantine(Box<ByzServer>),
    /// A crashed server; retained for index stability.
    Crashed,
    /// A crashed server awaiting restart, holding its persisted DAG image.
    Down {
        /// `recovery::persist_dag` bytes captured at crash time.
        image: Vec<u8>,
    },
}

/// What happened in a run.
#[derive(Debug)]
pub struct SimOutcome<P: DeterministicProtocol> {
    /// All user-facing deliveries, in time order.
    pub deliveries: Vec<Delivery<P::Indication>>,
    /// Wire traffic counters.
    pub net: NetMetrics,
    /// Signature operations (from the shared key registry).
    pub signatures: u64,
    /// Verification operations (batched items included, so this total is
    /// admission-mode independent).
    pub verifications: u64,
    /// Batched verification passes performed by the admission pipeline
    /// (zero under [`AdmissionMode::Scan`]).
    pub verify_batches: u64,
    /// Verifications that went through batched waves — the share of
    /// `verifications` on the amortized path.
    pub batched_verifications: u64,
    /// Cross-cascade admission bursts accounted by the crypto layer
    /// (zero unless servers ingest via [`IngestMode::Burst`]).
    pub verify_bursts: u64,
    /// Verifications that belonged to those bursts.
    pub burst_verifications: u64,
    /// Wave statistics aggregated over all correct servers: widths
    /// (min/mean/max plus a log₂ histogram), wave and burst counts.
    pub wave_stats: dagbft_core::WaveStats,
    /// Simulation time at stop.
    pub finished_at: TimeMs,
    /// Injection times by label (first injection wins), for latency math.
    pub injected_at: HashMap<Label, TimeMs>,
    /// Durable crash–recoveries performed during the run, in time order:
    /// `(at, server, report)`.
    pub recoveries: Vec<(TimeMs, ServerId, RecoveryReport)>,
    /// Transferable equivocation proofs extractable from the correct
    /// servers' final DAGs (§6 accountability;
    /// `accountability::collect_proofs` aggregated and deduplicated by
    /// `(accused, seq)` across servers).
    pub equivocation_proofs: usize,
    /// Builders convicted by at least one of those proofs.
    pub accused: BTreeSet<ServerId>,
    /// The servers, for post-run inspection (DAGs, interpreter stats).
    servers: Vec<ServerView<P>>,
}

/// Post-run view of one server.
#[derive(Debug)]
pub enum ServerView<P: DeterministicProtocol> {
    /// A correct server's final shim.
    Correct(Box<Shim<P>>),
    /// A byzantine server's final state.
    Byzantine(Box<ByzServer>),
    /// The server crashed during the run.
    Crashed,
}

impl<P: DeterministicProtocol> SimOutcome<P> {
    /// The final shim of a correct server.
    ///
    /// # Panics
    ///
    /// Panics if `index` was not a correct server.
    pub fn shim(&self, index: usize) -> &Shim<P> {
        match &self.servers[index] {
            ServerView::Correct(shim) => shim,
            _ => panic!("server {index} is not correct"),
        }
    }

    /// The final DAG of any non-crashed server.
    pub fn dag(&self, index: usize) -> Option<&dagbft_core::BlockDag> {
        match &self.servers[index] {
            ServerView::Correct(shim) => Some(shim.dag()),
            ServerView::Byzantine(server) => Some(server.dag()),
            ServerView::Crashed => None,
        }
    }

    /// Deliveries for one label, in time order.
    pub fn deliveries_for(&self, label: Label) -> Vec<&Delivery<P::Indication>> {
        self.deliveries
            .iter()
            .filter(|d| d.label == label)
            .collect()
    }

    /// Delivery latencies (per delivery) for one label.
    pub fn latencies_for(&self, label: Label) -> Vec<TimeMs> {
        let Some(injected) = self.injected_at.get(&label) else {
            return Vec::new();
        };
        self.deliveries_for(label)
            .iter()
            .map(|d| d.latency_from(*injected))
            .collect()
    }

    /// Indices of servers that were correct for the whole run.
    pub fn correct_servers(&self) -> Vec<usize> {
        self.servers
            .iter()
            .enumerate()
            .filter_map(|(i, s)| matches!(s, ServerView::Correct(_)).then_some(i))
            .collect()
    }

    /// Aggregated interpreter memory footprint over all correct servers:
    /// total vs unique protocol instances (the copy-on-write sharing win)
    /// and envelope counts. `unique_instances` sums per-server-unique
    /// allocations; interpreters never share memory with each other.
    pub fn interpreter_footprint(&self) -> dagbft_core::InterpreterFootprint {
        let mut total = dagbft_core::InterpreterFootprint::default();
        for server in &self.servers {
            if let ServerView::Correct(shim) = server {
                total += shim.footprint();
            }
        }
        total
    }
}

/// How a server is rebuilt from its detached [`BlockStore`] after a
/// durable crash. A plain `fn` pointer so [`Simulation`] itself needs no
/// snapshot bounds: the bounded builder methods instantiate it with
/// [`Shim::recover_from_store`] or
/// [`Shim::recover_from_store_with_snapshots`].
type RecoverFn<P> = fn(
    ServerId,
    ShimConfig,
    &KeyRegistry,
    Box<dyn BlockStore>,
) -> Result<(Shim<P>, RecoveryReport), RecoverError>;

enum Event<P: DeterministicProtocol> {
    Rejoin {
        server: usize,
    },
    /// Crash-at-instant with same-instant restart from the durable store
    /// attached via [`Simulation::with_durable_store`].
    DurableCrash {
        server: usize,
    },
    Deliver {
        to: usize,
        from: ServerId,
        message: NetMessage,
    },
    Disseminate {
        server: usize,
    },
    Tick {
        server: usize,
    },
    Inject(Injection<P>),
}

/// A configured simulation, ready to run.
///
/// # Examples
///
/// See the crate-level docs.
pub struct Simulation<P: DeterministicProtocol> {
    config: SimConfig,
    registry: KeyRegistry,
    servers: Vec<Server<P>>,
    queue: EventQueue<Event<P>>,
    rng: StdRng,
    net: NetMetrics,
    deliveries: Vec<Delivery<P::Indication>>,
    injected_at: HashMap<Label, TimeMs>,
    recover_hook: Option<RecoverFn<P>>,
    /// Snapshot cadence to re-enable on recovered shims, with the
    /// fn-pointer that applies it (set by
    /// [`Simulation::with_durable_snapshots`]).
    snapshot_every: Option<u64>,
    snapshot_install: Option<fn(&mut Shim<P>, u64)>,
    recoveries: Vec<(TimeMs, ServerId, RecoveryReport)>,
}

impl<P: DeterministicProtocol> Simulation<P> {
    /// Builds the simulation: generates keys, instantiates servers per
    /// role, and schedules the recurring dissemination and tick timers.
    ///
    /// # Panics
    ///
    /// Panics if a configured role index is out of range.
    pub fn new(config: SimConfig) -> Self {
        let registry = KeyRegistry::generate_kind(config.scheme, config.n, config.seed);
        let shim_config = ShimConfig::new(config.protocol)
            .with_max_requests_per_block(config.max_requests_per_block)
            .with_admission(config.admission)
            .with_pending_cap(config.pending_cap)
            .with_defense(config.defense);
        let mut servers = Vec::with_capacity(config.n);
        for index in 0..config.n {
            let role = config.roles.get(&index).cloned().unwrap_or(Role::Correct);
            let server = match role {
                Role::Correct | Role::Crash { .. } | Role::Restart { .. } => {
                    Server::Correct(Box::new(
                        Shim::new(ServerId::new(index as u32), shim_config, &registry)
                            .expect("key exists for every server"),
                    ))
                }
                byzantine => Server::Byzantine(Box::new(ByzServer::new(
                    ServerId::new(index as u32),
                    config.n,
                    byzantine,
                    &registry,
                ))),
            };
            servers.push(server);
        }

        let mut queue = EventQueue::new();
        for index in 0..config.n {
            // Phase-shift the timers so servers do not act in lockstep.
            let phase = (index as TimeMs * config.disseminate_every) / config.n as TimeMs;
            queue.schedule(phase, Event::Disseminate { server: index });
            queue.schedule(phase + 1, Event::Tick { server: index });
            if let Some(Role::Restart { rejoin_at, .. }) = config.roles.get(&index) {
                // `schedule_first`, like injections: a server rejoining at
                // `t` must be up before an injection at the same `t`
                // reaches it (rejoins are enqueued at construction, so
                // within the class they still precede any injection).
                queue.schedule_first(*rejoin_at, Event::Rejoin { server: index });
            }
        }

        Simulation {
            rng: StdRng::seed_from_u64(config.seed.wrapping_add(1)),
            registry,
            servers,
            queue,
            net: NetMetrics::default(),
            deliveries: Vec::new(),
            injected_at: HashMap::new(),
            recover_hook: None,
            snapshot_every: None,
            snapshot_install: None,
            recoveries: Vec::new(),
            config,
        }
    }

    /// Attaches a durable [`BlockStore`] to `server` and schedules a
    /// crash-at-instant at `crash_at`: at that moment the server's entire
    /// volatile state is dropped and it is rebuilt purely from the store
    /// (same-instant restart). The shim journals every admitted block and
    /// buffered request from now on.
    ///
    /// Recovery replays the journal from genesis unless
    /// [`Simulation::with_durable_snapshots`] is also configured.
    ///
    /// # Panics
    ///
    /// Panics if `server` is not a correct server, or if attaching the
    /// store fails.
    pub fn with_durable_store(
        mut self,
        server: usize,
        store: Box<dyn BlockStore>,
        crash_at: TimeMs,
    ) -> Self {
        let Server::Correct(shim) = &mut self.servers[server] else {
            panic!("server {server} is not correct");
        };
        shim.attach_store(store).expect("durable store attaches");
        self.recover_hook
            .get_or_insert(Shim::recover_from_store as RecoverFn<P>);
        // `schedule_first`, like injections: the crash must precede any
        // same-instant delivery so the restarted server sees it fresh.
        self.queue
            .schedule_first(crash_at, Event::DurableCrash { server });
        self
    }

    /// Schedules a request injection.
    pub fn inject(&mut self, injection: Injection<P>) {
        assert!(injection.server < self.config.n, "server index in range");
        self.injected_at
            .entry(injection.label)
            .or_insert(injection.at);
        // `schedule_first`: an injection at time `t` must reach the shim
        // before a dissemination firing at the same `t` builds its block.
        self.queue
            .schedule_first(injection.at, Event::Inject(injection));
    }

    /// Schedules many injections.
    pub fn inject_all<I: IntoIterator<Item = Injection<P>>>(&mut self, injections: I) {
        for injection in injections {
            self.inject(injection);
        }
    }

    /// Runs to completion (`max_time`, early-stop, or quiescence) and
    /// returns the outcome.
    pub fn run(mut self) -> SimOutcome<P> {
        self.registry.metrics().reset();
        while let Some((now, event)) = self.queue.pop() {
            if now > self.config.max_time {
                break;
            }
            self.handle(now, event);
            if let Some(stop) = self.config.stop_after_deliveries {
                if self.deliveries.len() >= stop {
                    break;
                }
            }
        }
        let finished_at = self.queue.now();
        let mut wave_stats = dagbft_core::WaveStats::default();
        // Aggregate §6 accountability over the correct servers: every
        // proof any of them can extract, deduplicated by (accused, seq)
        // — the same fork seen by two servers is one conviction.
        let mut convictions: BTreeSet<(ServerId, dagbft_core::SeqNum)> = BTreeSet::new();
        let mut accused: BTreeSet<ServerId> = BTreeSet::new();
        for server in &self.servers {
            if let Server::Correct(shim) = server {
                wave_stats.merge(shim.gossip().wave_stats());
                for proof in accountability::collect_proofs(shim.dag()) {
                    convictions.insert((proof.accused(), proof.blocks().0.seq()));
                    accused.insert(proof.accused());
                }
            }
        }
        SimOutcome {
            deliveries: self.deliveries,
            net: self.net,
            signatures: self.registry.metrics().signs(),
            verifications: self.registry.metrics().verifies(),
            verify_batches: self.registry.metrics().batches(),
            batched_verifications: self.registry.metrics().batched_verifies(),
            verify_bursts: self.registry.metrics().bursts(),
            burst_verifications: self.registry.metrics().burst_verifies(),
            wave_stats,
            finished_at,
            injected_at: self.injected_at,
            recoveries: self.recoveries,
            equivocation_proofs: convictions.len(),
            accused,
            servers: self
                .servers
                .into_iter()
                .map(|server| match server {
                    Server::Correct(shim) => ServerView::Correct(shim),
                    Server::Byzantine(byz) => ServerView::Byzantine(byz),
                    Server::Crashed | Server::Down { .. } => ServerView::Crashed,
                })
                .collect(),
        }
    }

    fn handle(&mut self, now: TimeMs, event: Event<P>) {
        match event {
            Event::Rejoin { server } => {
                self.rejoin(server, now);
            }
            Event::DurableCrash { server } => {
                self.durable_crash(server, now);
            }
            Event::Inject(injection) => {
                self.crash_if_due(injection.server, now);
                if let Server::Correct(shim) = &mut self.servers[injection.server] {
                    shim.request(injection.label, injection.request);
                }
            }
            Event::Disseminate { server } => {
                self.crash_if_due(server, now);
                match &mut self.servers[server] {
                    Server::Correct(shim) => {
                        let commands = shim.disseminate(now);
                        self.route_commands(server, commands, now);
                        self.collect_deliveries(server, now);
                    }
                    Server::Byzantine(byz) => {
                        let sends = byz.disseminate(now);
                        for (to, message) in sends {
                            self.send(server, to.index(), message, now);
                        }
                    }
                    Server::Crashed | Server::Down { .. } => return, // no rescheduling
                }
                self.queue.schedule(
                    now + self.config.disseminate_every,
                    Event::Disseminate { server },
                );
            }
            Event::Tick { server } => {
                self.crash_if_due(server, now);
                match &mut self.servers[server] {
                    Server::Correct(shim) => {
                        let commands = shim.on_tick(now);
                        self.route_commands(server, commands, now);
                    }
                    Server::Byzantine(_) => {} // byzantine servers skip retries
                    Server::Crashed | Server::Down { .. } => return,
                }
                self.queue
                    .schedule(now + self.config.tick_every, Event::Tick { server });
            }
            Event::Deliver { to, from, message } => {
                self.crash_if_due(to, now);
                match &mut self.servers[to] {
                    Server::Correct(shim) => {
                        let commands = match self.config.ingest {
                            IngestMode::PerMessage => shim.on_message(from, message, now),
                            IngestMode::Burst { max } => {
                                // Coalesce the run of deliveries queued for
                                // this server at this instant into one
                                // deferred-admission bracket.
                                let mut batch = vec![(from, message)];
                                while batch.len() < max.max(1) {
                                    let coalesced = self.queue.pop_if(|at, event| {
                                        at == now
                                            && matches!(
                                                event,
                                                Event::Deliver { to: next, .. } if *next == to
                                            )
                                    });
                                    match coalesced {
                                        Some((_, Event::Deliver { from, message, .. })) => {
                                            batch.push((from, message));
                                        }
                                        Some(_) => unreachable!("pop_if matched a delivery"),
                                        None => break,
                                    }
                                }
                                shim.on_message_burst(batch, now)
                            }
                        };
                        self.route_commands(to, commands, now);
                        self.collect_deliveries(to, now);
                    }
                    Server::Byzantine(byz) => {
                        let commands = byz.on_message(from, message, now);
                        self.route_commands(to, commands, now);
                    }
                    Server::Crashed | Server::Down { .. } => {}
                }
            }
        }
    }

    /// Crash-stop servers whose time has come (checked lazily on their
    /// next event). Restarting servers persist their DAG at crash time —
    /// the paper's "persist enough information" prerequisite.
    fn crash_if_due(&mut self, server: usize, now: TimeMs) {
        match self.config.roles.get(&server) {
            Some(Role::Crash { at })
                if now >= *at && matches!(self.servers[server], Server::Correct(_)) =>
            {
                self.servers[server] = Server::Crashed;
            }
            Some(Role::Restart {
                crash_at,
                rejoin_at,
            }) => {
                let down_window = now >= *crash_at && now < *rejoin_at;
                if down_window {
                    if let Server::Correct(shim) = &self.servers[server] {
                        let image = dagbft_core::persist_dag(shim.dag());
                        self.servers[server] = Server::Down { image };
                    }
                }
            }
            _ => {}
        }
    }

    /// Recovers a restarting server from its persisted image
    /// (`Shim::recover`): the DAG is restored, instance states are
    /// re-derived by re-interpretation, and the block chain resumes at the
    /// correct sequence number. Indications re-raised by the replay are
    /// discarded — the modeled application persisted its own progress.
    fn rejoin(&mut self, server: usize, now: TimeMs) {
        let Server::Down { image } = &self.servers[server] else {
            return;
        };
        let dag = dagbft_core::restore_dag(image).expect("own image restores");
        let shim_config = ShimConfig::new(self.config.protocol)
            .with_max_requests_per_block(self.config.max_requests_per_block)
            .with_admission(self.config.admission)
            .with_pending_cap(self.config.pending_cap)
            .with_defense(self.config.defense);
        let mut shim = Shim::recover(
            ServerId::new(server as u32),
            shim_config,
            &self.registry,
            dag,
        )
        .expect("key exists for every server");
        let _replayed = shim.poll_indications();
        self.servers[server] = Server::Correct(Box::new(shim));
        // Timers died while down; restart them.
        self.queue.schedule(now, Event::Disseminate { server });
        self.queue.schedule(now + 1, Event::Tick { server });
    }

    /// Crash-at-instant with same-instant restart from the durable store:
    /// the old shim (DAG, interpreter, buffered requests, pending gossip)
    /// is dropped wholesale and the server rebuilt purely from what the
    /// store reads back. Indications re-raised by the replay are discarded
    /// — the modeled application persisted its own progress. The server
    /// slot never leaves `Correct`, so its dissemination and tick timers
    /// keep their schedule across the crash.
    fn durable_crash(&mut self, server: usize, now: TimeMs) {
        let Server::Correct(shim) = &mut self.servers[server] else {
            return;
        };
        let Some(store) = shim.detach_store() else {
            return;
        };
        let hook = self
            .recover_hook
            .expect("durable crash scheduled with a recovery hook");
        let shim_config = ShimConfig::new(self.config.protocol)
            .with_max_requests_per_block(self.config.max_requests_per_block)
            .with_admission(self.config.admission)
            .with_pending_cap(self.config.pending_cap)
            .with_defense(self.config.defense);
        let (mut recovered, report) = hook(
            ServerId::new(server as u32),
            shim_config,
            &self.registry,
            store,
        )
        .expect("recovery from durable store succeeds");
        let _ = recovered.poll_indications();
        let _ = recovered.drain_observed();
        if let (Some(every), Some(install)) = (self.snapshot_every, self.snapshot_install) {
            install(&mut recovered, every);
        }
        self.servers[server] = Server::Correct(Box::new(recovered));
        self.recoveries
            .push((now, ServerId::new(server as u32), report));
    }

    fn route_commands(&mut self, origin: usize, commands: Vec<NetCommand>, now: TimeMs) {
        for command in commands {
            match command {
                NetCommand::Broadcast { message } => {
                    for target in 0..self.config.n {
                        if target != origin {
                            self.send(origin, target, message.clone(), now);
                        }
                    }
                }
                NetCommand::SendTo { to, message } => {
                    self.send(origin, to.index(), message, now);
                }
            }
        }
    }

    fn send(&mut self, from: usize, to: usize, message: NetMessage, now: TimeMs) {
        let is_block = matches!(message, NetMessage::Block(_));
        let is_fwd = matches!(message, NetMessage::FwdRequest(_));
        // `wire_len` is O(1) off the cached block bytes, and the message
        // clone behind us (broadcast fan-out) was a reference-count bump —
        // the simulated wire path never re-encodes a block.
        self.net.record_send(message.wire_len(), is_block, is_fwd);
        let dropped = self.config.network.drops(&mut self.rng, from, to, now);
        self.net.record_outcome(dropped);
        if dropped {
            return;
        }
        let delay = self.config.network.delay(&mut self.rng);
        self.queue.schedule(
            now + delay,
            Event::Deliver {
                to,
                from: ServerId::new(from as u32),
                message,
            },
        );
    }

    fn collect_deliveries(&mut self, server: usize, now: TimeMs) {
        if let Server::Correct(shim) = &mut self.servers[server] {
            for (label, indication) in shim.poll_indications() {
                self.deliveries.push(Delivery {
                    at: now,
                    server: ServerId::new(server as u32),
                    label,
                    indication,
                });
            }
        }
    }
}

impl<P> Simulation<P>
where
    P: SnapshotProtocol,
    P::Message: WireEncode + WireDecode,
{
    /// Enables periodic interpreter snapshots (one every `every`
    /// interpreted blocks) on every correct server with an attached store,
    /// and switches durable-crash recovery to the snapshot catch-up path:
    /// the restarted server restores interpreter state from the latest
    /// snapshot and replays only the journal suffix past it.
    ///
    /// Call after [`Simulation::with_durable_store`].
    pub fn with_durable_snapshots(mut self, every: u64) -> Self {
        for server in &mut self.servers {
            if let Server::Correct(shim) = server {
                shim.enable_snapshots(every);
            }
        }
        self.snapshot_every = Some(every);
        self.snapshot_install = Some(|shim: &mut Shim<P>, every: u64| shim.enable_snapshots(every));
        self.recover_hook = Some(Shim::recover_from_store_with_snapshots as RecoverFn<P>);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagbft_protocols::{Brb, BrbIndication, BrbRequest};

    fn broadcast_injection(
        at: TimeMs,
        server: usize,
        label: u64,
        value: u64,
    ) -> Injection<Brb<u64>> {
        Injection {
            at,
            server,
            label: Label::new(label),
            request: BrbRequest::Broadcast(value),
        }
    }

    #[test]
    fn injection_at_rejoin_instant_reaches_recovered_server() {
        // A request injected at exactly `rejoin_at` must land on the
        // recovered shim, not on the still-down server: the rejoin event
        // precedes same-instant injections in the queue.
        let config = SimConfig::new(4)
            .with_max_time(60_000)
            .with_role(
                0,
                Role::Restart {
                    crash_at: 100,
                    rejoin_at: 500,
                },
            )
            .with_stop_after_deliveries(4);
        let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
        sim.inject(broadcast_injection(500, 0, 1, 9));
        let outcome = sim.run();
        assert_eq!(outcome.deliveries.len(), 4, "request survived the rejoin");
        for delivery in &outcome.deliveries {
            assert_eq!(delivery.indication, BrbIndication::Deliver(9));
        }
    }

    #[test]
    fn brb_all_deliver_over_dag() {
        let config = SimConfig::new(4)
            .with_max_time(5_000)
            .with_stop_after_deliveries(4);
        let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
        sim.inject(broadcast_injection(0, 0, 1, 42));
        let outcome = sim.run();
        assert_eq!(outcome.deliveries.len(), 4);
        for delivery in &outcome.deliveries {
            assert_eq!(delivery.indication, BrbIndication::Deliver(42));
        }
        // One delivery per server.
        let servers: std::collections::BTreeSet<_> =
            outcome.deliveries.iter().map(|d| d.server).collect();
        assert_eq!(servers.len(), 4);
    }

    #[test]
    fn runs_are_reproducible() {
        let run = || {
            let config = SimConfig::new(4)
                .with_max_time(3_000)
                .with_stop_after_deliveries(4);
            let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
            sim.inject(broadcast_injection(0, 2, 9, 7));
            let outcome = sim.run();
            (
                outcome.finished_at,
                outcome.net.messages_sent,
                outcome.net.bytes_sent,
                outcome
                    .deliveries
                    .iter()
                    .map(|d| (d.at, d.server.index()))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seed_different_schedule() {
        let run = |seed| {
            let config = SimConfig::new(4)
                .with_seed(seed)
                .with_network(NetworkModel {
                    latency: crate::net::Latency::Uniform { min: 5, max: 200 },
                    ..NetworkModel::default()
                })
                .with_max_time(5_000)
                .with_stop_after_deliveries(4);
            let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
            sim.inject(broadcast_injection(0, 0, 1, 7));
            let outcome = sim.run();
            (
                outcome.deliveries.iter().map(|d| d.at).collect::<Vec<_>>(),
                outcome.net.messages_sent,
                outcome.net.bytes_sent,
            )
        };
        // Latencies are sampled differently; the trace shifts.
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn silent_byzantine_does_not_stop_brb() {
        let config = SimConfig::new(4)
            .with_max_time(10_000)
            .with_role(3, Role::Silent)
            .with_stop_after_deliveries(3);
        let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
        sim.inject(broadcast_injection(0, 0, 1, 5));
        let outcome = sim.run();
        // The three correct servers deliver.
        assert_eq!(outcome.deliveries.len(), 3);
        assert!(outcome
            .deliveries
            .iter()
            .all(|d| d.indication == BrbIndication::Deliver(5)));
    }

    #[test]
    fn crash_after_start_retains_other_deliveries() {
        let config = SimConfig::new(4)
            .with_max_time(10_000)
            .with_role(3, Role::Crash { at: 1 })
            .with_stop_after_deliveries(3);
        let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
        sim.inject(broadcast_injection(0, 0, 1, 5));
        let outcome = sim.run();
        assert_eq!(outcome.deliveries.len(), 3);
        assert!(outcome.dag(3).is_none(), "crashed server view");
    }

    #[test]
    fn lossy_network_still_delivers_via_fwd() {
        let config = SimConfig::new(4)
            .with_max_time(30_000)
            .with_network(NetworkModel::default().with_drop_rate(0.3))
            .with_stop_after_deliveries(4);
        let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
        sim.inject(broadcast_injection(0, 0, 1, 11));
        let outcome = sim.run();
        assert_eq!(outcome.deliveries.len(), 4, "FWD recovery failed");
        assert!(outcome.net.messages_dropped > 0, "loss actually happened");
    }

    #[test]
    fn equivocator_cannot_break_brb_consistency() {
        let config = SimConfig::new(4)
            .with_max_time(10_000)
            .with_role(0, Role::Equivocate { at_seq: 0 })
            .with_stop_after_deliveries(3);
        let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
        // A correct server broadcasts; the equivocator splits the DAG view.
        sim.inject(broadcast_injection(0, 1, 1, 99));
        let outcome = sim.run();
        let values: std::collections::BTreeSet<u64> = outcome
            .deliveries
            .iter()
            .map(|d| match &d.indication {
                BrbIndication::Deliver(v) => *v,
            })
            .collect();
        assert!(values.len() <= 1, "consistency violated");
        // Correct servers detected the equivocation in their DAGs.
        let correct = outcome.correct_servers();
        let detected = correct.iter().any(|i| {
            !outcome
                .shim(*i)
                .dag()
                .equivocations(ServerId::new(0))
                .is_empty()
        });
        assert!(detected, "equivocation visible in some correct DAG");
    }

    #[test]
    fn injections_recorded_for_latency() {
        let config = SimConfig::new(4)
            .with_max_time(5_000)
            .with_stop_after_deliveries(4);
        let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
        sim.inject(broadcast_injection(100, 0, 1, 1));
        let outcome = sim.run();
        let latencies = outcome.latencies_for(Label::new(1));
        assert_eq!(latencies.len(), 4);
        assert!(latencies.iter().all(|l| *l > 0));
    }

    #[test]
    fn interpreter_footprint_aggregates_correct_servers() {
        let config = SimConfig::new(4)
            .with_max_time(5_000)
            .with_role(3, Role::Crash { at: 1 })
            .with_stop_after_deliveries(3);
        let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
        sim.inject(broadcast_injection(0, 0, 1, 42));
        let outcome = sim.run();
        let total = outcome.interpreter_footprint();
        // Only the three correct servers contribute.
        let per_server: usize = outcome
            .correct_servers()
            .iter()
            .map(|i| outcome.shim(*i).footprint().blocks)
            .sum();
        assert_eq!(total.blocks, per_server);
        assert!(total.blocks > 0);
        assert!(total.unique_instances <= total.instances);
    }

    #[test]
    fn admission_modes_agree_and_batch_counters_surface() {
        let run = |mode: AdmissionMode| {
            let config = SimConfig::new(4)
                .with_max_time(5_000)
                .with_admission(mode)
                .with_stop_after_deliveries(4);
            let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
            sim.inject(broadcast_injection(0, 0, 1, 6));
            sim.run()
        };
        let index = run(AdmissionMode::Index);
        let scan = run(AdmissionMode::Scan);
        let parallel = run(AdmissionMode::Parallel { workers: 2 });
        for outcome in [&scan, &parallel] {
            assert_eq!(index.deliveries.len(), outcome.deliveries.len());
            assert_eq!(index.net.bytes_sent, outcome.net.bytes_sent);
            assert_eq!(index.signatures, outcome.signatures);
            // The verification *total* is mode-independent; only the share
            // that went through batched waves differs.
            assert_eq!(index.verifications, outcome.verifications);
        }
        assert_eq!(scan.verify_batches, 0);
        assert_eq!(scan.batched_verifications, 0);
        for outcome in [&index, &parallel] {
            assert!(outcome.verify_batches > 0);
            assert!(outcome.batched_verifications > 0);
            assert!(outcome.batched_verifications <= outcome.verifications);
        }
    }

    #[test]
    fn burst_ingest_reaches_same_protocol_outcomes() {
        // Burst delivery may reorder how blocks get referenced, but the
        // protocol-level outcome — who delivers what — is unchanged, on
        // clean and lossy networks.
        for drop_rate in [0.0, 0.3] {
            let run = |ingest: IngestMode| {
                let config = SimConfig::new(4)
                    .with_max_time(30_000)
                    .with_network(NetworkModel::default().with_drop_rate(drop_rate))
                    .with_ingest(ingest)
                    .with_stop_after_deliveries(4);
                let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
                sim.inject(broadcast_injection(0, 0, 1, 77));
                sim.run()
            };
            let per_message = run(IngestMode::PerMessage);
            let bursty = run(IngestMode::Burst { max: 1024 });
            assert_eq!(per_message.deliveries.len(), bursty.deliveries.len());
            for outcome in [&per_message, &bursty] {
                assert!(outcome
                    .deliveries
                    .iter()
                    .all(|d| d.indication == BrbIndication::Deliver(77)));
                for index in outcome.correct_servers() {
                    assert!(outcome.shim(index).dag().check_invariants());
                }
            }
            // Burst ingest actually exercised the bracket machinery.
            assert!(bursty.wave_stats.bursts > 0, "drop {drop_rate}");
            assert_eq!(per_message.wave_stats.bursts, 0);
        }
    }

    #[test]
    fn burst_ingest_is_engine_equivalent_and_reproducible() {
        let run = |mode: AdmissionMode| {
            let config = SimConfig::new(4)
                .with_max_time(10_000)
                .with_admission(mode)
                .with_ingest(IngestMode::Burst { max: 256 })
                .with_stop_after_deliveries(4);
            let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
            sim.inject(broadcast_injection(0, 0, 1, 6));
            sim.run()
        };
        let index = run(AdmissionMode::Index);
        let scan = run(AdmissionMode::Scan);
        let parallel = run(AdmissionMode::Parallel { workers: 2 });
        for outcome in [&scan, &parallel] {
            assert_eq!(index.deliveries.len(), outcome.deliveries.len());
            assert_eq!(index.net.bytes_sent, outcome.net.bytes_sent);
            assert_eq!(index.signatures, outcome.signatures);
            assert_eq!(index.verifications, outcome.verifications);
            // Burst brackets are an ingest property: identical counts
            // whichever engine runs inside them.
            assert_eq!(index.wave_stats.bursts, outcome.wave_stats.bursts);
            assert_eq!(
                index.wave_stats.burst_blocks,
                outcome.wave_stats.burst_blocks
            );
        }
        // Wave structure matches between the batching engines; the scan
        // oracle never batches, so the crypto layer saw bursts only from
        // index/parallel servers.
        assert_eq!(index.wave_stats.waves, parallel.wave_stats.waves);
        assert_eq!(scan.wave_stats.waves, 0);
        assert_eq!(scan.verify_bursts, 0);
        for outcome in [&index, &parallel] {
            assert!(outcome.verify_bursts > 0);
            assert!(outcome.burst_verifications <= outcome.verifications);
        }
        // Reproducibility: same seed, same burst trace.
        let again = run(AdmissionMode::Index);
        assert_eq!(index.net.bytes_sent, again.net.bytes_sent);
        assert_eq!(
            index.deliveries.iter().map(|d| d.at).collect::<Vec<_>>(),
            again.deliveries.iter().map(|d| d.at).collect::<Vec<_>>()
        );
    }

    #[test]
    fn hostile_burst_scenarios_stay_safe_under_burst_ingest() {
        // Equivocation + loss + a capped pending buffer, delivered in
        // bursts: BRB consistency and DAG invariants must hold.
        let config = SimConfig::new(4)
            .with_max_time(20_000)
            .with_network(NetworkModel::default().with_drop_rate(0.2))
            .with_role(0, Role::Equivocate { at_seq: 0 })
            .with_ingest(IngestMode::Burst { max: 64 })
            .with_pending_cap(8)
            .with_stop_after_deliveries(3);
        let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
        sim.inject(broadcast_injection(0, 1, 1, 99));
        let outcome = sim.run();
        let values: std::collections::BTreeSet<u64> = outcome
            .deliveries
            .iter()
            .map(|d| match &d.indication {
                BrbIndication::Deliver(v) => *v,
            })
            .collect();
        assert!(values.len() <= 1, "consistency violated");
        for index in outcome.correct_servers() {
            assert!(outcome.shim(index).dag().check_invariants());
            assert!(outcome.shim(index).gossip().pending_len() <= 8);
        }
    }

    #[test]
    fn durable_crash_replays_journal_and_keeps_delivering() {
        let config = SimConfig::new(4).with_max_time(2_000);
        let mut sim: Simulation<Brb<u64>> = Simulation::new(config).with_durable_store(
            1,
            Box::new(dagbft_core::MemoryStore::new()),
            250,
        );
        sim.inject(broadcast_injection(0, 0, 1, 42));
        let outcome = sim.run();
        assert_eq!(outcome.recoveries.len(), 1);
        let (at, server, report) = outcome.recoveries[0];
        assert_eq!(at, 250);
        assert_eq!(server, ServerId::new(1));
        // Genesis replay: no snapshot, the whole journal re-interprets.
        assert_eq!(report.snapshot_covered, 0);
        assert_eq!(report.replayed_blocks, report.journal_blocks);
        assert!(report.journal_blocks > 0, "blocks were journaled pre-crash");
        // All four servers (including the crashed one) deliver exactly once.
        let deliveries: Vec<_> = outcome
            .deliveries
            .iter()
            .filter(|d| d.indication == BrbIndication::Deliver(42))
            .collect();
        assert_eq!(deliveries.len(), 4);
        let servers: std::collections::BTreeSet<_> = deliveries.iter().map(|d| d.server).collect();
        assert_eq!(servers.len(), 4);
        // The store stayed attached through recovery and kept journaling.
        assert!(outcome.shim(1).store_attached());
        assert!(outcome.shim(1).store_error().is_none());
    }

    #[test]
    fn durable_crash_with_snapshots_replays_only_the_suffix() {
        let config = SimConfig::new(4).with_max_time(2_000);
        let mut sim: Simulation<Brb<u64>> = Simulation::new(config)
            .with_durable_store(2, Box::new(dagbft_core::MemoryStore::new()), 600)
            .with_durable_snapshots(4);
        sim.inject(broadcast_injection(0, 0, 1, 7));
        let outcome = sim.run();
        assert_eq!(outcome.recoveries.len(), 1);
        let (_, server, report) = outcome.recoveries[0];
        assert_eq!(server, ServerId::new(2));
        // Snapshot catch-up: only the suffix past the snapshot replays.
        assert!(report.snapshot_covered > 0, "snapshot restored");
        assert!(
            report.replayed_blocks < report.journal_blocks,
            "replayed {} of {}",
            report.replayed_blocks,
            report.journal_blocks
        );
        assert_eq!(
            report.snapshot_covered + report.replayed_blocks,
            report.journal_blocks
        );
        assert_eq!(outcome.deliveries.len(), 4);
    }

    #[test]
    fn wire_traffic_is_blocks_and_fwds_only() {
        let config = SimConfig::new(4)
            .with_max_time(2_000)
            .with_stop_after_deliveries(4);
        let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
        sim.inject(broadcast_injection(0, 0, 1, 42));
        let outcome = sim.run();
        assert_eq!(
            outcome.net.messages_sent,
            outcome.net.blocks_sent + outcome.net.fwd_sent,
            "no protocol messages ever touch the wire"
        );
    }
}
