//! Server identity.

use std::fmt;

use dagbft_codec::{DecodeError, Reader, WireDecode, WireEncode};

/// Identity of a server in `Srvrs` (§2 of the paper).
///
/// The set of servers is fixed and known to everyone; identities are dense
/// indices `0..n`, which keeps configuration maps simple and deterministic.
///
/// # Examples
///
/// ```
/// use dagbft_crypto::ServerId;
///
/// let id = ServerId::new(2);
/// assert_eq!(id.index(), 2);
/// assert_eq!(format!("{id}"), "s2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(u32);

impl ServerId {
    /// Creates the identity with dense index `index`.
    pub fn new(index: u32) -> Self {
        ServerId(index)
    }

    /// The dense index of this server in `0..n`.
    pub fn index(&self) -> usize {
        self.0 as usize
    }

    /// Returns an iterator over all `n` server identities.
    pub fn all(n: usize) -> impl Iterator<Item = ServerId> + Clone {
        (0..n as u32).map(ServerId)
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Debug for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl WireEncode for ServerId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl WireDecode for ServerId {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ServerId(u32::decode(reader)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_yields_dense_indices() {
        let ids: Vec<_> = ServerId::all(3).collect();
        assert_eq!(
            ids,
            vec![ServerId::new(0), ServerId::new(1), ServerId::new(2)]
        );
    }

    #[test]
    fn display_format() {
        assert_eq!(ServerId::new(7).to_string(), "s7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ServerId::new(0) < ServerId::new(1));
    }
}
