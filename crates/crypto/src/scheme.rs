//! The scheme-agnostic signature abstraction.
//!
//! [`SignatureScheme`] is the seam [`crate::KeyRegistry`],
//! [`crate::Signer`], [`crate::Verifier`], and [`crate::BatchVerifier`]
//! are generic over. Two implementations ship:
//!
//! * [`HmacScheme`] — the original HMAC-SHA256 stand-in (pairwise
//!   symmetric keys, optionally cost-calibrated). Deterministic, cheap,
//!   and exactly as unforgeable as HMAC: the oracle the determinism and
//!   equivalence tests cross-check real schemes against.
//! * [`Ed25519Scheme`] — real RFC 8032 ed25519 over the in-tree
//!   [`crate::curve`], whose `verify_batch` folds a whole wave into one
//!   random-linear-combination multi-scalar multiplication.
//!
//! [`AnyScheme`] is the runtime-dispatched sum of the two, and the
//! default type parameter everywhere: existing call sites stay
//! non-generic and pick a scheme with a [`SchemeKind`] knob, while
//! scheme-specific code can instantiate `KeyRegistry<Ed25519Scheme>`
//! directly.

use rand::rngs::StdRng;
use rand::Rng;

use crate::ed25519;
use crate::sig::{Signature, SignedDigest};
use crate::HmacKey;

/// A signature scheme: key generation, signing, and (batch)
/// verification over 64-byte wire signatures.
///
/// Implementations must be deterministic given the same keys and
/// messages — whole-simulation reproducibility hangs on it.
pub trait SignatureScheme: Clone + Send + Sync + std::fmt::Debug + 'static {
    /// Per-server signing key material.
    type SecretKey: Clone + Send + Sync + std::fmt::Debug;
    /// Per-server verification key material.
    type PublicKey: Clone + Send + Sync + std::fmt::Debug;

    /// Short scheme identifier ("hmac", "ed25519") for benchmarks and
    /// fingerprints.
    fn name(&self) -> &'static str;

    /// Derives one keypair from the registry's seeded generator.
    fn keygen(&self, rng: &mut StdRng) -> (Self::SecretKey, Self::PublicKey);

    /// Signs `message`.
    fn sign(&self, secret: &Self::SecretKey, message: &[u8]) -> Signature;

    /// Checks `signature` over `message` under `public`.
    fn verify(&self, public: &Self::PublicKey, message: &[u8], signature: &Signature) -> bool;

    /// [`SignatureScheme::verify`] without per-key caches (HMAC key
    /// schedules, decompressed curve points): the pre-hoist baseline
    /// benchmarks compare against.
    fn verify_cold(&self, public: &Self::PublicKey, message: &[u8], signature: &Signature) -> bool;

    /// Verifies a batch in one pass, returning per-item verdicts in
    /// input order; `publics` is indexed by `SignedDigest::claimed`, and
    /// out-of-range claims verify to `false`. The default is the serial
    /// loop; schemes with real amortization override it.
    fn verify_batch(&self, publics: &[Self::PublicKey], items: &[SignedDigest]) -> Vec<bool> {
        items
            .iter()
            .map(|item| match publics.get(item.claimed.index()) {
                Some(public) => self.verify(public, item.digest.as_bytes(), &item.signature),
                None => false,
            })
            .collect()
    }
}

/// Which concrete scheme an [`AnyScheme`] registry runs — the
/// configuration knob simulations and clusters expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchemeKind {
    /// HMAC-SHA256 stand-in (cost 1): the cheap deterministic oracle.
    #[default]
    Hmac,
    /// RFC 8032 ed25519 with multi-scalar batch verification.
    Ed25519,
}

impl SchemeKind {
    /// Short identifier, matching [`SignatureScheme::name`].
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Hmac => "hmac",
            SchemeKind::Ed25519 => "ed25519",
        }
    }
}

/// HMAC key material: the raw key plus its precomputed schedule.
#[derive(Clone)]
pub struct HmacKeyPair {
    raw: [u8; 32],
    schedule: HmacKey,
}

impl std::fmt::Debug for HmacKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "HmacKeyPair(…)")
    }
}

/// The HMAC-SHA256 stand-in scheme (see `DESIGN.md` §3): "signatures"
/// are MAC tags under pairwise symmetric keys, optionally chained
/// `cost` times to price operations like the asymmetric schemes it
/// stood in for before [`Ed25519Scheme`] landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HmacScheme {
    /// MAC chain length per sign/verify; 1 = plain HMAC.
    pub cost: u32,
}

impl HmacScheme {
    /// A scheme with the given calibrated cost (clamped to ≥ 1).
    pub fn new(cost: u32) -> Self {
        HmacScheme { cost: cost.max(1) }
    }

    /// One signature operation at the calibrated cost: the MAC re-applied
    /// to its own output `cost − 1` times.
    fn chained_mac(&self, schedule: &HmacKey, message: &[u8]) -> crate::Digest {
        let mut tag = schedule.mac(message);
        for _ in 1..self.cost {
            tag = schedule.mac32(tag.as_bytes());
        }
        tag
    }

    /// [`HmacScheme::chained_mac`] over the 32-byte fast path.
    fn chained_mac32(&self, schedule: &HmacKey, message: &[u8; 32]) -> crate::Digest {
        let mut tag = schedule.mac32(message);
        for _ in 1..self.cost {
            tag = schedule.mac32(tag.as_bytes());
        }
        tag
    }
}

impl Default for HmacScheme {
    fn default() -> Self {
        HmacScheme::new(1)
    }
}

impl SignatureScheme for HmacScheme {
    type SecretKey = HmacKeyPair;
    type PublicKey = HmacKeyPair;

    fn name(&self) -> &'static str {
        "hmac"
    }

    fn keygen(&self, rng: &mut StdRng) -> (HmacKeyPair, HmacKeyPair) {
        let mut raw = [0u8; 32];
        rng.fill(&mut raw);
        let pair = HmacKeyPair {
            raw,
            schedule: HmacKey::new(&raw),
        };
        (pair.clone(), pair)
    }

    fn sign(&self, secret: &HmacKeyPair, message: &[u8]) -> Signature {
        Signature::from_tag(self.chained_mac(&secret.schedule, message))
    }

    fn verify(&self, public: &HmacKeyPair, message: &[u8], signature: &Signature) -> bool {
        signature.matches_tag(&self.chained_mac(&public.schedule, message))
    }

    fn verify_cold(&self, public: &HmacKeyPair, message: &[u8], signature: &Signature) -> bool {
        // Re-derive the padded key blocks on every chain step — the
        // per-call price schedule hoisting removed.
        let mut tag = crate::hmac_sha256(&public.raw, message);
        for _ in 1..self.cost {
            tag = crate::hmac_sha256(&public.raw, tag.as_bytes());
        }
        signature.matches_tag(&tag)
    }

    fn verify_batch(&self, publics: &[HmacKeyPair], items: &[SignedDigest]) -> Vec<bool> {
        items
            .iter()
            .map(|item| match publics.get(item.claimed.index()) {
                Some(public) => item
                    .signature
                    .matches_tag(&self.chained_mac32(&public.schedule, item.digest.as_bytes())),
                None => false,
            })
            .collect()
    }
}

/// RFC 8032 ed25519 (see [`crate::ed25519`]): strict verification,
/// cached decompressed public keys, and one multi-scalar multiplication
/// per verified batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ed25519Scheme;

impl SignatureScheme for Ed25519Scheme {
    type SecretKey = ed25519::SecretKey;
    type PublicKey = ed25519::PublicKey;

    fn name(&self) -> &'static str {
        "ed25519"
    }

    fn keygen(&self, rng: &mut StdRng) -> (ed25519::SecretKey, ed25519::PublicKey) {
        let mut seed = [0u8; 32];
        rng.fill(&mut seed);
        ed25519::keygen(&seed)
    }

    fn sign(&self, secret: &ed25519::SecretKey, message: &[u8]) -> Signature {
        Signature::from_bytes(ed25519::sign(secret, message))
    }

    fn verify(&self, public: &ed25519::PublicKey, message: &[u8], signature: &Signature) -> bool {
        ed25519::verify(public, message, signature.as_bytes())
    }

    fn verify_cold(
        &self,
        public: &ed25519::PublicKey,
        message: &[u8],
        signature: &Signature,
    ) -> bool {
        ed25519::verify_cold(public.as_bytes(), message, signature.as_bytes())
    }

    fn verify_batch(&self, publics: &[ed25519::PublicKey], items: &[SignedDigest]) -> Vec<bool> {
        // Items claiming unknown identities fail outright and stay out
        // of the combined equation.
        let mut verdicts = vec![false; items.len()];
        let known: Vec<(usize, ed25519::BatchItem<'_>)> = items
            .iter()
            .enumerate()
            .filter_map(|(index, item)| {
                publics.get(item.claimed.index()).map(|public| {
                    (
                        index,
                        ed25519::BatchItem {
                            public,
                            message: item.digest.as_bytes(),
                            signature: item.signature.as_bytes(),
                        },
                    )
                })
            })
            .collect();
        let batch: Vec<ed25519::BatchItem<'_>> = known
            .iter()
            .map(|(_, item)| ed25519::BatchItem {
                public: item.public,
                message: item.message,
                signature: item.signature,
            })
            .collect();
        for ((index, _), verdict) in known.iter().zip(ed25519::verify_batch(&batch)) {
            verdicts[*index] = verdict;
        }
        verdicts
    }
}

/// Runtime-dispatched sum of the shipped schemes — the default type
/// parameter of [`crate::KeyRegistry`] and its handles, so scheme
/// selection is a run-time [`SchemeKind`] knob rather than a generic
/// parameter rippling through gossip, shim, and transport.
#[derive(Debug, Clone)]
pub enum AnyScheme {
    /// The HMAC-SHA256 stand-in.
    Hmac(HmacScheme),
    /// RFC 8032 ed25519.
    Ed25519(Ed25519Scheme),
}

impl AnyScheme {
    /// The scheme a [`SchemeKind`] selects (HMAC at cost 1).
    pub fn from_kind(kind: SchemeKind) -> AnyScheme {
        match kind {
            SchemeKind::Hmac => AnyScheme::Hmac(HmacScheme::default()),
            SchemeKind::Ed25519 => AnyScheme::Ed25519(Ed25519Scheme),
        }
    }
}

/// Secret key material for [`AnyScheme`].
#[derive(Debug, Clone)]
pub enum AnySecretKey {
    /// HMAC key material.
    Hmac(HmacKeyPair),
    /// ed25519 key material.
    Ed25519(ed25519::SecretKey),
}

/// Public key material for [`AnyScheme`].
#[derive(Debug, Clone)]
pub enum AnyPublicKey {
    /// HMAC key material (symmetric: the same key verifies).
    Hmac(HmacKeyPair),
    /// ed25519 compressed key with cached decompression.
    Ed25519(ed25519::PublicKey),
}

impl SignatureScheme for AnyScheme {
    type SecretKey = AnySecretKey;
    type PublicKey = AnyPublicKey;

    fn name(&self) -> &'static str {
        match self {
            AnyScheme::Hmac(scheme) => scheme.name(),
            AnyScheme::Ed25519(scheme) => scheme.name(),
        }
    }

    fn keygen(&self, rng: &mut StdRng) -> (AnySecretKey, AnyPublicKey) {
        match self {
            AnyScheme::Hmac(scheme) => {
                let (secret, public) = scheme.keygen(rng);
                (AnySecretKey::Hmac(secret), AnyPublicKey::Hmac(public))
            }
            AnyScheme::Ed25519(scheme) => {
                let (secret, public) = scheme.keygen(rng);
                (AnySecretKey::Ed25519(secret), AnyPublicKey::Ed25519(public))
            }
        }
    }

    fn sign(&self, secret: &AnySecretKey, message: &[u8]) -> Signature {
        match (self, secret) {
            (AnyScheme::Hmac(scheme), AnySecretKey::Hmac(secret)) => scheme.sign(secret, message),
            (AnyScheme::Ed25519(scheme), AnySecretKey::Ed25519(secret)) => {
                scheme.sign(secret, message)
            }
            _ => unreachable!("secret key from a different scheme's registry"),
        }
    }

    fn verify(&self, public: &AnyPublicKey, message: &[u8], signature: &Signature) -> bool {
        match (self, public) {
            (AnyScheme::Hmac(scheme), AnyPublicKey::Hmac(public)) => {
                scheme.verify(public, message, signature)
            }
            (AnyScheme::Ed25519(scheme), AnyPublicKey::Ed25519(public)) => {
                scheme.verify(public, message, signature)
            }
            _ => false,
        }
    }

    fn verify_cold(&self, public: &AnyPublicKey, message: &[u8], signature: &Signature) -> bool {
        match (self, public) {
            (AnyScheme::Hmac(scheme), AnyPublicKey::Hmac(public)) => {
                scheme.verify_cold(public, message, signature)
            }
            (AnyScheme::Ed25519(scheme), AnyPublicKey::Ed25519(public)) => {
                scheme.verify_cold(public, message, signature)
            }
            _ => false,
        }
    }

    fn verify_batch(&self, publics: &[AnyPublicKey], items: &[SignedDigest]) -> Vec<bool> {
        match self {
            AnyScheme::Hmac(scheme) => {
                let keys: Vec<HmacKeyPair> = publics
                    .iter()
                    .map(|key| match key {
                        AnyPublicKey::Hmac(pair) => pair.clone(),
                        AnyPublicKey::Ed25519(_) => {
                            unreachable!("public key from a different scheme's registry")
                        }
                    })
                    .collect();
                scheme.verify_batch(&keys, items)
            }
            AnyScheme::Ed25519(scheme) => {
                let keys: Vec<ed25519::PublicKey> = publics
                    .iter()
                    .map(|key| match key {
                        AnyPublicKey::Ed25519(public) => public.clone(),
                        AnyPublicKey::Hmac(_) => {
                            unreachable!("public key from a different scheme's registry")
                        }
                    })
                    .collect();
                scheme.verify_batch(&keys, items)
            }
        }
    }
}
