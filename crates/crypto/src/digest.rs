//! 32-byte digest newtype.

use std::fmt;

use dagbft_codec::{DecodeError, Reader, WireDecode, WireEncode};

/// A 256-bit digest, the output of [`crate::sha256`].
///
/// Block references (`ref(B)` in Definition 3.1) are digests over a block's
/// canonical encoding. The type is deliberately opaque: construct one by
/// hashing, or with [`Digest::from_bytes`] when reading from the wire.
///
/// # Examples
///
/// ```
/// use dagbft_crypto::sha256;
///
/// let digest = sha256(b"abc");
/// assert_eq!(digest.as_bytes().len(), 32);
/// assert!(format!("{digest}").starts_with("ba7816bf"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest([u8; 32]);

impl Digest {
    /// The all-zero digest, used as a placeholder (never produced by SHA-256
    /// on practical inputs).
    pub const ZERO: Digest = Digest([0; 32]);

    /// Wraps raw digest bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }

    /// Returns the digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Renders the full digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        let mut out = String::with_capacity(64);
        for byte in &self.0 {
            out.push_str(&format!("{byte:02x}"));
        }
        out
    }

    /// First eight hex characters, for compact display in logs and graphs.
    pub fn short_hex(&self) -> String {
        self.to_hex()[..8].to_owned()
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", self.short_hex())
    }
}

impl WireEncode for Digest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl WireDecode for Digest {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Digest(<[u8; 32]>::decode(reader)?))
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagbft_codec::{decode_from_slice, encode_to_vec};

    #[test]
    fn hex_roundtrip_shape() {
        let digest = Digest::from_bytes([0xab; 32]);
        assert_eq!(digest.to_hex(), "ab".repeat(32));
        assert_eq!(digest.short_hex(), "abababab");
    }

    #[test]
    fn wire_roundtrip() {
        let digest = Digest::from_bytes([7; 32]);
        let bytes = encode_to_vec(&digest);
        assert_eq!(bytes.len(), 32);
        assert_eq!(decode_from_slice::<Digest>(&bytes).unwrap(), digest);
    }

    #[test]
    fn debug_is_nonempty_and_short() {
        let text = format!("{:?}", Digest::ZERO);
        assert!(text.contains("00000000"));
        assert!(text.len() < 32);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let low = Digest::from_bytes([0; 32]);
        let mut high_bytes = [0; 32];
        high_bytes[0] = 1;
        let high = Digest::from_bytes(high_bytes);
        assert!(low < high);
    }
}
