//! HMAC-SHA256 (RFC 2104), the MAC underlying our signature stand-in.
//!
//! Two entry points compute the same function:
//!
//! * [`hmac_sha256`] — the one-shot form, rebuilding the padded key blocks
//!   on every call. Retained verbatim as the *cold* path: it is what every
//!   per-block verification paid before key schedules were hoisted, and
//!   the `report_admission` bench pins the batched path's speedup against
//!   it.
//! * [`HmacKey`] — a precomputed key schedule: the SHA-256 midstates after
//!   absorbing the ipad/opad-xored key block. Building one costs the two
//!   pad compressions once; every subsequent MAC resumes from the
//!   midstates, halving the compression count for short messages and
//!   skipping the key-block setup entirely. [`crate::Verifier`] holds one
//!   schedule per server, so single and batched verification both reuse
//!   them.

use crate::sha256::compress;
use crate::{Digest, Sha256};

const BLOCK_SIZE: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block size are first hashed, exactly as
/// RFC 2104 prescribes; this is validated against the RFC 4231 test vectors
/// in this module's tests.
///
/// # Examples
///
/// ```
/// use dagbft_crypto::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"message");
/// assert_eq!(tag, hmac_sha256(b"key", b"message"));
/// assert_ne!(tag, hmac_sha256(b"other key", b"message"));
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut key_block = [0u8; BLOCK_SIZE];
    if key.len() > BLOCK_SIZE {
        let hashed = crate::sha256(key);
        key_block[..32].copy_from_slice(hashed.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ IPAD).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ OPAD).collect();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

/// A precomputed HMAC-SHA256 key schedule.
///
/// Holds the inner and outer SHA-256 midstates left after absorbing the
/// ipad/opad-xored key block, so MACs under the same key never re-derive
/// the padded key material. Equal to [`hmac_sha256`] bit-for-bit (see the
/// `schedule_matches_one_shot` test against the RFC 4231 vectors).
///
/// # Examples
///
/// ```
/// use dagbft_crypto::{hmac_sha256, HmacKey};
///
/// let key = HmacKey::new(b"key");
/// assert_eq!(key.mac(b"message"), hmac_sha256(b"key", b"message"));
/// ```
#[derive(Clone)]
pub struct HmacKey {
    /// SHA-256 state after compressing `key ⊕ ipad`.
    inner: [u32; 8],
    /// SHA-256 state after compressing `key ⊕ opad`.
    outer: [u32; 8],
}

impl HmacKey {
    /// Derives the schedule from a raw key (hashing keys longer than the
    /// block size first, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_SIZE];
        if key.len() > BLOCK_SIZE {
            let hashed = crate::sha256(key);
            key_block[..32].copy_from_slice(hashed.as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad_block = [0u8; BLOCK_SIZE];
        let mut opad_block = [0u8; BLOCK_SIZE];
        for i in 0..BLOCK_SIZE {
            ipad_block[i] = key_block[i] ^ IPAD;
            opad_block[i] = key_block[i] ^ OPAD;
        }
        let mut hasher = Sha256::new();
        hasher.update(&ipad_block);
        let inner = hasher.midstate();
        let mut hasher = Sha256::new();
        hasher.update(&opad_block);
        let outer = hasher.midstate();
        HmacKey { inner, outer }
    }

    /// Computes `HMAC-SHA256(key, message)` from the cached midstates.
    pub fn mac(&self, message: &[u8]) -> Digest {
        if message.len() == 32 {
            let mut msg = [0u8; 32];
            msg.copy_from_slice(message);
            return self.mac32(&msg);
        }
        let mut hasher = Sha256::from_midstate(self.inner, 1);
        hasher.update(message);
        self.finish_outer(hasher.finalize())
    }

    /// The hot path: a MAC over exactly 32 bytes — the size of every block
    /// signature's message, `ref(B)` (Definition 3.1). Both stages fit one
    /// compression each: the padded tail block is assembled directly,
    /// skipping the incremental hasher's buffering entirely.
    pub fn mac32(&self, message: &[u8; 32]) -> Digest {
        // Inner: 64 (key pad) + 32 (message) bytes total = 768 bits.
        let inner_digest = Self::one_block_tail(self.inner, message, 96 * 8);
        // Outer: 64 (key pad) + 32 (inner digest) bytes total.
        self.finish_outer(inner_digest)
    }

    /// Finishes the outer stage over a 32-byte inner digest.
    fn finish_outer(&self, inner_digest: Digest) -> Digest {
        Self::one_block_tail(self.outer, inner_digest.as_bytes(), 96 * 8)
    }

    /// Compresses the final padded block for a message whose tail is
    /// exactly 32 bytes: `tail · 0x80 · 0… · len_be64` fits one block.
    fn one_block_tail(midstate: [u32; 8], tail: &[u8; 32], bit_length: u64) -> Digest {
        let mut block = [0u8; 64];
        block[..32].copy_from_slice(tail);
        block[32] = 0x80;
        block[56..64].copy_from_slice(&bit_length.to_be_bytes());
        let mut state = midstate;
        compress(&mut state, &block);
        let mut out = [0u8; 32];
        for (i, word) in state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest::from_bytes(out)
    }
}

impl std::fmt::Debug for HmacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Midstates are key material; never print them.
        write!(f, "HmacKey(…)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: Digest) -> String {
        digest.to_hex()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2: short key ("Jefe").
    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex(hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20-byte 0xaa key, 50-byte 0xdd data.
    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        assert_eq!(
            hex(hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 4: 25-byte incrementing key, 50-byte 0xcd data.
    #[test]
    fn rfc4231_case_4() {
        let key: Vec<u8> = (1..=25).collect();
        let data = [0xcd; 50];
        assert_eq!(
            hex(hmac_sha256(&key, &data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    // RFC 4231 test case 6: 131-byte key (forces key hashing).
    #[test]
    fn rfc4231_case_6() {
        let key = [0xaa; 131];
        assert_eq!(
            hex(hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // RFC 4231 test case 7: 131-byte key and long data.
    #[test]
    fn rfc4231_case_7() {
        let key = [0xaa; 131];
        let data: &[u8] = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            hex(hmac_sha256(&key, data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }

    #[test]
    fn schedule_matches_one_shot() {
        // The hoisted key schedule is the same function as the cold path,
        // across the RFC 4231 key shapes and message lengths straddling
        // the one-compression fast path (0, 31, 32, 33, multi-block).
        let keys: [&[u8]; 4] = [b"Jefe", &[0x0b; 20], &[0xaa; 131], &[0x42; 64]];
        let messages: [&[u8]; 6] = [
            b"",
            &[7u8; 31],
            &[8u8; 32],
            &[9u8; 33],
            &[1u8; 64],
            &[2u8; 200],
        ];
        for key in keys {
            let schedule = HmacKey::new(key);
            for message in messages {
                assert_eq!(
                    schedule.mac(message),
                    hmac_sha256(key, message),
                    "key len {} message len {}",
                    key.len(),
                    message.len()
                );
            }
        }
    }

    #[test]
    fn mac32_equals_general_mac() {
        let schedule = HmacKey::new(b"k");
        let message = [0x5au8; 32];
        assert_eq!(schedule.mac32(&message), schedule.mac(&message));
        assert_eq!(schedule.mac32(&message), hmac_sha256(b"k", &message));
    }

    #[test]
    fn hmac_key_debug_hides_material() {
        assert_eq!(format!("{:?}", HmacKey::new(b"secret")), "HmacKey(…)");
    }

    #[test]
    fn key_exactly_block_size_is_used_verbatim() {
        let key = [0x42; 64];
        // Must not equal the tag under the hashed key, which would indicate
        // the >64 path was taken erroneously.
        let hashed_key = crate::sha256(key);
        assert_ne!(
            hmac_sha256(&key, b"m"),
            hmac_sha256(hashed_key.as_bytes(), b"m")
        );
    }
}
