//! HMAC-SHA256 (RFC 2104), the MAC underlying our signature stand-in.

use crate::{Digest, Sha256};

const BLOCK_SIZE: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block size are first hashed, exactly as
/// RFC 2104 prescribes; this is validated against the RFC 4231 test vectors
/// in this module's tests.
///
/// # Examples
///
/// ```
/// use dagbft_crypto::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"message");
/// assert_eq!(tag, hmac_sha256(b"key", b"message"));
/// assert_ne!(tag, hmac_sha256(b"other key", b"message"));
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut key_block = [0u8; BLOCK_SIZE];
    if key.len() > BLOCK_SIZE {
        let hashed = crate::sha256(key);
        key_block[..32].copy_from_slice(hashed.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ IPAD).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ OPAD).collect();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: Digest) -> String {
        digest.to_hex()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2: short key ("Jefe").
    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex(hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20-byte 0xaa key, 50-byte 0xdd data.
    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        assert_eq!(
            hex(hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 4: 25-byte incrementing key, 50-byte 0xcd data.
    #[test]
    fn rfc4231_case_4() {
        let key: Vec<u8> = (1..=25).collect();
        let data = [0xcd; 50];
        assert_eq!(
            hex(hmac_sha256(&key, &data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    // RFC 4231 test case 6: 131-byte key (forces key hashing).
    #[test]
    fn rfc4231_case_6() {
        let key = [0xaa; 131];
        assert_eq!(
            hex(hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // RFC 4231 test case 7: 131-byte key and long data.
    #[test]
    fn rfc4231_case_7() {
        let key = [0xaa; 131];
        let data: &[u8] = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            hex(hmac_sha256(&key, data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }

    #[test]
    fn key_exactly_block_size_is_used_verbatim() {
        let key = [0x42; 64];
        // Must not equal the tag under the hashed key, which would indicate
        // the >64 path was taken erroneously.
        let hashed_key = crate::sha256(key);
        assert_ne!(
            hmac_sha256(&key, b"m"),
            hmac_sha256(hashed_key.as_bytes(), b"m")
        );
    }
}
