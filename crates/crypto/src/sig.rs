//! Signature scheme stand-in: HMAC-SHA256 under a trusted key registry.
//!
//! The paper assumes a secure signature scheme whose failure probability is
//! zero (§2). In this reproduction, "signatures" are MACs under per-server
//! secret keys distributed by a trusted [`KeyRegistry`] at setup — the
//! classical pairwise-symmetric-key model. Within the simulation this gives
//! exactly the abstraction the paper assumes:
//!
//! * only server `s` (which holds `k_s`) can produce `sign(s, m)`;
//! * every server can verify, via the registry's verification handle;
//! * forging requires breaking HMAC-SHA256, treated as impossible.
//!
//! The economic property the paper leans on — *batch signatures*, one
//! signature per block instead of one per protocol message (§4) — is
//! preserved, and [`CryptoMetrics`] counts sign/verify operations so the
//! benchmarks can report it (experiment E6).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dagbft_codec::{DecodeError, Reader, WireDecode, WireEncode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{hmac_sha256, Digest, ServerId};

/// A per-server signing key.
#[derive(Clone)]
pub struct SecretKey([u8; 32]);

impl SecretKey {
    /// Creates a key from raw bytes (useful in tests).
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        SecretKey(bytes)
    }

    fn mac(&self, message: &[u8]) -> Digest {
        hmac_sha256(&self.0, message)
    }
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(…)")
    }
}

/// A signature over a message, produced by [`Signer::sign`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Signature(Digest);

impl Signature {
    /// A placeholder signature (all zeroes); never verifies.
    pub const NULL: Signature = Signature(Digest::ZERO);

    /// Wire size of a signature in bytes.
    pub const SIZE: usize = 32;

    /// Raw digest backing this signature.
    pub fn digest(&self) -> Digest {
        self.0
    }
}

impl WireEncode for Signature {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl WireDecode for Signature {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Signature(Digest::decode(reader)?))
    }
}

/// Counters for cryptographic operations, shared by all handles derived from
/// one [`KeyRegistry`].
///
/// Experiment E6 (signature batching) reads these to compare the embedding
/// against the direct point-to-point baseline.
#[derive(Debug, Default)]
pub struct CryptoMetrics {
    signs: AtomicU64,
    verifies: AtomicU64,
}

impl CryptoMetrics {
    /// Number of signing operations performed so far.
    pub fn signs(&self) -> u64 {
        self.signs.load(Ordering::Relaxed)
    }

    /// Number of verification operations performed so far.
    pub fn verifies(&self) -> u64 {
        self.verifies.load(Ordering::Relaxed)
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.signs.store(0, Ordering::Relaxed);
        self.verifies.store(0, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct RegistryInner {
    keys: Vec<SecretKey>,
    metrics: CryptoMetrics,
}

/// Trusted key setup for a fixed server set.
///
/// Generates one secret key per server; hands out [`Signer`] handles (one
/// per server, carrying only that server's key) and [`Verifier`] handles
/// (able to check any server's signature).
///
/// # Examples
///
/// ```
/// use dagbft_crypto::{KeyRegistry, ServerId};
///
/// let registry = KeyRegistry::generate(4, 42);
/// let signer = registry.signer(ServerId::new(3)).unwrap();
/// let sig = signer.sign(b"hello");
/// assert!(registry.verifier().verify(ServerId::new(3), b"hello", &sig));
/// ```
#[derive(Debug, Clone)]
pub struct KeyRegistry {
    inner: Arc<RegistryInner>,
}

impl KeyRegistry {
    /// Generates keys for `n` servers from a deterministic seed.
    ///
    /// Deterministic seeding keeps whole-simulation runs reproducible.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = (0..n)
            .map(|_| {
                let mut key = [0u8; 32];
                rng.fill(&mut key);
                SecretKey(key)
            })
            .collect();
        KeyRegistry {
            inner: Arc::new(RegistryInner {
                keys,
                metrics: CryptoMetrics::default(),
            }),
        }
    }

    /// Number of servers with keys in this registry.
    pub fn len(&self) -> usize {
        self.inner.keys.len()
    }

    /// Returns `true` if the registry holds no keys.
    pub fn is_empty(&self) -> bool {
        self.inner.keys.is_empty()
    }

    /// Returns the signing handle for `id`, or `None` for unknown servers.
    pub fn signer(&self, id: ServerId) -> Option<Signer> {
        let key = self.inner.keys.get(id.index())?.clone();
        Some(Signer {
            id,
            key,
            registry: self.inner.clone(),
        })
    }

    /// Returns a verification handle over all servers' keys.
    pub fn verifier(&self) -> Verifier {
        Verifier {
            registry: self.inner.clone(),
        }
    }

    /// Shared operation counters for all handles of this registry.
    pub fn metrics(&self) -> &CryptoMetrics {
        &self.inner.metrics
    }
}

/// Signing handle for a single server.
///
/// Holds only that server's key: simulated byzantine servers receive their
/// own [`Signer`] and therefore cannot forge others' signatures.
#[derive(Debug, Clone)]
pub struct Signer {
    id: ServerId,
    key: SecretKey,
    registry: Arc<RegistryInner>,
}

impl Signer {
    /// The identity this handle signs for.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.registry.metrics.signs.fetch_add(1, Ordering::Relaxed);
        Signature(self.key.mac(message))
    }
}

/// Verification handle over the whole server set.
#[derive(Debug, Clone)]
pub struct Verifier {
    registry: Arc<RegistryInner>,
}

impl Verifier {
    /// Checks that `signature` is `sign(claimed, message)`.
    ///
    /// Returns `false` for unknown identities or mismatched tags.
    pub fn verify(&self, claimed: ServerId, message: &[u8], signature: &Signature) -> bool {
        self.registry
            .metrics
            .verifies
            .fetch_add(1, Ordering::Relaxed);
        match self.registry.keys.get(claimed.index()) {
            Some(key) => key.mac(message) == signature.0,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> KeyRegistry {
        KeyRegistry::generate(4, 1)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let registry = registry();
        let signer = registry.signer(ServerId::new(0)).unwrap();
        let sig = signer.sign(b"m");
        assert!(registry.verifier().verify(ServerId::new(0), b"m", &sig));
    }

    #[test]
    fn wrong_identity_rejected() {
        let registry = registry();
        let signer = registry.signer(ServerId::new(0)).unwrap();
        let sig = signer.sign(b"m");
        assert!(!registry.verifier().verify(ServerId::new(1), b"m", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let registry = registry();
        let signer = registry.signer(ServerId::new(2)).unwrap();
        let sig = signer.sign(b"m");
        assert!(!registry.verifier().verify(ServerId::new(2), b"m2", &sig));
    }

    #[test]
    fn null_signature_never_verifies() {
        let registry = registry();
        assert!(!registry
            .verifier()
            .verify(ServerId::new(0), b"m", &Signature::NULL));
    }

    #[test]
    fn unknown_server_rejected() {
        let registry = registry();
        assert!(registry.signer(ServerId::new(10)).is_none());
        let signer = registry.signer(ServerId::new(0)).unwrap();
        let sig = signer.sign(b"m");
        assert!(!registry.verifier().verify(ServerId::new(10), b"m", &sig));
    }

    #[test]
    fn metrics_count_operations() {
        let registry = registry();
        let signer = registry.signer(ServerId::new(0)).unwrap();
        let verifier = registry.verifier();
        assert_eq!(registry.metrics().signs(), 0);
        let sig = signer.sign(b"m");
        verifier.verify(ServerId::new(0), b"m", &sig);
        verifier.verify(ServerId::new(0), b"m", &sig);
        assert_eq!(registry.metrics().signs(), 1);
        assert_eq!(registry.metrics().verifies(), 2);
        registry.metrics().reset();
        assert_eq!(registry.metrics().verifies(), 0);
    }

    #[test]
    fn deterministic_generation() {
        let a = KeyRegistry::generate(2, 9);
        let b = KeyRegistry::generate(2, 9);
        let sig_a = a.signer(ServerId::new(0)).unwrap().sign(b"x");
        let sig_b = b.signer(ServerId::new(0)).unwrap().sign(b"x");
        assert_eq!(sig_a, sig_b);

        let c = KeyRegistry::generate(2, 10);
        let sig_c = c.signer(ServerId::new(0)).unwrap().sign(b"x");
        assert_ne!(sig_a, sig_c);
    }

    #[test]
    fn secret_key_debug_hides_material() {
        let key = SecretKey::from_bytes([9; 32]);
        assert_eq!(format!("{key:?}"), "SecretKey(…)");
    }
}
