//! Signature scheme stand-in: HMAC-SHA256 under a trusted key registry.
//!
//! The paper assumes a secure signature scheme whose failure probability is
//! zero (§2). In this reproduction, "signatures" are MACs under per-server
//! secret keys distributed by a trusted [`KeyRegistry`] at setup — the
//! classical pairwise-symmetric-key model. Within the simulation this gives
//! exactly the abstraction the paper assumes:
//!
//! * only server `s` (which holds `k_s`) can produce `sign(s, m)`;
//! * every server can verify, via the registry's verification handle;
//! * forging requires breaking HMAC-SHA256, treated as impossible.
//!
//! The economic property the paper leans on — *batch signatures*, one
//! signature per block instead of one per protocol message (§4) — is
//! preserved, and [`CryptoMetrics`] counts sign/verify operations so the
//! benchmarks can report it (experiment E6).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dagbft_codec::{DecodeError, Reader, WireDecode, WireEncode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{hmac_sha256, Digest, HmacKey, ServerId};

/// A per-server signing key.
#[derive(Clone)]
pub struct SecretKey([u8; 32]);

impl SecretKey {
    /// Creates a key from raw bytes (useful in tests).
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        SecretKey(bytes)
    }

    fn mac(&self, message: &[u8]) -> Digest {
        hmac_sha256(&self.0, message)
    }
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(…)")
    }
}

/// A signature over a message, produced by [`Signer::sign`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Signature(Digest);

impl Signature {
    /// A placeholder signature (all zeroes); never verifies.
    pub const NULL: Signature = Signature(Digest::ZERO);

    /// Wire size of a signature in bytes.
    pub const SIZE: usize = 32;

    /// Raw digest backing this signature.
    pub fn digest(&self) -> Digest {
        self.0
    }
}

impl WireEncode for Signature {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl WireDecode for Signature {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Signature(Digest::decode(reader)?))
    }
}

/// Counters for cryptographic operations, shared by all handles derived from
/// one [`KeyRegistry`].
///
/// Experiment E6 (signature batching) reads these to compare the embedding
/// against the direct point-to-point baseline.
#[derive(Debug, Default)]
pub struct CryptoMetrics {
    signs: AtomicU64,
    verifies: AtomicU64,
    batches: AtomicU64,
    batched_verifies: AtomicU64,
    largest_batch: AtomicU64,
    bursts: AtomicU64,
    burst_verifies: AtomicU64,
    largest_burst: AtomicU64,
}

impl CryptoMetrics {
    /// Number of signing operations performed so far.
    pub fn signs(&self) -> u64 {
        self.signs.load(Ordering::Relaxed)
    }

    /// Number of verification operations performed so far (batched items
    /// included: a batch of `k` signatures counts `k` verifications, so
    /// this total is identical whichever path performed the work).
    pub fn verifies(&self) -> u64 {
        self.verifies.load(Ordering::Relaxed)
    }

    /// Number of [`BatchVerifier::verify_batch`] passes performed so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Number of verifications performed *inside* batches — the share of
    /// [`CryptoMetrics::verifies`] that went through the amortized path.
    pub fn batched_verifies(&self) -> u64 {
        self.batched_verifies.load(Ordering::Relaxed)
    }

    /// Size of the largest batch verified so far.
    pub fn largest_batch(&self) -> u64 {
        self.largest_batch.load(Ordering::Relaxed)
    }

    /// Number of cross-cascade admission bursts accounted so far — one
    /// per deferred-admission bracket that verified at least one
    /// signature, spanning every wave the bracket produced (the
    /// "multi-wave" unit the burst engine amortizes over).
    pub fn bursts(&self) -> u64 {
        self.bursts.load(Ordering::Relaxed)
    }

    /// Number of verifications performed inside cross-cascade bursts —
    /// the share of [`CryptoMetrics::batched_verifies`] that was widened
    /// past single-cascade waves.
    pub fn burst_verifies(&self) -> u64 {
        self.burst_verifies.load(Ordering::Relaxed)
    }

    /// Signature count of the largest burst accounted so far.
    pub fn largest_burst(&self) -> u64 {
        self.largest_burst.load(Ordering::Relaxed)
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.signs.store(0, Ordering::Relaxed);
        self.verifies.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.batched_verifies.store(0, Ordering::Relaxed);
        self.largest_batch.store(0, Ordering::Relaxed);
        self.bursts.store(0, Ordering::Relaxed);
        self.burst_verifies.store(0, Ordering::Relaxed);
        self.largest_burst.store(0, Ordering::Relaxed);
    }

    fn record_batch(&self, items: u64) {
        self.verifies.fetch_add(items, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_verifies.fetch_add(items, Ordering::Relaxed);
        self.largest_batch.fetch_max(items, Ordering::Relaxed);
    }

    fn record_burst(&self, items: u64) {
        self.bursts.fetch_add(1, Ordering::Relaxed);
        self.burst_verifies.fetch_add(items, Ordering::Relaxed);
        self.largest_burst.fetch_max(items, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct RegistryInner {
    keys: Vec<SecretKey>,
    /// Precomputed HMAC key schedules, one per server, shared by every
    /// [`Signer`], [`Verifier`], and [`BatchVerifier`] handle: the padded
    /// key blocks are absorbed exactly once per key per registry.
    schedules: Vec<HmacKey>,
    /// MAC chain length per sign/verify (see
    /// [`KeyRegistry::generate_calibrated`]); 1 = the plain HMAC
    /// stand-in.
    cost: u32,
    metrics: CryptoMetrics,
}

impl RegistryInner {
    /// One signature operation at this registry's calibrated cost: the
    /// MAC is re-applied to its own output `cost − 1` times. Signing and
    /// verification run the same chain, so correctness and forgery
    /// resistance are exactly those of the underlying HMAC.
    fn chained_mac(&self, schedule: &HmacKey, message: &[u8]) -> Digest {
        let mut tag = schedule.mac(message);
        for _ in 1..self.cost {
            tag = schedule.mac32(tag.as_bytes());
        }
        tag
    }

    /// [`RegistryInner::chained_mac`] over the 32-byte fast path.
    fn chained_mac32(&self, schedule: &HmacKey, message: &[u8; 32]) -> Digest {
        let mut tag = schedule.mac32(message);
        for _ in 1..self.cost {
            tag = schedule.mac32(tag.as_bytes());
        }
        tag
    }
}

/// Trusted key setup for a fixed server set.
///
/// Generates one secret key per server; hands out [`Signer`] handles (one
/// per server, carrying only that server's key) and [`Verifier`] handles
/// (able to check any server's signature).
///
/// # Examples
///
/// ```
/// use dagbft_crypto::{KeyRegistry, ServerId};
///
/// let registry = KeyRegistry::generate(4, 42);
/// let signer = registry.signer(ServerId::new(3)).unwrap();
/// let sig = signer.sign(b"hello");
/// assert!(registry.verifier().verify(ServerId::new(3), b"hello", &sig));
/// ```
#[derive(Debug, Clone)]
pub struct KeyRegistry {
    inner: Arc<RegistryInner>,
}

impl KeyRegistry {
    /// Generates keys for `n` servers from a deterministic seed.
    ///
    /// Deterministic seeding keeps whole-simulation runs reproducible.
    pub fn generate(n: usize, seed: u64) -> Self {
        Self::generate_calibrated(n, seed, 1)
    }

    /// [`KeyRegistry::generate`] with a calibrated per-operation cost:
    /// every sign/verify runs a MAC chain of length `cost` (clamped to at
    /// least 1). `cost = 1` is the plain HMAC stand-in; larger values
    /// price signature operations like the schemes the stand-in replaces
    /// — an ed25519-class verification costs tens of microseconds, two
    /// orders of magnitude more than one HMAC-SHA256 — so experiments can
    /// measure the paper's §4 batching/parallelism economics at realistic
    /// signature prices. Verification stays deterministic, wire-format
    /// compatible (32-byte tags), and exactly as unforgeable as the
    /// underlying HMAC; only the price per operation changes.
    pub fn generate_calibrated(n: usize, seed: u64, cost: u32) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let keys: Vec<SecretKey> = (0..n)
            .map(|_| {
                let mut key = [0u8; 32];
                rng.fill(&mut key);
                SecretKey(key)
            })
            .collect();
        let schedules = keys.iter().map(|key| HmacKey::new(&key.0)).collect();
        KeyRegistry {
            inner: Arc::new(RegistryInner {
                keys,
                schedules,
                cost: cost.max(1),
                metrics: CryptoMetrics::default(),
            }),
        }
    }

    /// The calibrated MAC chain length per signature operation.
    pub fn cost(&self) -> u32 {
        self.inner.cost
    }

    /// Number of servers with keys in this registry.
    pub fn len(&self) -> usize {
        self.inner.keys.len()
    }

    /// Returns `true` if the registry holds no keys.
    pub fn is_empty(&self) -> bool {
        self.inner.keys.is_empty()
    }

    /// Returns the signing handle for `id`, or `None` for unknown servers.
    pub fn signer(&self, id: ServerId) -> Option<Signer> {
        let schedule = self.inner.schedules.get(id.index())?.clone();
        Some(Signer {
            id,
            schedule,
            registry: self.inner.clone(),
        })
    }

    /// Returns a verification handle over all servers' keys.
    pub fn verifier(&self) -> Verifier {
        Verifier {
            registry: self.inner.clone(),
        }
    }

    /// Returns a batch-verification handle (see [`BatchVerifier`]).
    pub fn batch_verifier(&self) -> BatchVerifier {
        BatchVerifier {
            registry: self.inner.clone(),
        }
    }

    /// Shared operation counters for all handles of this registry.
    pub fn metrics(&self) -> &CryptoMetrics {
        &self.inner.metrics
    }
}

/// Signing handle for a single server.
///
/// Holds only that server's key schedule: simulated byzantine servers
/// receive their own [`Signer`] and therefore cannot forge others'
/// signatures.
#[derive(Debug, Clone)]
pub struct Signer {
    id: ServerId,
    schedule: HmacKey,
    registry: Arc<RegistryInner>,
}

impl Signer {
    /// The identity this handle signs for.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.registry.metrics.signs.fetch_add(1, Ordering::Relaxed);
        Signature(self.registry.chained_mac(&self.schedule, message))
    }
}

/// Verification handle over the whole server set.
///
/// Holds the precomputed per-server HMAC key schedules, so each
/// verification resumes from the cached key midstates instead of
/// re-deriving the padded key blocks (which [`Verifier::verify_cold`]
/// still does, as the pre-hoist baseline for benchmarks).
#[derive(Debug, Clone)]
pub struct Verifier {
    registry: Arc<RegistryInner>,
}

impl Verifier {
    /// Checks that `signature` is `sign(claimed, message)`.
    ///
    /// Returns `false` for unknown identities or mismatched tags.
    pub fn verify(&self, claimed: ServerId, message: &[u8], signature: &Signature) -> bool {
        self.registry
            .metrics
            .verifies
            .fetch_add(1, Ordering::Relaxed);
        match self.registry.schedules.get(claimed.index()) {
            Some(schedule) => self.registry.chained_mac(schedule, message) == signature.0,
            None => false,
        }
    }

    /// [`Verifier::verify`] without the hoisted key schedule: rebuilds the
    /// padded key blocks on every call, exactly as every per-block
    /// verification did before schedules were cached. Retained so the
    /// `report_admission` bench can pin the batched path's speedup against
    /// a stable baseline; not used on any hot path.
    pub fn verify_cold(&self, claimed: ServerId, message: &[u8], signature: &Signature) -> bool {
        self.registry
            .metrics
            .verifies
            .fetch_add(1, Ordering::Relaxed);
        match self.registry.keys.get(claimed.index()) {
            Some(key) => {
                // Re-derive the padded key blocks on every chain step —
                // the per-call price the schedule hoisting removed, paid
                // once per unit of the calibrated cost.
                let mut tag = key.mac(message);
                for _ in 1..self.registry.cost {
                    tag = key.mac(tag.as_bytes());
                }
                tag == signature.0
            }
            None => false,
        }
    }

    /// Returns a batch handle over the same registry (and counters).
    pub fn batch(&self) -> BatchVerifier {
        BatchVerifier {
            registry: self.registry.clone(),
        }
    }
}

/// One signed 32-byte digest awaiting batch verification: the claim
/// "`signature` is `sign(claimed, digest)`".
///
/// For blocks this is exactly Definition 3.3 (i): `claimed` is `B.n`,
/// `digest` the cached `ref(B)` (the hash of the block's signing
/// preimage), `signature` `B.σ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignedDigest {
    /// The identity claimed to have produced the signature.
    pub claimed: ServerId,
    /// The signed message — a 32-byte digest (`ref(B)` for blocks).
    pub digest: Digest,
    /// The signature under test.
    pub signature: Signature,
}

/// Batched verification over the whole server set: one pass over a slice
/// of [`SignedDigest`]s, amortizing per-item dispatch and reusing the
/// per-server key schedules via the 32-byte MAC fast path.
///
/// With the HMAC stand-in the per-item work cannot be merged further, but
/// the API is deliberately the shape a real scheme batches behind — a
/// multi-scalar/aggregate verification (one pairing or MSM per batch)
/// would slot in under `verify_batch` without touching any caller. Batch
/// passes and sizes are counted in [`CryptoMetrics`] (experiment E6's
/// batching argument, PAPER §4).
///
/// # Examples
///
/// ```
/// use dagbft_crypto::{KeyRegistry, ServerId, SignedDigest};
///
/// let registry = KeyRegistry::generate(2, 42);
/// let signer = registry.signer(ServerId::new(1)).unwrap();
/// let digest = dagbft_crypto::sha256(b"block preimage");
/// let signature = signer.sign(digest.as_bytes());
/// let batch = registry.batch_verifier();
/// let verdicts = batch.verify_batch(&[SignedDigest {
///     claimed: ServerId::new(1),
///     digest,
///     signature,
/// }]);
/// assert_eq!(verdicts, vec![true]);
/// ```
#[derive(Debug, Clone)]
pub struct BatchVerifier {
    registry: Arc<RegistryInner>,
}

impl BatchVerifier {
    /// Verifies every item in one pass, returning per-item verdicts in
    /// input order. Unknown identities verify to `false`.
    ///
    /// An empty batch performs (and records) nothing.
    pub fn verify_batch(&self, items: &[SignedDigest]) -> Vec<bool> {
        if items.is_empty() {
            return Vec::new();
        }
        self.registry.metrics.record_batch(items.len() as u64);
        items
            .iter()
            .map(
                |item| match self.registry.schedules.get(item.claimed.index()) {
                    Some(schedule) => {
                        self.registry
                            .chained_mac32(schedule, item.digest.as_bytes())
                            == item.signature.0
                    }
                    None => false,
                },
            )
            .collect()
    }

    /// Accounts one cross-cascade admission *burst* of `items`
    /// verifications. The items themselves were already verified (and
    /// counted) through [`BatchVerifier::verify_batch`] passes — possibly
    /// several waves, possibly split across worker threads; this records
    /// that they belonged to one deferred-admission unit, so experiments
    /// can tell burst-widened verification apart from per-cascade waves.
    /// Zero-item bursts are not recorded.
    pub fn note_burst(&self, items: u64) {
        if items > 0 {
            self.registry.metrics.record_burst(items);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> KeyRegistry {
        KeyRegistry::generate(4, 1)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let registry = registry();
        let signer = registry.signer(ServerId::new(0)).unwrap();
        let sig = signer.sign(b"m");
        assert!(registry.verifier().verify(ServerId::new(0), b"m", &sig));
    }

    #[test]
    fn wrong_identity_rejected() {
        let registry = registry();
        let signer = registry.signer(ServerId::new(0)).unwrap();
        let sig = signer.sign(b"m");
        assert!(!registry.verifier().verify(ServerId::new(1), b"m", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let registry = registry();
        let signer = registry.signer(ServerId::new(2)).unwrap();
        let sig = signer.sign(b"m");
        assert!(!registry.verifier().verify(ServerId::new(2), b"m2", &sig));
    }

    #[test]
    fn null_signature_never_verifies() {
        let registry = registry();
        assert!(!registry
            .verifier()
            .verify(ServerId::new(0), b"m", &Signature::NULL));
    }

    #[test]
    fn unknown_server_rejected() {
        let registry = registry();
        assert!(registry.signer(ServerId::new(10)).is_none());
        let signer = registry.signer(ServerId::new(0)).unwrap();
        let sig = signer.sign(b"m");
        assert!(!registry.verifier().verify(ServerId::new(10), b"m", &sig));
    }

    #[test]
    fn metrics_count_operations() {
        let registry = registry();
        let signer = registry.signer(ServerId::new(0)).unwrap();
        let verifier = registry.verifier();
        assert_eq!(registry.metrics().signs(), 0);
        let sig = signer.sign(b"m");
        verifier.verify(ServerId::new(0), b"m", &sig);
        verifier.verify(ServerId::new(0), b"m", &sig);
        assert_eq!(registry.metrics().signs(), 1);
        assert_eq!(registry.metrics().verifies(), 2);
        registry.metrics().reset();
        assert_eq!(registry.metrics().verifies(), 0);
    }

    #[test]
    fn cold_and_hoisted_verify_agree() {
        let registry = registry();
        let verifier = registry.verifier();
        let signer = registry.signer(ServerId::new(1)).unwrap();
        let digest = crate::sha256(b"preimage");
        let sig = signer.sign(digest.as_bytes());
        for claimed in [1u32, 2, 9] {
            let claimed = ServerId::new(claimed);
            assert_eq!(
                verifier.verify(claimed, digest.as_bytes(), &sig),
                verifier.verify_cold(claimed, digest.as_bytes(), &sig),
            );
        }
        assert_eq!(registry.metrics().verifies(), 6);
    }

    #[test]
    fn batch_verify_matches_single_verdicts() {
        let registry = registry();
        let verifier = registry.verifier();
        let batch = registry.batch_verifier();
        let mut items = Vec::new();
        for i in 0..4u32 {
            let signer = registry.signer(ServerId::new(i)).unwrap();
            let digest = crate::sha256(i.to_le_bytes());
            let signature = signer.sign(digest.as_bytes());
            items.push(SignedDigest {
                claimed: ServerId::new(i),
                digest,
                signature,
            });
        }
        // Tamper item 2 (wrong signature) and item 3 (wrong claimed id).
        items[2].signature = Signature::NULL;
        items[3].claimed = ServerId::new(0);
        let verdicts = batch.verify_batch(&items);
        let singles: Vec<bool> = items
            .iter()
            .map(|item| verifier.verify(item.claimed, item.digest.as_bytes(), &item.signature))
            .collect();
        assert_eq!(verdicts, singles);
        assert_eq!(verdicts, vec![true, true, false, false]);
    }

    #[test]
    fn batch_verify_unknown_identity_false() {
        let registry = registry();
        let batch = registry.verifier().batch();
        let digest = crate::sha256(b"x");
        let verdicts = batch.verify_batch(&[SignedDigest {
            claimed: ServerId::new(99),
            digest,
            signature: Signature::NULL,
        }]);
        assert_eq!(verdicts, vec![false]);
    }

    #[test]
    fn batch_metrics_count_passes_and_items() {
        let registry = registry();
        let batch = registry.batch_verifier();
        let signer = registry.signer(ServerId::new(0)).unwrap();
        let digest = crate::sha256(b"m");
        let signature = signer.sign(digest.as_bytes());
        let item = SignedDigest {
            claimed: ServerId::new(0),
            digest,
            signature,
        };
        assert!(batch.verify_batch(&[]).is_empty());
        assert_eq!(registry.metrics().batches(), 0, "empty batches not counted");
        batch.verify_batch(&[item; 3]);
        batch.verify_batch(&[item; 2]);
        assert_eq!(registry.metrics().batches(), 2);
        assert_eq!(registry.metrics().batched_verifies(), 5);
        assert_eq!(registry.metrics().largest_batch(), 3);
        // Batched items count toward the one shared verification total.
        assert_eq!(registry.metrics().verifies(), 5);
        registry.metrics().reset();
        assert_eq!(registry.metrics().batches(), 0);
        assert_eq!(registry.metrics().largest_batch(), 0);
    }

    #[test]
    fn calibrated_cost_roundtrips_and_changes_tags() {
        let cheap = KeyRegistry::generate_calibrated(2, 5, 1);
        let costly = KeyRegistry::generate_calibrated(2, 5, 32);
        assert_eq!(cheap.cost(), 1);
        assert_eq!(costly.cost(), 32);
        let digest = crate::sha256(b"block");
        let signer = costly.signer(ServerId::new(0)).unwrap();
        let sig = signer.sign(digest.as_bytes());
        // All three verification paths agree at any calibration.
        assert!(costly
            .verifier()
            .verify(ServerId::new(0), digest.as_bytes(), &sig));
        assert!(costly
            .verifier()
            .verify_cold(ServerId::new(0), digest.as_bytes(), &sig));
        assert_eq!(
            costly.batch_verifier().verify_batch(&[SignedDigest {
                claimed: ServerId::new(0),
                digest,
                signature: sig,
            }]),
            vec![true]
        );
        // A different calibration is a different scheme: same key, same
        // message, incompatible tags.
        let cheap_sig = cheap
            .signer(ServerId::new(0))
            .unwrap()
            .sign(digest.as_bytes());
        assert_ne!(cheap_sig, sig);
        assert!(!costly
            .verifier()
            .verify(ServerId::new(0), digest.as_bytes(), &cheap_sig));
        // `generate` is calibration 1.
        let default = KeyRegistry::generate(2, 5);
        let default_sig = default
            .signer(ServerId::new(0))
            .unwrap()
            .sign(digest.as_bytes());
        assert_eq!(default_sig, cheap_sig);
    }

    #[test]
    fn burst_accounting_tracks_multi_wave_units() {
        let registry = registry();
        let batch = registry.batch_verifier();
        let signer = registry.signer(ServerId::new(0)).unwrap();
        let digest = crate::sha256(b"m");
        let signature = signer.sign(digest.as_bytes());
        let item = SignedDigest {
            claimed: ServerId::new(0),
            digest,
            signature,
        };
        // Two waves verified, then accounted as one burst of 5.
        batch.verify_batch(&[item; 3]);
        batch.verify_batch(&[item; 2]);
        batch.note_burst(5);
        batch.note_burst(0); // empty bursts are not recorded
        batch.note_burst(2);
        assert_eq!(registry.metrics().bursts(), 2);
        assert_eq!(registry.metrics().burst_verifies(), 7);
        assert_eq!(registry.metrics().largest_burst(), 5);
        // Burst accounting never double-counts verifications.
        assert_eq!(registry.metrics().verifies(), 5);
        registry.metrics().reset();
        assert_eq!(registry.metrics().bursts(), 0);
        assert_eq!(registry.metrics().largest_burst(), 0);
    }

    #[test]
    fn deterministic_generation() {
        let a = KeyRegistry::generate(2, 9);
        let b = KeyRegistry::generate(2, 9);
        let sig_a = a.signer(ServerId::new(0)).unwrap().sign(b"x");
        let sig_b = b.signer(ServerId::new(0)).unwrap().sign(b"x");
        assert_eq!(sig_a, sig_b);

        let c = KeyRegistry::generate(2, 10);
        let sig_c = c.signer(ServerId::new(0)).unwrap().sign(b"x");
        assert_ne!(sig_a, sig_c);
    }

    #[test]
    fn secret_key_debug_hides_material() {
        let key = SecretKey::from_bytes([9; 32]);
        assert_eq!(format!("{key:?}"), "SecretKey(…)");
    }
}
