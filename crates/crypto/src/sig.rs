//! Signing handles over a trusted key registry, generic over the
//! [`SignatureScheme`].
//!
//! The paper assumes a secure signature scheme whose failure probability
//! is zero (§2). [`KeyRegistry`] performs the trusted setup — one keypair
//! per server, deterministically seeded so whole-simulation runs stay
//! reproducible — and hands out [`Signer`] handles (one per server,
//! carrying only that server's key) and [`Verifier`]/[`BatchVerifier`]
//! handles (able to check any server's signature). All of them are
//! generic over the scheme, defaulting to the runtime-dispatched
//! [`AnyScheme`] so existing call sites stay non-generic.
//!
//! The economic property the paper leans on — *batch signatures*, one
//! signature per block instead of one per protocol message (§4) — is
//! preserved, and [`CryptoMetrics`] counts sign/verify operations so the
//! benchmarks can report it (experiment E6).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dagbft_codec::{DecodeError, Reader, WireDecode, WireEncode};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::scheme::{AnyScheme, Ed25519Scheme, HmacScheme, SchemeKind, SignatureScheme};
use crate::{Digest, ServerId};

/// A 64-byte wire signature, produced by [`Signer::sign`].
///
/// The layout is scheme-defined: ed25519 fills all 64 bytes (`R ‖ s`,
/// RFC 8032); the HMAC stand-in stores its 32-byte tag followed by
/// zeroes. One fixed wire size keeps block encodings scheme-independent.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signature([u8; 64]);

impl Signature {
    /// A placeholder signature (all zeroes); never verifies.
    pub const NULL: Signature = Signature([0u8; 64]);

    /// Wire size of a signature in bytes.
    pub const SIZE: usize = 64;

    /// Wraps raw signature bytes.
    pub fn from_bytes(bytes: [u8; 64]) -> Signature {
        Signature(bytes)
    }

    /// A signature carrying a 32-byte MAC tag (zero-padded).
    pub fn from_tag(tag: Digest) -> Signature {
        let mut bytes = [0u8; 64];
        bytes[..32].copy_from_slice(tag.as_bytes());
        Signature(bytes)
    }

    /// The raw signature bytes.
    pub fn as_bytes(&self) -> &[u8; 64] {
        &self.0
    }

    /// True iff this signature is exactly `tag` zero-padded — the HMAC
    /// accept test, without materializing a temporary [`Signature`].
    pub(crate) fn matches_tag(&self, tag: &Digest) -> bool {
        self.0[..32] == tag.as_bytes()[..] && self.0[32..] == [0u8; 32]
    }
}

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Signature(")?;
        for byte in &self.0[..6] {
            write!(f, "{byte:02x}")?;
        }
        write!(f, "…)")
    }
}

impl WireEncode for Signature {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl WireDecode for Signature {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Signature(<[u8; 64]>::decode(reader)?))
    }
}

/// Counters for cryptographic operations, shared by all handles derived from
/// one [`KeyRegistry`].
///
/// Experiment E6 (signature batching) reads these to compare the embedding
/// against the direct point-to-point baseline.
#[derive(Debug, Default)]
pub struct CryptoMetrics {
    signs: AtomicU64,
    verifies: AtomicU64,
    batches: AtomicU64,
    batched_verifies: AtomicU64,
    largest_batch: AtomicU64,
    bursts: AtomicU64,
    burst_verifies: AtomicU64,
    largest_burst: AtomicU64,
}

impl CryptoMetrics {
    /// Number of signing operations performed so far.
    pub fn signs(&self) -> u64 {
        self.signs.load(Ordering::Relaxed)
    }

    /// Number of verification operations performed so far (batched items
    /// included: a batch of `k` signatures counts `k` verifications, so
    /// this total is identical whichever path performed the work).
    pub fn verifies(&self) -> u64 {
        self.verifies.load(Ordering::Relaxed)
    }

    /// Number of [`BatchVerifier::verify_batch`] passes performed so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Number of verifications performed *inside* batches — the share of
    /// [`CryptoMetrics::verifies`] that went through the amortized path.
    pub fn batched_verifies(&self) -> u64 {
        self.batched_verifies.load(Ordering::Relaxed)
    }

    /// Size of the largest batch verified so far.
    pub fn largest_batch(&self) -> u64 {
        self.largest_batch.load(Ordering::Relaxed)
    }

    /// Number of cross-cascade admission bursts accounted so far — one
    /// per deferred-admission bracket that verified at least one
    /// signature, spanning every wave the bracket produced (the
    /// "multi-wave" unit the burst engine amortizes over).
    pub fn bursts(&self) -> u64 {
        self.bursts.load(Ordering::Relaxed)
    }

    /// Number of verifications performed inside cross-cascade bursts —
    /// the share of [`CryptoMetrics::batched_verifies`] that was widened
    /// past single-cascade waves.
    pub fn burst_verifies(&self) -> u64 {
        self.burst_verifies.load(Ordering::Relaxed)
    }

    /// Signature count of the largest burst accounted so far.
    pub fn largest_burst(&self) -> u64 {
        self.largest_burst.load(Ordering::Relaxed)
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.signs.store(0, Ordering::Relaxed);
        self.verifies.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.batched_verifies.store(0, Ordering::Relaxed);
        self.largest_batch.store(0, Ordering::Relaxed);
        self.bursts.store(0, Ordering::Relaxed);
        self.burst_verifies.store(0, Ordering::Relaxed);
        self.largest_burst.store(0, Ordering::Relaxed);
    }

    fn record_batch(&self, items: u64) {
        self.verifies.fetch_add(items, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_verifies.fetch_add(items, Ordering::Relaxed);
        self.largest_batch.fetch_max(items, Ordering::Relaxed);
    }

    fn record_burst(&self, items: u64) {
        self.bursts.fetch_add(1, Ordering::Relaxed);
        self.burst_verifies.fetch_add(items, Ordering::Relaxed);
        self.largest_burst.fetch_max(items, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct RegistryInner<S: SignatureScheme> {
    scheme: S,
    secrets: Vec<S::SecretKey>,
    /// Verification key material, one per server, shared by every
    /// [`Verifier`] and [`BatchVerifier`] handle — per-key caches (HMAC
    /// key schedules, decompressed ed25519 points) are built exactly
    /// once per registry.
    publics: Vec<S::PublicKey>,
    metrics: CryptoMetrics,
}

/// Trusted key setup for a fixed server set.
///
/// Generates one keypair per server under the chosen
/// [`SignatureScheme`]; hands out [`Signer`] handles (one per server,
/// carrying only that server's key) and [`Verifier`] handles (able to
/// check any server's signature).
///
/// # Examples
///
/// ```
/// use dagbft_crypto::{KeyRegistry, ServerId};
///
/// let registry = KeyRegistry::generate(4, 42);
/// let signer = registry.signer(ServerId::new(3)).unwrap();
/// let sig = signer.sign(b"hello");
/// assert!(registry.verifier().verify(ServerId::new(3), b"hello", &sig));
/// ```
#[derive(Debug, Clone)]
pub struct KeyRegistry<S: SignatureScheme = AnyScheme> {
    inner: Arc<RegistryInner<S>>,
}

impl<S: SignatureScheme> KeyRegistry<S> {
    /// Generates keys for `n` servers under `scheme` from a
    /// deterministic seed.
    ///
    /// Deterministic seeding keeps whole-simulation runs reproducible.
    pub fn generate_with(scheme: S, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut secrets = Vec::with_capacity(n);
        let mut publics = Vec::with_capacity(n);
        for _ in 0..n {
            let (secret, public) = scheme.keygen(&mut rng);
            secrets.push(secret);
            publics.push(public);
        }
        KeyRegistry {
            inner: Arc::new(RegistryInner {
                scheme,
                secrets,
                publics,
                metrics: CryptoMetrics::default(),
            }),
        }
    }

    /// The scheme this registry's keys belong to.
    pub fn scheme(&self) -> &S {
        &self.inner.scheme
    }

    /// Short scheme identifier ("hmac", "ed25519") for benchmarks and
    /// fingerprints.
    pub fn scheme_name(&self) -> &'static str {
        self.inner.scheme.name()
    }

    /// Number of servers with keys in this registry.
    pub fn len(&self) -> usize {
        self.inner.secrets.len()
    }

    /// Returns `true` if the registry holds no keys.
    pub fn is_empty(&self) -> bool {
        self.inner.secrets.is_empty()
    }

    /// Returns the signing handle for `id`, or `None` for unknown servers.
    pub fn signer(&self, id: ServerId) -> Option<Signer<S>> {
        if id.index() >= self.inner.secrets.len() {
            return None;
        }
        Some(Signer {
            id,
            registry: self.inner.clone(),
        })
    }

    /// Returns a verification handle over all servers' keys.
    pub fn verifier(&self) -> Verifier<S> {
        Verifier {
            registry: self.inner.clone(),
        }
    }

    /// Returns a batch-verification handle (see [`BatchVerifier`]).
    pub fn batch_verifier(&self) -> BatchVerifier<S> {
        BatchVerifier {
            registry: self.inner.clone(),
        }
    }

    /// Shared operation counters for all handles of this registry.
    pub fn metrics(&self) -> &CryptoMetrics {
        &self.inner.metrics
    }
}

impl KeyRegistry<AnyScheme> {
    /// Generates HMAC stand-in keys for `n` servers from a deterministic
    /// seed — the historical default, kept as the cheap oracle scheme.
    pub fn generate(n: usize, seed: u64) -> Self {
        Self::generate_calibrated(n, seed, 1)
    }

    /// [`KeyRegistry::generate`] with a calibrated per-operation cost:
    /// every sign/verify runs a MAC chain of length `cost` (clamped to at
    /// least 1). `cost = 1` is the plain HMAC stand-in; larger values
    /// price signature operations like real asymmetric schemes, so
    /// experiments can measure the paper's §4 batching/parallelism
    /// economics at calibrated signature prices without paying for curve
    /// arithmetic. For the real thing, use
    /// [`KeyRegistry::generate_ed25519`].
    pub fn generate_calibrated(n: usize, seed: u64, cost: u32) -> Self {
        Self::generate_with(AnyScheme::Hmac(HmacScheme::new(cost)), n, seed)
    }

    /// Generates real ed25519 keys for `n` servers from a deterministic
    /// seed.
    pub fn generate_ed25519(n: usize, seed: u64) -> Self {
        Self::generate_with(AnyScheme::Ed25519(Ed25519Scheme), n, seed)
    }

    /// Generates keys under the scheme a [`SchemeKind`] selects — the
    /// configuration-knob entry point used by simulations and clusters.
    pub fn generate_kind(kind: SchemeKind, n: usize, seed: u64) -> Self {
        Self::generate_with(AnyScheme::from_kind(kind), n, seed)
    }

    /// The calibrated MAC chain length per signature operation (1 for
    /// schemes without calibration, including ed25519).
    pub fn cost(&self) -> u32 {
        match &self.inner.scheme {
            AnyScheme::Hmac(scheme) => scheme.cost,
            AnyScheme::Ed25519(_) => 1,
        }
    }
}

/// Signing handle for a single server.
///
/// Holds only that server's key: simulated byzantine servers receive
/// their own [`Signer`] and therefore cannot forge others' signatures.
#[derive(Debug, Clone)]
pub struct Signer<S: SignatureScheme = AnyScheme> {
    id: ServerId,
    registry: Arc<RegistryInner<S>>,
}

impl<S: SignatureScheme> Signer<S> {
    /// The identity this handle signs for.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.registry.metrics.signs.fetch_add(1, Ordering::Relaxed);
        let secret = &self.registry.secrets[self.id.index()];
        self.registry.scheme.sign(secret, message)
    }
}

/// Verification handle over the whole server set.
///
/// Holds the per-server verification key material with its caches built
/// (HMAC key schedules, decompressed ed25519 points), so each
/// verification resumes from cached state instead of re-deriving it
/// (which [`Verifier::verify_cold`] still does, as the pre-hoist
/// baseline for benchmarks).
#[derive(Debug, Clone)]
pub struct Verifier<S: SignatureScheme = AnyScheme> {
    registry: Arc<RegistryInner<S>>,
}

impl<S: SignatureScheme> Verifier<S> {
    /// Checks that `signature` is `sign(claimed, message)`.
    ///
    /// Returns `false` for unknown identities or forged signatures.
    pub fn verify(&self, claimed: ServerId, message: &[u8], signature: &Signature) -> bool {
        self.registry
            .metrics
            .verifies
            .fetch_add(1, Ordering::Relaxed);
        match self.registry.publics.get(claimed.index()) {
            Some(public) => self.registry.scheme.verify(public, message, signature),
            None => false,
        }
    }

    /// [`Verifier::verify`] without the per-key caches: re-derives the
    /// HMAC padded key blocks / re-parses the compressed ed25519 key on
    /// every call, exactly as every per-block verification did before
    /// the hoisting. Retained so the `report_admission` bench can pin
    /// the batched path's speedup against a stable baseline; not used on
    /// any hot path.
    pub fn verify_cold(&self, claimed: ServerId, message: &[u8], signature: &Signature) -> bool {
        self.registry
            .metrics
            .verifies
            .fetch_add(1, Ordering::Relaxed);
        match self.registry.publics.get(claimed.index()) {
            Some(public) => self.registry.scheme.verify_cold(public, message, signature),
            None => false,
        }
    }

    /// Returns a batch handle over the same registry (and counters).
    pub fn batch(&self) -> BatchVerifier<S> {
        BatchVerifier {
            registry: self.registry.clone(),
        }
    }
}

/// One signed 32-byte digest awaiting batch verification: the claim
/// "`signature` is `sign(claimed, digest)`".
///
/// For blocks this is exactly Definition 3.3 (i): `claimed` is `B.n`,
/// `digest` the cached `ref(B)` (the hash of the block's signing
/// preimage), `signature` `B.σ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignedDigest {
    /// The identity claimed to have produced the signature.
    pub claimed: ServerId,
    /// The signed message — a 32-byte digest (`ref(B)` for blocks).
    pub digest: Digest,
    /// The signature under test.
    pub signature: Signature,
}

/// Batched verification over the whole server set: one pass over a slice
/// of [`SignedDigest`]s, with per-item verdicts in input order.
///
/// Under ed25519 the pass is genuinely amortized — one random-linear-
/// combination multi-scalar multiplication for the whole batch, with a
/// binary split pinpointing forged items on failure — so a batch of `k`
/// costs far fewer group operations than `k` serial verifications. The
/// HMAC stand-in keeps the same shape over its 32-byte MAC fast path.
/// Batch passes and sizes are counted in [`CryptoMetrics`] (experiment
/// E6's batching argument, PAPER §4).
///
/// # Examples
///
/// ```
/// use dagbft_crypto::{KeyRegistry, ServerId, SignedDigest};
///
/// let registry = KeyRegistry::generate_ed25519(2, 42);
/// let signer = registry.signer(ServerId::new(1)).unwrap();
/// let digest = dagbft_crypto::sha256(b"block preimage");
/// let signature = signer.sign(digest.as_bytes());
/// let batch = registry.batch_verifier();
/// let verdicts = batch.verify_batch(&[SignedDigest {
///     claimed: ServerId::new(1),
///     digest,
///     signature,
/// }]);
/// assert_eq!(verdicts, vec![true]);
/// ```
#[derive(Debug, Clone)]
pub struct BatchVerifier<S: SignatureScheme = AnyScheme> {
    registry: Arc<RegistryInner<S>>,
}

impl<S: SignatureScheme> BatchVerifier<S> {
    /// Verifies every item in one pass, returning per-item verdicts in
    /// input order. Unknown identities verify to `false`. The verdicts
    /// are always exactly the serial ones, whatever the batch grouping —
    /// which is what keeps the admission engines byte-identical however
    /// waves are chunked.
    ///
    /// An empty batch performs (and records) nothing.
    pub fn verify_batch(&self, items: &[SignedDigest]) -> Vec<bool> {
        if items.is_empty() {
            return Vec::new();
        }
        self.registry.metrics.record_batch(items.len() as u64);
        self.registry
            .scheme
            .verify_batch(&self.registry.publics, items)
    }

    /// Accounts one cross-cascade admission *burst* of `items`
    /// verifications. The items themselves were already verified (and
    /// counted) through [`BatchVerifier::verify_batch`] passes — possibly
    /// several waves, possibly split across worker threads; this records
    /// that they belonged to one deferred-admission unit, so experiments
    /// can tell burst-widened verification apart from per-cascade waves.
    /// Zero-item bursts are not recorded.
    pub fn note_burst(&self, items: u64) {
        if items > 0 {
            self.registry.metrics.record_burst(items);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> KeyRegistry {
        KeyRegistry::generate(4, 1)
    }

    fn all_registries() -> Vec<KeyRegistry> {
        vec![
            KeyRegistry::generate(4, 1),
            KeyRegistry::generate_calibrated(4, 1, 8),
            KeyRegistry::generate_ed25519(4, 1),
        ]
    }

    #[test]
    fn sign_verify_roundtrip_all_schemes() {
        for registry in all_registries() {
            let name = registry.scheme_name();
            let signer = registry.signer(ServerId::new(0)).unwrap();
            let sig = signer.sign(b"m");
            assert!(
                registry.verifier().verify(ServerId::new(0), b"m", &sig),
                "{name}"
            );
            assert!(
                !registry.verifier().verify(ServerId::new(1), b"m", &sig),
                "{name}: wrong identity"
            );
            assert!(
                !registry.verifier().verify(ServerId::new(0), b"m2", &sig),
                "{name}: wrong message"
            );
        }
    }

    #[test]
    fn null_signature_never_verifies() {
        for registry in all_registries() {
            assert!(
                !registry
                    .verifier()
                    .verify(ServerId::new(0), b"m", &Signature::NULL),
                "{}",
                registry.scheme_name()
            );
        }
    }

    #[test]
    fn unknown_server_rejected() {
        let registry = registry();
        assert!(registry.signer(ServerId::new(10)).is_none());
        let signer = registry.signer(ServerId::new(0)).unwrap();
        let sig = signer.sign(b"m");
        assert!(!registry.verifier().verify(ServerId::new(10), b"m", &sig));
    }

    #[test]
    fn scheme_kind_selects_scheme() {
        let hmac = KeyRegistry::generate_kind(SchemeKind::Hmac, 2, 7);
        let ed = KeyRegistry::generate_kind(SchemeKind::Ed25519, 2, 7);
        assert_eq!(hmac.scheme_name(), "hmac");
        assert_eq!(ed.scheme_name(), "ed25519");
        assert_eq!(SchemeKind::default(), SchemeKind::Hmac);
        assert_eq!(SchemeKind::Ed25519.name(), "ed25519");
        // Same seed, different schemes: incompatible signatures.
        let hmac_sig = hmac.signer(ServerId::new(0)).unwrap().sign(b"x");
        assert!(!ed.verifier().verify(ServerId::new(0), b"x", &hmac_sig));
    }

    #[test]
    fn metrics_count_operations() {
        let registry = registry();
        let signer = registry.signer(ServerId::new(0)).unwrap();
        let verifier = registry.verifier();
        assert_eq!(registry.metrics().signs(), 0);
        let sig = signer.sign(b"m");
        verifier.verify(ServerId::new(0), b"m", &sig);
        verifier.verify(ServerId::new(0), b"m", &sig);
        assert_eq!(registry.metrics().signs(), 1);
        assert_eq!(registry.metrics().verifies(), 2);
        registry.metrics().reset();
        assert_eq!(registry.metrics().verifies(), 0);
    }

    #[test]
    fn cold_and_hoisted_verify_agree_all_schemes() {
        for registry in all_registries() {
            let verifier = registry.verifier();
            let signer = registry.signer(ServerId::new(1)).unwrap();
            let digest = crate::sha256(b"preimage");
            let sig = signer.sign(digest.as_bytes());
            for claimed in [1u32, 2, 9] {
                let claimed = ServerId::new(claimed);
                assert_eq!(
                    verifier.verify(claimed, digest.as_bytes(), &sig),
                    verifier.verify_cold(claimed, digest.as_bytes(), &sig),
                    "{}: claimed {claimed:?}",
                    registry.scheme_name()
                );
            }
        }
    }

    #[test]
    fn batch_verify_matches_single_verdicts_all_schemes() {
        for registry in all_registries() {
            let name = registry.scheme_name();
            let verifier = registry.verifier();
            let batch = registry.batch_verifier();
            let mut items = Vec::new();
            for i in 0..4u32 {
                let signer = registry.signer(ServerId::new(i)).unwrap();
                let digest = crate::sha256(i.to_le_bytes());
                let signature = signer.sign(digest.as_bytes());
                items.push(SignedDigest {
                    claimed: ServerId::new(i),
                    digest,
                    signature,
                });
            }
            // Tamper item 2 (wrong signature) and item 3 (wrong claimed id).
            items[2].signature = Signature::NULL;
            items[3].claimed = ServerId::new(0);
            let verdicts = batch.verify_batch(&items);
            let singles: Vec<bool> = items
                .iter()
                .map(|item| verifier.verify(item.claimed, item.digest.as_bytes(), &item.signature))
                .collect();
            assert_eq!(verdicts, singles, "{name}");
            assert_eq!(verdicts, vec![true, true, false, false], "{name}");
        }
    }

    #[test]
    fn batch_verify_unknown_identity_false() {
        for registry in all_registries() {
            let batch = registry.verifier().batch();
            let digest = crate::sha256(b"x");
            let verdicts = batch.verify_batch(&[SignedDigest {
                claimed: ServerId::new(99),
                digest,
                signature: Signature::NULL,
            }]);
            assert_eq!(verdicts, vec![false], "{}", registry.scheme_name());
        }
    }

    #[test]
    fn batch_metrics_count_passes_and_items() {
        let registry = registry();
        let batch = registry.batch_verifier();
        let signer = registry.signer(ServerId::new(0)).unwrap();
        let digest = crate::sha256(b"m");
        let signature = signer.sign(digest.as_bytes());
        let item = SignedDigest {
            claimed: ServerId::new(0),
            digest,
            signature,
        };
        assert!(batch.verify_batch(&[]).is_empty());
        assert_eq!(registry.metrics().batches(), 0, "empty batches not counted");
        batch.verify_batch(&[item; 3]);
        batch.verify_batch(&[item; 2]);
        assert_eq!(registry.metrics().batches(), 2);
        assert_eq!(registry.metrics().batched_verifies(), 5);
        assert_eq!(registry.metrics().largest_batch(), 3);
        // Batched items count toward the one shared verification total.
        assert_eq!(registry.metrics().verifies(), 5);
        registry.metrics().reset();
        assert_eq!(registry.metrics().batches(), 0);
        assert_eq!(registry.metrics().largest_batch(), 0);
    }

    #[test]
    fn calibrated_cost_roundtrips_and_changes_tags() {
        let cheap = KeyRegistry::generate_calibrated(2, 5, 1);
        let costly = KeyRegistry::generate_calibrated(2, 5, 32);
        assert_eq!(cheap.cost(), 1);
        assert_eq!(costly.cost(), 32);
        let digest = crate::sha256(b"block");
        let signer = costly.signer(ServerId::new(0)).unwrap();
        let sig = signer.sign(digest.as_bytes());
        // All three verification paths agree at any calibration.
        assert!(costly
            .verifier()
            .verify(ServerId::new(0), digest.as_bytes(), &sig));
        assert!(costly
            .verifier()
            .verify_cold(ServerId::new(0), digest.as_bytes(), &sig));
        assert_eq!(
            costly.batch_verifier().verify_batch(&[SignedDigest {
                claimed: ServerId::new(0),
                digest,
                signature: sig,
            }]),
            vec![true]
        );
        // A different calibration is a different scheme: same key, same
        // message, incompatible tags.
        let cheap_sig = cheap
            .signer(ServerId::new(0))
            .unwrap()
            .sign(digest.as_bytes());
        assert_ne!(cheap_sig, sig);
        assert!(!costly
            .verifier()
            .verify(ServerId::new(0), digest.as_bytes(), &cheap_sig));
        // `generate` is calibration 1.
        let default = KeyRegistry::generate(2, 5);
        let default_sig = default
            .signer(ServerId::new(0))
            .unwrap()
            .sign(digest.as_bytes());
        assert_eq!(default_sig, cheap_sig);
    }

    #[test]
    fn burst_accounting_tracks_multi_wave_units() {
        let registry = registry();
        let batch = registry.batch_verifier();
        let signer = registry.signer(ServerId::new(0)).unwrap();
        let digest = crate::sha256(b"m");
        let signature = signer.sign(digest.as_bytes());
        let item = SignedDigest {
            claimed: ServerId::new(0),
            digest,
            signature,
        };
        // Two waves verified, then accounted as one burst of 5.
        batch.verify_batch(&[item; 3]);
        batch.verify_batch(&[item; 2]);
        batch.note_burst(5);
        batch.note_burst(0); // empty bursts are not recorded
        batch.note_burst(2);
        assert_eq!(registry.metrics().bursts(), 2);
        assert_eq!(registry.metrics().burst_verifies(), 7);
        assert_eq!(registry.metrics().largest_burst(), 5);
        // Burst accounting never double-counts verifications.
        assert_eq!(registry.metrics().verifies(), 5);
        registry.metrics().reset();
        assert_eq!(registry.metrics().bursts(), 0);
        assert_eq!(registry.metrics().largest_burst(), 0);
    }

    #[test]
    fn deterministic_generation_all_schemes() {
        for (a, b) in all_registries().into_iter().zip(all_registries()) {
            let sig_a = a.signer(ServerId::new(0)).unwrap().sign(b"x");
            let sig_b = b.signer(ServerId::new(0)).unwrap().sign(b"x");
            assert_eq!(sig_a, sig_b, "{}", a.scheme_name());
        }
        let c = KeyRegistry::generate(2, 10);
        let d = KeyRegistry::generate(2, 9);
        let sig_c = c.signer(ServerId::new(0)).unwrap().sign(b"x");
        let sig_d = d.signer(ServerId::new(0)).unwrap().sign(b"x");
        assert_ne!(sig_c, sig_d);
    }

    #[test]
    fn signature_wire_roundtrip_and_debug() {
        let registry = KeyRegistry::generate_ed25519(1, 3);
        let sig = registry.signer(ServerId::new(0)).unwrap().sign(b"wire");
        let mut encoded = Vec::new();
        sig.encode(&mut encoded);
        assert_eq!(encoded.len(), Signature::SIZE);
        let mut reader = Reader::new(&encoded);
        let decoded = Signature::decode(&mut reader).unwrap();
        assert_eq!(decoded, sig);
        // Debug shows a short prefix, never the NULL/“full bytes” form.
        let rendered = format!("{sig:?}");
        assert!(rendered.starts_with("Signature("));
        assert!(rendered.len() < 30);
    }
}
