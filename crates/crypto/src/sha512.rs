//! FIPS 180-4 SHA-512, implemented from scratch.
//!
//! RFC 8032 defines ed25519 over SHA-512 (key expansion, the nonce `r`,
//! and the challenge scalar `h` are all SHA-512 outputs reduced mod `L`),
//! and the environment provides no cryptographic crates, so the standard
//! is implemented directly — the 64-bit sibling of [`crate::sha256`],
//! validated against the FIPS 180-4 / NIST CAVP test vectors below.

/// Round constants: first 64 bits of the fractional parts of the cube
/// roots of the first 80 primes (FIPS 180-4 §4.2.3).
const K: [u64; 80] = [
    0x428a2f98d728ae22,
    0x7137449123ef65cd,
    0xb5c0fbcfec4d3b2f,
    0xe9b5dba58189dbbc,
    0x3956c25bf348b538,
    0x59f111f1b605d019,
    0x923f82a4af194f9b,
    0xab1c5ed5da6d8118,
    0xd807aa98a3030242,
    0x12835b0145706fbe,
    0x243185be4ee4b28c,
    0x550c7dc3d5ffb4e2,
    0x72be5d74f27b896f,
    0x80deb1fe3b1696b1,
    0x9bdc06a725c71235,
    0xc19bf174cf692694,
    0xe49b69c19ef14ad2,
    0xefbe4786384f25e3,
    0x0fc19dc68b8cd5b5,
    0x240ca1cc77ac9c65,
    0x2de92c6f592b0275,
    0x4a7484aa6ea6e483,
    0x5cb0a9dcbd41fbd4,
    0x76f988da831153b5,
    0x983e5152ee66dfab,
    0xa831c66d2db43210,
    0xb00327c898fb213f,
    0xbf597fc7beef0ee4,
    0xc6e00bf33da88fc2,
    0xd5a79147930aa725,
    0x06ca6351e003826f,
    0x142929670a0e6e70,
    0x27b70a8546d22ffc,
    0x2e1b21385c26c926,
    0x4d2c6dfc5ac42aed,
    0x53380d139d95b3df,
    0x650a73548baf63de,
    0x766a0abb3c77b2a8,
    0x81c2c92e47edaee6,
    0x92722c851482353b,
    0xa2bfe8a14cf10364,
    0xa81a664bbc423001,
    0xc24b8b70d0f89791,
    0xc76c51a30654be30,
    0xd192e819d6ef5218,
    0xd69906245565a910,
    0xf40e35855771202a,
    0x106aa07032bbd1b8,
    0x19a4c116b8d2d0c8,
    0x1e376c085141ab53,
    0x2748774cdf8eeb99,
    0x34b0bcb5e19b48a8,
    0x391c0cb3c5c95a63,
    0x4ed8aa4ae3418acb,
    0x5b9cca4f7763e373,
    0x682e6ff3d6b2b8a3,
    0x748f82ee5defb2fc,
    0x78a5636f43172f60,
    0x84c87814a1f0ab72,
    0x8cc702081a6439ec,
    0x90befffa23631e28,
    0xa4506cebde82bde9,
    0xbef9a3f7b2c67915,
    0xc67178f2e372532b,
    0xca273eceea26619c,
    0xd186b8c721c0c207,
    0xeada7dd6cde0eb1e,
    0xf57d4f7fee6ed178,
    0x06f067aa72176fba,
    0x0a637dc5a2c898a6,
    0x113f9804bef90dae,
    0x1b710b35131c471b,
    0x28db77f523047d84,
    0x32caab7b40c72493,
    0x3c9ebe0a15c9bebc,
    0x431d67c49c100d4c,
    0x4cc5d4becb3e42b6,
    0x597f299cfc657e2a,
    0x5fcb6fab3ad6faec,
    0x6c44198c4a475817,
];

/// Initial hash values: first 64 bits of the fractional parts of the
/// square roots of the first 8 primes (FIPS 180-4 §5.3.5).
const H0: [u64; 8] = [
    0x6a09e667f3bcc908,
    0xbb67ae8584caa73b,
    0x3c6ef372fe94f82b,
    0xa54ff53a5f1d36f1,
    0x510e527fade682d1,
    0x9b05688c2b3e6c1f,
    0x1f83d9abfb41bd6b,
    0x5be0cd19137e2179,
];

/// Incremental SHA-512 hasher.
///
/// # Examples
///
/// ```
/// use dagbft_crypto::Sha512;
///
/// let mut hasher = Sha512::new();
/// hasher.update(b"ab");
/// hasher.update(b"c");
/// let digest = hasher.finalize();
/// assert_eq!(digest[0], 0xdd);
/// assert_eq!(digest.len(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct Sha512 {
    state: [u64; 8],
    /// Partially filled block awaiting compression.
    buffer: [u8; 128],
    /// Number of valid bytes in `buffer` (< 128).
    buffered: usize,
    /// Total message length in bytes so far (messages beyond 2^64 bytes
    /// are out of scope for this repo).
    length: u64,
}

impl Default for Sha512 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha512 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha512 {
            state: H0,
            buffer: [0; 128],
            buffered: 0,
            length: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut input = data;

        if self.buffered > 0 {
            let take = (128 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 128 {
                let block = self.buffer;
                compress(&mut self.state, &block);
                self.buffered = 0;
            }
        }

        while input.len() >= 128 {
            let mut block = [0u8; 128];
            block.copy_from_slice(&input[..128]);
            compress(&mut self.state, &block);
            input = &input[128..];
        }

        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Completes the hash and returns the 64-byte digest, consuming the
    /// hasher.
    pub fn finalize(mut self) -> [u8; 64] {
        let bit_length = (self.length as u128).wrapping_mul(8);

        // Padding: 0x80, zeros, then the 128-bit big-endian bit length.
        self.push_byte(0x80);
        while self.buffered != 112 {
            self.push_byte(0);
        }
        let mut block = self.buffer;
        block[112..128].copy_from_slice(&bit_length.to_be_bytes());
        compress(&mut self.state, &block);

        let mut out = [0u8; 64];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn push_byte(&mut self, byte: u8) {
        self.buffer[self.buffered] = byte;
        self.buffered += 1;
        if self.buffered == 128 {
            let block = self.buffer;
            compress(&mut self.state, &block);
            self.buffered = 0;
            self.buffer = [0; 128];
        }
    }
}

/// One application of the SHA-512 compression function (FIPS 180-4
/// §6.4.2).
fn compress(state: &mut [u64; 8], block: &[u8; 128]) {
    let mut w = [0u64; 80];
    for (i, chunk) in block.chunks_exact(8).enumerate() {
        w[i] = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
    }
    for i in 16..80 {
        let s0 = w[i - 15].rotate_right(1) ^ w[i - 15].rotate_right(8) ^ (w[i - 15] >> 7);
        let s1 = w[i - 2].rotate_right(19) ^ w[i - 2].rotate_right(61) ^ (w[i - 2] >> 6);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    for i in 0..80 {
        let big_s1 = e.rotate_right(14) ^ e.rotate_right(18) ^ e.rotate_right(41);
        let ch = (e & f) ^ (!e & g);
        let temp1 = h
            .wrapping_add(big_s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let big_s0 = a.rotate_right(28) ^ a.rotate_right(34) ^ a.rotate_right(39);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = big_s0.wrapping_add(maj);

        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Hashes `data` in one shot.
///
/// # Examples
///
/// ```
/// use dagbft_crypto::sha512;
///
/// let digest = sha512(b"");
/// assert_eq!(digest[0], 0xcf);
/// assert_eq!(digest[63], 0x3e);
/// ```
pub fn sha512(data: impl AsRef<[u8]>) -> [u8; 64] {
    let mut hasher = Sha512::new();
    hasher.update(data.as_ref());
    hasher.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: [u8; 64]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(sha512(b"")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce\
             47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(sha512(b"abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
             2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex(sha512(
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
                  ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
            )),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018\
             501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(sha512(&data)),
            "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb\
             de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..=255u8).cycle().take(400).collect();
        let expected = sha512(&data);
        for split in 0..data.len() {
            let mut hasher = Sha512::new();
            hasher.update(&data[..split]);
            hasher.update(&data[split..]);
            assert_eq!(hasher.finalize(), expected, "split at {split}");
        }
    }

    #[test]
    fn length_boundary_cases() {
        // Padding edge cases: lengths around the 111/112/128 boundaries.
        for len in [110usize, 111, 112, 113, 127, 128, 129, 239, 240, 256] {
            let data = vec![0xabu8; len];
            let oneshot = sha512(&data);
            let mut hasher = Sha512::new();
            for byte in &data {
                hasher.update(std::slice::from_ref(byte));
            }
            assert_eq!(hasher.finalize(), oneshot, "len {len}");
        }
    }
}
