//! FIPS 180-4 SHA-256, implemented from scratch.
//!
//! The environment provides no cryptographic crates, and the paper's block
//! reference `ref` (Definition 3.1) requires a collision-resistant hash, so
//! we implement the standard directly. The implementation is validated
//! against the FIPS 180-4 / NIST CAVP test vectors in this module's tests.

use crate::Digest;

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use dagbft_crypto::Sha256;
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"ab");
/// hasher.update(b"c");
/// assert_eq!(
///     hasher.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Partially filled block awaiting compression.
    buffer: [u8; 64],
    /// Number of valid bytes in `buffer` (< 64).
    buffered: usize,
    /// Total message length in bytes so far.
    length: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0; 64],
            buffered: 0,
            length: 0,
        }
    }

    /// Resumes hashing from a captured compression state after
    /// `blocks_processed` whole 64-byte blocks — the midstate trick HMAC
    /// key schedules use to absorb the padded key exactly once per key
    /// instead of once per MAC.
    pub(crate) fn from_midstate(state: [u32; 8], blocks_processed: u64) -> Self {
        Sha256 {
            state,
            buffer: [0; 64],
            buffered: 0,
            length: blocks_processed * 64,
        }
    }

    /// The compression state, valid as a resumable midstate only when a
    /// whole number of blocks has been absorbed (no buffered bytes).
    pub(crate) fn midstate(&self) -> [u32; 8] {
        debug_assert_eq!(self.buffered, 0, "midstate requires block alignment");
        self.state
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut input = data;

        if self.buffered > 0 {
            let take = (64 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }

        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.compress(&block);
            input = &input[64..];
        }

        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Completes the hash and returns the digest, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        let bit_length = self.length.wrapping_mul(8);

        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update_padding_byte();
        while self.buffered != 56 {
            self.update_zero_byte();
        }
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_length.to_be_bytes());
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest::from_bytes(out)
    }

    fn update_padding_byte(&mut self) {
        self.buffer[self.buffered] = 0x80;
        self.buffered += 1;
        if self.buffered == 64 {
            let block = self.buffer;
            self.compress(&block);
            self.buffered = 0;
            self.buffer = [0; 64];
        }
    }

    fn update_zero_byte(&mut self) {
        self.buffer[self.buffered] = 0;
        self.buffered += 1;
        if self.buffered == 64 {
            let block = self.buffer;
            self.compress(&block);
            self.buffered = 0;
            self.buffer = [0; 64];
        }
    }

    /// One application of the SHA-256 compression function (FIPS 180-4 §6.2.2).
    fn compress(&mut self, block: &[u8; 64]) {
        compress(&mut self.state, block);
    }
}

/// The raw SHA-256 compression function over a bare state — shared by the
/// incremental hasher and the HMAC fast path, which drives pre-absorbed
/// key midstates directly.
pub(crate) fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    for i in 0..64 {
        let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let temp1 = h
            .wrapping_add(big_s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = big_s0.wrapping_add(maj);

        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Hashes `data` in one shot.
///
/// # Examples
///
/// ```
/// use dagbft_crypto::sha256;
///
/// let digest = sha256(b"");
/// assert_eq!(
///     digest.to_hex(),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
/// );
/// ```
pub fn sha256(data: impl AsRef<[u8]>) -> Digest {
    let mut hasher = Sha256::new();
    hasher.update(data.as_ref());
    hasher.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(data: &[u8]) -> String {
        sha256(data).to_hex()
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_vector_four_blocks() {
        assert_eq!(
            hex(b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..=255u8).cycle().take(300).collect();
        let expected = sha256(&data);
        for split in 0..data.len() {
            let mut hasher = Sha256::new();
            hasher.update(&data[..split]);
            hasher.update(&data[split..]);
            assert_eq!(hasher.finalize(), expected, "split at {split}");
        }
    }

    #[test]
    fn length_boundary_cases() {
        // Padding edge cases: lengths around the 55/56/64 byte boundaries.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xabu8; len];
            let oneshot = sha256(&data);
            let mut hasher = Sha256::new();
            for byte in &data {
                hasher.update(std::slice::from_ref(byte));
            }
            assert_eq!(hasher.finalize(), oneshot, "len {len}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha256(b"a"), sha256(b"b"));
        assert_ne!(sha256(b""), sha256(b"\0"));
    }
}
