//! The ed25519 curve −x² + y² = 1 + d·x²y² over GF(2^255 − 19), in
//! extended twisted-Edwards coordinates (X : Y : Z : T), XY = ZT.
//!
//! Formulas are the standard unified add / dedicated double for a = −1
//! curves (the same completed-coordinates shapes ref10 uses), with strict
//! RFC 8032 §5.1.3 decompression: non-canonical `y`, and `x = 0` with the
//! sign bit set, are rejected at parse time. Every add/double bumps the
//! thread-local [`super::PointOps`] counters.

use std::sync::OnceLock;

use super::fe::{sqrt_m1, Fe};
use super::scalar::Scalar;
use super::{count_add, count_double};

/// The curve constant d = −121665/121666.
pub fn d() -> &'static Fe {
    static D: OnceLock<Fe> = OnceLock::new();
    D.get_or_init(|| {
        Fe::from_u64(121_665)
            .neg()
            .mul(&Fe::from_u64(121_666).invert())
    })
}

/// 2·d, the constant the extended addition formula consumes.
fn d2() -> &'static Fe {
    static D2: OnceLock<Fe> = OnceLock::new();
    D2.get_or_init(|| d().add(d()))
}

/// The RFC 8032 basepoint B (y = 4/5, x even).
pub fn basepoint() -> &'static Point {
    static B: OnceLock<Point> = OnceLock::new();
    B.get_or_init(|| {
        let mut bytes = [0x66u8; 32];
        bytes[0] = 0x58;
        Point::decompress(&bytes).expect("basepoint encoding is canonical")
    })
}

/// A curve point in extended coordinates.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

impl Point {
    /// The neutral element (0, 1).
    pub const IDENTITY: Point = Point {
        x: Fe::ZERO,
        y: Fe::ONE,
        z: Fe::ONE,
        t: Fe::ZERO,
    };

    /// Unified point addition.
    pub fn add(&self, other: &Point) -> Point {
        count_add();
        let a = self.y.sub(&self.x).mul(&other.y.sub(&other.x));
        let b = self.y.add(&self.x).mul(&other.y.add(&other.x));
        let c = self.t.mul(d2()).mul(&other.t);
        let zz = self.z.mul(&other.z);
        let dd = zz.add(&zz);
        let e = b.sub(&a);
        let f = dd.sub(&c);
        let g = dd.add(&c);
        let h = b.add(&a);
        Point {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Dedicated doubling.
    pub fn double(&self) -> Point {
        count_double();
        let xx = self.x.square();
        let yy = self.y.square();
        let zz = self.z.square();
        let zz2 = zz.add(&zz);
        let xy2 = self.x.add(&self.y).square();
        let b = yy.add(&xx);
        let a = xy2.sub(&b);
        let c = yy.sub(&xx);
        let dd = zz2.sub(&c);
        Point {
            x: a.mul(&dd),
            y: b.mul(&c),
            z: c.mul(&dd),
            t: a.mul(&b),
        }
    }

    /// Additive inverse.
    pub fn neg(&self) -> Point {
        Point {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// True for the neutral element.
    pub fn is_identity(&self) -> bool {
        self.x.is_zero() && self.y.sub(&self.z).is_zero()
    }

    /// Multiplies by the cofactor 8 (three doublings) — the projection
    /// that kills the torsion component before an identity check, making
    /// batch and serial verification agree on adversarial points.
    pub fn mul_by_cofactor(&self) -> Point {
        self.double().double().double()
    }

    /// True for the eight points of order dividing 8 (the torsion
    /// subgroup): exactly the points cofactored verification cannot
    /// distinguish from the identity.
    pub fn is_small_order(&self) -> bool {
        self.mul_by_cofactor().is_identity()
    }

    /// True if the point lies in the prime-order subgroup (\[L\]P = 𝒪) —
    /// the "mixed-order" check applied to public keys at registration.
    pub fn is_torsion_free(&self) -> bool {
        // Double-and-add over the bits of L itself (L is one more than
        // the largest representable Scalar, so this cannot reuse `mul`).
        const L_LIMBS: [u64; 4] = [
            0x5812631a5cf5d3ed,
            0x14def9dea2f79cd6,
            0x0000000000000000,
            0x1000000000000000,
        ];
        let mut acc = Point::IDENTITY;
        let mut started = false;
        for i in (0..253).rev() {
            if started {
                acc = acc.double();
            }
            if (L_LIMBS[i / 64] >> (i % 64)) & 1 == 1 {
                if started {
                    acc = acc.add(self);
                } else {
                    acc = *self;
                    started = true;
                }
            }
        }
        acc.is_identity()
    }

    /// Scalar multiplication, radix-16 windows over a 15-entry table.
    pub fn mul(&self, scalar: &Scalar) -> Point {
        let table = PointTable::new(self);
        let digits = scalar.to_radix16();
        let mut acc = Point::IDENTITY;
        let mut started = false;
        for i in (0..64).rev() {
            if started {
                acc = acc.double().double().double().double();
            }
            if digits[i] != 0 {
                acc = if started {
                    acc.add(table.entry(digits[i]))
                } else {
                    started = true;
                    *table.entry(digits[i])
                };
            }
        }
        acc
    }

    /// `[scalar]B` through a lazily built table of every radix-16 window
    /// of the basepoint: ~64 additions and no doublings per call, the
    /// fixed-base speedup signing and key generation lean on.
    pub fn mul_base(scalar: &Scalar) -> Point {
        static WINDOWS: OnceLock<Vec<PointTable>> = OnceLock::new();
        let windows = WINDOWS.get_or_init(|| {
            let mut tables = Vec::with_capacity(64);
            let mut window_base = *basepoint();
            for _ in 0..64 {
                tables.push(PointTable::new(&window_base));
                // Next window's base: 2^4 × the current one.
                window_base = window_base.double().double().double().double();
            }
            tables
        });
        let digits = scalar.to_radix16();
        let mut acc = Point::IDENTITY;
        let mut started = false;
        for (i, digit) in digits.iter().enumerate() {
            if *digit != 0 {
                let entry = windows[i].entry(*digit);
                acc = if started { acc.add(entry) } else { *entry };
                started = true;
            }
        }
        acc
    }

    /// Compresses to the 32-byte RFC 8032 encoding: `y` with the sign of
    /// `x` in bit 255.
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let mut bytes = y.to_bytes();
        if x.is_negative() {
            bytes[31] |= 0x80;
        }
        bytes
    }

    /// Strict RFC 8032 §5.1.3 decompression.
    ///
    /// Rejects non-canonical `y` (the masked value must be < p), square
    /// roots that do not exist (the encoding is not on the curve), and
    /// the non-canonical "negative zero" (`x = 0` with sign bit 1).
    pub fn decompress(bytes: &[u8; 32]) -> Option<Point> {
        let sign = bytes[31] >> 7 == 1;
        let y = Fe::from_bytes(bytes);
        let mut masked = *bytes;
        masked[31] &= 0x7f;
        if y.to_bytes() != masked {
            return None; // non-canonical y
        }

        let yy = y.square();
        let u = yy.sub(&Fe::ONE);
        let v = yy.mul(d()).add(&Fe::ONE);
        // Candidate root x = u·v³·(u·v⁷)^((p−5)/8).
        let v3 = v.square().mul(&v);
        let v7 = v3.square().mul(&v);
        let mut x = u.mul(&v3).mul(&u.mul(&v7).pow_p58());
        let vxx = v.mul(&x.square());
        if vxx.eq_fe(&u) {
            // x is the root.
        } else if vxx.eq_fe(&u.neg()) {
            x = x.mul(&sqrt_m1());
        } else {
            return None; // not a square: off the curve
        }
        if x.is_zero() && sign {
            return None; // non-canonical sign of zero
        }
        if x.is_negative() != sign {
            x = x.neg();
        }
        Some(Point {
            x,
            y,
            z: Fe::ONE,
            t: x.mul(&y),
        })
    }
}

/// The multiples [1·P, 2·P, …, 15·P] a radix-16 window indexes into.
pub(crate) struct PointTable([Point; 15]);

impl PointTable {
    pub(crate) fn new(point: &Point) -> PointTable {
        let mut table = [*point; 15];
        for i in 1..15 {
            table[i] = table[i - 1].add(point);
        }
        PointTable(table)
    }

    /// The entry for a non-zero digit.
    pub(crate) fn entry(&self, digit: u8) -> &Point {
        debug_assert!((1..=15).contains(&digit));
        &self.0[usize::from(digit) - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basepoint_is_canonical_and_torsion_free() {
        let b = basepoint();
        // y = 4/5.
        let four_fifths = Fe::from_u64(4).mul(&Fe::from_u64(5).invert());
        assert!(b.y.mul(&b.z.invert()).eq_fe(&four_fifths));
        // Round-trips through compression.
        let mut expected = [0x66u8; 32];
        expected[0] = 0x58;
        assert_eq!(b.compress(), expected);
        // Lies in the prime-order subgroup and is not small-order.
        assert!(b.is_torsion_free());
        assert!(!b.is_small_order());
    }

    #[test]
    fn identity_laws() {
        let b = basepoint();
        assert!(Point::IDENTITY.is_identity());
        assert!(Point::IDENTITY.is_small_order());
        assert!(Point::IDENTITY.is_torsion_free());
        // B + 𝒪 = B, B − B = 𝒪.
        assert_eq!(b.add(&Point::IDENTITY).compress(), b.compress());
        assert!(b.add(&b.neg()).is_identity());
    }

    #[test]
    fn add_double_agree() {
        let b = basepoint();
        assert_eq!(b.add(b).compress(), b.double().compress());
        let four = b.double().double();
        assert_eq!(b.add(b).add(b).add(b).compress(), four.compress());
    }

    #[test]
    fn scalar_mul_matches_repeated_addition() {
        let b = basepoint();
        let mut acc = *b;
        for k in 2u64..=20 {
            acc = acc.add(b);
            let via_mul = b.mul(&Scalar::from_u128(u128::from(k)));
            assert_eq!(via_mul.compress(), acc.compress(), "k = {k}");
            assert_eq!(
                Point::mul_base(&Scalar::from_u128(u128::from(k))).compress(),
                acc.compress(),
                "base k = {k}"
            );
        }
    }

    #[test]
    fn mul_distributes_over_scalar_add() {
        let a = Scalar::from_bytes_mod_order(&[0x35; 32]);
        let b = Scalar::from_bytes_mod_order(&[0x62; 32]);
        let left = Point::mul_base(&a.add(&b));
        let right = Point::mul_base(&a).add(&Point::mul_base(&b));
        assert_eq!(left.compress(), right.compress());
    }

    #[test]
    fn order_annihilates_basepoint_multiples() {
        // [L]([k]B) = 𝒪 for any k — the subgroup really has order L.
        for k in [1u128, 2, 7, 1 << 77] {
            let p = Point::mul_base(&Scalar::from_u128(k));
            assert!(p.is_torsion_free(), "k = {k}");
        }
    }

    #[test]
    fn decompress_rejects_non_canonical_y() {
        // y = p (≡ 0, but encoded non-canonically).
        let mut bytes = [0xffu8; 32];
        bytes[0] = 0xed;
        bytes[31] = 0x7f;
        assert!(Point::decompress(&bytes).is_none());
        // The canonical encoding of y = 0 decompresses fine (an order-4
        // point).
        let zero_y = [0u8; 32];
        let p = Point::decompress(&zero_y).expect("y = 0 is on the curve");
        assert!(p.is_small_order());
        assert!(!p.is_torsion_free());
    }

    #[test]
    fn decompress_rejects_negative_zero_x() {
        // y = 1 is the identity (x = 0); with the sign bit set the
        // encoding is non-canonical and must be rejected.
        let mut bytes = [0u8; 32];
        bytes[0] = 1;
        assert!(Point::decompress(&bytes).is_some());
        bytes[31] |= 0x80;
        assert!(Point::decompress(&bytes).is_none());
    }

    #[test]
    fn decompress_rejects_off_curve_y() {
        // Scan a few y values; at least one must be off-curve, and
        // decompress(compress(P)) must be P for those on it.
        let mut rejected = 0;
        for y in 2u8..30 {
            let mut bytes = [0u8; 32];
            bytes[0] = y;
            match Point::decompress(&bytes) {
                Some(p) => assert_eq!(p.compress(), bytes),
                None => rejected += 1,
            }
        }
        assert!(rejected > 0, "every candidate y decompressed");
    }

    #[test]
    fn ops_counters_track_work() {
        let before = super::super::ops_snapshot();
        let _ = basepoint().double();
        let _ = basepoint().add(basepoint());
        let after = super::super::ops_snapshot();
        let delta = after - before;
        assert_eq!(delta.doubles, 1);
        assert_eq!(delta.adds, 1);
        assert_eq!(delta.total(), 2);
    }
}
