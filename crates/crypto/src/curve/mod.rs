//! Curve25519 arithmetic for the ed25519 signature scheme, implemented
//! from scratch.
//!
//! The environment provides no cryptographic crates, so the whole stack
//! is in-tree: [`fe`] (the field GF(2^255 − 19), 5×51-bit limbs),
//! [`scalar`] (integers mod the basepoint order `L`), [`point`] (the
//! twisted Edwards curve in extended coordinates, RFC 8032 strict
//! compression/decompression), and [`msm`] (multi-scalar multiplication:
//! Straus for small batches, Pippenger above a width threshold — the
//! engine behind amortized batch signature verification).
//!
//! Every point addition and doubling bumps a thread-local counter
//! ([`PointOps`], [`ops_snapshot`]): curve-level costs are *counted*, not
//! timed, so the `report_sig` benchmark floor ("batched verification
//! beats serial by ≥1.5× at wave width ≥32") is machine-independent.
//!
//! This implementation prioritizes clarity and auditability over
//! constant-time execution: it reproduces a protocol simulation, not a
//! production wallet, and secret-dependent timing is out of scope.

pub mod fe;
pub mod msm;
pub mod point;
pub mod scalar;

use std::cell::Cell;

/// A count of elliptic-curve group operations (doublings and additions).
///
/// The unit of account for machine-independent signature benchmarks: one
/// doubling and one addition cost roughly the same handful of field
/// multiplications, so `doubles + adds` tracks real verification work
/// without depending on the host CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PointOps {
    /// Point doublings performed.
    pub doubles: u64,
    /// Point additions performed.
    pub adds: u64,
}

impl PointOps {
    /// Total group operations.
    pub fn total(&self) -> u64 {
        self.doubles + self.adds
    }
}

impl std::ops::Sub for PointOps {
    type Output = PointOps;

    fn sub(self, earlier: PointOps) -> PointOps {
        PointOps {
            doubles: self.doubles - earlier.doubles,
            adds: self.adds - earlier.adds,
        }
    }
}

thread_local! {
    static DOUBLES: Cell<u64> = const { Cell::new(0) };
    static ADDS: Cell<u64> = const { Cell::new(0) };
}

/// Snapshot of this thread's cumulative point-operation counters.
///
/// Benchmarks diff two snapshots around the work under measurement; the
/// counters only ever grow and are never reset.
pub fn ops_snapshot() -> PointOps {
    PointOps {
        doubles: DOUBLES.with(Cell::get),
        adds: ADDS.with(Cell::get),
    }
}

pub(crate) fn count_double() {
    DOUBLES.with(|c| c.set(c.get() + 1));
}

pub(crate) fn count_add() {
    ADDS.with(|c| c.set(c.get() + 1));
}
