//! The field GF(p), p = 2^255 − 19, in 5 × 51-bit limbs.
//!
//! Products of two 51-bit limbs fit a `u128` with room for the ×19
//! wraparound folding and the five-term accumulation, so multiplication
//! is plain schoolbook with a carry chain — no platform intrinsics.

/// A field element, as five base-2^51 limbs, little-endian.
///
/// Invariant maintained by every constructor and operation: each limb is
/// below 2^52 (operations internally tolerate more and reduce). Equality
/// must go through [`Fe::to_bytes`] — limb representations are not
/// unique.
#[derive(Debug, Clone, Copy)]
pub struct Fe(pub(crate) [u64; 5]);

const MASK: u64 = (1 << 51) - 1;

/// 16·p in 51-bit limbs: added before subtracting to keep limbs
/// non-negative (inputs have limbs < 2^52 ≤ the corresponding limb of
/// 16·p).
const SIXTEEN_P: [u64; 5] = [(MASK - 18) << 4, MASK << 4, MASK << 4, MASK << 4, MASK << 4];

impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe([0; 5]);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// A small integer as a field element.
    pub fn from_u64(value: u64) -> Fe {
        let mut fe = Fe([value & MASK, value >> 51, 0, 0, 0]);
        fe.reduce();
        fe
    }

    /// Parses 32 little-endian bytes, ignoring bit 255 (the sign bit in
    /// point encodings). The result is *not* guaranteed canonical —
    /// callers that must reject non-canonical encodings compare
    /// [`Fe::to_bytes`] of the result against the masked input.
    pub fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |range: std::ops::Range<usize>| -> u64 {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[range]);
            u64::from_le_bytes(word)
        };
        Fe([
            load(0..8) & MASK,
            (load(6..14) >> 3) & MASK,
            (load(12..20) >> 6) & MASK,
            (load(19..27) >> 1) & MASK,
            (load(24..32) >> 12) & MASK,
        ])
    }

    /// Canonical 32-byte little-endian encoding (fully reduced mod p;
    /// bit 255 is zero).
    pub fn to_bytes(self) -> [u8; 32] {
        let mut limbs = self.0;
        carry_chain(&mut limbs);
        // q = 1 iff limbs ≥ p, detected by whether adding 19 carries all
        // the way out of bit 255.
        let mut q = (limbs[0].wrapping_add(19)) >> 51;
        q = (limbs[1].wrapping_add(q)) >> 51;
        q = (limbs[2].wrapping_add(q)) >> 51;
        q = (limbs[3].wrapping_add(q)) >> 51;
        q = (limbs[4].wrapping_add(q)) >> 51;
        // Subtract q·p = q·(2^255 − 19): add 19q then drop bit 255.
        limbs[0] = limbs[0].wrapping_add(19 * q);
        let mut carry = limbs[0] >> 51;
        limbs[0] &= MASK;
        for limb in limbs.iter_mut().skip(1) {
            *limb = limb.wrapping_add(carry);
            carry = *limb >> 51;
            *limb &= MASK;
        }
        // `carry` here is exactly q's bit 255, discarded mod 2^255.

        let mut out = [0u8; 32];
        let words = [
            limbs[0] | (limbs[1] << 51),
            (limbs[1] >> 13) | (limbs[2] << 38),
            (limbs[2] >> 26) | (limbs[3] << 25),
            (limbs[3] >> 39) | (limbs[4] << 12),
        ];
        for (i, word) in words.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Sum.
    pub fn add(&self, other: &Fe) -> Fe {
        let mut out = Fe([
            self.0[0] + other.0[0],
            self.0[1] + other.0[1],
            self.0[2] + other.0[2],
            self.0[3] + other.0[3],
            self.0[4] + other.0[4],
        ]);
        out.reduce();
        out
    }

    /// Difference (computed as `self + 16p − other` to stay
    /// non-negative).
    pub fn sub(&self, other: &Fe) -> Fe {
        let mut out = Fe([
            self.0[0] + SIXTEEN_P[0] - other.0[0],
            self.0[1] + SIXTEEN_P[1] - other.0[1],
            self.0[2] + SIXTEEN_P[2] - other.0[2],
            self.0[3] + SIXTEEN_P[3] - other.0[3],
            self.0[4] + SIXTEEN_P[4] - other.0[4],
        ]);
        out.reduce();
        out
    }

    /// Additive inverse.
    pub fn neg(&self) -> Fe {
        Fe::ZERO.sub(self)
    }

    /// Product, with the 2^255 ≡ 19 wraparound folded into the
    /// schoolbook columns.
    pub fn mul(&self, other: &Fe) -> Fe {
        let a = self.0;
        let b = other.0;
        let m = |x: u64, y: u64| -> u128 { (x as u128) * (y as u128) };

        let b1_19 = 19 * b[1];
        let b2_19 = 19 * b[2];
        let b3_19 = 19 * b[3];
        let b4_19 = 19 * b[4];

        let mut c0 =
            m(a[0], b[0]) + m(a[1], b4_19) + m(a[2], b3_19) + m(a[3], b2_19) + m(a[4], b1_19);
        let mut c1 =
            m(a[0], b[1]) + m(a[1], b[0]) + m(a[2], b4_19) + m(a[3], b3_19) + m(a[4], b2_19);
        let mut c2 =
            m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + m(a[3], b4_19) + m(a[4], b3_19);
        let mut c3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + m(a[4], b4_19);
        let mut c4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        c1 += c0 >> 51;
        c0 &= MASK as u128;
        c2 += c1 >> 51;
        c1 &= MASK as u128;
        c3 += c2 >> 51;
        c2 &= MASK as u128;
        c4 += c3 >> 51;
        c3 &= MASK as u128;
        let carry = (c4 >> 51) as u64;
        c4 &= MASK as u128;

        let mut limbs = [c0 as u64, c1 as u64, c2 as u64, c3 as u64, c4 as u64];
        limbs[0] += 19 * carry;
        let mut fe = Fe(limbs);
        fe.reduce();
        fe
    }

    /// Square (delegates to [`Fe::mul`]; clarity over the ~20% saving a
    /// dedicated squaring would buy).
    pub fn square(&self) -> Fe {
        self.mul(self)
    }

    /// `self^exp` for a 32-byte little-endian exponent, by
    /// square-and-multiply. Only used for the handful of fixed exponents
    /// below — never on secret data.
    fn pow_bytes_le(&self, exp: &[u8; 32]) -> Fe {
        let mut acc = Fe::ONE;
        let mut started = false;
        for byte in exp.iter().rev() {
            for bit in (0..8).rev() {
                if started {
                    acc = acc.square();
                }
                if (byte >> bit) & 1 == 1 {
                    acc = acc.mul(self);
                    started = true;
                }
            }
        }
        acc
    }

    /// Multiplicative inverse (of zero: zero), via Fermat:
    /// `self^(p − 2)`.
    pub fn invert(&self) -> Fe {
        // p − 2 = 2^255 − 21.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xeb;
        exp[31] = 0x7f;
        self.pow_bytes_le(&exp)
    }

    /// `self^((p − 5) / 8)` — the core of the square-root computation in
    /// point decompression (RFC 8032 §5.1.3).
    pub fn pow_p58(&self) -> Fe {
        // (p − 5) / 8 = 2^252 − 3.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfd;
        exp[31] = 0x0f;
        self.pow_bytes_le(&exp)
    }

    /// True if the canonical encoding is all zero.
    pub fn is_zero(&self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// The "sign" of a field element per RFC 8032: the low bit of its
    /// canonical encoding.
    pub fn is_negative(&self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    /// Canonical-encoding equality.
    pub fn eq_fe(&self, other: &Fe) -> bool {
        self.to_bytes() == other.to_bytes()
    }

    /// One carry pass bringing every limb below 2^52 (below 2^51 except
    /// for at most a small excess in limb 0 from the ×19 wraparound).
    fn reduce(&mut self) {
        carry_chain(&mut self.0);
    }
}

/// √−1 = 2^((p−1)/4), computed once. Decompression multiplies by it when
/// the candidate root squares to −u/v instead of u/v.
pub fn sqrt_m1() -> Fe {
    static SQRT_M1: std::sync::OnceLock<Fe> = std::sync::OnceLock::new();
    *SQRT_M1.get_or_init(|| {
        // (p − 1) / 4 = 2^253 − 5.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfb;
        exp[31] = 0x1f;
        Fe::from_u64(2).pow_bytes_le(&exp)
    })
}

fn carry_chain(limbs: &mut [u64; 5]) {
    let mut carry = limbs[0] >> 51;
    limbs[0] &= MASK;
    for limb in limbs.iter_mut().skip(1) {
        *limb += carry;
        carry = *limb >> 51;
        *limb &= MASK;
    }
    limbs[0] += 19 * carry;
    let spill = limbs[0] >> 51;
    limbs[0] &= MASK;
    limbs[1] += spill;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(value: u64) -> Fe {
        Fe::from_u64(value)
    }

    /// p − 1 as bytes, the largest canonical encoding.
    fn p_minus_one_bytes() -> [u8; 32] {
        let mut bytes = [0xffu8; 32];
        bytes[0] = 0xec;
        bytes[31] = 0x7f;
        bytes
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(fe(2).add(&fe(3)).to_bytes(), fe(5).to_bytes());
        assert_eq!(fe(7).mul(&fe(6)).to_bytes(), fe(42).to_bytes());
        assert_eq!(fe(10).sub(&fe(4)).to_bytes(), fe(6).to_bytes());
        assert!(fe(0).is_zero());
        assert!(!fe(1).is_zero());
    }

    #[test]
    fn wraparound_identities() {
        // p ≡ 0: encode p's byte pattern and check it reduces to zero.
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        assert!(Fe::from_bytes(&p_bytes).is_zero());
        // −1 + 1 ≡ 0.
        let minus_one = Fe::from_bytes(&p_minus_one_bytes());
        assert!(minus_one.add(&Fe::ONE).is_zero());
        // (−1)·(−1) ≡ 1.
        assert!(minus_one.mul(&minus_one).eq_fe(&Fe::ONE));
    }

    #[test]
    fn to_bytes_is_canonical() {
        // 2^255 − 19 + 5 encodes the same as 5.
        let mut bytes = [0xffu8; 32];
        bytes[0] = 0xed + 5;
        bytes[31] = 0x7f;
        assert_eq!(Fe::from_bytes(&bytes).to_bytes(), fe(5).to_bytes());
        // Round-trip of a canonical value is the identity.
        let canon = p_minus_one_bytes();
        assert_eq!(Fe::from_bytes(&canon).to_bytes(), canon);
    }

    #[test]
    fn inverse_and_distributivity() {
        let a = fe(123_456_789);
        assert!(a.mul(&a.invert()).eq_fe(&Fe::ONE));
        let b = fe(987_654_321);
        let c = fe(31_337);
        // a(b + c) = ab + ac across limb-representation differences.
        let left = a.mul(&b.add(&c));
        let right = a.mul(&b).add(&a.mul(&c));
        assert!(left.eq_fe(&right));
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let minus_one = Fe::ZERO.sub(&Fe::ONE);
        assert!(sqrt_m1().square().eq_fe(&minus_one));
    }

    #[test]
    fn negation_and_sign() {
        let a = fe(2);
        assert!(a.neg().add(&a).is_zero());
        // 2 is even, p − 2 is odd.
        assert!(!a.is_negative());
        assert!(a.neg().is_negative());
    }

    #[test]
    fn mul_matches_naive_double_and_add() {
        // Cross-check limb multiplication against repeated addition for a
        // few moderate operands.
        for (x, reps) in [(97u64, 1000u64), (123_456, 777), (1 << 40, 513)] {
            let base = fe(x);
            let mut sum = Fe::ZERO;
            for _ in 0..reps {
                sum = sum.add(&base);
            }
            assert!(base.mul(&fe(reps)).eq_fe(&sum), "{x} × {reps}");
        }
    }
}
