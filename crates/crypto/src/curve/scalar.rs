//! Integers modulo the ed25519 basepoint order
//! L = 2^252 + 27742317777372353535851937790883648493.
//!
//! Scalar work is a rounding error next to point operations, so the
//! representation favors obvious correctness: four `u64` limbs, wide
//! products reduced by binary shift-subtract long division. Canonicality
//! (`s < L`, RFC 8032's strict check on the wire) is a first-class
//! operation.

/// The group order `L`, as little-endian `u64` limbs.
const L: [u64; 4] = [
    0x5812631a5cf5d3ed,
    0x14def9dea2f79cd6,
    0x0000000000000000,
    0x1000000000000000,
];

/// An integer mod L, always fully reduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scalar(pub(crate) [u64; 4]);

impl Scalar {
    /// Zero.
    pub const ZERO: Scalar = Scalar([0; 4]);
    /// One.
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Parses a canonical little-endian encoding, rejecting `s ≥ L`
    /// (RFC 8032 strict verification — malleable encodings never reach
    /// the arithmetic).
    pub fn from_bytes_canonical(bytes: &[u8; 32]) -> Option<Scalar> {
        let limbs = load_limbs(bytes);
        if less_than(&limbs, &L) {
            Some(Scalar(limbs))
        } else {
            None
        }
    }

    /// Parses 32 little-endian bytes, reducing mod L.
    pub fn from_bytes_mod_order(bytes: &[u8; 32]) -> Scalar {
        let mut wide = [0u64; 8];
        wide[..4].copy_from_slice(&load_limbs(bytes));
        reduce_wide(&wide)
    }

    /// Parses 64 little-endian bytes (a SHA-512 output), reducing mod L.
    pub fn from_bytes_wide(bytes: &[u8; 64]) -> Scalar {
        let mut wide = [0u64; 8];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            wide[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        reduce_wide(&wide)
    }

    /// A 128-bit value as a scalar (batch-verification coefficients).
    pub fn from_u128(value: u128) -> Scalar {
        Scalar([value as u64, (value >> 64) as u64, 0, 0])
    }

    /// Canonical little-endian encoding.
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&limb.to_le_bytes());
        }
        out
    }

    /// Sum mod L.
    pub fn add(&self, other: &Scalar) -> Scalar {
        let mut limbs = [0u64; 4];
        let mut carry = 0u64;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let (sum, o1) = self.0[i].overflowing_add(other.0[i]);
            let (sum, o2) = sum.overflowing_add(carry);
            *limb = sum;
            carry = u64::from(o1) + u64::from(o2);
        }
        // Both inputs < L < 2^253, so the sum fits 254 bits: no carry
        // out, and at most one subtraction of L.
        debug_assert_eq!(carry, 0);
        if !less_than(&limbs, &L) {
            sub_in_place(&mut limbs, &L);
        }
        Scalar(limbs)
    }

    /// Additive inverse mod L.
    pub fn neg(&self) -> Scalar {
        if self.0 == [0; 4] {
            return Scalar::ZERO;
        }
        let mut limbs = L;
        sub_in_place(&mut limbs, &self.0);
        Scalar(limbs)
    }

    /// Product mod L.
    pub fn mul(&self, other: &Scalar) -> Scalar {
        let mut wide = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let acc = wide[i + j] as u128 + (self.0[i] as u128) * (other.0[j] as u128) + carry;
                wide[i + j] = acc as u64;
                carry = acc >> 64;
            }
            wide[i + 4] = carry as u64;
        }
        reduce_wide(&wide)
    }

    /// True for the zero scalar.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// The scalar as 64 base-16 digits, little-endian — the window
    /// decomposition Straus-style multi-scalar multiplication walks.
    pub fn to_radix16(self) -> [u8; 64] {
        let bytes = self.to_bytes();
        let mut digits = [0u8; 64];
        for (i, byte) in bytes.iter().enumerate() {
            digits[2 * i] = byte & 0x0f;
            digits[2 * i + 1] = byte >> 4;
        }
        digits
    }

    /// Digit `index` of the base-2^width decomposition (width ≤ 16) —
    /// the bucket selector for Pippenger windows.
    pub fn window_digit(&self, index: usize, width: usize) -> usize {
        debug_assert!(width <= 16);
        let bit = index * width;
        if bit >= 256 {
            return 0;
        }
        let limb = bit / 64;
        let shift = bit % 64;
        let mut digit = self.0[limb] >> shift;
        if shift + width > 64 && limb + 1 < 4 {
            digit |= self.0[limb + 1] << (64 - shift);
        }
        (digit as usize) & ((1 << width) - 1)
    }
}

fn load_limbs(bytes: &[u8; 32]) -> [u64; 4] {
    let mut limbs = [0u64; 4];
    for (i, chunk) in bytes.chunks_exact(8).enumerate() {
        limbs[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
    }
    limbs
}

fn less_than(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

fn sub_in_place(a: &mut [u64; 4], b: &[u64; 4]) {
    let mut borrow = 0u64;
    for i in 0..4 {
        let (diff, b1) = a[i].overflowing_sub(b[i]);
        let (diff, b2) = diff.overflowing_sub(borrow);
        a[i] = diff;
        borrow = u64::from(b1) + u64::from(b2);
    }
    debug_assert_eq!(borrow, 0, "subtraction underflow");
}

/// Reduces a 512-bit value mod L by binary long division: scan bits from
/// the top, shifting into an accumulator that is reduced whenever it
/// reaches L. ~512 constant-time-ish limb steps — microseconds, done a
/// handful of times per signature.
fn reduce_wide(wide: &[u64; 8]) -> Scalar {
    let mut acc = [0u64; 4];
    for i in (0..512).rev() {
        // acc = (acc << 1) | bit_i; acc < 2L < 2^254 so the shift never
        // overflows 256 bits.
        let mut carry = (wide[i / 64] >> (i % 64)) & 1;
        for limb in acc.iter_mut() {
            let next = *limb >> 63;
            *limb = (*limb << 1) | carry;
            carry = next;
        }
        debug_assert_eq!(carry, 0);
        if !less_than(&acc, &L) {
            sub_in_place(&mut acc, &L);
        }
    }
    Scalar(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_minus_one() -> Scalar {
        let mut limbs = L;
        sub_in_place(&mut limbs, &[1, 0, 0, 0]);
        Scalar(limbs)
    }

    #[test]
    fn canonical_boundary() {
        // L − 1 parses; L and L + 1 do not.
        assert!(Scalar::from_bytes_canonical(&l_minus_one().to_bytes()).is_some());
        let l_bytes = Scalar(L).to_bytes();
        assert!(Scalar::from_bytes_canonical(&l_bytes).is_none());
        let mut l_plus = L;
        l_plus[0] += 1;
        assert!(Scalar::from_bytes_canonical(&Scalar(l_plus).to_bytes()).is_none());
        // …but mod-order parsing folds them back.
        assert_eq!(Scalar::from_bytes_mod_order(&l_bytes), Scalar::ZERO);
    }

    #[test]
    fn add_wraps_at_l() {
        let a = l_minus_one();
        assert_eq!(a.add(&Scalar::ONE), Scalar::ZERO);
        assert_eq!(a.add(&Scalar::ZERO), a);
        // (L − 1) + (L − 1) = L − 2 mod L.
        let mut expect = L;
        sub_in_place(&mut expect, &[2, 0, 0, 0]);
        assert_eq!(a.add(&a), Scalar(expect));
    }

    #[test]
    fn neg_is_additive_inverse() {
        for value in [0u128, 1, 2, 0xffff_ffff_ffff_ffff, 1 << 100] {
            let s = Scalar::from_u128(value);
            assert_eq!(s.add(&s.neg()), Scalar::ZERO, "{value}");
        }
        assert_eq!(Scalar::ZERO.neg(), Scalar::ZERO);
    }

    #[test]
    fn mul_small_values_and_identities() {
        let six = Scalar::from_u128(6);
        let seven = Scalar::from_u128(7);
        assert_eq!(six.mul(&seven), Scalar::from_u128(42));
        assert_eq!(six.mul(&Scalar::ONE), six);
        assert_eq!(six.mul(&Scalar::ZERO), Scalar::ZERO);
        // (L − 1)² = 1 mod L (since L − 1 ≡ −1).
        assert_eq!(l_minus_one().mul(&l_minus_one()), Scalar::ONE);
    }

    #[test]
    fn wide_reduction_matches_mul() {
        // 2^256 mod L via from_bytes_wide equals ((2^128 mod L)²) mod L.
        let mut wide_bytes = [0u8; 64];
        wide_bytes[32] = 1; // 2^256
        let direct = Scalar::from_bytes_wide(&wide_bytes);
        let half = {
            let mut bytes = [0u8; 64];
            bytes[16] = 1; // 2^128
            Scalar::from_bytes_wide(&bytes)
        };
        assert_eq!(direct, half.mul(&half));
    }

    #[test]
    fn radix16_recomposes() {
        let s = Scalar::from_u128(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210);
        let digits = s.to_radix16();
        let mut acc = Scalar::ZERO;
        let sixteen = Scalar::from_u128(16);
        for digit in digits.iter().rev() {
            acc = acc
                .mul(&sixteen)
                .add(&Scalar::from_u128(u128::from(*digit)));
        }
        assert_eq!(acc, s);
    }

    #[test]
    fn window_digits_recompose() {
        let s = l_minus_one();
        for width in [4usize, 6, 8, 12] {
            let windows = 256usize.div_ceil(width);
            let mut acc = Scalar::ZERO;
            let base = Scalar::from_u128(1 << width);
            for w in (0..windows).rev() {
                acc = acc.mul(&base);
                acc = acc.add(&Scalar::from_u128(s.window_digit(w, width) as u128));
            }
            assert_eq!(acc, s, "width {width}");
        }
    }
}
