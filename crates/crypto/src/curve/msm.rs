//! Multi-scalar multiplication: Σ \[sᵢ\]Pᵢ in one pass.
//!
//! Two engines, picked by batch size:
//!
//! * **Straus** (interleaved radix-16 windows): one shared doubling chain
//!   for the whole batch — ~252 doublings total instead of ~252 *per
//!   point* — plus a 15-entry table and ~60 additions per point. Wins
//!   from the first point and dominates at wave-sized batches.
//! * **Pippenger** (bucket method): per window, points land in buckets by
//!   digit and a running sum recombines them, so per-point cost falls to
//!   one addition per window. The fixed bucket overhead amortizes only
//!   past [`PIPPENGER_THRESHOLD_POINTS`]; below it Straus is cheaper.
//!
//! Cost here is *counted* (thread-local [`super::PointOps`]) rather than
//! timed, which is what makes the `report_sig` batch-verification floor
//! machine-independent.

use super::point::{Point, PointTable};
use super::scalar::Scalar;

/// Batch size (in points, not signatures) above which Pippenger's bucket
/// overhead amortizes below Straus's per-point table+window cost. A
/// k-signature batch verification is an MSM over 2k + 1 points, so this
/// corresponds to a wave width of ~96 blocks.
pub const PIPPENGER_THRESHOLD_POINTS: usize = 192;

/// The engine [`msm`] picks for a batch of `points` points.
pub fn msm_engine(points: usize) -> &'static str {
    if points >= PIPPENGER_THRESHOLD_POINTS {
        "pippenger"
    } else {
        "straus"
    }
}

/// Σ \[sᵢ\]Pᵢ, dispatching on batch size.
///
/// # Panics
///
/// If `scalars` and `points` differ in length.
pub fn msm(scalars: &[Scalar], points: &[Point]) -> Point {
    assert_eq!(scalars.len(), points.len(), "msm input length mismatch");
    if scalars.len() >= PIPPENGER_THRESHOLD_POINTS {
        pippenger(scalars, points)
    } else {
        straus(scalars, points)
    }
}

/// Straus: interleaved radix-16 windowed multiplication with one shared
/// doubling chain.
pub fn straus(scalars: &[Scalar], points: &[Point]) -> Point {
    assert_eq!(scalars.len(), points.len(), "msm input length mismatch");
    let tables: Vec<PointTable> = points.iter().map(PointTable::new).collect();
    let digits: Vec<[u8; 64]> = scalars.iter().map(|s| s.to_radix16()).collect();

    let mut acc: Option<Point> = None;
    for window in (0..64).rev() {
        if let Some(point) = acc.as_mut() {
            *point = point.double().double().double().double();
        }
        for (table, digit_row) in tables.iter().zip(&digits) {
            let digit = digit_row[window];
            if digit != 0 {
                let entry = table.entry(digit);
                acc = Some(match acc {
                    Some(point) => point.add(entry),
                    None => *entry,
                });
            }
        }
    }
    acc.unwrap_or(Point::IDENTITY)
}

/// Pippenger: per-window bucket accumulation with a running-sum
/// recombination. Window width grows with batch size.
pub fn pippenger(scalars: &[Scalar], points: &[Point]) -> Point {
    assert_eq!(scalars.len(), points.len(), "msm input length mismatch");
    if scalars.is_empty() {
        return Point::IDENTITY;
    }
    let width = match scalars.len() {
        0..=63 => 4,
        64..=255 => 5,
        256..=1023 => 6,
        _ => 7,
    };
    let windows = 256usize.div_ceil(width);
    let mut acc: Option<Point> = None;

    for window in (0..windows).rev() {
        if let Some(point) = acc.as_mut() {
            for _ in 0..width {
                *point = point.double();
            }
        }
        let mut buckets: Vec<Option<Point>> = vec![None; (1 << width) - 1];
        for (scalar, point) in scalars.iter().zip(points) {
            let digit = scalar.window_digit(window, width);
            if digit != 0 {
                let bucket = &mut buckets[digit - 1];
                *bucket = Some(match bucket {
                    Some(existing) => existing.add(point),
                    None => *point,
                });
            }
        }
        // Σ d·bucket_d via the running sum: walking buckets from the
        // highest digit down, each bucket joins `running` once and
        // `running` joins `total` once per remaining step.
        let mut running: Option<Point> = None;
        let mut total: Option<Point> = None;
        for bucket in buckets.into_iter().rev() {
            if let Some(point) = bucket {
                running = Some(match running {
                    Some(sum) => sum.add(&point),
                    None => point,
                });
            }
            if let Some(sum) = &running {
                total = Some(match total {
                    Some(existing) => existing.add(sum),
                    None => *sum,
                });
            }
        }
        if let Some(window_total) = total {
            acc = Some(match acc {
                Some(point) => point.add(&window_total),
                None => window_total,
            });
        }
    }
    acc.unwrap_or(Point::IDENTITY)
}

#[cfg(test)]
mod tests {
    use super::super::ops_snapshot;
    use super::super::point::basepoint;
    use super::*;

    /// Deterministic "random" scalars from a cheap LCG over bytes.
    fn test_scalars(n: usize, seed: u8) -> Vec<Scalar> {
        (0..n)
            .map(|i| {
                let mut bytes = [0u8; 32];
                let mut state = seed.wrapping_add(i as u8) | 1;
                for byte in bytes.iter_mut() {
                    state = state.wrapping_mul(167).wrapping_add(13);
                    *byte = state;
                }
                Scalar::from_bytes_mod_order(&bytes)
            })
            .collect()
    }

    fn test_points(n: usize) -> Vec<Point> {
        // Distinct multiples of B.
        (0..n)
            .map(|i| Point::mul_base(&Scalar::from_u128(2 * i as u128 + 3)))
            .collect()
    }

    fn naive(scalars: &[Scalar], points: &[Point]) -> Point {
        let mut acc = Point::IDENTITY;
        for (scalar, point) in scalars.iter().zip(points) {
            acc = acc.add(&point.mul(scalar));
        }
        acc
    }

    #[test]
    fn empty_msm_is_identity() {
        assert!(msm(&[], &[]).is_identity());
        assert!(straus(&[], &[]).is_identity());
        assert!(pippenger(&[], &[]).is_identity());
    }

    #[test]
    fn both_engines_match_naive_sum() {
        for n in [1usize, 2, 5, 17] {
            let scalars = test_scalars(n, 7);
            let points = test_points(n);
            let expected = naive(&scalars, &points).compress();
            assert_eq!(straus(&scalars, &points).compress(), expected, "n = {n}");
            assert_eq!(pippenger(&scalars, &points).compress(), expected, "n = {n}");
            assert_eq!(msm(&scalars, &points).compress(), expected, "n = {n}");
        }
    }

    #[test]
    fn engines_agree_on_zero_scalars() {
        let mut scalars = test_scalars(6, 3);
        scalars[0] = Scalar::ZERO;
        scalars[4] = Scalar::ZERO;
        let points = test_points(6);
        assert_eq!(
            straus(&scalars, &points).compress(),
            pippenger(&scalars, &points).compress()
        );
    }

    #[test]
    fn engine_dispatch_threshold() {
        assert_eq!(msm_engine(1), "straus");
        assert_eq!(msm_engine(PIPPENGER_THRESHOLD_POINTS - 1), "straus");
        assert_eq!(msm_engine(PIPPENGER_THRESHOLD_POINTS), "pippenger");
    }

    #[test]
    fn straus_amortizes_doublings() {
        // The whole point of the batch path: 16 points cost far fewer
        // group operations through one Straus pass than through 16
        // independent scalar multiplications.
        let scalars = test_scalars(16, 11);
        let points = test_points(16);

        let before = ops_snapshot();
        let batched = straus(&scalars, &points);
        let mid = ops_snapshot();
        let serial = naive(&scalars, &points);
        let after = ops_snapshot();

        assert_eq!(batched.compress(), serial.compress());
        let batched_ops = (mid - before).total();
        let serial_ops = (after - mid).total();
        assert!(
            batched_ops * 2 < serial_ops,
            "straus {batched_ops} ops vs serial {serial_ops}"
        );
        // And the shared chain pays at most one full-width doubling run.
        assert!((mid - before).doubles <= 252 + u64::from(basepoint().is_identity()));
    }

    #[test]
    fn pippenger_beats_straus_past_threshold() {
        let n = PIPPENGER_THRESHOLD_POINTS + 64;
        let scalars = test_scalars(n, 29);
        let points = test_points(n);

        let before = ops_snapshot();
        let s = straus(&scalars, &points);
        let mid = ops_snapshot();
        let p = pippenger(&scalars, &points);
        let after = ops_snapshot();

        assert_eq!(s.compress(), p.compress());
        assert!(
            (after - mid).total() < (mid - before).total(),
            "pippenger {:?} not below straus {:?}",
            after - mid,
            mid - before
        );
    }
}
