//! RFC 8032 ed25519 over the in-tree [`crate::curve`] arithmetic, with
//! genuinely amortized batch verification.
//!
//! Serial verification is *cofactored* — `[8]([s]B − [k]A − R) = 𝒪` —
//! and batch verification checks one random-linear-combination equation
//!
//! ```text
//! [8]( [Σ zᵢsᵢ]B − Σ [zᵢ]Rᵢ − Σ [zᵢkᵢ]Aᵢ ) = 𝒪
//! ```
//!
//! via a single multi-scalar multiplication ([`crate::curve::msm`]:
//! Straus for wave-sized batches, Pippenger past the width threshold).
//! Cofactoring both sides makes the two paths agree on *every* input,
//! adversarial torsion points included, so batch-accept ⟺ every item
//! serial-accepts (up to the 2⁻¹²⁸ linear-combination slack).
//!
//! The coefficients `zᵢ` are derived deterministically from the whole
//! batch transcript (SHA-512, Fiat–Shamir style) rather than sampled:
//! whole-simulation runs must stay reproducible, and the 128-bit
//! soundness bound does not rely on secrecy, only on the zᵢ being fixed
//! before the equation is evaluated. When the combined equation fails,
//! a binary split pinpoints the forged items: subranges whose equation
//! holds are accepted wholesale, failing singletons resolve to their
//! exact serial verdict — which is how "exactly the tampered block
//! rejected, dependents stranded" survives any batch grouping.

use crate::curve::msm::msm;
use crate::curve::point::Point;
use crate::curve::scalar::Scalar;
use crate::{sha512, Sha512};

/// An ed25519 keypair's secret half, expanded per RFC 8032 §5.1.5.
#[derive(Clone)]
pub struct SecretKey {
    /// The clamped signing scalar (reduced mod L — equivalent under a
    /// basepoint of order L).
    scalar: Scalar,
    /// The second half of the SHA-512 key expansion, the deterministic
    /// nonce prefix.
    prefix: [u8; 32],
    /// The compressed public key, bound into every signature hash.
    public_bytes: [u8; 32],
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "Ed25519SecretKey(…)")
    }
}

/// An ed25519 public key: the compressed encoding plus, when the
/// encoding is valid, the decompressed point cached for verification.
#[derive(Debug, Clone)]
pub struct PublicKey {
    bytes: [u8; 32],
    /// `None` when the encoding is rejected (off-curve, non-canonical,
    /// small-order, or carrying torsion) — such a key verifies nothing.
    point: Option<Point>,
}

impl PublicKey {
    /// Parses a compressed public key, applying the strict checks once:
    /// canonical encoding, on-curve, not small-order, and torsion-free
    /// (`[L]A = 𝒪`, the "mixed-order" rejection). Returns a key handle
    /// either way; an invalid key simply never verifies.
    pub fn from_bytes(bytes: [u8; 32]) -> PublicKey {
        let point =
            Point::decompress(&bytes).filter(|p| !p.is_small_order() && p.is_torsion_free());
        PublicKey { bytes, point }
    }

    /// The compressed encoding.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.bytes
    }

    /// True if the encoding passed the strict parse.
    pub fn is_valid(&self) -> bool {
        self.point.is_some()
    }
}

/// Derives a keypair from a 32-byte seed (RFC 8032 §5.1.5).
pub fn keygen(seed: &[u8; 32]) -> (SecretKey, PublicKey) {
    let h = sha512(seed);
    let mut scalar_bytes: [u8; 32] = h[..32].try_into().expect("32-byte half");
    scalar_bytes[0] &= 248;
    scalar_bytes[31] &= 127;
    scalar_bytes[31] |= 64;
    let scalar = Scalar::from_bytes_mod_order(&scalar_bytes);
    let prefix: [u8; 32] = h[32..].try_into().expect("32-byte half");
    let public_point = Point::mul_base(&scalar);
    let public_bytes = public_point.compress();
    (
        SecretKey {
            scalar,
            prefix,
            public_bytes,
        },
        PublicKey {
            bytes: public_bytes,
            point: Some(public_point),
        },
    )
}

/// Signs `message` (RFC 8032 §5.1.6): 64 bytes, `R ‖ s`.
pub fn sign(secret: &SecretKey, message: &[u8]) -> [u8; 64] {
    let mut nonce_hash = Sha512::new();
    nonce_hash.update(&secret.prefix);
    nonce_hash.update(message);
    let r = Scalar::from_bytes_wide(&nonce_hash.finalize());
    let r_bytes = Point::mul_base(&r).compress();

    let k = challenge(&r_bytes, &secret.public_bytes, message);
    let s = k.mul(&secret.scalar).add(&r);

    let mut signature = [0u8; 64];
    signature[..32].copy_from_slice(&r_bytes);
    signature[32..].copy_from_slice(&s.to_bytes());
    signature
}

/// The challenge scalar k = SHA-512(R ‖ A ‖ M) mod L.
fn challenge(r_bytes: &[u8; 32], public_bytes: &[u8; 32], message: &[u8]) -> Scalar {
    let mut hash = Sha512::new();
    hash.update(r_bytes);
    hash.update(public_bytes);
    hash.update(message);
    Scalar::from_bytes_wide(&hash.finalize())
}

/// A signature parsed into its verification inputs.
struct ParsedSignature {
    r_point: Point,
    r_bytes: [u8; 32],
    s: Scalar,
}

/// Strict parse: `s` canonical (< L), `R` canonically encoded, on-curve,
/// and not small-order.
fn parse_signature(public: &PublicKey, signature: &[u8; 64]) -> Option<ParsedSignature> {
    public.point?;
    let r_bytes: [u8; 32] = signature[..32].try_into().expect("32-byte half");
    let s_bytes: [u8; 32] = signature[32..].try_into().expect("32-byte half");
    let s = Scalar::from_bytes_canonical(&s_bytes)?;
    let r_point = Point::decompress(&r_bytes).filter(|r| !r.is_small_order())?;
    Some(ParsedSignature {
        r_point,
        r_bytes,
        s,
    })
}

/// Cofactored serial verification: `[8]([s]B − [k]A − R) = 𝒪`.
pub fn verify(public: &PublicKey, message: &[u8], signature: &[u8; 64]) -> bool {
    let Some(parsed) = parse_signature(public, signature) else {
        return false;
    };
    let a_point = public.point.expect("parse checked key validity");
    let k = challenge(&parsed.r_bytes, &public.bytes, message);
    verify_equation(&parsed, &a_point, &k)
}

/// [`verify`] without the cached decompressed key: re-parses the
/// compressed public key on every call. The pre-hoist baseline the
/// `report_admission` bench compares against; not used on any hot path.
pub fn verify_cold(public_bytes: &[u8; 32], message: &[u8], signature: &[u8; 64]) -> bool {
    verify(&PublicKey::from_bytes(*public_bytes), message, signature)
}

fn verify_equation(parsed: &ParsedSignature, a_point: &Point, k: &Scalar) -> bool {
    // [s]B + [k](−A) + (−R), cofactored.
    let combined = msm(
        &[parsed.s, *k],
        &[*crate::curve::point::basepoint(), a_point.neg()],
    )
    .add(&parsed.r_point.neg());
    combined.mul_by_cofactor().is_identity()
}

/// One batch item: the claim "`signature` was produced over `message`
/// by the holder of `public`".
pub struct BatchItem<'a> {
    /// The claimed signer's public key.
    pub public: &'a PublicKey,
    /// The signed message.
    pub message: &'a [u8],
    /// The signature under test.
    pub signature: &'a [u8; 64],
}

/// An item that survived the strict parse, with its challenge scalar and
/// linear-combination coefficient precomputed.
struct PreparedItem {
    index: usize,
    a_point: Point,
    parsed: ParsedSignature,
    k: Scalar,
    z: Scalar,
}

/// Verifies a whole batch through one multi-scalar multiplication,
/// returning per-item verdicts in input order.
///
/// Items failing the strict parse (invalid key, non-canonical `s` or
/// `R`, small-order `R`) are rejected up front without touching the
/// equation. The rest are combined with deterministic 128-bit
/// coefficients; if the combined equation fails, a binary split isolates
/// the forged items so the verdict vector always equals the serial one.
pub fn verify_batch(items: &[BatchItem<'_>]) -> Vec<bool> {
    let mut verdicts = vec![false; items.len()];
    let mut prepared = Vec::with_capacity(items.len());
    for (index, item) in items.iter().enumerate() {
        let Some(parsed) = parse_signature(item.public, item.signature) else {
            continue;
        };
        let k = challenge(&parsed.r_bytes, &item.public.bytes, item.message);
        prepared.push(PreparedItem {
            index,
            a_point: item.public.point.expect("parse checked key validity"),
            parsed,
            k,
            z: Scalar::ZERO, // assigned below from the batch transcript
        });
    }

    // Deterministic coefficients, Fiat–Shamir style over the whole batch:
    // fixed before the equation is evaluated, reproducible across runs.
    let mut transcript = Sha512::new();
    transcript.update(b"dagbft.ed25519.batch.v1");
    for item in items {
        transcript.update(item.public.as_bytes());
        transcript.update(item.signature);
        transcript.update(&(item.message.len() as u64).to_le_bytes());
        transcript.update(item.message);
    }
    let transcript_digest = transcript.finalize();
    for item in prepared.iter_mut() {
        let mut hash = Sha512::new();
        hash.update(&transcript_digest);
        hash.update(&(item.index as u64).to_le_bytes());
        let mut z_bytes: [u8; 16] = hash.finalize()[..16].try_into().expect("16 bytes");
        // Odd ⇒ non-zero mod L ⇒ a singleton equation is exactly the
        // cofactored serial check.
        z_bytes[0] |= 1;
        item.z = Scalar::from_u128(u128::from_le_bytes(z_bytes));
    }

    resolve_range(&prepared, &mut verdicts);
    verdicts
}

/// Accepts `range` wholesale if its combined equation holds; otherwise
/// splits in half and recurses, bottoming out at exact singleton checks.
fn resolve_range(range: &[PreparedItem], verdicts: &mut [bool]) {
    if range.is_empty() {
        return;
    }
    if range_equation_holds(range) {
        for item in range {
            verdicts[item.index] = true;
        }
        return;
    }
    if range.len() == 1 {
        // A failing singleton equation with z ≢ 0 (mod L) *is* the
        // cofactored serial verdict; the verdict stays false.
        return;
    }
    let (left, right) = range.split_at(range.len() / 2);
    resolve_range(left, verdicts);
    resolve_range(right, verdicts);
}

fn range_equation_holds(range: &[PreparedItem]) -> bool {
    let mut scalars = Vec::with_capacity(2 * range.len() + 1);
    let mut points = Vec::with_capacity(2 * range.len() + 1);
    let mut b_coefficient = Scalar::ZERO;
    for item in range {
        b_coefficient = b_coefficient.add(&item.z.mul(&item.parsed.s));
        scalars.push(item.z);
        points.push(item.parsed.r_point.neg());
        scalars.push(item.z.mul(&item.k));
        points.push(item.a_point.neg());
    }
    scalars.push(b_coefficient);
    points.push(*crate::curve::point::basepoint());
    msm(&scalars, &points).mul_by_cofactor().is_identity()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_bytes<const N: usize>(hex: &str) -> [u8; N] {
        let mut out = [0u8; N];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).expect("hex");
        }
        out
    }

    /// RFC 8032 §7.1 TEST 1 (empty message).
    #[test]
    fn rfc8032_test_1() {
        let seed =
            hex_bytes::<32>("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
        let (secret, public) = keygen(&seed);
        assert_eq!(
            public.as_bytes(),
            &hex_bytes::<32>("d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a")
        );
        let signature = sign(&secret, b"");
        assert_eq!(
            signature,
            hex_bytes::<64>(
                "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
                 5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
            )
        );
        assert!(verify(&public, b"", &signature));
        assert!(!verify(&public, b"x", &signature));
    }

    /// RFC 8032 §7.1 TEST 2 (one-byte message).
    #[test]
    fn rfc8032_test_2() {
        let seed =
            hex_bytes::<32>("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
        let (secret, public) = keygen(&seed);
        assert_eq!(
            public.as_bytes(),
            &hex_bytes::<32>("3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c")
        );
        let signature = sign(&secret, &[0x72]);
        assert_eq!(
            signature,
            hex_bytes::<64>(
                "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
                 085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
            )
        );
        assert!(verify(&public, &[0x72], &signature));
    }

    /// RFC 8032 §7.1 TEST 3 (two-byte message).
    #[test]
    fn rfc8032_test_3() {
        let seed =
            hex_bytes::<32>("c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7");
        let (secret, public) = keygen(&seed);
        assert_eq!(
            public.as_bytes(),
            &hex_bytes::<32>("fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025")
        );
        let signature = sign(&secret, &[0xaf, 0x82]);
        assert_eq!(
            signature,
            hex_bytes::<64>(
                "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac\
                 18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"
            )
        );
        assert!(verify(&public, &[0xaf, 0x82], &signature));
    }

    fn test_keys(n: usize) -> Vec<(SecretKey, PublicKey)> {
        (0..n)
            .map(|i| {
                let mut seed = [0u8; 32];
                seed[0] = i as u8;
                seed[1] = 0xa5;
                keygen(&seed)
            })
            .collect()
    }

    #[test]
    fn non_canonical_s_rejected() {
        let (secret, public) = &test_keys(1)[0];
        let mut signature = sign(secret, b"msg");
        assert!(verify(public, b"msg", &signature));
        // s + L is the classic malleation; strict verification rejects
        // it outright.
        let s = Scalar::from_bytes_canonical(&signature[32..].try_into().unwrap()).unwrap();
        let mut s_plus_l = [0u8; 32];
        // L little-endian.
        const L_BYTES: [u8; 32] = [
            0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9,
            0xde, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
            0x00, 0x00, 0x00, 0x10,
        ];
        let mut carry = 0u16;
        for (i, out) in s_plus_l.iter_mut().enumerate() {
            let sum = u16::from(s.to_bytes()[i]) + u16::from(L_BYTES[i]) + carry;
            *out = sum as u8;
            carry = sum >> 8;
        }
        assert_eq!(carry, 0, "s + L fits 256 bits");
        signature[32..].copy_from_slice(&s_plus_l);
        assert!(!verify(public, b"msg", &signature));
    }

    #[test]
    fn small_order_and_invalid_keys_never_verify() {
        let (secret, _) = &test_keys(1)[0];
        let signature = sign(secret, b"msg");
        // y = 0 encodes an order-4 point: strict key parse rejects it.
        let small = PublicKey::from_bytes([0u8; 32]);
        assert!(!small.is_valid());
        assert!(!verify(&small, b"msg", &signature));
        // An off-curve encoding is invalid too.
        let mut off = [0u8; 32];
        off[0] = 2;
        loop {
            if Point::decompress(&off).is_none() {
                break;
            }
            off[0] += 1;
        }
        assert!(!PublicKey::from_bytes(off).is_valid());
    }

    #[test]
    fn batch_accepts_all_valid() {
        let keys = test_keys(8);
        let messages: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 5]).collect();
        let signatures: Vec<[u8; 64]> = keys
            .iter()
            .zip(&messages)
            .map(|((secret, _), message)| sign(secret, message))
            .collect();
        let items: Vec<BatchItem<'_>> = keys
            .iter()
            .zip(&messages)
            .zip(&signatures)
            .map(|(((_, public), message), signature)| BatchItem {
                public,
                message,
                signature,
            })
            .collect();
        assert_eq!(verify_batch(&items), vec![true; 8]);
    }

    #[test]
    fn batch_pinpoints_forgeries_exactly() {
        let keys = test_keys(9);
        let messages: Vec<Vec<u8>> = (0..9u8).map(|i| vec![i; 3]).collect();
        let mut signatures: Vec<[u8; 64]> = keys
            .iter()
            .zip(&messages)
            .map(|((secret, _), message)| sign(secret, message))
            .collect();
        // Forge item 2 (flip a bit in R), null item 5, swap item 7's
        // signature with item 8's.
        signatures[2][0] ^= 1;
        signatures[5] = [0u8; 64];
        signatures.swap(7, 8);
        let items: Vec<BatchItem<'_>> = keys
            .iter()
            .zip(&messages)
            .zip(&signatures)
            .map(|(((_, public), message), signature)| BatchItem {
                public,
                message,
                signature,
            })
            .collect();
        let expected: Vec<bool> = items
            .iter()
            .map(|item| verify(item.public, item.message, item.signature))
            .collect();
        assert_eq!(
            expected,
            vec![true, true, false, true, true, false, true, false, false]
        );
        assert_eq!(verify_batch(&items), expected);
    }

    #[test]
    fn batch_is_cheaper_than_serial() {
        use crate::curve::ops_snapshot;
        let keys = test_keys(32);
        let message = b"wave";
        let signatures: Vec<[u8; 64]> = keys
            .iter()
            .map(|(secret, _)| sign(secret, message))
            .collect();
        let items: Vec<BatchItem<'_>> = keys
            .iter()
            .zip(&signatures)
            .map(|((_, public), signature)| BatchItem {
                public,
                message,
                signature,
            })
            .collect();

        let before = ops_snapshot();
        let verdicts = verify_batch(&items);
        let mid = ops_snapshot();
        for item in &items {
            assert!(verify(item.public, item.message, item.signature));
        }
        let after = ops_snapshot();

        assert_eq!(verdicts, vec![true; 32]);
        let batch_ops = (mid - before).total();
        let serial_ops = (after - mid).total();
        assert!(
            2 * batch_ops < serial_ops,
            "batch {batch_ops} vs serial {serial_ops}"
        );
    }

    #[test]
    fn verify_cold_agrees_with_hot() {
        let (secret, public) = &test_keys(1)[0];
        let signature = sign(secret, b"m");
        assert!(verify_cold(public.as_bytes(), b"m", &signature));
        assert!(!verify_cold(public.as_bytes(), b"n", &signature));
    }
}
