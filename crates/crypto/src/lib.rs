//! Cryptographic substrate for `dagbft`.
//!
//! The paper (§2, Definition A.1) assumes a secure cryptographic hash
//! function `#` (used as `ref` over blocks) and a secure signature scheme
//! `sign`/`verify`, both with failure probability treated as zero. This
//! crate supplies concrete stand-ins:
//!
//! * [`sha256`] / [`Sha256`] — a from-scratch FIPS 180-4 SHA-256
//!   implementation, validated against the standard test vectors. Used for
//!   block references ([`Digest`]).
//! * [`Signer`] / [`Verifier`] / [`BatchVerifier`] — signing handles under
//!   a trusted [`KeyRegistry`], generic over the [`SignatureScheme`]. Two
//!   schemes ship: real RFC 8032 [`ed25519`] over the in-tree [`curve`]
//!   arithmetic (with one multi-scalar multiplication per verified batch),
//!   and the original HMAC-SHA256 stand-in (the pairwise-symmetric-key
//!   model; see `DESIGN.md` §3), retained as the cheap deterministic
//!   oracle.
//! * [`ServerId`] — the server identity `n` carried in every block
//!   (Definition 3.1); it lives here because identity and key material are
//!   inseparable in the protocols.
//!
//! # Examples
//!
//! ```
//! use dagbft_crypto::{KeyRegistry, ServerId};
//!
//! let registry = KeyRegistry::generate(4, 7);
//! let signer = registry.signer(ServerId::new(0)).unwrap();
//! let verifier = registry.verifier();
//! let signature = signer.sign(b"block bytes");
//! assert!(verifier.verify(ServerId::new(0), b"block bytes", &signature));
//! assert!(!verifier.verify(ServerId::new(1), b"block bytes", &signature));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curve;
mod digest;
pub mod ed25519;
mod hmac;
mod identity;
pub mod scheme;
mod sha256;
mod sha512;
mod sig;

pub use digest::Digest;
pub use hmac::{hmac_sha256, HmacKey};
pub use identity::ServerId;
pub use scheme::{AnyScheme, Ed25519Scheme, HmacScheme, SchemeKind, SignatureScheme};
pub use sha256::{sha256, Sha256};
pub use sha512::{sha512, Sha512};
pub use sig::{
    BatchVerifier, CryptoMetrics, KeyRegistry, Signature, SignedDigest, Signer, Verifier,
};
