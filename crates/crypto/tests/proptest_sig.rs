//! Property tests for the signature layer:
//!
//! * strict-encoding rejection — non-canonical ed25519 scalar and point
//!   encodings (`s ≥ L`, `y ≥ p`), small-order keys, and mixed-order
//!   (torsion-carrying) keys never verify;
//! * batch ⟺ serial — ed25519 batch verification returns exactly the
//!   serial verdict vector under arbitrary tampering, so batch-accept
//!   holds iff every item serial-accepts;
//! * oracle agreement — the registry's verdict *pattern* under tampering
//!   is scheme-independent: real ed25519 and the cheap HMAC stand-in
//!   reject exactly the same items, which is what lets the determinism
//!   suite cross-check the schemes against each other.

use dagbft_crypto::curve::point::Point;
use dagbft_crypto::curve::scalar::Scalar;
use dagbft_crypto::ed25519;
use dagbft_crypto::{sha256, KeyRegistry, ServerId, Signature, SignedDigest};
use proptest::prelude::*;

/// L, little-endian: the ed25519 group order.
const L_BYTES: [u8; 32] = [
    0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10,
];

/// p = 2²⁵⁵ − 19, little-endian: the field order.
const P_BYTES: [u8; 32] = [
    0xed, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f,
];

/// `a + b` over little-endian 32-byte integers; panics on 256-bit overflow.
fn add_le(a: &[u8; 32], b: &[u8; 32]) -> [u8; 32] {
    let mut out = [0u8; 32];
    let mut carry = 0u16;
    for i in 0..32 {
        let sum = u16::from(a[i]) + u16::from(b[i]) + carry;
        out[i] = sum as u8;
        carry = sum >> 8;
    }
    assert_eq!(carry, 0, "sum fits 256 bits");
    out
}

fn keypair(seed_byte: u8) -> (ed25519::SecretKey, ed25519::PublicKey) {
    let mut seed = [0u8; 32];
    seed[0] = seed_byte;
    seed[1] = 0x5a;
    ed25519::keygen(&seed)
}

/// A small-order point: y = 0 encodes a point of order 4 (x = ±√−1).
fn small_order_point() -> Point {
    let point = Point::decompress(&[0u8; 32]).expect("y = 0 is on the curve");
    assert!(point.is_small_order());
    point
}

proptest! {
    /// Malleated signatures with s' = s + L (the same value mod L,
    /// non-canonically encoded) are rejected outright, for any message.
    #[test]
    fn non_canonical_s_rejected(message in proptest::collection::vec(any::<u8>(), 0..64), key in 0u8..8) {
        let (secret, public) = keypair(key);
        let mut signature = ed25519::sign(&secret, &message);
        prop_assert!(ed25519::verify(&public, &message, &signature));
        let s: [u8; 32] = signature[32..].try_into().unwrap();
        // s < L always, and L + s < 2²⁵⁶, so the malleation is encodable.
        signature[32..].copy_from_slice(&add_le(&s, &L_BYTES));
        prop_assert!(!ed25519::verify(&public, &message, &signature));
    }

    /// Non-canonical y encodings (y ≥ p) never decompress, so neither
    /// keys nor signature R components carrying them verify.
    #[test]
    fn non_canonical_y_rejected(offset in 0u8..19, sign_bit in any::<bool>()) {
        // y = p + offset ≡ offset (mod p), encoded non-canonically.
        let mut bytes = add_le(&P_BYTES, &{
            let mut small = [0u8; 32];
            small[0] = offset;
            small
        });
        if sign_bit {
            bytes[31] |= 0x80;
        }
        prop_assert!(Point::decompress(&bytes).is_none());
        prop_assert!(!ed25519::PublicKey::from_bytes(bytes).is_valid());
        // As a signature's R component it fails the strict parse too.
        let (secret, public) = keypair(1);
        let mut signature = ed25519::sign(&secret, b"m");
        signature[..32].copy_from_slice(&bytes);
        prop_assert!(!ed25519::verify(&public, b"m", &signature));
    }

    /// Keys that are small-order or carry a torsion component
    /// (mixed-order: a torsion-free point plus a small-order point)
    /// fail the strict parse and never verify anything.
    #[test]
    fn small_and_mixed_order_keys_rejected(key in 0u8..8, message in proptest::collection::vec(any::<u8>(), 0..32)) {
        let (secret, public) = keypair(key);
        let signature = ed25519::sign(&secret, &message);

        let small = small_order_point();
        let small_key = ed25519::PublicKey::from_bytes(small.compress());
        prop_assert!(!small_key.is_valid());
        prop_assert!(!ed25519::verify(&small_key, &message, &signature));

        // A + T for honest A and order-4 T: on-curve, canonical, not
        // small-order — only the torsion check catches it.
        let honest = Point::decompress(public.as_bytes()).expect("honest key decompresses");
        let mixed = honest.add(&small);
        prop_assert!(!mixed.is_small_order());
        prop_assert!(!mixed.is_torsion_free());
        let mixed_key = ed25519::PublicKey::from_bytes(mixed.compress());
        prop_assert!(!mixed_key.is_valid());
        prop_assert!(!ed25519::verify(&mixed_key, &message, &signature));
    }

    /// Scalars parse canonically iff they are < L.
    #[test]
    fn scalar_canonical_parse_boundary(low in any::<u64>()) {
        let mut below = [0u8; 32];
        below[..8].copy_from_slice(&low.to_le_bytes());
        prop_assert!(Scalar::from_bytes_canonical(&below).is_some());
        let above = add_le(&L_BYTES, &below);
        prop_assert!(Scalar::from_bytes_canonical(&above).is_none());
    }
}

/// How one batch item gets tampered with, chosen per item by proptest.
#[derive(Debug, Clone, Copy)]
enum Tamper {
    None,
    /// Replace the signature with all zeroes.
    Null,
    /// Flip one bit in the R half.
    FlipR,
    /// Flip one bit in the s half.
    FlipS,
    /// Claim the wrong builder for an honest signature.
    WrongClaim,
}

fn tamper_strategy() -> impl Strategy<Value = Tamper> {
    // Honest entries listed three times to bias waves toward mostly-valid
    // items (the realistic shape for the binary-split fallback).
    prop_oneof![
        Just(Tamper::None),
        Just(Tamper::None),
        Just(Tamper::None),
        Just(Tamper::Null),
        Just(Tamper::FlipR),
        Just(Tamper::FlipS),
        Just(Tamper::WrongClaim),
    ]
}

/// Signs digest `i` for server `i` in `registry` and applies `pattern`.
fn tampered_items(registry: &KeyRegistry, pattern: &[Tamper]) -> Vec<SignedDigest> {
    pattern
        .iter()
        .enumerate()
        .map(|(i, tamper)| {
            let id = ServerId::new(i as u32);
            let digest = sha256((i as u64).to_le_bytes());
            let honest = registry.signer(id).unwrap().sign(digest.as_bytes());
            let (claimed, signature) = match tamper {
                Tamper::None => (id, honest),
                Tamper::Null => (id, Signature::NULL),
                Tamper::FlipR => {
                    let mut bytes = *honest.as_bytes();
                    bytes[3] ^= 0x40;
                    (id, Signature::from_bytes(bytes))
                }
                Tamper::FlipS => {
                    let mut bytes = *honest.as_bytes();
                    bytes[35] ^= 0x04;
                    (id, Signature::from_bytes(bytes))
                }
                Tamper::WrongClaim => (ServerId::new(((i + 1) % pattern.len()) as u32), honest),
            };
            SignedDigest {
                claimed,
                digest,
                signature,
            }
        })
        .collect()
}

proptest! {
    // ed25519 batches are slow enough that a handful of cases per run is
    // plenty; the per-item tamper choice still covers the product space
    // across runs.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The batch verdict vector is exactly the serial one under
    /// arbitrary per-item tampering — so batch-accept ⟺ every item
    /// serial-accepts — and the HMAC oracle produces the same pattern.
    #[test]
    fn batch_matches_serial_and_hmac_oracle(pattern in proptest::collection::vec(tamper_strategy(), 2..10)) {
        let ed = KeyRegistry::generate_ed25519(pattern.len(), 7);
        let hmac = KeyRegistry::generate(pattern.len(), 7);
        for registry in [&ed, &hmac] {
            let items = tampered_items(registry, &pattern);
            let serial: Vec<bool> = items
                .iter()
                .map(|item| {
                    registry
                        .verifier()
                        .verify(item.claimed, item.digest.as_bytes(), &item.signature)
                })
                .collect();
            let batched = registry.batch_verifier().verify_batch(&items);
            prop_assert_eq!(&batched, &serial, "scheme {}", registry.scheme_name());
            prop_assert_eq!(
                batched.iter().all(|v| *v),
                serial.iter().all(|v| *v),
                "batch-accept iff all serial-accept ({})",
                registry.scheme_name()
            );
            // The verdict pattern is forced by the tampering alone.
            let expected: Vec<bool> = pattern
                .iter()
                .map(|tamper| matches!(tamper, Tamper::None))
                .collect();
            prop_assert_eq!(&batched, &expected, "scheme {}", registry.scheme_name());
        }
    }
}
