//! Zipfian payments workload generator.
//!
//! The paper motivates block DAGs with payment systems: every transfer
//! rides its own BRB instance labeled by [`Transfer::label`], so a
//! realistic workload drives the embedding across *many* distinct labels
//! at once — 10⁵–10⁶ of them — with a skewed (zipfian) account
//! popularity, the shape every real payment trace has: a few hot
//! accounts dominate while a long tail stays cold.
//!
//! [`ZipfSampler`] draws account ranks from a precomputed CDF (exact, no
//! rejection), and [`zipf_transfers`] turns a stream of draws into
//! sequenced, settleable [`Transfer`]s: per-sender sequence numbers
//! increase densely, so each transfer's `(from, seq)` label is fresh and
//! the distinct-label count equals the transfer count by construction.
//! `report_workload` feeds these transfers through the DAG and gates the
//! resulting metrics snapshot (`BENCH_workload.json`).

use std::collections::BTreeSet;

use dagbft_core::Label;
use dagbft_protocols::{AccountId, Transfer};
use rand::{rngs::StdRng, RngCore, SeedableRng};

/// An exact zipfian sampler over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1 / (k + 1)^s`. Built once (`O(n)` table), sampled by
/// binary search on the CDF (`O(log n)` per draw) — no rejection loop,
/// so the draw count is deterministic per seed.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with exponent `exponent`
    /// (`exponent = 0.0` degenerates to uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `exponent` is negative/non-finite.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "zipf over an empty domain");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "zipf exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for value in &mut cdf {
            *value /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut impl RngCore) -> usize {
        // 53 high bits → uniform in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// Shape of a zipfian payments workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of accounts (the zipf domain).
    pub accounts: usize,
    /// Number of transfers to generate — equals the number of distinct
    /// BRB labels the workload opens.
    pub transfers: usize,
    /// Zipf exponent for the paying account (1.0 ≈ classic web/payment
    /// skew; 0.0 = uniform).
    pub exponent: f64,
    /// RNG seed; the workload is a pure function of this config.
    pub seed: u64,
}

/// Generates `config.transfers` sequenced transfers with zipfian-hot
/// senders and receivers. Sequence numbers are dense per sender, so
/// every transfer's `(from, seq)` label is distinct and the workload is
/// settleable (amount 1, generous initial balances — see
/// [`initial_balances`]).
pub fn zipf_transfers(config: &WorkloadConfig) -> Vec<Transfer> {
    let zipf = ZipfSampler::new(config.accounts, config.exponent);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut next_seq = vec![0u32; config.accounts];
    let mut transfers = Vec::with_capacity(config.transfers);
    for _ in 0..config.transfers {
        let from = zipf.sample(&mut rng);
        let mut to = zipf.sample(&mut rng);
        if to == from {
            // Self-transfers are rejected by the ledger; shift to the
            // neighboring rank instead of re-rolling so the draw count
            // stays fixed per seed.
            to = (to + 1) % config.accounts;
        }
        let seq = next_seq[from];
        next_seq[from] += 1;
        transfers.push(Transfer {
            from: AccountId(from as u32),
            to: AccountId(to as u32),
            amount: 1,
            seq,
        });
    }
    transfers
}

/// Initial balances making every generated workload fully settleable:
/// each account starts with `transfers` units, an upper bound on what it
/// can ever owe (amounts are 1).
pub fn initial_balances(config: &WorkloadConfig) -> Vec<(AccountId, u64)> {
    (0..config.accounts)
        .map(|account| (AccountId(account as u32), config.transfers as u64))
        .collect()
}

/// Number of distinct BRB labels the transfers open — the workload's
/// instance count. Equal to `transfers.len()` for any
/// [`zipf_transfers`] output (dense per-sender sequencing).
pub fn distinct_labels(transfers: &[Transfer]) -> usize {
    transfers
        .iter()
        .map(Transfer::label)
        .collect::<BTreeSet<Label>>()
        .len()
}

/// Fraction of transfers *sent* by the `top` hottest accounts — the
/// skew observable (`top = accounts / 100` with exponent 1.0 typically
/// captures well over a third of the traffic at 10⁵ scale).
pub fn hot_sender_share(transfers: &[Transfer], accounts: usize, top: usize) -> f64 {
    if transfers.is_empty() {
        return 0.0;
    }
    let mut sent = vec![0u64; accounts];
    for transfer in transfers {
        sent[transfer.from.0 as usize] += 1;
    }
    sent.sort_unstable_by(|a, b| b.cmp(a));
    let hot: u64 = sent.iter().take(top).sum();
    hot as f64 / transfers.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagbft_protocols::Ledger;

    fn config() -> WorkloadConfig {
        WorkloadConfig {
            accounts: 1000,
            transfers: 20_000,
            exponent: 1.0,
            seed: 42,
        }
    }

    #[test]
    fn labels_are_distinct_and_workload_deterministic() {
        let transfers = zipf_transfers(&config());
        assert_eq!(transfers.len(), 20_000);
        assert_eq!(distinct_labels(&transfers), 20_000);
        assert_eq!(transfers, zipf_transfers(&config()), "pure in the seed");
    }

    #[test]
    fn zipf_skew_concentrates_on_hot_accounts() {
        let transfers = zipf_transfers(&config());
        let hot = hot_sender_share(&transfers, 1000, 10);
        assert!(hot > 0.25, "top 1% of senders carry {hot:.3} of traffic");
        let uniform = zipf_transfers(&WorkloadConfig {
            exponent: 0.0,
            ..config()
        });
        let flat = hot_sender_share(&uniform, 1000, 10);
        assert!(flat < hot / 2.0, "uniform share {flat:.3} vs zipf {hot:.3}");
    }

    #[test]
    fn workload_settles_completely() {
        let cfg = WorkloadConfig {
            accounts: 50,
            transfers: 500,
            exponent: 1.0,
            seed: 7,
        };
        let transfers = zipf_transfers(&cfg);
        let mut ledger = Ledger::new(initial_balances(&cfg));
        let supply = ledger.total_supply();
        let leftover = ledger.settle(transfers);
        assert!(leftover.is_empty(), "{} transfers stuck", leftover.len());
        assert_eq!(ledger.total_supply(), supply);
        assert_eq!(ledger.applied().len(), 500);
    }

    #[test]
    fn sampler_covers_domain_and_orders_by_rank() {
        let zipf = ZipfSampler::new(16, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u64; 16];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "tail ranks never drawn");
        assert!(counts[0] > counts[8], "rank 0 must dominate mid-tail");
    }
}
