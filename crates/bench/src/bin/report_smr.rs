//! Experiment E11: PBFT-lite SMR embedded in the DAG (the Blockmania use
//! case) — commit cost and multi-leader scaling.
//!
//! Run with: `cargo run --release -p dagbft-bench --bin report_smr`

use dagbft_bench::f2;
use dagbft_core::Label;
use dagbft_protocols::{Smr, SmrRequest};
use dagbft_sim::{Injection, Role, SimConfig, Simulation};

struct SmrRow {
    proposals: usize,
    leaders: usize,
    silent: bool,
    commits: usize,
    finished_at: u64,
    messages: u64,
    bytes: u64,
    signatures: u64,
}

fn run(proposals: usize, leaders: usize, silent: bool) -> SmrRow {
    let n = 4;
    // With a silent server, only its deliveries are missing; leaders are
    // chosen among correct servers (labels 0..leaders, leader = ℓ mod n,
    // and we keep leaders < 3 when silent so no instance is led by s3).
    let correct = if silent { n - 1 } else { n };
    let expected = proposals * correct;
    let mut config = SimConfig::new(n)
        .with_max_time(600_000)
        .with_stop_after_deliveries(expected);
    if silent {
        config = config.with_role(3, Role::Silent);
    }
    let mut sim: Simulation<Smr<u64>> = Simulation::new(config);
    for i in 0..proposals {
        sim.inject(Injection {
            at: (i as u64) * 3,
            server: i % correct,
            label: Label::new((i % leaders) as u64),
            request: SmrRequest::Propose(5000 + i as u64),
        });
    }
    let outcome = sim.run();
    SmrRow {
        proposals,
        leaders,
        silent,
        commits: outcome.deliveries.len(),
        finished_at: outcome.finished_at,
        messages: outcome.net.messages_sent,
        bytes: outcome.net.bytes_sent,
        signatures: outcome.signatures,
    }
}

fn main() {
    println!("# E11 — PBFT-lite SMR over the block DAG (n = 4)\n");
    println!(
        "| {:>9} | {:>7} | {:>6} | {:>8} | {:>9} | {:>9} | {:>10} | {:>6} | {:>13} |",
        "proposals",
        "leaders",
        "silent",
        "commits",
        "time (ms)",
        "wire msgs",
        "wire bytes",
        "sigs",
        "commits/s(sim)"
    );
    println!("|{}|", "-".repeat(100));
    for (proposals, leaders, silent) in [
        (4usize, 1usize, false),
        (4, 4, false),
        (16, 1, false),
        (16, 4, false),
        (32, 4, false),
        (8, 3, true),
    ] {
        let row = run(proposals, leaders, silent);
        let throughput = row.commits as f64 / (row.finished_at as f64 / 1000.0);
        println!(
            "| {:>9} | {:>7} | {:>6} | {:>8} | {:>9} | {:>9} | {:>10} | {:>6} | {:>13} |",
            row.proposals,
            row.leaders,
            row.silent,
            row.commits,
            row.finished_at,
            row.messages,
            row.bytes,
            row.signatures,
            f2(throughput),
        );
    }
    println!(
        "\nReading: more leader labels spread proposals across instances that all\n\
         share the same blocks (multi-leader 'for free'); a silent follower\n\
         (f = 1) costs nothing but its own deliveries. Signatures stay equal to\n\
         the number of blocks built, independent of the proposal count."
    );
}
