//! Experiment E8: off-line interpretation throughput and state sharing.
//!
//! Interprets pre-built DAGs (no network, no IO) and reports wall-clock
//! throughput — blocks/s and materialized messages/s — quantifying the
//! paper's claim that interpretation is decoupled, memory-speed work.
//! Also reports the copy-on-write interpreter's footprint (total vs
//! unique instances: the structural-sharing win over the clone-per-block
//! transcription of Algorithm 2) and the naive reference interpreter's
//! wall-clock on the same DAG for comparison.
//!
//! The final stdout line is a single machine-readable JSON object with
//! every row (`BENCH_interpret.json` is a checked-in snapshot of it from
//! a fixed-seed run). `--check` re-runs the experiment and validates the
//! trajectory: schema identity against the committed snapshot, non-zero
//! counters, visible copy-on-write sharing on every row, and a ≥2×
//! CoW-over-naive wall-clock floor on the largest DAG (the measured gap
//! is two orders of magnitude; the floor only guards against the sharing
//! path silently degrading to clone-per-block).
//!
//! Run with: `cargo run --release -p dagbft-bench --bin report_interpret`

use std::time::Instant;

use dagbft_bench::{build_offline_dag, check_snapshot_schema, cores, f2};
use dagbft_core::{Interpreter, InterpreterFootprint, ReferenceInterpreter};
use dagbft_protocols::Brb;

struct Row {
    blocks: usize,
    labels: usize,
    seconds: f64,
    naive_seconds: f64,
    messages_materialized: u64,
    footprint: InterpreterFootprint,
}

impl Row {
    fn blocks_per_sec(&self) -> f64 {
        self.blocks as f64 / self.seconds
    }

    fn json(&self) -> String {
        format!(
            "{{\"blocks\":{},\"labels\":{},\"seconds\":{:.6},\"blocks_per_sec\":{:.2},\
             \"naive_seconds\":{:.6},\"messages_materialized\":{},\"instances_total\":{},\
             \"instances_unique\":{},\"sharing_ratio\":{:.2},\"out_envelopes\":{},\
             \"in_envelopes\":{}}}",
            self.blocks,
            self.labels,
            self.seconds,
            self.blocks_per_sec(),
            self.naive_seconds,
            self.messages_materialized,
            self.footprint.instances,
            self.footprint.unique_instances,
            self.footprint.sharing_ratio(),
            self.footprint.out_envelopes,
            self.footprint.in_envelopes,
        )
    }
}

fn measure(rounds: u64, labels: usize) -> Row {
    let (dag, config) = build_offline_dag(4, rounds, labels);
    // Warm-up + measured run of the copy-on-write interpreter.
    let mut interpreter: Interpreter<Brb<u64>> = Interpreter::new(config);
    interpreter.step(&dag);
    drop(interpreter);

    let start = Instant::now();
    let mut interpreter: Interpreter<Brb<u64>> = Interpreter::new(config);
    let interpreted = interpreter.step(&dag);
    let seconds = start.elapsed().as_secs_f64();

    // The clone-per-block reference on the identical DAG, with the same
    // warm-up so the comparison is symmetric.
    let mut naive: ReferenceInterpreter<Brb<u64>> = ReferenceInterpreter::new(config);
    naive.step(&dag);
    drop(naive);

    let start_naive = Instant::now();
    let mut naive: ReferenceInterpreter<Brb<u64>> = ReferenceInterpreter::new(config);
    naive.step(&dag);
    let naive_seconds = start_naive.elapsed().as_secs_f64();

    let stats = *interpreter.stats();
    assert_eq!(
        stats.messages_materialized,
        naive.stats().messages_materialized
    );
    Row {
        blocks: interpreted,
        labels,
        seconds,
        naive_seconds,
        messages_materialized: stats.messages_materialized,
        footprint: interpreter.footprint(),
    }
}

fn check(rows: &[Row], json: &str) -> Result<(), String> {
    for row in rows {
        if row.seconds <= 0.0 || row.naive_seconds <= 0.0 {
            return Err(format!("{} blocks: zero wall-clock", row.blocks));
        }
        if row.messages_materialized == 0 {
            return Err(format!("{} blocks: no messages materialized", row.blocks));
        }
        if row.footprint.unique_instances >= row.footprint.instances {
            return Err(format!(
                "{} blocks: no structural sharing ({} unique of {})",
                row.blocks, row.footprint.unique_instances, row.footprint.instances
            ));
        }
    }
    let largest = rows.iter().max_by_key(|r| r.blocks).expect("rows exist");
    let speedup = largest.naive_seconds / largest.seconds;
    if speedup < 2.0 {
        return Err(format!(
            "{} blocks: CoW speedup {speedup:.2} below the 2x floor",
            largest.blocks
        ));
    }
    check_snapshot_schema("BENCH_interpret.json", json)
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");

    println!("# E8 — off-line interpretation throughput + CoW sharing (BRB, n = 4)\n");
    println!(
        "| {:>7} | {:>6} | {:>9} | {:>10} | {:>10} | {:>10} | {:>9} | {:>9} | {:>7} |",
        "blocks",
        "labels",
        "time (ms)",
        "naive (ms)",
        "blocks/s",
        "msgs matzd",
        "inst tot",
        "inst uniq",
        "share"
    );
    println!("|{}|", "-".repeat(100));

    let mut rows = Vec::new();
    for (rounds, labels) in [
        (64u64, 1usize),
        (64, 10),
        (64, 100),
        (256, 1),
        (256, 10),
        (1024, 1),
        (2048, 1),
    ] {
        let row = measure(rounds, labels);
        println!(
            "| {:>7} | {:>6} | {:>9} | {:>10} | {:>10} | {:>10} | {:>9} | {:>9} | {:>6}x |",
            row.blocks,
            row.labels,
            f2(row.seconds * 1000.0),
            f2(row.naive_seconds * 1000.0),
            f2(row.blocks_per_sec()),
            row.messages_materialized,
            row.footprint.instances,
            row.footprint.unique_instances,
            f2(row.footprint.sharing_ratio()),
        );
        rows.push(row);
    }
    println!(
        "\nReading: interpretation runs at memory speed with zero network cost,\n\
         so a server can re-derive every instance's full execution from a cold\n\
         copy of the DAG — the paper's off-line interpretation claim (§1, §7).\n\
         `inst uniq` ≪ `inst tot`: copy-on-write shares untouched instance\n\
         state along parent edges, so resident memory tracks *activity*, not\n\
         chain length (the naive column clones the full map per block).\n"
    );

    // Machine-readable trajectory line (snapshot: BENCH_interpret.json).
    let json_rows: Vec<String> = rows.iter().map(Row::json).collect();
    let json = format!(
        "{{\"experiment\":\"interpret_offline\",\"protocol\":\"brb\",\"n\":4,\"cores\":{},\"rows\":[{}]}}",
        cores(),
        json_rows.join(",")
    );
    println!("{json}");

    if check_mode {
        match check(&rows, &json) {
            Ok(()) => println!("CHECK OK"),
            Err(reason) => {
                eprintln!("CHECK FAILED: {reason}");
                std::process::exit(1);
            }
        }
    }
}
