//! Experiment E8: off-line interpretation throughput.
//!
//! Interprets pre-built DAGs (no network, no IO) and reports wall-clock
//! throughput: blocks/s and materialized messages/s — quantifying the
//! paper's claim that interpretation is decoupled, memory-speed work.
//!
//! Run with: `cargo run --release -p dagbft-bench --bin report_interpret`

use std::time::Instant;

use dagbft_bench::{build_offline_dag, f2};
use dagbft_core::Interpreter;
use dagbft_protocols::Brb;

fn main() {
    println!("# E8 — off-line interpretation throughput (BRB, n = 4)\n");
    println!(
        "| {:>7} | {:>10} | {:>9} | {:>10} | {:>12} | {:>14} |",
        "blocks", "instances", "time (ms)", "blocks/s", "msgs matzd", "msgs matzd/s"
    );
    println!("|{}|", "-".repeat(78));

    for (rounds, instances) in [
        (64u64, 1usize),
        (64, 10),
        (64, 100),
        (256, 1),
        (256, 10),
        (1024, 1),
        (2048, 1),
    ] {
        let (dag, config) = build_offline_dag(4, rounds, instances);
        // Warm-up + measured run.
        let mut interpreter: Interpreter<Brb<u64>> = Interpreter::new(config);
        interpreter.step(&dag);
        drop(interpreter);

        let start = Instant::now();
        let mut interpreter: Interpreter<Brb<u64>> = Interpreter::new(config);
        let interpreted = interpreter.step(&dag);
        let elapsed = start.elapsed();

        let stats = interpreter.stats();
        let seconds = elapsed.as_secs_f64();
        println!(
            "| {:>7} | {:>10} | {:>9} | {:>10} | {:>12} | {:>14} |",
            interpreted,
            instances,
            f2(seconds * 1000.0),
            f2(interpreted as f64 / seconds),
            stats.messages_materialized,
            f2(stats.messages_materialized as f64 / seconds),
        );
    }
    println!(
        "\nReading: interpretation runs at memory speed with zero network cost,\n\
         so a server can re-derive every instance's full execution from a cold\n\
         copy of the DAG — the paper's off-line interpretation claim (§1, §7)."
    );
}
