//! Experiment E12 (cost side): what byzantine behaviour costs the correct
//! servers, compared with a clean run of the same workload.
//!
//! Run with: `cargo run --release -p dagbft-bench --bin report_adversary`

use dagbft_bench::{f2, run_dag_brb, run_dag_brb_with_role};
use dagbft_core::Label;
use dagbft_sim::{NetworkModel, Role};

fn main() {
    let n = 4;
    let instances = 4;

    println!("# E12 — cost of byzantine roles (n = {n}, {instances} BRB instances)\n");
    println!(
        "| {:>12} | {:>10} | {:>9} | {:>10} | {:>8} | {:>9} |",
        "role", "deliveries", "sim time", "wire msgs", "FWDs", "mean lat."
    );
    println!("|{}|", "-".repeat(75));

    // Clean reference: all four servers correct.
    let clean = run_dag_brb(n, instances, NetworkModel::default(), 50);
    print_row(
        "clean",
        &clean.deliveries,
        clean.finished_at,
        clean.net.messages_sent,
        clean.net.fwd_sent,
        mean_latency(&clean),
    );

    for (name, role) in [
        ("silent", Role::Silent),
        ("equivocate", Role::Equivocate { at_seq: 0 }),
        (
            "selective",
            Role::SelectiveBroadcast {
                targets: [0].into_iter().collect(),
            },
        ),
        (
            "restart",
            Role::Restart {
                crash_at: 200,
                rejoin_at: 1_000,
            },
        ),
    ] {
        let outcome = run_dag_brb_with_role(n, instances, role);
        print_row(
            name,
            &outcome.deliveries,
            outcome.finished_at,
            outcome.net.messages_sent,
            outcome.net.fwd_sent,
            mean_latency(&outcome),
        );
    }

    println!(
        "\nReading: a silent server only removes its own deliveries; an\n\
         equivocator costs extra blocks on one fork; a selective sender forces\n\
         FWD recovery traffic; a restarting server re-derives its state from\n\
         the persisted DAG and rejoins at full speed. Safety held in all runs\n\
         (asserted by the corresponding integration tests)."
    );
}

fn mean_latency(outcome: &dagbft_sim::SimOutcome<dagbft_protocols::Brb<u64>>) -> f64 {
    let latencies: Vec<u64> = (0..1000u64)
        .map(Label::new)
        .flat_map(|l| outcome.latencies_for(l))
        .collect();
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
}

fn print_row(
    name: &str,
    deliveries: &[dagbft_sim::Delivery<dagbft_protocols::BrbIndication<u64>>],
    finished_at: u64,
    messages: u64,
    fwds: u64,
    latency: f64,
) {
    println!(
        "| {:>12} | {:>10} | {:>9} | {:>10} | {:>8} | {:>9} |",
        name,
        deliveries.len(),
        finished_at,
        messages,
        fwds,
        f2(latency)
    );
}
