//! Experiments E5 + E6: message compression and signature batching.
//!
//! One BRB broadcast to full delivery, sweeping the server count; the DAG
//! embedding vs the direct point-to-point baseline. Regenerates the series
//! recorded in `EXPERIMENTS.md` §E5/§E6.
//!
//! Run with: `cargo run --release -p dagbft-bench --bin report_compression`

use dagbft_bench::{brb_labels, dag_costs, direct_costs, f2, run_dag_brb, run_direct_brb};
use dagbft_sim::NetworkModel;

fn main() {
    println!("# E5/E6 — wire + signature cost per delivered broadcast (1 instance)\n");
    println!(
        "| {:>3} | {:>9} | {:>10} | {:>6} | {:>7} | {:>9} | {:>10} | {:>6} | {:>7} | {:>9} | {:>9} | {:>9} |",
        "n",
        "dag msgs",
        "dag bytes",
        "sigs",
        "verifs",
        "dir msgs",
        "dir bytes",
        "sigs",
        "verifs",
        "sig ratio",
        "inst tot",
        "inst uniq"
    );
    println!("|{}|", "-".repeat(127));
    for n in [4usize, 7, 10, 13, 16] {
        let labels = brb_labels(1);
        let dag_outcome = run_dag_brb(n, 1, NetworkModel::default(), 50);
        let dag = dag_costs(&dag_outcome, &labels);
        // Interpreter state held across all correct servers: total map
        // entries vs unique resident instances (copy-on-write sharing).
        let footprint = dag_outcome.interpreter_footprint();
        let direct = direct_costs(&run_direct_brb(n, 1, NetworkModel::default()), &labels);
        println!(
            "| {:>3} | {:>9} | {:>10} | {:>6} | {:>7} | {:>9} | {:>10} | {:>6} | {:>7} | {:>9} | {:>9} | {:>9} |",
            n,
            dag.messages,
            dag.bytes,
            dag.signatures,
            dag.verifications,
            direct.messages,
            direct.bytes,
            direct.signatures,
            direct.verifications,
            f2(direct.signatures as f64 / dag.signatures as f64),
            footprint.instances,
            footprint.unique_instances,
        );
    }

    println!(
        "\nReading: the baseline signs/verifies every protocol message (Θ(n²) per\n\
         broadcast); the DAG signs one block per dissemination regardless of how\n\
         many messages it materializes. A single broadcast is the DAG's worst\n\
         case for *message* counts (blocks keep flowing); see report_parallel\n\
         for the amortized series the paper's claims are about. `inst uniq`\n\
         vs `inst tot`: interpreter state resident across all servers after\n\
         the run — copy-on-write keeps only touched instances unique."
    );
}
