//! Defense-layer regression gate: what a flooding peer costs the honest
//! servers with the scored-admission layer on, against an attack-free
//! baseline of the same workload.
//!
//! Two simulated runs (logical time, fixed seed):
//!
//! 1. **baseline** — `n` correct servers, defense enabled, a standard
//!    BRB workload;
//! 2. **attack** — the same workload with the last server replaced by a
//!    flooder that broadcasts forged blocks every round, start to
//!    finish.
//!
//! `--check` pins the defense guarantees: honest delivery latency under
//! attack stays within [`MAX_LATENCY_RATIO`]× the baseline, the
//! attacker's admitted blocks stay inside its token-bucket budget, the
//! bucket and the ban escalation both actually engaged, and the
//! committed `BENCH_defense.json` schema still matches.
//!
//! Run with: `cargo run --release -p dagbft-bench --bin report_defense`

use dagbft_bench::{brb_labels, check_snapshot_schema, cores, dag_costs, f2, Costs};
use dagbft_core::{DefenseConfig, Label};
use dagbft_protocols::{Brb, BrbRequest};
use dagbft_sim::{Injection, Role, SimConfig, SimOutcome, Simulation};

const SEED: u64 = 23;
const N: usize = 5;
const INSTANCES: usize = 4;
/// Forged blocks the flooder broadcasts per 50 ms dissemination round.
const FLOOD_PER_ROUND: usize = 8;
/// Honest mean latency under attack must stay within this factor of the
/// attack-free baseline.
const MAX_LATENCY_RATIO: f64 = 2.0;

/// The gate's defense knobs: default scoring with a tight block bucket
/// (capacity 4, refill 2 per 100 ms) so the flood exhausts the bucket —
/// and gets throttled — before the invalid-signature score escalates to
/// a ban. Honest peers disseminate well under the refill rate.
fn defense() -> DefenseConfig {
    DefenseConfig::enabled().with_block_bucket(4, 2)
}

fn run(attacked: bool) -> SimOutcome<Brb<u64>> {
    let correct = if attacked { N - 1 } else { N };
    let expected = INSTANCES * correct;
    let mut config = SimConfig::new(N)
        .with_seed(SEED)
        .with_max_time(60_000)
        .with_defense(defense())
        .with_stop_after_deliveries(expected);
    if attacked {
        config = config.with_role(
            N - 1,
            Role::FloodThenBehave {
                until: u64::MAX,
                per_round: FLOOD_PER_ROUND,
            },
        );
    }
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    for i in 0..INSTANCES {
        sim.inject(Injection {
            at: (i as u64) % 40,
            server: i % correct,
            label: Label::new(i as u64),
            request: BrbRequest::Broadcast(i as u64),
        });
    }
    let outcome = sim.run();
    assert_eq!(outcome.deliveries.len(), expected, "run incomplete");
    outcome
}

struct AttackRow {
    costs: Costs,
    latency_ratio: f64,
    /// Worst case over the honest servers: forged blocks that passed the
    /// token-bucket gate (every one of them is attacker traffic — honest
    /// servers never emit an invalid block).
    attacker_admitted: u64,
    /// The token-bucket budget over the run: capacity plus every refill.
    bucket_budget: u64,
    throttled_blocks: u64,
    banned_blocks: u64,
    bans: u64,
    defense_events: u64,
}

fn measure() -> (Costs, AttackRow, String) {
    let baseline = run(false);
    let baseline_costs = dag_costs(&baseline, &brb_labels(INSTANCES));

    let attack = run(true);
    let attack_costs = dag_costs(&attack, &brb_labels(INSTANCES));
    let latency_ratio = if baseline_costs.mean_latency > 0.0 {
        attack_costs.mean_latency / baseline_costs.mean_latency
    } else {
        1.0
    };
    let config = defense();
    let bucket_budget = config.bucket_blocks
        + config.refill_blocks * (attack.finished_at / config.refill_interval_ms);
    let mut attacker_admitted = 0u64;
    let mut throttled_blocks = 0u64;
    let mut banned_blocks = 0u64;
    let mut bans = 0u64;
    let mut defense_events = 0u64;
    for server in attack.correct_servers() {
        let shim = attack.shim(server);
        attacker_admitted = attacker_admitted.max(shim.gossip().stats().invalid_blocks);
        let stats = shim.gossip().defense().stats();
        throttled_blocks += stats.throttled_blocks;
        banned_blocks += stats.banned_blocks;
        bans += stats.bans;
        defense_events += shim.gossip().defense().events().len() as u64;
    }

    let json = format!(
        "{{\"experiment\":\"peer_defense\",\"seed\":{},\"cores\":{},\"n\":{},\
         \"flood_per_round\":{},\"baseline\":{{\"deliveries\":{},\"finished_at\":{},\
         \"mean_latency_ms\":{:.2}}},\"attack\":{{\"deliveries\":{},\"finished_at\":{},\
         \"mean_latency_ms\":{:.2},\"latency_ratio\":{:.3},\"attacker_admitted\":{},\
         \"bucket_budget\":{},\"throttled_blocks\":{},\"banned_blocks\":{},\"bans\":{},\
         \"defense_events\":{}}}}}",
        SEED,
        cores(),
        N,
        FLOOD_PER_ROUND,
        baseline_costs.deliveries,
        baseline_costs.finished_at,
        baseline_costs.mean_latency,
        attack_costs.deliveries,
        attack_costs.finished_at,
        attack_costs.mean_latency,
        latency_ratio,
        attacker_admitted,
        bucket_budget,
        throttled_blocks,
        banned_blocks,
        bans,
        defense_events,
    );
    (
        baseline_costs,
        AttackRow {
            costs: attack_costs,
            latency_ratio,
            attacker_admitted,
            bucket_budget,
            throttled_blocks,
            banned_blocks,
            bans,
            defense_events,
        },
        json,
    )
}

fn check(baseline: &Costs, attack: &AttackRow, json: &str) -> Result<(), String> {
    if attack.latency_ratio > MAX_LATENCY_RATIO {
        return Err(format!(
            "honest latency under attack is {}x baseline ({} vs {} ms), bound {MAX_LATENCY_RATIO}x",
            f2(attack.latency_ratio),
            f2(attack.costs.mean_latency),
            f2(baseline.mean_latency),
        ));
    }
    if attack.attacker_admitted > attack.bucket_budget {
        return Err(format!(
            "attacker pushed {} blocks past the gate, token-bucket budget was {}",
            attack.attacker_admitted, attack.bucket_budget
        ));
    }
    if attack.throttled_blocks == 0 {
        return Err("the token bucket never engaged — the flood was not throttled".into());
    }
    if attack.bans == 0 {
        return Err("scoring never escalated to a ban under a sustained flood".into());
    }
    if attack.defense_events == 0 {
        return Err("no DefenseEvent was recorded — the audit trail is empty".into());
    }
    check_snapshot_schema("BENCH_defense.json", json)
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");
    let (baseline, attack, json) = measure();

    println!(
        "# Peer-defense gate (n = {N}, {INSTANCES} BRB instances, flood {FLOOD_PER_ROUND}/round)\n"
    );
    println!(
        "| {:>9} | {:>10} | {:>9} | {:>10} | {:>9} | {:>6} | {:>6} |",
        "run", "deliveries", "sim time", "mean lat.", "throttled", "banned", "bans"
    );
    println!("|{}|", "-".repeat(79));
    println!(
        "| {:>9} | {:>10} | {:>9} | {:>10} | {:>9} | {:>6} | {:>6} |",
        "baseline",
        baseline.deliveries,
        baseline.finished_at,
        f2(baseline.mean_latency),
        "-",
        "-",
        "-"
    );
    println!(
        "| {:>9} | {:>10} | {:>9} | {:>10} | {:>9} | {:>6} | {:>6} |",
        "attack",
        attack.costs.deliveries,
        attack.costs.finished_at,
        f2(attack.costs.mean_latency),
        attack.throttled_blocks,
        attack.banned_blocks,
        attack.bans
    );
    println!(
        "\nReading: the flooder broadcasts {FLOOD_PER_ROUND} forged blocks per 50 ms\n\
         round at every honest server. The token bucket (4 blocks, +2 per\n\
         100 ms) drops the surplus before it buys verification work, the\n\
         invalid-signature score escalates to a ban, and honest admission\n\
         latency stays within {MAX_LATENCY_RATIO}x of the attack-free baseline\n\
         (here {}x). The attacker pushed {} blocks past the gate against a\n\
         bucket budget of {}.",
        f2(attack.latency_ratio),
        attack.attacker_admitted,
        attack.bucket_budget,
    );
    println!("\n{json}");

    if check_mode {
        match check(&baseline, &attack, &json) {
            Ok(()) => println!("CHECK OK"),
            Err(reason) => {
                eprintln!("CHECK FAILED: {reason}");
                std::process::exit(1);
            }
        }
    }
}
