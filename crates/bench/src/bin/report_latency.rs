//! Experiment E9: end-to-end latency — the price of batching.
//!
//! Constant network latency; sweep the dissemination interval and compare
//! simulated request→delivery latency of the DAG embedding against the
//! direct baseline (which sends immediately and is the lower bound).
//!
//! Run with: `cargo run --release -p dagbft-bench --bin report_latency`

use dagbft_bench::{brb_labels, dag_costs, direct_costs, f2, run_dag_brb, run_direct_brb};
use dagbft_sim::NetworkModel;

fn main() {
    let n = 4;
    let network = NetworkModel::reliable_constant(10);

    let direct = direct_costs(&run_direct_brb(n, 1, network.clone()), &brb_labels(1));

    println!("# E9 — delivery latency (ms, simulated; network latency = 10 ms const)\n");
    println!(
        "| {:>22} | {:>12} | {:>12} |",
        "configuration", "mean latency", "wire msgs"
    );
    println!("|{}|", "-".repeat(54));
    println!(
        "| {:>22} | {:>12} | {:>12} |",
        "direct (no batching)",
        f2(direct.mean_latency),
        direct.messages
    );
    for interval in [10u64, 25, 50, 100, 200] {
        let dag = dag_costs(
            &run_dag_brb(n, 1, network.clone(), interval),
            &brb_labels(1),
        );
        println!(
            "| {:>22} | {:>12} | {:>12} |",
            format!("dag, disseminate {interval}ms"),
            f2(dag.mean_latency),
            dag.messages
        );
    }
    println!(
        "\nReading: the baseline is the latency floor (messages leave immediately);\n\
         the DAG pays ~3 dissemination rounds (request→block, echo wave, ready\n\
         wave), so its latency scales with the dissemination interval — and\n\
         shrinking the interval buys latency with more (nearly empty) blocks.\n\
         This is the crossover the paper implies: DAGs win on throughput-per-\n\
         message, direct wins on single-message latency."
    );
}
