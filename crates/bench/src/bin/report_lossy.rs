//! Experiment E10: FWD recovery under loss.
//!
//! Sweeps the per-message drop rate and reports simulated time-to-full-
//! delivery plus the FWD traffic that repaired the gaps — Assumption 1
//! restored by Algorithm 1's lines 10–13.
//!
//! Run with: `cargo run --release -p dagbft-bench --bin report_lossy`

use dagbft_bench::f2;
use dagbft_core::Label;
use dagbft_protocols::{Brb, BrbRequest};
use dagbft_sim::{Injection, NetworkModel, SimConfig, Simulation};

fn run(drop_rate: f64, seed: u64) -> (u64, u64, u64, f64) {
    let n = 4;
    let config = SimConfig::new(n)
        .with_seed(seed)
        .with_max_time(600_000)
        .with_network(NetworkModel::default().with_drop_rate(drop_rate))
        .with_stop_after_deliveries(n);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(1),
    });
    let outcome = sim.run();
    assert_eq!(outcome.deliveries.len(), n, "drop {drop_rate}: no delivery");
    let latencies = outcome.latencies_for(Label::new(1));
    let mean = latencies.iter().sum::<u64>() as f64 / latencies.len() as f64;
    (
        outcome.net.fwd_sent,
        outcome.net.messages_dropped,
        outcome.net.messages_sent,
        mean,
    )
}

fn main() {
    println!("# E10 — FWD recovery under loss (n = 4, 1 broadcast, mean of 5 seeds)\n");
    println!(
        "| {:>6} | {:>10} | {:>9} | {:>9} | {:>14} |",
        "drop %", "mean lat.", "fwd sent", "dropped", "messages sent"
    );
    println!("|{}|", "-".repeat(62));
    for drop_pct in [0u32, 10, 20, 30, 40, 50] {
        let mut fwd = 0u64;
        let mut dropped = 0u64;
        let mut sent = 0u64;
        let mut latency = 0.0;
        let seeds = 5;
        for seed in 0..seeds {
            let (f, d, s, l) = run(drop_pct as f64 / 100.0, 100 + seed);
            fwd += f;
            dropped += d;
            sent += s;
            latency += l;
        }
        let k = seeds as f64;
        println!(
            "| {:>6} | {:>10} | {:>9} | {:>9} | {:>14} |",
            drop_pct,
            f2(latency / k),
            f2(fwd as f64 / k),
            f2(dropped as f64 / k),
            f2(sent as f64 / k),
        );
    }
    println!(
        "\nReading: latency degrades gracefully with loss while delivery always\n\
         completes; FWD traffic grows with the drop rate, pulling missing\n\
         predecessors from the servers whose blocks referenced them."
    );
}
