//! Admission-pipeline experiment: wave-batched signature verification
//! and the parallel admission engine on hostile block bursts.
//!
//! Three measurements, all seeded and deterministic in structure:
//!
//! 1. **Batched verification** — `N` signed `ref(B)` digests checked
//!    three ways: the *cold* per-call path (rebuilding the HMAC key
//!    schedule per verification, exactly what admission paid before this
//!    pipeline existed), the hoisted single-verify path (cached key
//!    schedules), and one `BatchVerifier` pass. The `--check` floor pins
//!    the batched path at ≥2× over cold on the 2048-item row — the
//!    paper's batch-signature economics (§4, experiment E6) made
//!    measurable.
//! 2. **Hostile burst admission** — a 1–4k-block burst (three honest
//!    chains, an equivocating pair, a permanently invalid two-parent
//!    child with a stranded descendant, and a tampered-signature flood)
//!    delivered in reverse and shuffled order to fresh gossip instances
//!    under all three [`AdmissionMode`]s. Every run fingerprints the
//!    promotion order, stats, rejections, pending set, and the next own
//!    block's wire bytes; the engines must agree bit-for-bit (asserted
//!    every run, re-validated by `--check`).
//!
//! 3. **Cross-cascade burst admission** — the parallel trajectory: a
//!    wide hostile burst (`authors` chained builders per round, tampered
//!    signatures, an equivocation with a permanently invalid child)
//!    delivered causally — the wave-starving case: per-message ingest
//!    produces width-1 waves — and in reverse, through one
//!    `on_block_burst` bracket, under `Index` and `Parallel {1, 2, 4}`,
//!    at two signature prices (`sig_cost` 1 = the raw HMAC stand-in,
//!    where bookkeeping dominates; a calibrated chain that prices a
//!    verification like the ed25519-class schemes the stand-in
//!    replaces). `--check` pins three things: the structural widening
//!    (burst waves = full round width while per-message waves are ~1) on
//!    every machine; burst ingest ≥ 1.2× incremental ingest on reverse
//!    wide bursts (same thread count — machine-independent); and
//!    `Parallel{2} ≥ 1.2× Index` wall-clock at calibrated signature
//!    prices on machines with enough cores for the overlap to exist (the
//!    JSON records `cores` so the committed snapshot is interpretable).
//!
//! The final stdout lines are two machine-readable JSON objects
//! (`BENCH_admission.json` and `BENCH_parallel.json` are checked-in
//! snapshots from fixed-seed runs). `--check` re-runs everything,
//! enforces the floors, and diffs the JSON schemas against the committed
//! snapshots — so the bench trajectories cannot silently rot.
//!
//! Run with: `cargo run --release -p dagbft-bench --bin report_admission`

use std::time::Instant;

use dagbft_bench::{check_snapshot_schema, cores, f2};
use dagbft_core::{
    AdmissionMode, Block, BlockRef, Gossip, GossipConfig, Label, LabeledRequest, SeqNum, WaveStats,
};
use dagbft_crypto::{sha256, Digest, KeyRegistry, SchemeKind, ServerId, Signature, SignedDigest};

const SEED: u64 = 11;
/// Worker threads for the parallel engine — small on purpose: CI runners
/// have few cores, and determinism must not depend on the count anyway.
const WORKERS: usize = 4;
/// Repetitions of the verification micro-measurement (wall-clock noise).
const VERIFY_ROUNDS: usize = 8;

fn gossip(registry: &KeyRegistry, id: u32, n: usize, mode: AdmissionMode) -> Gossip {
    Gossip::new(
        ServerId::new(id),
        GossipConfig::for_n(n).with_admission(mode),
        registry.signer(ServerId::new(id)).unwrap(),
        registry.verifier(),
    )
}

/// Deterministic Fisher–Yates over a xorshift64 stream (same scheme as
/// `report_wire`): hostile but reproducible delivery order.
fn shuffle<T>(items: &mut [T], mut state: u64) {
    for i in (1..items.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        items.swap(i, (state as usize) % (i + 1));
    }
}

// ---------------------------------------------------------------------------
// Measurement 1: batched verification vs per-block verify.

struct VerifyRow {
    items: usize,
    cold_seconds: f64,
    hoisted_seconds: f64,
    batch_seconds: f64,
}

impl VerifyRow {
    fn speedup_batch_vs_cold(&self) -> f64 {
        self.cold_seconds / self.batch_seconds
    }

    fn speedup_batch_vs_hoisted(&self) -> f64 {
        self.hoisted_seconds / self.batch_seconds
    }

    fn json(&self) -> String {
        format!(
            "{{\"items\":{},\"cold_seconds\":{:.6},\"hoisted_seconds\":{:.6},\
             \"batch_seconds\":{:.6},\"speedup_batch_vs_cold\":{:.2},\
             \"speedup_batch_vs_hoisted\":{:.2}}}",
            self.items,
            self.cold_seconds,
            self.hoisted_seconds,
            self.batch_seconds,
            self.speedup_batch_vs_cold(),
            self.speedup_batch_vs_hoisted(),
        )
    }
}

/// Builds `items` signed digests (one signer per 4 servers, round-robin,
/// every 16th signature tampered so both paths exercise the reject arm)
/// and times the three verification paths over identical inputs.
fn measure_verify(items: usize) -> VerifyRow {
    let registry = KeyRegistry::generate(4, SEED);
    let signers: Vec<_> = (0..4)
        .map(|i| registry.signer(ServerId::new(i)).unwrap())
        .collect();
    let batch: Vec<SignedDigest> = (0..items)
        .map(|i| {
            let signer = &signers[i % signers.len()];
            let digest = sha256((i as u64).to_le_bytes());
            let signature = if i % 16 == 5 {
                Signature::NULL
            } else {
                signer.sign(digest.as_bytes())
            };
            SignedDigest {
                claimed: signer.id(),
                digest,
                signature,
            }
        })
        .collect();
    let verifier = registry.verifier();
    let batch_verifier = registry.batch_verifier();

    // Best-of-rounds: scheduler/allocator interference only ever *adds*
    // time, so the minimum is the low-variance estimator of each path's
    // structural cost — what CI floors need to compare reliably. The
    // rounds of the three paths are *interleaved* so a slow phase of the
    // host (frequency scaling, a noisy neighbour) degrades all three
    // equally instead of skewing whichever path it happened to overlap.
    let cold_path = || -> Vec<bool> {
        batch
            .iter()
            .map(|i| verifier.verify_cold(i.claimed, i.digest.as_bytes(), &i.signature))
            .collect()
    };
    let hoisted_path = || -> Vec<bool> {
        batch
            .iter()
            .map(|i| verifier.verify(i.claimed, i.digest.as_bytes(), &i.signature))
            .collect()
    };
    let batch_path = || -> Vec<bool> { batch_verifier.verify_batch(&batch) };

    // Warm-up once per path.
    let cold = cold_path();
    let hoisted = hoisted_path();
    let batched = batch_path();

    let mut cold_seconds = f64::INFINITY;
    let mut hoisted_seconds = f64::INFINITY;
    let mut batch_seconds = f64::INFINITY;
    for _ in 0..VERIFY_ROUNDS {
        let start = Instant::now();
        let verdicts = cold_path();
        cold_seconds = cold_seconds.min(start.elapsed().as_secs_f64());
        assert_eq!(verdicts, cold);

        let start = Instant::now();
        let verdicts = hoisted_path();
        hoisted_seconds = hoisted_seconds.min(start.elapsed().as_secs_f64());
        assert_eq!(verdicts, hoisted);

        let start = Instant::now();
        let verdicts = batch_path();
        batch_seconds = batch_seconds.min(start.elapsed().as_secs_f64());
        assert_eq!(verdicts, batched);
    }

    // All three paths are the same function.
    assert_eq!(cold, hoisted, "cold and hoisted verdicts diverged");
    assert_eq!(cold, batched, "single and batched verdicts diverged");
    assert_eq!(
        cold.iter().filter(|ok| !**ok).count(),
        items.div_ceil(16).min(items),
        "tampered share must be rejected"
    );

    VerifyRow {
        items,
        cold_seconds,
        hoisted_seconds,
        batch_seconds,
    }
}

// ---------------------------------------------------------------------------
// Measurement 2: hostile burst admission across the three engines.

/// Builds a hostile burst of roughly `target` blocks: three honest
/// builders in chained rounds, an equivocating `k = 0` pair for builder 3
/// with a permanently invalid two-parent child and a stranded grandchild,
/// plus a tampered-signature flood (one forged block per 16 honest ones).
fn hostile_burst(target: usize) -> (KeyRegistry, Vec<Block>) {
    let registry = KeyRegistry::generate(5, SEED);
    let signers: Vec<_> = (1..4)
        .map(|i| registry.signer(ServerId::new(i)).unwrap())
        .collect();
    let rounds = target / 3;
    let mut blocks = Vec::new();
    let mut prev: Vec<BlockRef> = Vec::new();
    for round in 0..rounds as u64 {
        let mut layer = Vec::new();
        for (index, signer) in signers.iter().enumerate() {
            let requests = vec![LabeledRequest::encode(
                Label::new(index as u64),
                &(round * 10 + index as u64),
            )];
            let block = Block::build(
                signer.id(),
                SeqNum::new(round),
                prev.clone(),
                requests,
                signer,
            );
            layer.push(block.block_ref());
            blocks.push(block);
        }
        prev = layer;
        if round % 16 == 3 {
            // Tampered flood: a correctly shaped block whose signature can
            // never verify. Admission must reject it — in a batch with its
            // honest round-mates.
            blocks.push(Block::build_with_signature(
                ServerId::new(4),
                SeqNum::new(round),
                prev.clone(),
                vec![LabeledRequest::encode(Label::new(777), &round)],
                Signature::NULL,
            ));
        }
    }
    // Equivocating pair + permanently invalid child + stranded grandchild
    // (same shape the convergence suite pins).
    let signer3 = registry.signer(ServerId::new(3)).unwrap();
    let equivocation = Block::build(
        ServerId::new(3),
        SeqNum::ZERO,
        vec![],
        vec![LabeledRequest::encode(Label::new(99), &1u8)],
        &signer3,
    );
    let first_k0 = blocks[2].block_ref();
    let two_parents = Block::build(
        ServerId::new(3),
        SeqNum::new(1),
        vec![first_k0, equivocation.block_ref()],
        vec![],
        &signer3,
    );
    let stranded = Block::build(
        ServerId::new(3),
        SeqNum::new(2),
        vec![two_parents.block_ref()],
        vec![],
        &signer3,
    );
    blocks.push(equivocation);
    blocks.push(two_parents);
    blocks.push(stranded);
    (registry, blocks)
}

/// Replays `schedule` into a fresh receiver under `mode`; returns
/// `(seconds, fingerprint, waves, largest_wave)`. The fingerprint hashes
/// everything admission-observable: promotion order, stats, rejections,
/// pending set, and the wire bytes of the next own block (which are
/// hashed and signed — the determinism boundary).
fn run_burst(
    registry: &KeyRegistry,
    schedule: &[Block],
    mode: AdmissionMode,
) -> (f64, Digest, u64, usize) {
    let mut receiver = gossip(registry, 0, 5, mode);
    let start = Instant::now();
    for (t, block) in schedule.iter().enumerate() {
        receiver.on_block(block.clone(), t as u64);
    }
    let seconds = start.elapsed().as_secs_f64();

    let mut transcript: Vec<u8> = Vec::new();
    for block in receiver.dag().iter() {
        transcript.extend_from_slice(block.block_ref().as_bytes());
    }
    transcript.extend_from_slice(format!("{:?}", receiver.stats()).as_bytes());
    transcript.extend_from_slice(format!("{:?}", receiver.rejected()).as_bytes());
    transcript.extend_from_slice(format!("pending:{}", receiver.pending_len()).as_bytes());
    let (own, _) = receiver.disseminate(vec![], 1_000_000);
    transcript.extend_from_slice(own.wire_bytes());
    let waves = receiver.wave_stats().waves;
    let largest = receiver.wave_stats().largest_wave;
    (seconds, sha256(&transcript), waves, largest)
}

struct BurstRow {
    blocks: usize,
    order: &'static str,
    scan_blocks_per_sec: f64,
    index_blocks_per_sec: f64,
    parallel_blocks_per_sec: f64,
    fingerprint: String,
    waves: u64,
    largest_wave: usize,
}

impl BurstRow {
    fn index_speedup(&self) -> f64 {
        self.index_blocks_per_sec / self.scan_blocks_per_sec
    }

    fn parallel_over_index(&self) -> f64 {
        self.parallel_blocks_per_sec / self.index_blocks_per_sec
    }

    fn json(&self) -> String {
        format!(
            "{{\"blocks\":{},\"order\":\"{}\",\"scan_blocks_per_sec\":{:.2},\
             \"index_blocks_per_sec\":{:.2},\"parallel_blocks_per_sec\":{:.2},\
             \"index_speedup\":{:.2},\"parallel_over_index\":{:.2},\
             \"fingerprint\":\"{}\",\"waves\":{},\"largest_wave\":{}}}",
            self.blocks,
            self.order,
            self.scan_blocks_per_sec,
            self.index_blocks_per_sec,
            self.parallel_blocks_per_sec,
            self.index_speedup(),
            self.parallel_over_index(),
            self.fingerprint,
            self.waves,
            self.largest_wave,
        )
    }
}

fn measure_burst(target: usize, order: &'static str) -> BurstRow {
    let (registry, blocks) = hostile_burst(target);
    let mut schedule: Vec<Block> = blocks.iter().rev().cloned().collect();
    if order == "shuffled" {
        schedule = blocks.clone();
        shuffle(&mut schedule, SEED ^ target as u64);
    }
    let delivered = schedule.len();

    let (scan_seconds, scan_fp, scan_waves, _) =
        run_burst(&registry, &schedule, AdmissionMode::Scan);
    let (index_seconds, index_fp, waves, largest_wave) =
        run_burst(&registry, &schedule, AdmissionMode::Index);
    let (parallel_seconds, parallel_fp, parallel_waves, parallel_largest) = run_burst(
        &registry,
        &schedule,
        AdmissionMode::Parallel { workers: WORKERS },
    );

    // Cross-engine equivalence, pinned the PR-3 way: bit-identical
    // fingerprints over everything observable.
    assert_eq!(scan_fp, index_fp, "{target} {order}: scan vs index");
    assert_eq!(index_fp, parallel_fp, "{target} {order}: index vs parallel");
    assert_eq!(scan_waves, 0, "the scan oracle never batches");
    assert_eq!(
        (waves, largest_wave),
        (parallel_waves, parallel_largest),
        "wave structure is scheduling-independent"
    );

    BurstRow {
        blocks: delivered,
        order,
        scan_blocks_per_sec: delivered as f64 / scan_seconds,
        index_blocks_per_sec: delivered as f64 / index_seconds,
        parallel_blocks_per_sec: delivered as f64 / parallel_seconds,
        fingerprint: index_fp.to_hex()[..16].to_owned(),
        waves,
        largest_wave,
    }
}

// ---------------------------------------------------------------------------
// Measurement 3: cross-cascade burst admission — the parallel trajectory.

/// Repetitions of each timed burst ingest (best-of, fresh receiver each).
const BURST_ROUNDS: usize = 3;

/// Builds a *wide* hostile burst: `authors` chained builders per round
/// (every block references the whole previous round), a tampered
/// signature every 16 rounds, and the usual equivocation + permanently
/// invalid two-parent child + stranded grandchild tail. Returned in
/// causal order — the delivery order that starves per-message waves.
fn wide_hostile_burst(
    authors: usize,
    rounds: u64,
    scheme: SchemeKind,
    sig_cost: u32,
) -> (KeyRegistry, Vec<Block>) {
    let registry = match scheme {
        SchemeKind::Hmac => KeyRegistry::generate_calibrated(authors + 2, SEED, sig_cost),
        SchemeKind::Ed25519 => KeyRegistry::generate_ed25519(authors + 2, SEED),
    };
    let signers: Vec<_> = (1..=authors)
        .map(|i| registry.signer(ServerId::new(i as u32)).unwrap())
        .collect();
    let mut blocks = Vec::new();
    let mut prev: Vec<BlockRef> = Vec::new();
    for round in 0..rounds {
        let mut layer = Vec::new();
        for (index, signer) in signers.iter().enumerate() {
            let block = Block::build(
                signer.id(),
                SeqNum::new(round),
                prev.clone(),
                vec![LabeledRequest::encode(
                    Label::new(index as u64),
                    &(round * 10 + index as u64),
                )],
                signer,
            );
            layer.push(block.block_ref());
            blocks.push(block);
        }
        prev = layer;
        if round % 16 == 3 {
            blocks.push(Block::build_with_signature(
                ServerId::new(authors as u32 + 1),
                SeqNum::new(round),
                prev.clone(),
                vec![LabeledRequest::encode(Label::new(777), &round)],
                Signature::NULL,
            ));
        }
    }
    let signer = &signers[authors - 1];
    let equivocation = Block::build(
        signer.id(),
        SeqNum::ZERO,
        vec![],
        vec![LabeledRequest::encode(Label::new(99), &1u8)],
        signer,
    );
    let two_parents = Block::build(
        signer.id(),
        SeqNum::new(1),
        vec![blocks[authors - 1].block_ref(), equivocation.block_ref()],
        vec![],
        signer,
    );
    let stranded = Block::build(
        signer.id(),
        SeqNum::new(2),
        vec![two_parents.block_ref()],
        vec![],
        signer,
    );
    blocks.push(equivocation);
    blocks.push(two_parents);
    blocks.push(stranded);
    (registry, blocks)
}

/// Fingerprint of everything admission-observable, shared by the burst
/// and incremental ingest paths of one engine comparison.
fn admission_fingerprint(receiver: &mut Gossip) -> Digest {
    let mut transcript: Vec<u8> = Vec::new();
    for block in receiver.dag().iter() {
        transcript.extend_from_slice(block.block_ref().as_bytes());
    }
    transcript.extend_from_slice(format!("{:?}", receiver.stats()).as_bytes());
    transcript.extend_from_slice(format!("{:?}", receiver.rejected()).as_bytes());
    transcript.extend_from_slice(format!("pending:{}", receiver.pending_len()).as_bytes());
    let (own, _) = receiver.disseminate(vec![], 1_000_000);
    transcript.extend_from_slice(own.wire_bytes());
    sha256(&transcript)
}

/// Hash of the admitted DAG as a set (sorted refs + wire bytes): the
/// burst-vs-incremental equivalence unit — promotion order may differ
/// between ingest shapes, the admitted bytes may not.
fn dag_set_digest(receiver: &Gossip) -> Digest {
    let refs: std::collections::BTreeSet<BlockRef> = receiver.dag().refs().copied().collect();
    let mut transcript: Vec<u8> = Vec::new();
    for block_ref in refs {
        transcript.extend_from_slice(block_ref.as_bytes());
        transcript.extend_from_slice(receiver.dag().get(&block_ref).unwrap().wire_bytes());
    }
    sha256(&transcript)
}

/// One ingest measurement: seconds (best-of-rounds), engine fingerprint,
/// admitted-set digest, and wave statistics.
struct IngestRun {
    seconds: f64,
    fingerprint: Digest,
    dag_set: Digest,
    wave_stats: WaveStats,
}

fn run_ingest(
    registry: &KeyRegistry,
    schedule: &[Block],
    n: usize,
    mode: AdmissionMode,
    bracketed: bool,
    rounds: usize,
) -> IngestRun {
    let mut best = f64::INFINITY;
    let mut last: Option<Gossip> = None;
    for _ in 0..rounds {
        let mut receiver = gossip(registry, 0, n, mode);
        let start = Instant::now();
        if bracketed {
            receiver.on_block_burst(schedule.iter().cloned(), 0);
        } else {
            for (t, block) in schedule.iter().enumerate() {
                receiver.on_block(block.clone(), t as u64);
            }
        }
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(receiver);
    }
    let mut receiver = last.expect("at least one round");
    let wave_stats = *receiver.wave_stats();
    let dag_set = dag_set_digest(&receiver);
    IngestRun {
        seconds: best,
        fingerprint: admission_fingerprint(&mut receiver),
        dag_set,
        wave_stats,
    }
}

struct TrajectoryRow {
    width: usize,
    blocks: usize,
    order: &'static str,
    scheme: &'static str,
    sig_cost: u32,
    workers: usize,
    incremental_bps: f64,
    index_bps: f64,
    parallel_bps: f64,
    mean_wave: f64,
    largest_wave: usize,
    waves: u64,
    incremental_mean_wave: f64,
}

impl TrajectoryRow {
    fn parallel_over_index(&self) -> f64 {
        self.parallel_bps / self.index_bps
    }

    fn burst_over_incremental(&self) -> f64 {
        self.index_bps / self.incremental_bps
    }

    fn json(&self) -> String {
        format!(
            "{{\"width\":{},\"blocks\":{},\"order\":\"{}\",\"scheme\":\"{}\",\"sig_cost\":{},\
             \"workers\":{},\
             \"incremental_bps\":{:.2},\
             \"index_bps\":{:.2},\"parallel_bps\":{:.2},\"parallel_over_index\":{:.3},\
             \"burst_over_incremental\":{:.3},\
             \"mean_wave\":{:.2},\"largest_wave\":{},\"waves\":{},\
             \"incremental_mean_wave\":{:.2}}}",
            self.width,
            self.blocks,
            self.order,
            self.scheme,
            self.sig_cost,
            self.workers,
            self.incremental_bps,
            self.index_bps,
            self.parallel_bps,
            self.parallel_over_index(),
            self.burst_over_incremental(),
            self.mean_wave,
            self.largest_wave,
            self.waves,
            self.incremental_mean_wave,
        )
    }
}

/// Runs the burst trajectory for one width: incremental Index (the
/// starved baseline), bracketed Index, bracketed Parallel at 1/2/4
/// workers, and one bracketed Scan pass as the equivalence oracle.
/// Returns one row per worker count plus the width's wave histogram.
fn measure_trajectory(
    authors: usize,
    rounds: u64,
    order: &'static str,
    scheme: SchemeKind,
    sig_cost: u32,
) -> (Vec<TrajectoryRow>, [u64; dagbft_core::WAVE_WIDTH_BUCKETS]) {
    let (registry, mut schedule) = wide_hostile_burst(authors, rounds, scheme, sig_cost);
    if order == "reverse" {
        schedule.reverse();
    }
    let n = authors + 2;
    let blocks = schedule.len();

    let incremental = run_ingest(
        &registry,
        &schedule,
        n,
        AdmissionMode::Index,
        false,
        BURST_ROUNDS,
    );
    let index = run_ingest(
        &registry,
        &schedule,
        n,
        AdmissionMode::Index,
        true,
        BURST_ROUNDS,
    );
    let scan = run_ingest(&registry, &schedule, n, AdmissionMode::Scan, true, 1);

    // Burst-path engine equivalence: the scan oracle and the batched
    // engine are byte-identical in every observable.
    assert_eq!(scan.fingerprint, index.fingerprint, "scan vs index (burst)");
    // Ingest-shape equivalence: deferral cannot change the admitted set.
    assert_eq!(
        incremental.dag_set, index.dag_set,
        "burst vs incremental admitted set"
    );

    let mut result = Vec::new();
    for workers in [1usize, 2, 4] {
        let parallel = run_ingest(
            &registry,
            &schedule,
            n,
            AdmissionMode::parallel(workers),
            true,
            BURST_ROUNDS,
        );
        assert_eq!(
            parallel.fingerprint, index.fingerprint,
            "parallel{{{workers}}} vs index (burst)"
        );
        assert_eq!(
            (
                parallel.wave_stats.waves,
                parallel.wave_stats.largest_wave,
                parallel.wave_stats.smallest_wave
            ),
            (
                index.wave_stats.waves,
                index.wave_stats.largest_wave,
                index.wave_stats.smallest_wave
            ),
            "wave structure is scheduling-independent"
        );
        result.push(TrajectoryRow {
            width: authors,
            blocks,
            order,
            scheme: scheme.name(),
            sig_cost,
            workers,
            incremental_bps: blocks as f64 / incremental.seconds,
            index_bps: blocks as f64 / index.seconds,
            parallel_bps: blocks as f64 / parallel.seconds,
            mean_wave: index.wave_stats.mean_wave(),
            largest_wave: index.wave_stats.largest_wave,
            waves: index.wave_stats.waves,
            incremental_mean_wave: incremental.wave_stats.mean_wave(),
        });
    }
    (result, index.wave_stats.width_histogram)
}

// ---------------------------------------------------------------------------

fn run() -> (Vec<VerifyRow>, Vec<BurstRow>, String) {
    let verify: Vec<VerifyRow> = [512usize, 2048, 4096]
        .into_iter()
        .map(measure_verify)
        .collect();
    let burst: Vec<BurstRow> = [
        (1024, "reverse"),
        (2048, "reverse"),
        (4096, "reverse"),
        (1024, "shuffled"),
        (2048, "shuffled"),
        (4096, "shuffled"),
    ]
    .into_iter()
    .map(|(blocks, order)| measure_burst(blocks, order))
    .collect();

    let json = format!(
        "{{\"experiment\":\"admission_pipeline\",\"seed\":{},\"workers\":{},\"cores\":{},\
         \"verify\":[{}],\"burst\":[{}]}}",
        SEED,
        WORKERS,
        cores(),
        verify
            .iter()
            .map(VerifyRow::json)
            .collect::<Vec<_>>()
            .join(","),
        burst
            .iter()
            .map(BurstRow::json)
            .collect::<Vec<_>>()
            .join(","),
    );
    (verify, burst, json)
}

fn run_trajectory() -> (
    Vec<TrajectoryRow>,
    [u64; dagbft_core::WAVE_WIDTH_BUCKETS],
    String,
) {
    // Width 8 shows the pool roughly breaking even; width 64 and 128 are
    // the ≥ 2k-block wide bursts the pool is built for.
    let mut rows = Vec::new();
    let mut histogram = [0u64; dagbft_core::WAVE_WIDTH_BUCKETS];
    // sig_cost 1 is the raw HMAC stand-in (verification nearly free, so
    // bookkeeping dominates and no pool can win — Amdahl); sig_cost 64
    // is the calibrated chain that *prices* a verification like ed25519;
    // the ed25519 rows pay the real thing — one wave-wide multi-scalar
    // multiplication per batch instead of per-item verifies, the regime
    // the worker pool and the burst deferral exist for.
    for (authors, rounds, scheme, sig_cost) in [
        (8usize, 64u64, SchemeKind::Hmac, 1u32),
        (64, 32, SchemeKind::Hmac, 1),
        (128, 16, SchemeKind::Hmac, 1),
        (64, 32, SchemeKind::Hmac, 64),
        (64, 16, SchemeKind::Ed25519, 1),
    ] {
        for order in ["causal", "reverse"] {
            let (width_rows, width_histogram) =
                measure_trajectory(authors, rounds, order, scheme, sig_cost);
            rows.extend(width_rows);
            if authors == 64 && order == "causal" && sig_cost == 1 && scheme == SchemeKind::Hmac {
                histogram = width_histogram;
            }
        }
    }
    let json = format!(
        "{{\"experiment\":\"burst_admission\",\"seed\":{},\"cores\":{},\"rows\":[{}]}}",
        SEED,
        cores(),
        rows.iter()
            .map(TrajectoryRow::json)
            .collect::<Vec<_>>()
            .join(","),
    );
    (rows, histogram, json)
}

fn check(verify: &[VerifyRow], burst: &[BurstRow], json: &str) -> Result<(), String> {
    // The batched-verification floor from the issue: ≥2× over per-block
    // (cold) verify on the 2k burst. The measured ratio is comfortably
    // higher; the floor guards the key-schedule hoisting and the batch
    // fast path against regressions.
    let row_2k = verify
        .iter()
        .find(|row| row.items == 2048)
        .ok_or("no 2048-item verify row")?;
    if row_2k.speedup_batch_vs_cold() < 2.0 {
        return Err(format!(
            "2048 items: batch speedup {:.2} below the 2x floor",
            row_2k.speedup_batch_vs_cold()
        ));
    }
    for row in verify {
        if row.cold_seconds <= 0.0 || row.hoisted_seconds <= 0.0 || row.batch_seconds <= 0.0 {
            return Err(format!("{} items: zero wall-clock", row.items));
        }
        // Batching must stay in the same cost class as the hoisted
        // per-call path (same key schedules, minus per-call dispatch):
        // the two are within a few percent structurally, so a generous
        // floor here only catches a real regression of the batch path,
        // not runner noise.
        if row.speedup_batch_vs_hoisted() < 0.75 {
            return Err(format!(
                "{} items: batch far slower than hoisted single verify ({:.2}x)",
                row.items,
                row.speedup_batch_vs_hoisted()
            ));
        }
    }
    for row in burst {
        if row.scan_blocks_per_sec <= 0.0
            || row.index_blocks_per_sec <= 0.0
            || row.parallel_blocks_per_sec <= 0.0
        {
            return Err(format!(
                "burst {} ({}): zero throughput",
                row.blocks, row.order
            ));
        }
        if row.waves == 0 || row.largest_wave < 2 {
            return Err(format!(
                "burst {} ({}): no wave batching observed (waves {}, largest {})",
                row.blocks, row.order, row.waves, row.largest_wave
            ));
        }
        if row.fingerprint.is_empty() {
            return Err(format!(
                "burst {} ({}): missing equivalence fingerprint",
                row.blocks, row.order
            ));
        }
    }
    check_snapshot_schema("BENCH_admission.json", json)
}

/// Cores below which the `Parallel{2} ≥ 1.2× Index` wall-clock floor is
/// replaced by a no-pathology sanity bound: 2 workers plus the
/// promoting event-loop thread need at least 3 lanes for the pipeline's
/// overlap to physically exist.
const PARALLEL_GATE_MIN_CORES: usize = 3;

fn check_trajectory(rows: &[TrajectoryRow], json: &str) -> Result<(), String> {
    for row in rows {
        if row.incremental_bps <= 0.0 || row.index_bps <= 0.0 || row.parallel_bps <= 0.0 {
            return Err(format!(
                "trajectory width {} workers {}: zero throughput",
                row.width, row.workers
            ));
        }
    }
    // Structural widening gates — machine-independent: in-order delivery
    // starves per-message waves to width ~1, while the burst bracket
    // restores the full round width.
    for row in rows
        .iter()
        .filter(|row| row.width >= 64 && row.order == "causal")
    {
        if row.largest_wave < row.width {
            return Err(format!(
                "width {}: burst waves top out at {} — no cross-cascade widening",
                row.width, row.largest_wave
            ));
        }
        if row.mean_wave < row.width as f64 / 2.0 {
            return Err(format!(
                "width {}: mean burst wave {:.2} below half the round width",
                row.width, row.mean_wave
            ));
        }
        if row.incremental_mean_wave > 2.0 {
            return Err(format!(
                "width {}: per-message ingest unexpectedly wide ({:.2}) — \
                 the trajectory no longer isolates the deferral win",
                row.width, row.incremental_mean_wave
            ));
        }
    }
    // Machine-independent wall-clock gate: on hostile (reverse) wide
    // bursts, the deferred single-pass dependency analysis must beat the
    // incremental engine's per-delivery index churn — same thread count,
    // same verification work, so the ratio holds on any hardware.
    let reverse_wide = rows
        .iter()
        .filter(|row| row.width >= 64 && row.order == "reverse" && row.workers == 2)
        .collect::<Vec<_>>();
    if reverse_wide.is_empty() {
        return Err("no reverse wide-burst trajectory row".into());
    }
    for row in reverse_wide {
        if row.burst_over_incremental() < 1.2 {
            return Err(format!(
                "width {} cost {}: burst ingest only {:.2}x incremental on reverse \
                 delivery (floor 1.2x)",
                row.width,
                row.sig_cost,
                row.burst_over_incremental()
            ));
        }
    }
    // Hardware-conditional wall-clock gate: at real verification prices
    // — the calibrated HMAC chain and the genuine ed25519 rows (with
    // 2-compression HMACs verification is ~3% of admission and Amdahl
    // forbids any pool win) — Parallel{2} must beat the single-threaded
    // batch by ≥ 1.2× on hardware where the overlap can physically
    // happen. On smaller machines (the committed snapshot may come from
    // one; `cores` is in the JSON) the gate degrades to a no-pathology
    // bound.
    let expensive_wide = rows
        .iter()
        .filter(|row| {
            row.width >= 64
                && row.order == "causal"
                && (row.sig_cost > 1 || row.scheme == "ed25519")
                && row.workers == 2
        })
        .collect::<Vec<_>>();
    if expensive_wide.len() < 2 {
        return Err(
            "missing calibrated-HMAC or ed25519 wide-burst workers=2 trajectory row".into(),
        );
    }
    for row in expensive_wide {
        let ratio = row.parallel_over_index();
        if cores() >= PARALLEL_GATE_MIN_CORES {
            if ratio < 1.2 {
                return Err(format!(
                    "width {} scheme {} cost {}: Parallel{{2}} only {:.2}x Index on {} cores \
                     (floor 1.2x)",
                    row.width,
                    row.scheme,
                    row.sig_cost,
                    ratio,
                    cores()
                ));
            }
        } else if ratio < 0.33 {
            return Err(format!(
                "width {} scheme {} cost {}: Parallel{{2}} pathologically slow ({:.2}x Index) \
                 even for {} core(s)",
                row.width,
                row.scheme,
                row.sig_cost,
                ratio,
                cores()
            ));
        }
    }
    check_snapshot_schema("BENCH_parallel.json", json)
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");

    println!("# Admission pipeline — wave-batched verification + parallel engine (seed {SEED})\n");
    let (verify, burst, json) = run();

    println!(
        "| {:>6} | {:>9} | {:>11} | {:>9} | {:>13} | {:>16} |",
        "items", "cold ms", "hoisted ms", "batch ms", "batch/cold", "batch/hoisted"
    );
    println!("|{}|", "-".repeat(81));
    for row in &verify {
        println!(
            "| {:>6} | {:>9} | {:>11} | {:>9} | {:>12}x | {:>15}x |",
            row.items,
            f2(row.cold_seconds * 1000.0),
            f2(row.hoisted_seconds * 1000.0),
            f2(row.batch_seconds * 1000.0),
            f2(row.speedup_batch_vs_cold()),
            f2(row.speedup_batch_vs_hoisted()),
        );
    }

    println!(
        "\n| {:>6} | {:>8} | {:>10} | {:>11} | {:>12} | {:>7} | {:>6} | {:>8} |",
        "blocks", "order", "scan b/s", "index b/s", "parallel b/s", "idx spd", "waves", "max wave"
    );
    println!("|{}|", "-".repeat(92));
    for row in &burst {
        println!(
            "| {:>6} | {:>8} | {:>10} | {:>11} | {:>12} | {:>6}x | {:>6} | {:>8} |",
            row.blocks,
            row.order,
            f2(row.scan_blocks_per_sec),
            f2(row.index_blocks_per_sec),
            f2(row.parallel_blocks_per_sec),
            f2(row.index_speedup()),
            row.waves,
            row.largest_wave,
        );
    }

    let (trajectory, histogram, parallel_json) = run_trajectory();
    println!(
        "\n## Cross-cascade burst admission (in-order wide bursts, one bracket; {} cores)\n",
        cores()
    );
    println!(
        "| {:>5} | {:>6} | {:>7} | {:>7} | {:>4} | {:>7} | {:>12} | {:>11} | {:>12} | {:>8} | {:>8} | {:>9} | {:>9} |",
        "width", "blocks", "order", "scheme", "cost", "workers", "increm b/s", "index b/s",
        "parallel b/s", "par/idx", "bst/incr", "mean wave", "incr wave"
    );
    println!("|{}|", "-".repeat(141));
    for row in &trajectory {
        println!(
            "| {:>5} | {:>6} | {:>7} | {:>7} | {:>4} | {:>7} | {:>12} | {:>11} | {:>12} | {:>7}x | {:>7}x | {:>9} | {:>9} |",
            row.width,
            row.blocks,
            row.order,
            row.scheme,
            row.sig_cost,
            row.workers,
            f2(row.incremental_bps),
            f2(row.index_bps),
            f2(row.parallel_bps),
            f2(row.parallel_over_index()),
            f2(row.burst_over_incremental()),
            f2(row.mean_wave),
            f2(row.incremental_mean_wave),
        );
    }

    println!("\nWave-width histogram (width-64 burst, index engine):");
    for (bucket, count) in histogram.iter().enumerate() {
        if *count == 0 {
            continue;
        }
        let low = 1usize << bucket;
        let label = if bucket == dagbft_core::WAVE_WIDTH_BUCKETS - 1 {
            format!("[{low}+)")
        } else {
            format!("[{low}-{})", 1usize << (bucket + 1))
        };
        println!(
            "  {label:>12} {} {count}",
            "#".repeat((*count as usize).min(60))
        );
    }

    println!(
        "\nReading: hoisting the HMAC key schedules and verifying each ready\n\
         wave in one batch pass removes the per-verification key setup that\n\
         per-message BFT systems pay on every protocol message — the paper's\n\
         batch-signature argument (§4/E6) as a measured trajectory. The burst\n\
         rows pin all three admission engines to bit-identical promotion\n\
         fingerprints on equivocating, tampered-signature, out-of-order\n\
         floods. The cross-cascade trajectory shows what deferral buys: on\n\
         in-order wide bursts, per-message ingest verifies width-1 waves\n\
         (incr wave), while one admission bracket restores full-round waves\n\
         (mean wave) — the unit of work the parallel pool needs. Whether\n\
         Parallel{{2}} then beats Index (par/idx) is a hardware fact; the\n\
         cores field in the JSON says what this machine could show.\n"
    );

    // Machine-readable trajectory lines (snapshots: BENCH_admission.json,
    // BENCH_parallel.json).
    println!("{json}");
    println!("{parallel_json}");

    if check_mode {
        match check(&verify, &burst, &json)
            .and_then(|()| check_trajectory(&trajectory, &parallel_json))
        {
            Ok(()) => println!("CHECK OK"),
            Err(reason) => {
                eprintln!("CHECK FAILED: {reason}");
                std::process::exit(1);
            }
        }
    }
}
