//! Admission-pipeline experiment: wave-batched signature verification
//! and the parallel admission engine on hostile block bursts.
//!
//! Two measurements, both seeded and deterministic in structure:
//!
//! 1. **Batched verification** — `N` signed `ref(B)` digests checked
//!    three ways: the *cold* per-call path (rebuilding the HMAC key
//!    schedule per verification, exactly what admission paid before this
//!    pipeline existed), the hoisted single-verify path (cached key
//!    schedules), and one `BatchVerifier` pass. The `--check` floor pins
//!    the batched path at ≥2× over cold on the 2048-item row — the
//!    paper's batch-signature economics (§4, experiment E6) made
//!    measurable.
//! 2. **Hostile burst admission** — a 1–4k-block burst (three honest
//!    chains, an equivocating pair, a permanently invalid two-parent
//!    child with a stranded descendant, and a tampered-signature flood)
//!    delivered in reverse and shuffled order to fresh gossip instances
//!    under all three [`AdmissionMode`]s. Every run fingerprints the
//!    promotion order, stats, rejections, pending set, and the next own
//!    block's wire bytes; the engines must agree bit-for-bit (asserted
//!    every run, re-validated by `--check`).
//!
//! The final stdout line is a single machine-readable JSON object
//! (`BENCH_admission.json` is a checked-in snapshot from a fixed-seed
//! run). `--check` re-runs everything, enforces the floors, and diffs the
//! JSON schema against the committed snapshot — so the bench trajectory
//! cannot silently rot.
//!
//! Run with: `cargo run --release -p dagbft-bench --bin report_admission`

use std::time::Instant;

use dagbft_bench::{check_snapshot_schema, f2};
use dagbft_core::{
    AdmissionMode, Block, BlockRef, Gossip, GossipConfig, Label, LabeledRequest, SeqNum,
};
use dagbft_crypto::{sha256, Digest, KeyRegistry, ServerId, Signature, SignedDigest};

const SEED: u64 = 11;
/// Worker threads for the parallel engine — small on purpose: CI runners
/// have few cores, and determinism must not depend on the count anyway.
const WORKERS: usize = 4;
/// Repetitions of the verification micro-measurement (wall-clock noise).
const VERIFY_ROUNDS: usize = 8;

fn gossip(registry: &KeyRegistry, id: u32, n: usize, mode: AdmissionMode) -> Gossip {
    Gossip::new(
        ServerId::new(id),
        GossipConfig::for_n(n).with_admission(mode),
        registry.signer(ServerId::new(id)).unwrap(),
        registry.verifier(),
    )
}

/// Deterministic Fisher–Yates over a xorshift64 stream (same scheme as
/// `report_wire`): hostile but reproducible delivery order.
fn shuffle<T>(items: &mut [T], mut state: u64) {
    for i in (1..items.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        items.swap(i, (state as usize) % (i + 1));
    }
}

// ---------------------------------------------------------------------------
// Measurement 1: batched verification vs per-block verify.

struct VerifyRow {
    items: usize,
    cold_seconds: f64,
    hoisted_seconds: f64,
    batch_seconds: f64,
}

impl VerifyRow {
    fn speedup_batch_vs_cold(&self) -> f64 {
        self.cold_seconds / self.batch_seconds
    }

    fn speedup_batch_vs_hoisted(&self) -> f64 {
        self.hoisted_seconds / self.batch_seconds
    }

    fn json(&self) -> String {
        format!(
            "{{\"items\":{},\"cold_seconds\":{:.6},\"hoisted_seconds\":{:.6},\
             \"batch_seconds\":{:.6},\"speedup_batch_vs_cold\":{:.2},\
             \"speedup_batch_vs_hoisted\":{:.2}}}",
            self.items,
            self.cold_seconds,
            self.hoisted_seconds,
            self.batch_seconds,
            self.speedup_batch_vs_cold(),
            self.speedup_batch_vs_hoisted(),
        )
    }
}

/// Builds `items` signed digests (one signer per 4 servers, round-robin,
/// every 16th signature tampered so both paths exercise the reject arm)
/// and times the three verification paths over identical inputs.
fn measure_verify(items: usize) -> VerifyRow {
    let registry = KeyRegistry::generate(4, SEED);
    let signers: Vec<_> = (0..4)
        .map(|i| registry.signer(ServerId::new(i)).unwrap())
        .collect();
    let batch: Vec<SignedDigest> = (0..items)
        .map(|i| {
            let signer = &signers[i % signers.len()];
            let digest = sha256((i as u64).to_le_bytes());
            let signature = if i % 16 == 5 {
                Signature::NULL
            } else {
                signer.sign(digest.as_bytes())
            };
            SignedDigest {
                claimed: signer.id(),
                digest,
                signature,
            }
        })
        .collect();
    let verifier = registry.verifier();
    let batch_verifier = registry.batch_verifier();

    // Best-of-rounds: scheduler/allocator interference only ever *adds*
    // time, so the minimum is the low-variance estimator of each path's
    // structural cost — what CI floors need to compare reliably.
    let time = |f: &mut dyn FnMut() -> Vec<bool>| -> (f64, Vec<bool>) {
        let mut verdicts = f(); // warm-up
        let mut best = f64::INFINITY;
        for _ in 0..VERIFY_ROUNDS {
            let start = Instant::now();
            verdicts = f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        (best, verdicts)
    };

    let (cold_seconds, cold) = time(&mut || {
        batch
            .iter()
            .map(|i| verifier.verify_cold(i.claimed, i.digest.as_bytes(), &i.signature))
            .collect()
    });
    let (hoisted_seconds, hoisted) = time(&mut || {
        batch
            .iter()
            .map(|i| verifier.verify(i.claimed, i.digest.as_bytes(), &i.signature))
            .collect()
    });
    let (batch_seconds, batched) = time(&mut || batch_verifier.verify_batch(&batch));

    // All three paths are the same function.
    assert_eq!(cold, hoisted, "cold and hoisted verdicts diverged");
    assert_eq!(cold, batched, "single and batched verdicts diverged");
    assert_eq!(
        cold.iter().filter(|ok| !**ok).count(),
        items.div_ceil(16).min(items),
        "tampered share must be rejected"
    );

    VerifyRow {
        items,
        cold_seconds,
        hoisted_seconds,
        batch_seconds,
    }
}

// ---------------------------------------------------------------------------
// Measurement 2: hostile burst admission across the three engines.

/// Builds a hostile burst of roughly `target` blocks: three honest
/// builders in chained rounds, an equivocating `k = 0` pair for builder 3
/// with a permanently invalid two-parent child and a stranded grandchild,
/// plus a tampered-signature flood (one forged block per 16 honest ones).
fn hostile_burst(target: usize) -> (KeyRegistry, Vec<Block>) {
    let registry = KeyRegistry::generate(5, SEED);
    let signers: Vec<_> = (1..4)
        .map(|i| registry.signer(ServerId::new(i)).unwrap())
        .collect();
    let rounds = target / 3;
    let mut blocks = Vec::new();
    let mut prev: Vec<BlockRef> = Vec::new();
    for round in 0..rounds as u64 {
        let mut layer = Vec::new();
        for (index, signer) in signers.iter().enumerate() {
            let requests = vec![LabeledRequest::encode(
                Label::new(index as u64),
                &(round * 10 + index as u64),
            )];
            let block = Block::build(
                signer.id(),
                SeqNum::new(round),
                prev.clone(),
                requests,
                signer,
            );
            layer.push(block.block_ref());
            blocks.push(block);
        }
        prev = layer;
        if round % 16 == 3 {
            // Tampered flood: a correctly shaped block whose signature can
            // never verify. Admission must reject it — in a batch with its
            // honest round-mates.
            blocks.push(Block::build_with_signature(
                ServerId::new(4),
                SeqNum::new(round),
                prev.clone(),
                vec![LabeledRequest::encode(Label::new(777), &round)],
                Signature::NULL,
            ));
        }
    }
    // Equivocating pair + permanently invalid child + stranded grandchild
    // (same shape the convergence suite pins).
    let signer3 = registry.signer(ServerId::new(3)).unwrap();
    let equivocation = Block::build(
        ServerId::new(3),
        SeqNum::ZERO,
        vec![],
        vec![LabeledRequest::encode(Label::new(99), &1u8)],
        &signer3,
    );
    let first_k0 = blocks[2].block_ref();
    let two_parents = Block::build(
        ServerId::new(3),
        SeqNum::new(1),
        vec![first_k0, equivocation.block_ref()],
        vec![],
        &signer3,
    );
    let stranded = Block::build(
        ServerId::new(3),
        SeqNum::new(2),
        vec![two_parents.block_ref()],
        vec![],
        &signer3,
    );
    blocks.push(equivocation);
    blocks.push(two_parents);
    blocks.push(stranded);
    (registry, blocks)
}

/// Replays `schedule` into a fresh receiver under `mode`; returns
/// `(seconds, fingerprint, waves, largest_wave)`. The fingerprint hashes
/// everything admission-observable: promotion order, stats, rejections,
/// pending set, and the wire bytes of the next own block (which are
/// hashed and signed — the determinism boundary).
fn run_burst(
    registry: &KeyRegistry,
    schedule: &[Block],
    mode: AdmissionMode,
) -> (f64, Digest, u64, usize) {
    let mut receiver = gossip(registry, 0, 5, mode);
    let start = Instant::now();
    for (t, block) in schedule.iter().enumerate() {
        receiver.on_block(block.clone(), t as u64);
    }
    let seconds = start.elapsed().as_secs_f64();

    let mut transcript: Vec<u8> = Vec::new();
    for block in receiver.dag().iter() {
        transcript.extend_from_slice(block.block_ref().as_bytes());
    }
    transcript.extend_from_slice(format!("{:?}", receiver.stats()).as_bytes());
    transcript.extend_from_slice(format!("{:?}", receiver.rejected()).as_bytes());
    transcript.extend_from_slice(format!("pending:{}", receiver.pending_len()).as_bytes());
    let (own, _) = receiver.disseminate(vec![], 1_000_000);
    transcript.extend_from_slice(own.wire_bytes());
    let waves = receiver.wave_stats().waves;
    let largest = receiver.wave_stats().largest_wave;
    (seconds, sha256(&transcript), waves, largest)
}

struct BurstRow {
    blocks: usize,
    order: &'static str,
    scan_blocks_per_sec: f64,
    index_blocks_per_sec: f64,
    parallel_blocks_per_sec: f64,
    fingerprint: String,
    waves: u64,
    largest_wave: usize,
}

impl BurstRow {
    fn index_speedup(&self) -> f64 {
        self.index_blocks_per_sec / self.scan_blocks_per_sec
    }

    fn parallel_over_index(&self) -> f64 {
        self.parallel_blocks_per_sec / self.index_blocks_per_sec
    }

    fn json(&self) -> String {
        format!(
            "{{\"blocks\":{},\"order\":\"{}\",\"scan_blocks_per_sec\":{:.2},\
             \"index_blocks_per_sec\":{:.2},\"parallel_blocks_per_sec\":{:.2},\
             \"index_speedup\":{:.2},\"parallel_over_index\":{:.2},\
             \"fingerprint\":\"{}\",\"waves\":{},\"largest_wave\":{}}}",
            self.blocks,
            self.order,
            self.scan_blocks_per_sec,
            self.index_blocks_per_sec,
            self.parallel_blocks_per_sec,
            self.index_speedup(),
            self.parallel_over_index(),
            self.fingerprint,
            self.waves,
            self.largest_wave,
        )
    }
}

fn measure_burst(target: usize, order: &'static str) -> BurstRow {
    let (registry, blocks) = hostile_burst(target);
    let mut schedule: Vec<Block> = blocks.iter().rev().cloned().collect();
    if order == "shuffled" {
        schedule = blocks.clone();
        shuffle(&mut schedule, SEED ^ target as u64);
    }
    let delivered = schedule.len();

    let (scan_seconds, scan_fp, scan_waves, _) =
        run_burst(&registry, &schedule, AdmissionMode::Scan);
    let (index_seconds, index_fp, waves, largest_wave) =
        run_burst(&registry, &schedule, AdmissionMode::Index);
    let (parallel_seconds, parallel_fp, parallel_waves, parallel_largest) = run_burst(
        &registry,
        &schedule,
        AdmissionMode::Parallel { workers: WORKERS },
    );

    // Cross-engine equivalence, pinned the PR-3 way: bit-identical
    // fingerprints over everything observable.
    assert_eq!(scan_fp, index_fp, "{target} {order}: scan vs index");
    assert_eq!(index_fp, parallel_fp, "{target} {order}: index vs parallel");
    assert_eq!(scan_waves, 0, "the scan oracle never batches");
    assert_eq!(
        (waves, largest_wave),
        (parallel_waves, parallel_largest),
        "wave structure is scheduling-independent"
    );

    BurstRow {
        blocks: delivered,
        order,
        scan_blocks_per_sec: delivered as f64 / scan_seconds,
        index_blocks_per_sec: delivered as f64 / index_seconds,
        parallel_blocks_per_sec: delivered as f64 / parallel_seconds,
        fingerprint: index_fp.to_hex()[..16].to_owned(),
        waves,
        largest_wave,
    }
}

// ---------------------------------------------------------------------------

fn run() -> (Vec<VerifyRow>, Vec<BurstRow>, String) {
    let verify: Vec<VerifyRow> = [512usize, 2048, 4096]
        .into_iter()
        .map(measure_verify)
        .collect();
    let burst: Vec<BurstRow> = [
        (1024, "reverse"),
        (2048, "reverse"),
        (4096, "reverse"),
        (1024, "shuffled"),
        (2048, "shuffled"),
        (4096, "shuffled"),
    ]
    .into_iter()
    .map(|(blocks, order)| measure_burst(blocks, order))
    .collect();

    let json = format!(
        "{{\"experiment\":\"admission_pipeline\",\"seed\":{},\"workers\":{},\
         \"verify\":[{}],\"burst\":[{}]}}",
        SEED,
        WORKERS,
        verify
            .iter()
            .map(VerifyRow::json)
            .collect::<Vec<_>>()
            .join(","),
        burst
            .iter()
            .map(BurstRow::json)
            .collect::<Vec<_>>()
            .join(","),
    );
    (verify, burst, json)
}

fn check(verify: &[VerifyRow], burst: &[BurstRow], json: &str) -> Result<(), String> {
    // The batched-verification floor from the issue: ≥2× over per-block
    // (cold) verify on the 2k burst. The measured ratio is comfortably
    // higher; the floor guards the key-schedule hoisting and the batch
    // fast path against regressions.
    let row_2k = verify
        .iter()
        .find(|row| row.items == 2048)
        .ok_or("no 2048-item verify row")?;
    if row_2k.speedup_batch_vs_cold() < 2.0 {
        return Err(format!(
            "2048 items: batch speedup {:.2} below the 2x floor",
            row_2k.speedup_batch_vs_cold()
        ));
    }
    for row in verify {
        if row.cold_seconds <= 0.0 || row.hoisted_seconds <= 0.0 || row.batch_seconds <= 0.0 {
            return Err(format!("{} items: zero wall-clock", row.items));
        }
        // Batching must stay in the same cost class as the hoisted
        // per-call path (same key schedules, minus per-call dispatch):
        // the two are within a few percent structurally, so a generous
        // floor here only catches a real regression of the batch path,
        // not runner noise.
        if row.speedup_batch_vs_hoisted() < 0.75 {
            return Err(format!(
                "{} items: batch far slower than hoisted single verify ({:.2}x)",
                row.items,
                row.speedup_batch_vs_hoisted()
            ));
        }
    }
    for row in burst {
        if row.scan_blocks_per_sec <= 0.0
            || row.index_blocks_per_sec <= 0.0
            || row.parallel_blocks_per_sec <= 0.0
        {
            return Err(format!(
                "burst {} ({}): zero throughput",
                row.blocks, row.order
            ));
        }
        if row.waves == 0 || row.largest_wave < 2 {
            return Err(format!(
                "burst {} ({}): no wave batching observed (waves {}, largest {})",
                row.blocks, row.order, row.waves, row.largest_wave
            ));
        }
        if row.fingerprint.is_empty() {
            return Err(format!(
                "burst {} ({}): missing equivalence fingerprint",
                row.blocks, row.order
            ));
        }
    }
    check_snapshot_schema("BENCH_admission.json", json)
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");

    println!("# Admission pipeline — wave-batched verification + parallel engine (seed {SEED})\n");
    let (verify, burst, json) = run();

    println!(
        "| {:>6} | {:>9} | {:>11} | {:>9} | {:>13} | {:>16} |",
        "items", "cold ms", "hoisted ms", "batch ms", "batch/cold", "batch/hoisted"
    );
    println!("|{}|", "-".repeat(81));
    for row in &verify {
        println!(
            "| {:>6} | {:>9} | {:>11} | {:>9} | {:>12}x | {:>15}x |",
            row.items,
            f2(row.cold_seconds * 1000.0),
            f2(row.hoisted_seconds * 1000.0),
            f2(row.batch_seconds * 1000.0),
            f2(row.speedup_batch_vs_cold()),
            f2(row.speedup_batch_vs_hoisted()),
        );
    }

    println!(
        "\n| {:>6} | {:>8} | {:>10} | {:>11} | {:>12} | {:>7} | {:>6} | {:>8} |",
        "blocks", "order", "scan b/s", "index b/s", "parallel b/s", "idx spd", "waves", "max wave"
    );
    println!("|{}|", "-".repeat(92));
    for row in &burst {
        println!(
            "| {:>6} | {:>8} | {:>10} | {:>11} | {:>12} | {:>6}x | {:>6} | {:>8} |",
            row.blocks,
            row.order,
            f2(row.scan_blocks_per_sec),
            f2(row.index_blocks_per_sec),
            f2(row.parallel_blocks_per_sec),
            f2(row.index_speedup()),
            row.waves,
            row.largest_wave,
        );
    }

    println!(
        "\nReading: hoisting the HMAC key schedules and verifying each ready\n\
         wave in one batch pass removes the per-verification key setup that\n\
         per-message BFT systems pay on every protocol message — the paper's\n\
         batch-signature argument (§4/E6) as a measured trajectory. The burst\n\
         rows pin all three admission engines to bit-identical promotion\n\
         fingerprints on equivocating, tampered-signature, out-of-order\n\
         floods; the parallel engine spreads the same verification work\n\
         across a worker pool without changing a single byte of outcome\n\
         (and, on these narrow chain-shaped waves, without beating the\n\
         single-threaded batch — see parallel_over_index).\n"
    );

    // Machine-readable trajectory line (snapshot: BENCH_admission.json).
    println!("{json}");

    if check_mode {
        match check(&verify, &burst, &json) {
            Ok(()) => println!("CHECK OK"),
            Err(reason) => {
                eprintln!("CHECK FAILED: {reason}");
                std::process::exit(1);
            }
        }
    }
}
