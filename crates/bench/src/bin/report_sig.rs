//! Signature-scheme experiment: amortized ed25519 batch verification,
//! counted in curve operations.
//!
//! For each wave width the bin signs one `ref(B)`-style digest per
//! server and verifies the wave twice: serially (one cofactored
//! verification equation per item — what per-message admission pays) and
//! as one `BatchVerifier` pass (a single random-linear-combination
//! multi-scalar multiplication over the whole wave — what burst
//! admission pays). The cost unit is *elliptic-curve group operations*
//! (point doublings + additions, `dagbft_crypto::curve::ops_snapshot`),
//! not wall-clock: the Straus/Pippenger sharing that makes batching win
//! is a property of the algorithm, so the `--check` floor — batched
//! verification ≥1.5× cheaper per item than serial at wave width ≥32 —
//! holds on any machine, including single-core CI runners.
//!
//! Wall-clock for both paths is reported alongside for context, and the
//! active MSM engine (`straus` below the Pippenger point threshold,
//! `pippenger` above) is recorded per row.
//!
//! The final stdout line is a machine-readable JSON object
//! (`BENCH_sig.json` is a checked-in snapshot). `--check` re-runs the
//! experiment, enforces the op-count floor, re-asserts batch ⟺ serial
//! verdict identity, and diffs the JSON schema against the snapshot.
//!
//! Run with: `cargo run --release -p dagbft-bench --bin report_sig`

use std::time::Instant;

use dagbft_bench::{check_snapshot_schema, cores, f2};
use dagbft_crypto::curve::msm::msm_engine;
use dagbft_crypto::curve::ops_snapshot;
use dagbft_crypto::{sha256, KeyRegistry, ServerId, Signature, SignedDigest};

const SEED: u64 = 13;
/// Wave widths: around break-even, typical rounds, and past the
/// Pippenger threshold (the batch MSM sees `2·width + 1` points).
const WIDTHS: [usize; 4] = [8, 32, 128, 256];
/// Repetitions of each timed pass (best-of; op counts are identical
/// across repetitions by construction).
const ROUNDS: usize = 3;

struct Row {
    width: usize,
    engine: &'static str,
    serial_ops_per_item: f64,
    batch_ops_per_item: f64,
    serial_seconds: f64,
    batch_seconds: f64,
}

impl Row {
    fn ops_ratio(&self) -> f64 {
        self.serial_ops_per_item / self.batch_ops_per_item
    }

    fn json(&self) -> String {
        format!(
            "{{\"width\":{},\"engine\":\"{}\",\"serial_ops_per_item\":{:.1},\
             \"batch_ops_per_item\":{:.1},\"ops_ratio\":{:.2},\
             \"serial_seconds\":{:.6},\"batch_seconds\":{:.6}}}",
            self.width,
            self.engine,
            self.serial_ops_per_item,
            self.batch_ops_per_item,
            self.ops_ratio(),
            self.serial_seconds,
            self.batch_seconds,
        )
    }
}

/// One honest signed digest per server: the shape of a full admission
/// wave (`width` distinct builders, one block each).
fn wave(registry: &KeyRegistry, width: usize) -> Vec<SignedDigest> {
    (0..width)
        .map(|i| {
            let id = ServerId::new(i as u32);
            let digest = sha256((i as u64).to_le_bytes());
            SignedDigest {
                claimed: id,
                digest,
                signature: registry.signer(id).unwrap().sign(digest.as_bytes()),
            }
        })
        .collect()
}

fn measure(width: usize) -> Row {
    let registry = KeyRegistry::generate_ed25519(width, SEED);
    let items = wave(&registry, width);
    let verifier = registry.verifier();
    let batch_verifier = registry.batch_verifier();

    let serial = |items: &[SignedDigest]| -> Vec<bool> {
        items
            .iter()
            .map(|item| verifier.verify(item.claimed, item.digest.as_bytes(), &item.signature))
            .collect()
    };

    // Warm-up: builds the lazy basepoint table and faults in every code
    // path, so the measured op counts cover only the verification work.
    let warm_serial = serial(&items);
    let warm_batch = batch_verifier.verify_batch(&items);
    assert!(warm_serial.iter().all(|ok| *ok), "honest wave must verify");
    assert_eq!(warm_serial, warm_batch, "batch and serial verdicts");

    let mut serial_seconds = f64::INFINITY;
    let mut serial_ops = 0u64;
    for _ in 0..ROUNDS {
        let before = ops_snapshot();
        let start = Instant::now();
        let verdicts = serial(&items);
        serial_seconds = serial_seconds.min(start.elapsed().as_secs_f64());
        serial_ops = (ops_snapshot() - before).total();
        assert!(verdicts.iter().all(|ok| *ok));
    }

    let mut batch_seconds = f64::INFINITY;
    let mut batch_ops = 0u64;
    for _ in 0..ROUNDS {
        let before = ops_snapshot();
        let start = Instant::now();
        let verdicts = batch_verifier.verify_batch(&items);
        batch_seconds = batch_seconds.min(start.elapsed().as_secs_f64());
        batch_ops = (ops_snapshot() - before).total();
        assert!(verdicts.iter().all(|ok| *ok));
    }

    // One forged item must not change any honest verdict (the binary
    // split finds it) — asserted here so the committed trajectory always
    // comes from a bin that also exercised the fallback.
    let mut tampered = items.clone();
    tampered[width / 2].signature = Signature::NULL;
    let verdicts = batch_verifier.verify_batch(&tampered);
    for (i, ok) in verdicts.iter().enumerate() {
        assert_eq!(*ok, i != width / 2, "binary split must isolate item {i}");
    }

    Row {
        width,
        engine: msm_engine(2 * width + 1),
        serial_ops_per_item: serial_ops as f64 / width as f64,
        batch_ops_per_item: batch_ops as f64 / width as f64,
        serial_seconds,
        batch_seconds,
    }
}

fn run() -> (Vec<Row>, String) {
    let rows: Vec<Row> = WIDTHS.into_iter().map(measure).collect();
    let json = format!(
        "{{\"experiment\":\"sig_batch\",\"scheme\":\"ed25519\",\"seed\":{},\"cores\":{},\
         \"rows\":[{}]}}",
        SEED,
        cores(),
        rows.iter().map(Row::json).collect::<Vec<_>>().join(","),
    );
    (rows, json)
}

fn check(rows: &[Row], json: &str) -> Result<(), String> {
    for row in rows {
        if row.serial_ops_per_item <= 0.0 || row.batch_ops_per_item <= 0.0 {
            return Err(format!("width {}: zero op counts", row.width));
        }
        if row.serial_seconds <= 0.0 || row.batch_seconds <= 0.0 {
            return Err(format!("width {}: zero wall-clock", row.width));
        }
        // The machine-independent floor: one wave-wide MSM must amortize
        // to ≥1.5× fewer group operations per item than one equation per
        // item, at every wave width the burst pipeline actually batches.
        if row.width >= 32 && row.ops_ratio() < 1.5 {
            return Err(format!(
                "width {}: batch only {:.2}x serial in group ops (floor 1.5x)",
                row.width,
                row.ops_ratio()
            ));
        }
    }
    if !rows.iter().any(|row| row.engine == "straus") {
        return Err("no Straus row — width sweep lost its small-wave coverage".into());
    }
    if !rows.iter().any(|row| row.engine == "pippenger") {
        return Err("no Pippenger row — width sweep no longer crosses the threshold".into());
    }
    check_snapshot_schema("BENCH_sig.json", json)
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");

    println!("# Signature batch verification — ed25519, costs in curve group ops (seed {SEED})\n");
    let (rows, json) = run();

    println!(
        "| {:>5} | {:>9} | {:>12} | {:>12} | {:>9} | {:>9} | {:>9} |",
        "width", "engine", "serial ops/i", "batch ops/i", "ops ratio", "serial ms", "batch ms"
    );
    println!("|{}|", "-".repeat(85));
    for row in &rows {
        println!(
            "| {:>5} | {:>9} | {:>12} | {:>12} | {:>8}x | {:>9} | {:>9} |",
            row.width,
            row.engine,
            f2(row.serial_ops_per_item),
            f2(row.batch_ops_per_item),
            f2(row.ops_ratio()),
            f2(row.serial_seconds * 1000.0),
            f2(row.batch_seconds * 1000.0),
        );
    }

    println!(
        "\nReading: serial verification pays a fresh double-and-add chain per\n\
         item; the batch path folds the whole wave into one multi-scalar\n\
         multiplication whose doubling chain is shared across all points\n\
         (Straus) or amortized into buckets (Pippenger past {} points), so\n\
         group ops per item fall as the wave widens — the paper's §4 batch\n\
         economics in the unit that survives any CPU.\n",
        dagbft_crypto::curve::msm::PIPPENGER_THRESHOLD_POINTS
    );

    // Machine-readable trajectory line (snapshot: BENCH_sig.json).
    println!("{json}");

    if check_mode {
        match check(&rows, &json) {
            Ok(()) => println!("CHECK OK"),
            Err(reason) => {
                eprintln!("CHECK FAILED: {reason}");
                std::process::exit(1);
            }
        }
    }
}
