//! Observability workload experiment: a zipfian payments workload driven
//! across 10⁵+ distinct BRB labels, with the live metrics layer measured
//! while it watches.
//!
//! Four measurements, all seeded:
//!
//! 1. **Offline zipfian chain** — `zipf_transfers` generates 102 400
//!    sequenced payment orders over 10 000 accounts (exponent 1.0: the
//!    top 1 % of senders carry well over a third of the traffic). Four
//!    builders pack them 256-per-block into a chained DAG; one observing
//!    shim admits the chain in multi-round bursts and interprets every
//!    transfer to delivery. The run's gossip/wave/interpreter/crypto
//!    counters are mirror-published into a [`MetricsRegistry`] and the
//!    JSON records the wave shape, the verify-batch sizes, and the
//!    copy-on-write instance footprint (unique vs resident) at 10⁵-label
//!    scale. Floors: ≥10⁵ distinct labels, every transfer delivered and
//!    ledger-applied, CoW sharing ≥2×, wave batching engaged.
//!
//! 2. **Live TCP cluster** — three nodes with
//!    `NodeConfig::metrics_addr` serve JSON snapshots over HTTP while a
//!    smaller zipfian workload (900 transfers) broadcasts through them;
//!    the endpoints are scraped *mid-run* with [`dagbft_metrics::scrape`].
//!    The JSON records per-peer send/recv message and byte counters and
//!    the endpoint's self-observed request count. Floors: all transfers
//!    delivered everywhere, every node's scrape shows validated blocks,
//!    traffic counters non-zero.
//!
//! 3. **Registry overhead** — the `report_admission` 2048-item batched
//!    verification gate, run bare and with per-batch registry updates
//!    through pre-registered handles (atomic stores — the lock-light
//!    pattern; per-batch is strictly more frequent than the node event
//!    loop's per-tick cadence, so the gate is conservative). Interleaved
//!    best-of rounds; floor: ≤5 % overhead (`ratio ≤ 1.05`).
//!
//! 4. **Documentation drift** — every field name in the populated
//!    registry must appear in the `docs/METRICS.md` field table
//!    (`peer<index>_*` normalized to `peer<i>_*`). A registry field
//!    missing from the docs fails `--check`.
//!
//! The final stdout line is a machine-readable JSON object
//! (`BENCH_workload.json` is a checked-in snapshot). `--check` re-runs
//! everything, enforces the floors, and diffs the JSON schema against
//! the snapshot.
//!
//! Run with: `cargo run --release -p dagbft-bench --bin report_workload`

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use dagbft_bench::workload::{
    distinct_labels, hot_sender_share, initial_balances, zipf_transfers, WorkloadConfig,
};
use dagbft_bench::{check_snapshot_schema, cores, f2};
use dagbft_core::{
    Block, LabeledRequest, NetMessage, ProtocolConfig, RecoveryReport, SeqNum, Shim, ShimConfig,
};
use dagbft_crypto::{sha256, KeyRegistry, ServerId, Signature, SignedDigest};
use dagbft_metrics::{publish, scrape, MetricsRegistry};
use dagbft_protocols::{Brb, BrbIndication, BrbRequest, Ledger, Transfer};
use dagbft_transport::{spawn_local_cluster, NodeConfig};

const SEED: u64 = 17;

// Offline chain shape: BUILDERS × REQUESTS_PER_BLOCK × LOAD_ROUNDS
// transfers (102 400 ≥ the 10⁵-label floor), plus empty tail rounds so
// the last injections reach delivery quorum.
const BUILDERS: usize = 4;
const N: usize = BUILDERS + 1;
const REQUESTS_PER_BLOCK: usize = 256;
const LOAD_ROUNDS: u64 = 100;
const TAIL_ROUNDS: u64 = 6;
/// Rounds folded into one ingest burst — the cross-cascade bracket turns
/// each burst into multi-round verification waves.
const BURST_ROUNDS: usize = 8;
const ACCOUNTS: usize = 10_000;
const EXPONENT: f64 = 1.0;

// Live cluster shape.
const LIVE_NODES: usize = 3;
const LIVE_TRANSFERS: usize = 900;
const LIVE_ACCOUNTS: usize = 200;

// Overhead gate shape (mirrors report_admission's 2k-item row).
const OVERHEAD_ITEMS: usize = 2048;
const OVERHEAD_ROUNDS: usize = 8;

fn offline_config() -> WorkloadConfig {
    WorkloadConfig {
        accounts: ACCOUNTS,
        transfers: BUILDERS * REQUESTS_PER_BLOCK * LOAD_ROUNDS as usize,
        exponent: EXPONENT,
        seed: SEED,
    }
}

/// Applies a delivered transfer set to a fresh ledger in `(from, seq)`
/// order — the deterministic one-pass settlement (dense per-sender
/// sequencing makes retry loops unnecessary). Returns the applied count.
fn settle_sorted(config: &WorkloadConfig, mut delivered: Vec<Transfer>) -> usize {
    delivered.sort_by_key(|transfer| (transfer.from, transfer.seq));
    let mut ledger = Ledger::new(initial_balances(config));
    let supply = ledger.total_supply();
    let applied = delivered
        .iter()
        .filter(|transfer| ledger.apply(transfer).is_ok())
        .count();
    assert_eq!(ledger.total_supply(), supply, "settlement conserves supply");
    applied
}

// ---------------------------------------------------------------------------
// Measurement 1: offline zipfian chain at 10⁵-label scale.

struct OfflineRow {
    transfers: usize,
    labels: usize,
    hot_share: f64,
    blocks: usize,
    deliveries: usize,
    applied: usize,
    waves: u64,
    largest_wave: usize,
    batched_blocks: u64,
    instances: usize,
    unique_instances: usize,
    batched_verifies: u64,
    largest_batch: u64,
    interpret_seconds: f64,
    snapshot_bytes: usize,
}

impl OfflineRow {
    fn json(&self) -> String {
        format!(
            "{{\"transfers\":{},\"labels\":{},\"hot_share_top1pct\":{:.4},\"blocks\":{},\
             \"deliveries\":{},\"applied\":{},\"waves\":{},\"largest_wave\":{},\
             \"batched_blocks\":{},\"instances\":{},\"unique_instances\":{},\
             \"batched_verifies\":{},\"largest_batch\":{},\"interpret_seconds\":{:.6},\
             \"snapshot_bytes\":{}}}",
            self.transfers,
            self.labels,
            self.hot_share,
            self.blocks,
            self.deliveries,
            self.applied,
            self.waves,
            self.largest_wave,
            self.batched_blocks,
            self.instances,
            self.unique_instances,
            self.batched_verifies,
            self.largest_batch,
            self.interpret_seconds,
            self.snapshot_bytes,
        )
    }
}

/// Packs the workload 256-per-block into a chained `BUILDERS`-wide DAG
/// with `TAIL_ROUNDS` empty rounds so every instance reaches quorum.
fn build_chain(keys: &KeyRegistry, transfers: &[Transfer]) -> Vec<Block> {
    let signers: Vec<_> = (0..BUILDERS)
        .map(|i| keys.signer(ServerId::new(i as u32)).unwrap())
        .collect();
    let mut blocks = Vec::new();
    let mut prev = Vec::new();
    for round in 0..LOAD_ROUNDS + TAIL_ROUNDS {
        let mut layer = Vec::new();
        for (index, signer) in signers.iter().enumerate() {
            let slot = (round as usize * BUILDERS + index) * REQUESTS_PER_BLOCK;
            let requests: Vec<LabeledRequest> = transfers
                .iter()
                .skip(slot)
                .take(if round < LOAD_ROUNDS {
                    REQUESTS_PER_BLOCK
                } else {
                    0
                })
                .map(|transfer| {
                    LabeledRequest::encode(
                        transfer.label(),
                        &BrbRequest::Broadcast(transfer.clone()),
                    )
                })
                .collect();
            let block = Block::build(
                ServerId::new(index as u32),
                SeqNum::new(round),
                prev.clone(),
                requests,
                signer,
            );
            layer.push(block.block_ref());
            blocks.push(block);
        }
        prev = layer;
    }
    blocks
}

fn measure_offline(metrics: &MetricsRegistry) -> OfflineRow {
    let config = offline_config();
    let transfers = zipf_transfers(&config);
    let labels = distinct_labels(&transfers);
    let hot_share = hot_sender_share(&transfers, config.accounts, config.accounts / 100);

    let keys = KeyRegistry::generate(N, SEED);
    let blocks = build_chain(&keys, &transfers);
    let mut shim: Shim<Brb<Transfer>> = Shim::new(
        ServerId::new(BUILDERS as u32),
        ShimConfig::new(ProtocolConfig::for_n(N)),
        &keys,
    )
    .expect("registry covers the observer");

    let start = Instant::now();
    let mut delivered: Vec<Transfer> = Vec::with_capacity(transfers.len());
    let drain = |shim: &mut Shim<Brb<Transfer>>, delivered: &mut Vec<Transfer>| {
        delivered.extend(
            shim.poll_indications()
                .into_iter()
                .map(|(_, BrbIndication::Deliver(transfer))| transfer),
        );
    };
    let mut brackets = 0u64;
    for burst in blocks.chunks(BUILDERS * BURST_ROUNDS) {
        let messages = burst
            .iter()
            .map(|block| (block.builder(), NetMessage::Block(block.clone())));
        shim.on_message_burst(messages, brackets);
        // The observer seals its own (empty) block per bracket: in this
        // embedding a server's protocol instances only step at its own
        // blocks, so without building, the observer would never deliver.
        shim.disseminate(brackets);
        drain(&mut shim, &mut delivered);
        brackets += 1;
    }
    // Flush: a couple more own blocks pick up the last quorums.
    for _ in 0..3 {
        shim.disseminate(brackets);
        drain(&mut shim, &mut delivered);
        brackets += 1;
    }
    let interpret_seconds = start.elapsed().as_secs_f64();

    let footprint = shim.footprint();
    let gossip = shim.gossip().stats();
    let waves = shim.gossip().wave_stats();
    assert_eq!(gossip.blocks_validated, blocks.len() as u64);

    // Mirror-publish the run into the registry — the same calls the node
    // event loop makes per tick — and snapshot it.
    publish::publish_gossip(metrics, gossip);
    publish::publish_waves(metrics, waves);
    publish::publish_footprint(metrics, &footprint);
    publish::publish_crypto(metrics, keys.metrics());
    let snapshot = metrics.snapshot_json();

    let deliveries = delivered.len();
    let applied = settle_sorted(&config, delivered);
    OfflineRow {
        transfers: transfers.len(),
        labels,
        hot_share,
        blocks: blocks.len(),
        deliveries,
        applied,
        waves: waves.waves,
        largest_wave: waves.largest_wave,
        batched_blocks: waves.batched_blocks,
        instances: footprint.instances,
        unique_instances: footprint.unique_instances,
        batched_verifies: keys.metrics().batched_verifies(),
        largest_batch: keys.metrics().largest_batch(),
        interpret_seconds,
        snapshot_bytes: snapshot.len(),
    }
}

// ---------------------------------------------------------------------------
// Measurement 2: live TCP cluster scraped mid-run.

struct LiveRow {
    nodes: usize,
    transfers: usize,
    deliveries: usize,
    applied: usize,
    scrapes: u64,
    http_requests: u64,
    validated_min: u64,
    sent_msgs: u64,
    sent_bytes: u64,
    recv_msgs: u64,
    recv_bytes: u64,
}

impl LiveRow {
    fn json(&self) -> String {
        format!(
            "{{\"nodes\":{},\"transfers\":{},\"deliveries\":{},\"applied\":{},\"scrapes\":{},\
             \"http_requests\":{},\"validated_min\":{},\"sent_msgs\":{},\"sent_bytes\":{},\
             \"recv_msgs\":{},\"recv_bytes\":{}}}",
            self.nodes,
            self.transfers,
            self.deliveries,
            self.applied,
            self.scrapes,
            self.http_requests,
            self.validated_min,
            self.sent_msgs,
            self.sent_bytes,
            self.recv_msgs,
            self.recv_bytes,
        )
    }
}

/// Pulls `"field":<u64>` out of a flat snapshot (the snapshot format is
/// deterministic: no whitespace, sorted keys).
fn json_u64(snapshot: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = snapshot.find(&needle)? + needle.len();
    let digits: String = snapshot[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Sums this node's `peer<i>_<which>` counters over all peer slots.
fn peer_total(snapshot: &str, nodes: usize, which: &str) -> u64 {
    (0..nodes)
        .map(|peer| json_u64(snapshot, &format!("peer{peer}_{which}")).unwrap_or(0))
        .sum()
}

fn measure_live() -> LiveRow {
    let config = WorkloadConfig {
        accounts: LIVE_ACCOUNTS,
        transfers: LIVE_TRANSFERS,
        exponent: EXPONENT,
        seed: SEED + 1,
    };
    let transfers = zipf_transfers(&config);
    let node_config = NodeConfig {
        disseminate_every_ms: 10,
        tick_every_ms: 20,
        ..NodeConfig::default()
    }
    .with_metrics_addr("127.0.0.1:0".parse().unwrap());
    let (nodes, _keys) = spawn_local_cluster::<Brb<Transfer>>(
        LIVE_NODES,
        ShimConfig::new(ProtocolConfig::for_n(LIVE_NODES)),
        node_config,
        SEED,
    )
    .expect("localhost cluster binds");
    let endpoints: Vec<_> = nodes
        .iter()
        .map(|node| node.metrics_addr().expect("endpoint bound"))
        .collect();

    for (index, transfer) in transfers.iter().enumerate() {
        nodes[index % LIVE_NODES]
            .request(transfer.label(), BrbRequest::Broadcast(transfer.clone()));
    }

    // Scrape all endpoints while the cluster works through the backlog.
    let expected = LIVE_TRANSFERS * LIVE_NODES;
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut delivered_at_zero: Vec<Transfer> = Vec::new();
    let mut deliveries = 0usize;
    let mut scrapes = 0u64;
    let mut last: Vec<String> = vec![String::new(); LIVE_NODES];
    while deliveries < expected && Instant::now() < deadline {
        for (index, node) in nodes.iter().enumerate() {
            while let Ok((_, BrbIndication::Deliver(transfer))) = node.indications().try_recv() {
                deliveries += 1;
                if index == 0 {
                    delivered_at_zero.push(transfer);
                }
            }
        }
        for (index, endpoint) in endpoints.iter().enumerate() {
            if let Ok(snapshot) = scrape(*endpoint) {
                scrapes += 1;
                last[index] = snapshot;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(deliveries, expected, "live cluster delivered everything");

    // One settling scrape per node after the last delivery so the final
    // counters reflect the whole run.
    std::thread::sleep(Duration::from_millis(100));
    for (index, endpoint) in endpoints.iter().enumerate() {
        if let Ok(snapshot) = scrape(*endpoint) {
            scrapes += 1;
            last[index] = snapshot;
        }
    }
    for node in nodes {
        node.stop();
    }

    let validated_min = last
        .iter()
        .map(|snapshot| json_u64(snapshot, "gossip_blocks_validated").unwrap_or(0))
        .min()
        .unwrap_or(0);
    let applied = settle_sorted(&config, delivered_at_zero);
    LiveRow {
        nodes: LIVE_NODES,
        transfers: LIVE_TRANSFERS,
        deliveries,
        applied,
        scrapes,
        http_requests: json_u64(&last[0], "metrics_http_requests").unwrap_or(0),
        validated_min,
        sent_msgs: peer_total(&last[0], LIVE_NODES, "sent_msgs"),
        sent_bytes: peer_total(&last[0], LIVE_NODES, "sent_bytes"),
        recv_msgs: peer_total(&last[0], LIVE_NODES, "recv_msgs"),
        recv_bytes: peer_total(&last[0], LIVE_NODES, "recv_bytes"),
    }
}

// ---------------------------------------------------------------------------
// Measurement 3: registry overhead on the 2k-item verification gate.

struct OverheadRow {
    items: usize,
    base_seconds: f64,
    metered_seconds: f64,
}

impl OverheadRow {
    fn ratio(&self) -> f64 {
        self.metered_seconds / self.base_seconds
    }

    fn json(&self) -> String {
        format!(
            "{{\"items\":{},\"base_seconds\":{:.6},\"metered_seconds\":{:.6},\"ratio\":{:.4}}}",
            self.items,
            self.base_seconds,
            self.metered_seconds,
            self.ratio(),
        )
    }
}

/// The `report_admission` 2048-item batched-verification measurement,
/// bare vs instrumented: the instrumented path updates pre-registered
/// handles after each batch (counter stores from the live crypto
/// atomics, plus a batch-size histogram observation) — per-*batch*
/// publication, strictly more frequent than the node event loop's
/// per-tick cadence, so the gate is conservative.
fn measure_overhead() -> OverheadRow {
    let keys = KeyRegistry::generate(4, SEED);
    let signers: Vec<_> = (0..4)
        .map(|i| keys.signer(ServerId::new(i)).unwrap())
        .collect();
    let batch: Vec<SignedDigest> = (0..OVERHEAD_ITEMS)
        .map(|i| {
            let signer = &signers[i % signers.len()];
            let digest = sha256((i as u64).to_le_bytes());
            let signature = if i % 16 == 5 {
                Signature::NULL
            } else {
                signer.sign(digest.as_bytes())
            };
            SignedDigest {
                claimed: signer.id(),
                digest,
                signature,
            }
        })
        .collect();
    let batch_verifier = keys.batch_verifier();
    let metrics = MetricsRegistry::new();
    // The lock-light pattern under test: registration takes the registry
    // mutex once, per-batch updates are plain atomic stores on the
    // returned handles.
    let verify_counter = metrics.counter("crypto_verifies");
    let batch_counter = metrics.counter("crypto_batches");
    let size_histogram = metrics.histogram("verify_batch_size");

    let base_path = || -> Vec<bool> { batch_verifier.verify_batch(&batch) };
    let metered_path = || -> Vec<bool> {
        let verdicts = batch_verifier.verify_batch(&batch);
        verify_counter.set(keys.metrics().verifies());
        batch_counter.set(keys.metrics().batches());
        size_histogram.observe(verdicts.len() as u64);
        verdicts
    };

    // Warm-up, then interleaved best-of rounds (see report_admission for
    // why the minimum is the right estimator and why interleaving keeps
    // host noise fair).
    let expected = base_path();
    assert_eq!(metered_path(), expected);
    let mut base_seconds = f64::INFINITY;
    let mut metered_seconds = f64::INFINITY;
    for _ in 0..OVERHEAD_ROUNDS {
        let start = Instant::now();
        let verdicts = base_path();
        base_seconds = base_seconds.min(start.elapsed().as_secs_f64());
        assert_eq!(verdicts, expected);

        let start = Instant::now();
        let verdicts = metered_path();
        metered_seconds = metered_seconds.min(start.elapsed().as_secs_f64());
        assert_eq!(verdicts, expected);
    }
    OverheadRow {
        items: OVERHEAD_ITEMS,
        base_seconds,
        metered_seconds,
    }
}

// ---------------------------------------------------------------------------
// Measurement 4: documentation drift gate.

/// A registry populated with every field the workspace can publish —
/// the universe `docs/METRICS.md` must document.
fn registry_universe(offline: &MetricsRegistry) -> BTreeSet<String> {
    publish::publish_recovery(offline, &RecoveryReport::default());
    publish::publish_store_health(offline, false, false);
    publish::publish_peer(offline, 1, 0, 0, 0, 0);
    publish::publish_node(offline, 0, 0, 0);
    // The defense publisher only emits per-peer rows for touched peers,
    // so touch one to surface the full `peer<i>_*` defense family.
    let mut defense = dagbft_core::PeerDefense::new(dagbft_core::DefenseConfig::enabled());
    defense.note_offense(
        dagbft_crypto::ServerId::new(1),
        dagbft_core::Offense::DuplicateFlood,
        0,
    );
    publish::publish_defense(offline, &defense, 0);
    // Registered by the HTTP responder itself on first request.
    offline.counter("metrics_http_requests");
    offline.field_names()
}

/// Replaces a `peer<digits>_` prefix with the documented `peer<i>_` form.
fn normalize_field(field: &str) -> String {
    if let Some(rest) = field.strip_prefix("peer") {
        let digits = rest.chars().take_while(char::is_ascii_digit).count();
        if digits > 0 && rest[digits..].starts_with('_') {
            return format!("peer<i>{}", &rest[digits..]);
        }
    }
    field.to_owned()
}

/// Every backticked token in `docs/METRICS.md` table rows — the set of
/// documented field names.
fn documented_fields() -> Result<BTreeSet<String>, String> {
    let doc = std::fs::read_to_string("docs/METRICS.md")
        .map_err(|e| format!("docs/METRICS.md unreadable: {e}"))?;
    let mut fields = BTreeSet::new();
    for line in doc
        .lines()
        .filter(|line| line.trim_start().starts_with('|'))
    {
        let mut rest = line;
        while let Some(open) = rest.find('`') {
            let Some(len) = rest[open + 1..].find('`') else {
                break;
            };
            fields.insert(rest[open + 1..open + 1 + len].to_owned());
            rest = &rest[open + 1 + len + 1..];
        }
    }
    Ok(fields)
}

fn check_doc_drift(registry_fields: &BTreeSet<String>) -> Result<(), String> {
    let documented = documented_fields()?;
    let missing: Vec<String> = registry_fields
        .iter()
        .map(|field| normalize_field(field))
        .filter(|field| !documented.contains(field))
        .collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "fields exported by the registry but missing from docs/METRICS.md: {missing:?}"
        ))
    }
}

// ---------------------------------------------------------------------------

fn run() -> (OfflineRow, LiveRow, OverheadRow, BTreeSet<String>, String) {
    let metrics = MetricsRegistry::new();
    let offline = measure_offline(&metrics);
    let live = measure_live();
    let overhead = measure_overhead();
    let fields = registry_universe(&metrics);
    let documented = documented_fields().map(|set| set.len()).unwrap_or(0);
    let json = format!(
        "{{\"experiment\":\"workload_observability\",\"protocol\":\"payments\",\"seed\":{},\
         \"cores\":{},\"accounts\":{},\"zipf_exponent\":{:.2},\"offline\":{},\"live\":{},\
         \"overhead\":{},\"registry_fields\":{},\"documented_fields\":{}}}",
        SEED,
        cores(),
        ACCOUNTS,
        EXPONENT,
        offline.json(),
        live.json(),
        overhead.json(),
        fields.len(),
        documented,
    );
    (offline, live, overhead, fields, json)
}

fn check(
    offline: &OfflineRow,
    live: &LiveRow,
    overhead: &OverheadRow,
    fields: &BTreeSet<String>,
    json: &str,
) -> Result<(), String> {
    // The 10⁵-label floor: the workload must be instance-scale, not toy.
    if offline.labels < 100_000 {
        return Err(format!("only {} distinct labels (< 1e5)", offline.labels));
    }
    if offline.deliveries != offline.transfers || offline.applied != offline.transfers {
        return Err(format!(
            "offline run incomplete: {} delivered, {} applied of {}",
            offline.deliveries, offline.applied, offline.transfers
        ));
    }
    if offline.hot_share < 0.3 {
        return Err(format!(
            "zipf skew collapsed: top 1% carries {:.3}",
            offline.hot_share
        ));
    }
    // Copy-on-write must shave ≥2× off the clone-per-block footprint even
    // at 10⁵ resident instances.
    if offline.unique_instances * 2 > offline.instances {
        return Err(format!(
            "no structural sharing: {} unique of {} instances",
            offline.unique_instances, offline.instances
        ));
    }
    // Wave batching engaged: multi-block verification waves, every block
    // through a batch, and the crypto layer saw the batches.
    if offline.waves == 0 || offline.largest_wave < BUILDERS || offline.batched_verifies == 0 {
        return Err(format!(
            "verification waves degenerate: {} waves, largest {}, {} batched verifies",
            offline.waves, offline.largest_wave, offline.batched_verifies
        ));
    }
    if live.deliveries != live.transfers * live.nodes || live.applied != live.transfers {
        return Err(format!(
            "live cluster incomplete: {} of {} deliveries",
            live.deliveries,
            live.transfers * live.nodes
        ));
    }
    if live.validated_min == 0 || live.scrapes == 0 || live.http_requests == 0 {
        return Err(format!(
            "endpoints not live: min validated {}, {} scrapes, {} http requests",
            live.validated_min, live.scrapes, live.http_requests
        ));
    }
    if live.sent_bytes == 0 || live.recv_bytes == 0 {
        return Err("per-peer traffic counters stayed zero".into());
    }
    // The ≤5 % observability tax: mirror-publishing per 2k-item batch
    // must be in the noise of the batch itself.
    if overhead.ratio() > 1.05 {
        return Err(format!(
            "registry overhead {:.4} > 1.05 on the {}-item gate",
            overhead.ratio(),
            overhead.items
        ));
    }
    check_doc_drift(fields)?;
    check_snapshot_schema("BENCH_workload.json", json)
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");

    println!(
        "# Zipfian payments workload under live observability — {} transfers, {} accounts \
         (seed {SEED})\n",
        offline_config().transfers,
        ACCOUNTS
    );
    let (offline, live, overhead, fields, json) = run();

    println!(
        "## Offline chain ({} blocks, bursts of {} rounds)",
        offline.blocks, BURST_ROUNDS
    );
    println!(
        "| {:>10} | {:>10} | {:>8} | {:>7} | {:>12} | {:>14} | {:>12} | {:>13} |",
        "transfers",
        "labels",
        "hot 1%",
        "waves",
        "largest wave",
        "unique inst.",
        "resident",
        "interpret s"
    );
    println!("|{}|", "-".repeat(108));
    println!(
        "| {:>10} | {:>10} | {:>8} | {:>7} | {:>12} | {:>14} | {:>12} | {:>13} |",
        offline.transfers,
        offline.labels,
        f2(offline.hot_share),
        offline.waves,
        offline.largest_wave,
        offline.unique_instances,
        offline.instances,
        f2(offline.interpret_seconds),
    );

    println!(
        "\n## Live cluster ({} nodes, {} transfers, scraped mid-run)",
        live.nodes, live.transfers
    );
    println!(
        "| {:>10} | {:>7} | {:>13} | {:>13} | {:>10} | {:>10} | {:>10} | {:>10} |",
        "deliveries",
        "scrapes",
        "http requests",
        "min validated",
        "sent msgs",
        "sent bytes",
        "recv msgs",
        "recv bytes"
    );
    println!("|{}|", "-".repeat(106));
    println!(
        "| {:>10} | {:>7} | {:>13} | {:>13} | {:>10} | {:>10} | {:>10} | {:>10} |",
        live.deliveries,
        live.scrapes,
        live.http_requests,
        live.validated_min,
        live.sent_msgs,
        live.sent_bytes,
        live.recv_msgs,
        live.recv_bytes,
    );

    println!(
        "\n## Registry overhead ({}-item verification gate): base {} ms, metered {} ms — {}x",
        overhead.items,
        f2(overhead.base_seconds * 1000.0),
        f2(overhead.metered_seconds * 1000.0),
        f2(overhead.ratio()),
    );
    println!(
        "\n{} registry fields exported; docs/METRICS.md documents {}.",
        fields.len(),
        documented_fields().map(|set| set.len()).unwrap_or(0)
    );

    println!(
        "\nReading: the workload opens one BRB instance per transfer —\n\
         distinct labels equal transfers by construction — so the offline\n\
         row is the embedding at 10⁵ concurrent instances: wave-batched\n\
         admission keeps verification in multi-block batches while the\n\
         copy-on-write interpreter keeps the unique-instance count far\n\
         below the resident clone-per-block figure. The live row shows the\n\
         same counters served over HTTP *during* the run (the endpoint\n\
         counts its own scrapes), and the overhead row prices the whole\n\
         observability layer at the admission gate: one mirror-publish per\n\
         2k-item batch, gated at ≤5%.\n"
    );

    // Machine-readable trajectory line (snapshot: BENCH_workload.json).
    println!("{json}");

    if check_mode {
        match check(&offline, &live, &overhead, &fields, &json) {
            Ok(()) => println!("CHECK OK"),
            Err(reason) => {
                eprintln!("CHECK FAILED: {reason}");
                std::process::exit(1);
            }
        }
    }
}
