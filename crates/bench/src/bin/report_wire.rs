//! Wire-path experiment: encode-once dissemination and incremental
//! gossip admission.
//!
//! Two measurements, both seeded and deterministic in structure:
//!
//! 1. **Broadcast fan-out** — build blocks and frame them for `f` peers.
//!    With the cached wire image, the canonical encoding happens exactly
//!    once per block (at build), regardless of fan-out; the naive column
//!    re-serializes the block field-by-field per recipient, which is what
//!    every send paid before the cache existed.
//! 2. **Admission burst** — deliver a `B`-block chain in reverse and in
//!    shuffled order to a fresh gossip instance, once per admission engine.
//!    The incremental reverse-dependency index costs O(B · preds); the
//!    retained scan engine is the paper-literal O(B²) fixed-point rescan.
//!    Both runs are asserted to produce identical DAGs in identical order.
//!
//! The final stdout line is a single machine-readable JSON object
//! (`BENCH_wire.json` is a checked-in snapshot of it from a fixed-seed
//! run). `--check` re-runs the experiment, validates the invariants
//! (exactly one canonical encode per block per broadcast, ≥2× admission
//! speedup, all counters non-zero) and diffs the JSON schema against the
//! committed snapshot — so the bench trajectory cannot silently rot.
//!
//! Run with: `cargo run --release -p dagbft-bench --bin report_wire`

use std::time::Instant;

use dagbft_bench::{check_snapshot_schema, cores, f2};
use dagbft_codec::WireEncode;
use dagbft_core::{
    AdmissionMode, Block, BlockRef, Gossip, GossipConfig, Label, LabeledRequest, NetMessage, SeqNum,
};
use dagbft_crypto::{KeyRegistry, ServerId};

const SEED: u64 = 7;

fn gossip(registry: &KeyRegistry, id: u32, n: usize, mode: AdmissionMode) -> Gossip {
    Gossip::new(
        ServerId::new(id),
        GossipConfig::for_n(n).with_admission(mode),
        registry.signer(ServerId::new(id)).unwrap(),
        registry.verifier(),
    )
}

/// The pre-cache send path: re-serialize the block field-by-field, as
/// `encode_to_vec` did on every send before the wire image was cached.
fn naive_encode(block: &Block) -> Vec<u8> {
    let mut out = Vec::new();
    block.builder().encode(&mut out);
    block.seq().encode(&mut out);
    block.preds().encode(&mut out);
    block.requests().encode(&mut out);
    block.signature().encode(&mut out);
    out
}

struct BroadcastRow {
    fan_out: usize,
    blocks: usize,
    encodes_per_block: f64,
    naive_encodes_per_block: usize,
    cached_bytes_per_broadcast: u64,
    naive_bytes_per_broadcast: u64,
    cached_seconds: f64,
    naive_seconds: f64,
}

impl BroadcastRow {
    fn json(&self) -> String {
        format!(
            "{{\"fan_out\":{},\"blocks\":{},\"canonical_encodes_per_block\":{:.2},\
             \"naive_encodes_per_block\":{},\"cached_bytes_per_broadcast\":{},\
             \"naive_bytes_per_broadcast\":{},\"cached_seconds\":{:.6},\"naive_seconds\":{:.6}}}",
            self.fan_out,
            self.blocks,
            self.encodes_per_block,
            self.naive_encodes_per_block,
            self.cached_bytes_per_broadcast,
            self.naive_bytes_per_broadcast,
            self.cached_seconds,
            self.naive_seconds,
        )
    }
}

/// Builds `blocks` chained blocks carrying one request each and frames
/// every one for `fan_out` peers, measuring canonical encodes and bytes.
fn measure_broadcast(fan_out: usize, blocks: usize) -> BroadcastRow {
    let registry = KeyRegistry::generate(1, SEED);
    let signer = registry.signer(ServerId::new(0)).unwrap();

    // Build the chain, bracketing the canonical-encode counter around
    // build *and* fan-out: the delta proves fan-out adds zero encodes.
    let encodes_before = Block::canonical_encodes();
    let mut prev: Vec<BlockRef> = Vec::new();
    let built: Vec<Block> = (0..blocks)
        .map(|k| {
            let requests = vec![LabeledRequest::encode(Label::new(k as u64), &(k as u64))];
            let block = Block::build(
                ServerId::new(0),
                SeqNum::new(k as u64),
                std::mem::take(&mut prev),
                requests,
                &signer,
            );
            prev = vec![block.block_ref()];
            block
        })
        .collect();

    // The cached send path: one NetMessage per block, cloned per peer (a
    // reference-count bump), framed by the *real* transport frame writer
    // off the cached wire image (a `Vec` is a perfectly good `io::Write`).
    let mut frame_buf: Vec<u8> = Vec::new();
    let mut cached_bytes: u64 = 0;
    let start = Instant::now();
    for block in &built {
        let message = NetMessage::Block(block.clone());
        for _ in 0..fan_out {
            let per_peer = message.clone();
            frame_buf.clear();
            dagbft_transport::frame::write_net_message(&mut frame_buf, &per_peer)
                .expect("writing to a Vec cannot fail");
            cached_bytes += frame_buf.len() as u64;
        }
    }
    let cached_seconds = start.elapsed().as_secs_f64();
    let encodes = Block::canonical_encodes() - encodes_before;

    // The naive path on the identical blocks: re-serialize per recipient.
    let mut naive_bytes: u64 = 0;
    let start = Instant::now();
    for block in &built {
        for _ in 0..fan_out {
            let payload = naive_encode(block);
            frame_buf.clear();
            frame_buf.extend_from_slice(&((payload.len() + 1) as u32).to_le_bytes());
            frame_buf.push(0);
            frame_buf.extend_from_slice(&payload);
            naive_bytes += frame_buf.len() as u64;
        }
    }
    let naive_seconds = start.elapsed().as_secs_f64();

    BroadcastRow {
        fan_out,
        blocks,
        encodes_per_block: encodes as f64 / blocks as f64,
        naive_encodes_per_block: fan_out,
        cached_bytes_per_broadcast: cached_bytes / blocks as u64,
        naive_bytes_per_broadcast: naive_bytes / blocks as u64,
        cached_seconds,
        naive_seconds,
    }
}

struct BurstRow {
    blocks: usize,
    order: &'static str,
    incremental_blocks_per_sec: f64,
    scan_blocks_per_sec: f64,
    speedup: f64,
}

impl BurstRow {
    fn json(&self) -> String {
        format!(
            "{{\"blocks\":{},\"order\":\"{}\",\"incremental_blocks_per_sec\":{:.2},\
             \"scan_blocks_per_sec\":{:.2},\"speedup\":{:.2}}}",
            self.blocks,
            self.order,
            self.incremental_blocks_per_sec,
            self.scan_blocks_per_sec,
            self.speedup,
        )
    }
}

/// Deterministic Fisher–Yates over a xorshift64 stream — hostile but
/// reproducible delivery order without pulling in an RNG crate.
fn shuffle<T>(items: &mut [T], mut state: u64) {
    for i in (1..items.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        items.swap(i, (state as usize) % (i + 1));
    }
}

/// Times one delivery schedule against one admission engine; returns
/// (seconds, promotion order).
fn run_admission(
    registry: &KeyRegistry,
    schedule: &[Block],
    mode: AdmissionMode,
) -> (f64, Vec<BlockRef>) {
    let mut receiver = gossip(registry, 0, 2, mode);
    let start = Instant::now();
    for (t, block) in schedule.iter().enumerate() {
        receiver.on_block(block.clone(), t as u64);
    }
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(
        receiver.dag().len(),
        schedule.len(),
        "all blocks must promote"
    );
    assert_eq!(receiver.pending_len(), 0);
    let order = receiver.dag().iter().map(|b| b.block_ref()).collect();
    (seconds, order)
}

fn measure_burst(blocks: usize, order: &'static str) -> BurstRow {
    let registry = KeyRegistry::generate(2, SEED);
    let mut builder = gossip(&registry, 1, 2, AdmissionMode::Index);
    let chain: Vec<Block> = (0..blocks)
        .map(|t| builder.disseminate(vec![], t as u64).0)
        .collect();
    let mut schedule: Vec<Block> = chain.iter().rev().cloned().collect();
    if order == "shuffled" {
        schedule = chain.clone();
        shuffle(&mut schedule, SEED ^ blocks as u64);
    }

    let (incremental_seconds, incremental_order) =
        run_admission(&registry, &schedule, AdmissionMode::Index);
    let (scan_seconds, scan_order) = run_admission(&registry, &schedule, AdmissionMode::Scan);
    assert_eq!(
        incremental_order, scan_order,
        "admission engines must promote in the same order"
    );

    BurstRow {
        blocks,
        order,
        incremental_blocks_per_sec: blocks as f64 / incremental_seconds,
        scan_blocks_per_sec: blocks as f64 / scan_seconds,
        speedup: scan_seconds / incremental_seconds,
    }
}

fn run() -> (Vec<BroadcastRow>, Vec<BurstRow>, String) {
    let broadcast: Vec<BroadcastRow> = [3usize, 7, 15]
        .into_iter()
        .map(|fan_out| measure_broadcast(fan_out, 64))
        .collect();
    let burst: Vec<BurstRow> = [
        (1024, "reverse"),
        (2048, "reverse"),
        (1024, "shuffled"),
        (2048, "shuffled"),
    ]
    .into_iter()
    .map(|(blocks, order)| measure_burst(blocks, order))
    .collect();

    let json = format!(
        "{{\"experiment\":\"wire_path\",\"seed\":{},\"cores\":{},\"broadcast\":[{}],\"burst\":[{}]}}",
        SEED,
        cores(),
        broadcast
            .iter()
            .map(BroadcastRow::json)
            .collect::<Vec<_>>()
            .join(","),
        burst
            .iter()
            .map(BurstRow::json)
            .collect::<Vec<_>>()
            .join(","),
    );
    (broadcast, burst, json)
}

fn check(broadcast: &[BroadcastRow], burst: &[BurstRow], json: &str) -> Result<(), String> {
    for row in broadcast {
        if (row.encodes_per_block - 1.0).abs() > f64::EPSILON {
            return Err(format!(
                "fan-out {}: expected exactly 1 canonical encode per block, got {}",
                row.fan_out, row.encodes_per_block
            ));
        }
        if row.cached_bytes_per_broadcast == 0 || row.naive_bytes_per_broadcast == 0 {
            return Err(format!("fan-out {}: zero byte counters", row.fan_out));
        }
    }
    for row in burst {
        if row.speedup < 2.0 {
            return Err(format!(
                "burst {} ({}): speedup {:.2} below the 2x floor",
                row.blocks, row.order, row.speedup
            ));
        }
        if row.incremental_blocks_per_sec <= 0.0 || row.scan_blocks_per_sec <= 0.0 {
            return Err(format!(
                "burst {} ({}): zero throughput",
                row.blocks, row.order
            ));
        }
    }
    check_snapshot_schema("BENCH_wire.json", json)
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");

    println!("# Wire path — encode-once broadcast + incremental admission (seed {SEED})\n");
    let (broadcast, burst, json) = run();

    println!(
        "| {:>7} | {:>6} | {:>12} | {:>12} | {:>11} | {:>11} | {:>10} | {:>10} |",
        "fan-out",
        "blocks",
        "encodes/blk",
        "naive enc/blk",
        "bytes/bcast",
        "naive bytes",
        "cached ms",
        "naive ms"
    );
    println!("|{}|", "-".repeat(98));
    for row in &broadcast {
        println!(
            "| {:>7} | {:>6} | {:>12} | {:>13} | {:>11} | {:>11} | {:>10} | {:>10} |",
            row.fan_out,
            row.blocks,
            f2(row.encodes_per_block),
            row.naive_encodes_per_block,
            row.cached_bytes_per_broadcast,
            row.naive_bytes_per_broadcast,
            f2(row.cached_seconds * 1000.0),
            f2(row.naive_seconds * 1000.0),
        );
    }

    println!(
        "\n| {:>6} | {:>8} | {:>16} | {:>14} | {:>7} |",
        "blocks", "order", "incremental b/s", "scan b/s", "speedup"
    );
    println!("|{}|", "-".repeat(66));
    for row in &burst {
        println!(
            "| {:>6} | {:>8} | {:>16} | {:>14} | {:>6}x |",
            row.blocks,
            row.order,
            f2(row.incremental_blocks_per_sec),
            f2(row.scan_blocks_per_sec),
            f2(row.speedup),
        );
    }

    println!(
        "\nReading: the canonical encode happens once per block — at build —\n\
         and every frame after that is a memcpy of the cached wire image, so\n\
         broadcast cost no longer multiplies encoding by fan-out. On the\n\
         admission side the reverse-dependency index promotes a hostile\n\
         B-block burst in O(B · preds) instead of the scan engine's O(B²),\n\
         with bit-identical promotion order (asserted every run).\n"
    );

    // Machine-readable trajectory line (snapshot: BENCH_wire.json).
    println!("{json}");

    if check_mode {
        match check(&broadcast, &burst, &json) {
            Ok(()) => println!("CHECK OK"),
            Err(reason) => {
                eprintln!("CHECK FAILED: {reason}");
                std::process::exit(1);
            }
        }
    }
}
