//! Markdown link checker for the documentation suite.
//!
//! Walks `README.md`, `ROADMAP.md`, `vendor/README.md`, and every file
//! under `docs/`, extracts inline markdown links (`[text](target)`)
//! outside fenced code blocks, and verifies that every relative target
//! resolves to an existing file — with `#anchor` fragments checked
//! against the target file's headings under GitHub's slug rules.
//! External (`http(s)://`, `mailto:`) targets are only syntax-checked:
//! CI runs fully offline.
//!
//! Exits nonzero listing every broken link, so the docs cannot rot
//! silently; CI runs this next to the `report_* --check` gates.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Files to check, relative to the repository root.
fn doc_files() -> Vec<PathBuf> {
    let mut files = vec![
        PathBuf::from("README.md"),
        PathBuf::from("ROADMAP.md"),
        PathBuf::from("vendor/README.md"),
    ];
    if let Ok(entries) = std::fs::read_dir("docs") {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|ext| ext == "md") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// One `[text](target)` occurrence.
struct Link {
    line: usize,
    target: String,
}

/// Blanks out inline code spans (`` `...` ``) so `](` sequences inside
/// them are not mistaken for links.
fn mask_code_spans(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_code = false;
    for ch in line.chars() {
        if ch == '`' {
            in_code = !in_code;
            out.push(' ');
        } else if in_code {
            out.push(' ');
        } else {
            out.push(ch);
        }
    }
    out
}

/// Extracts inline links outside fenced code blocks and inline code
/// spans.
fn extract_links(text: &str) -> Vec<Link> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for (index, raw) in text.lines().enumerate() {
        if raw.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let line = mask_code_spans(raw);
        let mut offset = 0;
        while let Some(open) = line[offset..].find("](") {
            let start = offset + open + 2;
            let Some(len) = line[start..].find(')') else {
                break;
            };
            links.push(Link {
                line: index + 1,
                target: line[start..start + len].to_owned(),
            });
            offset = start + len + 1;
        }
    }
    links
}

/// GitHub's heading-slug rule: lowercase; alphanumerics, hyphens, and
/// underscores survive; spaces become hyphens; everything else drops.
fn slug(heading: &str) -> String {
    let mut out = String::new();
    for ch in heading.trim().chars() {
        if ch.is_alphanumeric() {
            out.extend(ch.to_lowercase());
        } else if ch == ' ' {
            out.push('-');
        } else if ch == '-' || ch == '_' {
            out.push(ch);
        }
    }
    out
}

/// Every heading slug in a markdown file (fences skipped).
fn heading_slugs(text: &str) -> BTreeSet<String> {
    let mut slugs = BTreeSet::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence && line.starts_with('#') {
            slugs.insert(slug(line.trim_start_matches('#')));
        }
    }
    slugs
}

/// Checks one link from `file`; pushes a description of each problem.
fn check_link(file: &Path, link: &Link, problems: &mut Vec<String>) {
    let target = link.target.trim();
    let at = format!("{}:{}", file.display(), link.line);
    if target.is_empty() {
        problems.push(format!("{at}: empty link target"));
        return;
    }
    if target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
    {
        if target.contains(' ') {
            problems.push(format!("{at}: malformed external link `{target}`"));
        }
        return;
    }
    let (path_part, anchor) = match target.split_once('#') {
        Some((path, anchor)) => (path, Some(anchor)),
        None => (target, None),
    };
    let resolved = if path_part.is_empty() {
        file.to_path_buf()
    } else {
        file.parent().unwrap_or(Path::new(".")).join(path_part)
    };
    if !resolved.exists() {
        problems.push(format!(
            "{at}: target `{target}` does not exist ({})",
            resolved.display()
        ));
        return;
    }
    if let Some(anchor) = anchor {
        let Ok(text) = std::fs::read_to_string(&resolved) else {
            problems.push(format!("{at}: target `{target}` unreadable"));
            return;
        };
        if !heading_slugs(&text).contains(anchor) {
            problems.push(format!(
                "{at}: anchor `#{anchor}` not found in {}",
                resolved.display()
            ));
        }
    }
}

fn main() {
    let mut problems = Vec::new();
    let mut checked = 0usize;
    let files = doc_files();
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(error) => {
                problems.push(format!("{}: unreadable: {error}", file.display()));
                continue;
            }
        };
        for link in extract_links(&text) {
            checked += 1;
            check_link(file, &link, &mut problems);
        }
    }
    println!("check_docs: {} links across {} files", checked, files.len());
    if problems.is_empty() {
        println!("DOCS OK");
    } else {
        for problem in &problems {
            eprintln!("BROKEN: {problem}");
        }
        eprintln!("check_docs: {} broken links", problems.len());
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_links_and_skips_fences() {
        let text = "see [a](x.md) and [b](y.md#sec)\n```\n[not](code.md)\n```\n[c](z.md)";
        let links: Vec<String> = extract_links(text).into_iter().map(|l| l.target).collect();
        assert_eq!(links, ["x.md", "y.md#sec", "z.md"]);
    }

    #[test]
    fn inline_code_spans_are_not_links() {
        let text = "folds into `[8](P − Q) = O` — see [real](x.md)";
        let links: Vec<String> = extract_links(text).into_iter().map(|l| l.target).collect();
        assert_eq!(links, ["x.md"]);
    }

    #[test]
    fn slugs_match_github_rules() {
        assert_eq!(slug("Build and test"), "build-and-test");
        assert_eq!(slug("What to watch"), "what-to-watch");
        assert_eq!(
            slug("Interpreter architecture: copy-on-write state sharing"),
            "interpreter-architecture-copy-on-write-state-sharing"
        );
    }
}
