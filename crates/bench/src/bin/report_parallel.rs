//! Experiment E7: parallel instances "for free".
//!
//! Fixed n = 4 servers; sweep the number of concurrent BRB instances and
//! report the *per-instance* wire cost: on the DAG all instances share the
//! same blocks, so the per-instance cost collapses; the baseline's
//! per-instance cost is constant Θ(n²).
//!
//! The sweep's independent configurations run concurrently on worker
//! threads (crossbeam scoped threads).
//!
//! Run with: `cargo run --release -p dagbft-bench --bin report_parallel`

use dagbft_bench::{brb_labels, dag_costs, direct_costs, f2, run_dag_brb, run_direct_brb, Costs};
use dagbft_sim::NetworkModel;

fn main() {
    let n = 4;
    let sweep: Vec<usize> = vec![1, 10, 100, 1000];

    // Run all configurations in parallel; results keyed by sweep index.
    let mut results: Vec<Option<(Costs, Costs)>> = vec![None; sweep.len()];
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for instances in &sweep {
            handles.push(scope.spawn(move |_| {
                let labels = brb_labels(*instances);
                let dag = dag_costs(
                    &run_dag_brb(n, *instances, NetworkModel::default(), 50),
                    &labels,
                );
                let direct = direct_costs(
                    &run_direct_brb(n, *instances, NetworkModel::default()),
                    &labels,
                );
                (dag, direct)
            }));
        }
        for (slot, handle) in results.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("sweep worker"));
        }
    })
    .expect("crossbeam scope");

    println!("# E7 — per-instance wire cost vs concurrent instances (n = {n})\n");
    println!(
        "| {:>9} | {:>13} | {:>14} | {:>9} | {:>13} | {:>14} | {:>9} | {:>10} |",
        "instances",
        "dag msgs/inst",
        "dag bytes/inst",
        "dag sigs",
        "dir msgs/inst",
        "dir bytes/inst",
        "dir sigs",
        "msg ratio"
    );
    println!("|{}|", "-".repeat(112));
    for (instances, result) in sweep.iter().zip(&results) {
        let (dag, direct) = result.as_ref().expect("filled");
        let di = *instances as f64;
        println!(
            "| {:>9} | {:>13} | {:>14} | {:>9} | {:>13} | {:>14} | {:>9} | {:>10} |",
            instances,
            f2(dag.messages as f64 / di),
            f2(dag.bytes as f64 / di),
            dag.signatures,
            f2(direct.messages as f64 / di),
            f2(direct.bytes as f64 / di),
            direct.signatures,
            f2((direct.messages as f64 / di) / (dag.messages as f64 / di)),
        );
    }
    println!(
        "\nReading: the DAG's per-instance message cost falls roughly as 1/instances\n\
         (instances share blocks — 'running many instances in parallel for free',\n\
         §1); the baseline stays flat at Θ(n²) per instance, so the ratio grows\n\
         linearly with the instance count."
    );
}
