//! Durable-store experiment: journal recovery cost, genesis replay vs
//! snapshot catch-up.
//!
//! The workload drives one observing shim (`n = 5`, four active builders)
//! through a deep block chain carrying one BRB broadcast per round, with a
//! durable journal attached. Recovery is then measured by detaching the
//! journal and rebuilding the server from it — exactly the crash-restart
//! path — under three regimes: no snapshots (genesis replay of the whole
//! journal) and two snapshot cadences (recovery replays only the suffix
//! past the last persisted interpreter snapshot).
//!
//! The `--check` floors are *counter*-based and therefore
//! machine-independent: the [`dagbft_core::RecoveryReport`] replay
//! counters must show every snapshot row replaying at most half the
//! blocks a genesis replay interprets (the deepest cadence at most an
//! eighth — ≥2× and ≥8× replay speedups). Wall-clock is reported
//! alongside but not gated: journal parse and DAG rebuild are common to
//! both paths, and the snapshot record itself is re-checksummed on open,
//! so wall-clock only favors snapshots once interpretation dominates
//! (see the reading note printed with the table).
//!
//! The final stdout line is a machine-readable JSON object
//! (`BENCH_store.json` is a checked-in snapshot). `--check` re-runs the
//! experiment, enforces the floors, and diffs the JSON schema against the
//! snapshot.
//!
//! Run with: `cargo run --release -p dagbft-bench --bin report_store`

use std::time::Instant;

use dagbft_bench::{check_snapshot_schema, cores, f2};
use dagbft_core::{
    Block, BlockStore, Label, LabeledRequest, NetMessage, ProtocolConfig, RecoveryReport, SeqNum,
    Shim, ShimConfig,
};
use dagbft_crypto::{KeyRegistry, ServerId};
use dagbft_protocols::{Brb, BrbRequest};
use dagbft_store::MemStore;

const SEED: u64 = 13;
/// Active builders; the fifth server only observes, journals, recovers.
const BUILDERS: usize = 4;
const N: usize = BUILDERS + 1;
/// Chain depth in rounds — `ROUNDS × BUILDERS` journaled blocks.
const ROUNDS: u64 = 512;
/// The recovering server.
const ME: u32 = BUILDERS as u32;
/// Repetitions of each timed recovery (best-of).
const REPS: usize = 3;

/// `(cadence, tag)`: `0` = snapshots disabled (genesis replay).
const MODES: [(u64, &str); 3] = [
    (0, "genesis"),
    (1280, "snapshot@1280"),
    (1792, "snapshot@1792"),
];

struct Row {
    mode: &'static str,
    report: RecoveryReport,
    recover_seconds: f64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            "{{\"mode\":\"{}\",\"journal_blocks\":{},\"snapshot_covered\":{},\
             \"replayed_blocks\":{},\"requests_rebuffered\":{},\"recover_seconds\":{:.6}}}",
            self.mode,
            self.report.journal_blocks,
            self.report.snapshot_covered,
            self.report.replayed_blocks,
            self.report.requests_rebuffered,
            self.recover_seconds,
        )
    }
}

/// The deep chain: `ROUNDS` fully-connected layers, one BRB broadcast
/// injected per round so interpretation does real protocol work all the
/// way down.
fn build_chain(registry: &KeyRegistry) -> Vec<Block> {
    let signers: Vec<_> = (0..BUILDERS)
        .map(|i| registry.signer(ServerId::new(i as u32)).unwrap())
        .collect();
    let mut blocks = Vec::with_capacity(ROUNDS as usize * BUILDERS);
    let mut prev = Vec::new();
    for round in 0..ROUNDS {
        let mut layer = Vec::new();
        for (index, signer) in signers.iter().enumerate() {
            let requests = if round as usize % BUILDERS == index {
                vec![LabeledRequest::encode(
                    Label::new(round),
                    &BrbRequest::Broadcast(round),
                )]
            } else {
                vec![]
            };
            let block = Block::build(
                ServerId::new(index as u32),
                SeqNum::new(round),
                prev.clone(),
                requests,
                signer,
            );
            layer.push(block.block_ref());
            blocks.push(block);
        }
        prev = layer;
    }
    blocks
}

/// Feeds the whole chain through a journaling shim and returns the
/// resulting journal (with a snapshot when `cadence > 0`).
fn populate_journal(registry: &KeyRegistry, blocks: &[Block], cadence: u64) -> Box<dyn BlockStore> {
    let config = ShimConfig::new(ProtocolConfig::for_n(N));
    let store = Box::new(MemStore::in_memory());
    let (mut shim, report) =
        Shim::<Brb<u64>>::recover_from_store(ServerId::new(ME), config, registry, store)
            .expect("empty journal recovers to a fresh shim");
    assert_eq!(report.journal_blocks, 0);
    if cadence > 0 {
        shim.enable_snapshots(cadence);
    }
    for (round, layer) in blocks.chunks(BUILDERS).enumerate() {
        let burst = layer
            .iter()
            .map(|block| (block.builder(), NetMessage::Block(block.clone())));
        shim.on_message_burst(burst, round as u64);
        shim.poll_indications();
    }
    assert!(shim.store_error().is_none(), "journaling stayed healthy");
    let store = shim.detach_store().expect("store is attached");
    let contents = store.contents().expect("journal reads back");
    assert_eq!(contents.blocks.len(), blocks.len(), "all blocks journaled");
    store
}

fn measure(registry: &KeyRegistry, blocks: &[Block], cadence: u64, mode: &'static str) -> Row {
    let mut store = populate_journal(registry, blocks, cadence);
    let config = ShimConfig::new(ProtocolConfig::for_n(N));
    let recover = if cadence > 0 {
        Shim::<Brb<u64>>::recover_from_store_with_snapshots
    } else {
        Shim::<Brb<u64>>::recover_from_store
    };
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let (mut shim, rep) =
            recover(ServerId::new(ME), config, registry, store).expect("recovery succeeds");
        best = best.min(start.elapsed().as_secs_f64());
        shim.poll_indications();
        assert_eq!(
            shim.dag().len(),
            blocks.len(),
            "recovered DAG holds the whole chain"
        );
        store = shim.detach_store().expect("store re-attached by recovery");
        report = Some(rep);
    }
    let report = report.expect("at least one repetition ran");
    assert_eq!(report.journal_blocks, blocks.len());
    assert_eq!(
        report.snapshot_covered + report.replayed_blocks,
        report.journal_blocks,
        "replay covers exactly the suffix past the snapshot"
    );
    Row {
        mode,
        report,
        recover_seconds: best,
    }
}

fn run() -> (Vec<Row>, String) {
    let registry = KeyRegistry::generate(N, SEED);
    let blocks = build_chain(&registry);
    let rows: Vec<Row> = MODES
        .into_iter()
        .map(|(cadence, mode)| measure(&registry, &blocks, cadence, mode))
        .collect();
    let json = format!(
        "{{\"experiment\":\"store_recovery\",\"protocol\":\"brb\",\"seed\":{},\"cores\":{},\
         \"chain_blocks\":{},\"rows\":[{}]}}",
        SEED,
        cores(),
        ROUNDS as usize * BUILDERS,
        rows.iter().map(Row::json).collect::<Vec<_>>().join(","),
    );
    (rows, json)
}

fn check(rows: &[Row], json: &str) -> Result<(), String> {
    let genesis = rows
        .iter()
        .find(|row| row.mode == "genesis")
        .ok_or("no genesis row")?;
    if genesis.report.replayed_blocks != genesis.report.journal_blocks {
        return Err("genesis replay must re-interpret the whole journal".into());
    }
    for row in rows.iter().filter(|row| row.mode != "genesis") {
        if row.report.snapshot_covered == 0 {
            return Err(format!("{}: no snapshot was persisted", row.mode));
        }
        // The machine-independent floor: snapshot catch-up replays at
        // most half of what genesis replay interprets.
        if row.report.replayed_blocks * 2 > genesis.report.replayed_blocks {
            return Err(format!(
                "{}: replayed {} of {} — snapshot must at least halve the replay",
                row.mode, row.report.replayed_blocks, genesis.report.replayed_blocks
            ));
        }
        if row.recover_seconds <= 0.0 || genesis.recover_seconds <= 0.0 {
            return Err(format!("{}: zero wall-clock", row.mode));
        }
    }
    // The deepest cadence leaves only a thin suffix (≤ 1/8 of the chain).
    let deepest = rows.last().ok_or("no rows")?;
    if deepest.report.replayed_blocks * 8 > deepest.report.journal_blocks {
        return Err(format!(
            "{}: suffix {} of {} — deepest snapshot too shallow",
            deepest.mode, deepest.report.replayed_blocks, deepest.report.journal_blocks
        ));
    }
    check_snapshot_schema("BENCH_store.json", json)
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");

    println!(
        "# Durable store recovery — {} blocks, BRB activity every round (seed {SEED})\n",
        ROUNDS as usize * BUILDERS
    );
    let (rows, json) = run();

    println!(
        "| {:>14} | {:>14} | {:>16} | {:>15} | {:>10} | {:>10} |",
        "mode", "journal blocks", "snapshot covered", "replayed blocks", "recover ms", "vs genesis"
    );
    println!("|{}|", "-".repeat(96));
    let genesis_seconds = rows
        .iter()
        .find(|row| row.mode == "genesis")
        .map(|row| row.recover_seconds)
        .unwrap_or(f64::NAN);
    for row in &rows {
        println!(
            "| {:>14} | {:>14} | {:>16} | {:>15} | {:>10} | {:>9}x |",
            row.mode,
            row.report.journal_blocks,
            row.report.snapshot_covered,
            row.report.replayed_blocks,
            f2(row.recover_seconds * 1000.0),
            f2(genesis_seconds / row.recover_seconds),
        );
    }

    println!(
        "\nReading: recovery always re-parses the checksummed journal and\n\
         rebuilds the DAG (integrity is re-verified block by block), but\n\
         interpretation restarts from the latest persisted snapshot, so\n\
         the replayed-blocks column shrinks to the post-snapshot suffix\n\
         while genesis replay pays the whole chain (§7: the DAG is the\n\
         log; snapshots bound the log's replay cost). The gated floor is\n\
         the counter ratio — it is what survives any machine. Wall-clock\n\
         additionally pays to re-checksum the snapshot record and decode\n\
         it (format v1 writes every retained copy-on-write state version),\n\
         so it only nets out ahead once per-block interpretation dominates\n\
         those linear costs — see ROADMAP: snapshot compaction and\n\
         record-skipping journal reads.\n"
    );

    // Machine-readable trajectory line (snapshot: BENCH_store.json).
    println!("{json}");

    if check_mode {
        match check(&rows, &json) {
            Ok(()) => println!("CHECK OK"),
            Err(reason) => {
                eprintln!("CHECK FAILED: {reason}");
                std::process::exit(1);
            }
        }
    }
}
