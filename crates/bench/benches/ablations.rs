//! Ablations of the design choices DESIGN.md §6 calls out:
//!
//! * **dissemination trigger** (Algorithm 3 line 10 "repeatedly"): the
//!   interval between `disseminate()` calls trades latency for block
//!   count;
//! * **request batching** (`rqsts.get()` cap): how many requests ride one
//!   block.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagbft_core::Label;
use dagbft_protocols::{Brb, BrbRequest};
use dagbft_sim::{Injection, NetworkModel, SimConfig, Simulation};

fn run_with(disseminate_every: u64, max_requests_per_block: usize, instances: usize) -> u64 {
    let n = 4;
    let expected = instances * n;
    let mut config = SimConfig::new(n)
        .with_max_time(600_000)
        .with_disseminate_every(disseminate_every)
        .with_network(NetworkModel::reliable_constant(10))
        .with_stop_after_deliveries(expected);
    config.max_requests_per_block = max_requests_per_block;
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    for i in 0..instances {
        sim.inject(Injection {
            at: 0,
            server: i % n,
            label: Label::new(i as u64),
            request: BrbRequest::Broadcast(i as u64),
        });
    }
    let outcome = sim.run();
    assert_eq!(outcome.deliveries.len(), expected);
    outcome.finished_at
}

fn bench_disseminate_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/disseminate_interval");
    for interval in [10u64, 50, 200] {
        group.bench_with_input(
            BenchmarkId::from_parameter(interval),
            &interval,
            |b, interval| {
                b.iter(|| run_with(*interval, 1024, 4));
            },
        );
    }
    group.finish();
}

fn bench_request_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/requests_per_block");
    for cap in [1usize, 8, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, cap| {
            b.iter(|| run_with(50, *cap, 16));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_disseminate_interval, bench_request_batching
}
criterion_main!(benches);
