//! Experiment E10: recovery under message loss via the `FWD` mechanism
//! (Algorithm 1 lines 10–13), which restores Assumption 1 end-to-end.
//!
//! Sweeps the per-message drop rate and measures the wall-clock of a full
//! broadcast-to-delivery run; the simulated-time and FWD-count series come
//! from `report_lossy`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagbft_bench::run_dag_brb;
use dagbft_sim::NetworkModel;

fn bench_drop_rates(c: &mut Criterion) {
    let mut group = c.benchmark_group("lossy_recovery/drop_rate");
    for drop_pct in [0u32, 10, 30, 50] {
        let network = NetworkModel::default().with_drop_rate(drop_pct as f64 / 100.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(drop_pct),
            &network,
            |b, network| {
                b.iter(|| run_dag_brb(4, 1, network.clone(), 50));
            },
        );
    }
    group.finish();
}

fn bench_out_of_order_promotion(c: &mut Criterion) {
    // Worst-case pending-buffer churn: a long chain delivered in reverse.
    use dagbft_core::{Gossip, GossipConfig};
    use dagbft_crypto::{KeyRegistry, ServerId};

    let registry = KeyRegistry::generate(2, 1);
    let mut builder = Gossip::new(
        ServerId::new(1),
        GossipConfig::for_n(2),
        registry.signer(ServerId::new(1)).unwrap(),
        registry.verifier(),
    );
    let chain: Vec<_> = (0..200).map(|t| builder.disseminate(vec![], t).0).collect();

    let mut group = c.benchmark_group("gossip/out_of_order_chain");
    group.sample_size(10);
    group.bench_function("reverse_200", |b| {
        b.iter(|| {
            let mut receiver = Gossip::new(
                ServerId::new(0),
                GossipConfig::for_n(2),
                registry.signer(ServerId::new(0)).unwrap(),
                registry.verifier(),
            );
            for block in chain.iter().rev() {
                receiver.on_block(block.clone(), 0);
            }
            assert_eq!(receiver.dag().len(), 200);
            receiver
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_drop_rates, bench_out_of_order_promotion
}
criterion_main!(benches);
