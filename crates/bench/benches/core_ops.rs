//! Micro-benchmarks of the framework's hot paths: hashing, signing, block
//! construction, validation, and DAG insertion — the "light processing"
//! the paper's §3 argues makes gossip amenable to high-performance
//! implementations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dagbft_codec::{decode_from_slice, encode_to_vec};
use dagbft_core::{Block, BlockDag, BlockRef, Label, LabeledRequest, SeqNum};
use dagbft_crypto::{hmac_sha256, sha256, KeyRegistry, ServerId};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(std::hint::black_box(data)));
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let key = [7u8; 32];
    let message = vec![1u8; 256];
    c.bench_function("hmac_sha256/256B", |b| {
        b.iter(|| hmac_sha256(std::hint::black_box(&key), std::hint::black_box(&message)));
    });
}

fn sample_block(preds: usize, requests: usize) -> (KeyRegistry, Block) {
    let registry = KeyRegistry::generate(4, 1);
    let signer = registry.signer(ServerId::new(0)).unwrap();
    // Fabricate pred refs from content hashes (structure-only benchmark).
    let pred_refs: Vec<BlockRef> = (0..preds)
        .map(|i| {
            Block::build(
                ServerId::new(0),
                SeqNum::new(i as u64),
                vec![],
                vec![],
                &signer,
            )
            .block_ref()
        })
        .collect();
    let rs: Vec<LabeledRequest> = (0..requests)
        .map(|i| LabeledRequest::encode(Label::new(i as u64), &(i as u64)))
        .collect();
    let block = Block::build(ServerId::new(0), SeqNum::new(99), pred_refs, rs, &signer);
    (registry, block)
}

fn bench_block_build(c: &mut Criterion) {
    let registry = KeyRegistry::generate(4, 1);
    let signer = registry.signer(ServerId::new(0)).unwrap();
    let mut group = c.benchmark_group("block_build_sign");
    for requests in [0usize, 16, 256] {
        let rs: Vec<LabeledRequest> = (0..requests)
            .map(|i| LabeledRequest::encode(Label::new(i as u64), &(i as u64)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(requests), &rs, |b, rs| {
            b.iter(|| {
                Block::build(
                    ServerId::new(0),
                    SeqNum::ZERO,
                    vec![],
                    std::hint::black_box(rs.clone()),
                    &signer,
                )
            });
        });
    }
    group.finish();
}

fn bench_block_codec(c: &mut Criterion) {
    let (_, block) = sample_block(8, 32);
    let bytes = encode_to_vec(&block);
    let mut group = c.benchmark_group("block_codec");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| encode_to_vec(std::hint::black_box(&block)));
    });
    group.bench_function("decode", |b| {
        b.iter(|| decode_from_slice::<Block>(std::hint::black_box(&bytes)).unwrap());
    });
    group.finish();
}

fn bench_signature_verify(c: &mut Criterion) {
    let (registry, block) = sample_block(8, 32);
    let verifier = registry.verifier();
    c.bench_function("block_verify_signature", |b| {
        b.iter(|| std::hint::black_box(&block).verify_signature(&verifier));
    });
}

fn bench_dag_insert(c: &mut Criterion) {
    // Measure inserting one round of n blocks into a DAG pre-grown to
    // `rounds` rounds.
    let n = 4;
    let registry = KeyRegistry::generate(n, 1);
    let signers: Vec<_> = (0..n)
        .map(|i| registry.signer(ServerId::new(i as u32)).unwrap())
        .collect();
    let mut group = c.benchmark_group("dag_insert_round");
    for rounds in [16u64, 128] {
        // Pre-build the DAG.
        let mut dag = BlockDag::new();
        let mut prev: Vec<BlockRef> = Vec::new();
        for round in 0..rounds {
            let mut layer = Vec::new();
            for (index, signer) in signers.iter().enumerate() {
                let block = Block::build(
                    ServerId::new(index as u32),
                    SeqNum::new(round),
                    prev.clone(),
                    vec![],
                    signer,
                );
                dag.insert(block.clone()).unwrap();
                layer.push(block.block_ref());
            }
            prev = layer;
        }
        let next_layer: Vec<Block> = signers
            .iter()
            .enumerate()
            .map(|(index, signer)| {
                Block::build(
                    ServerId::new(index as u32),
                    SeqNum::new(rounds),
                    prev.clone(),
                    vec![],
                    signer,
                )
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(rounds),
            &(dag, next_layer),
            |b, (dag, layer)| {
                b.iter_batched(
                    || dag.clone(),
                    |mut dag| {
                        for block in layer {
                            dag.insert(block.clone()).unwrap();
                        }
                        dag
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sha256, bench_hmac, bench_block_build, bench_block_codec,
              bench_signature_verify, bench_dag_insert
}
criterion_main!(benches);
