//! Experiment E12 (cost side): what byzantine behaviour costs the correct
//! servers — full runs with each adversary role vs a clean run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagbft_bench::{run_dag_brb, run_dag_brb_with_role};
use dagbft_sim::{NetworkModel, Role};

fn bench_roles(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary_overhead");
    group.bench_function(BenchmarkId::new("clean", 4), |b| {
        b.iter(|| run_dag_brb(4, 2, NetworkModel::default(), 50));
    });
    group.bench_function(BenchmarkId::new("silent", 4), |b| {
        b.iter(|| run_dag_brb_with_role(4, 2, Role::Silent));
    });
    group.bench_function(BenchmarkId::new("equivocate", 4), |b| {
        b.iter(|| run_dag_brb_with_role(4, 2, Role::Equivocate { at_seq: 0 }));
    });
    group.bench_function(BenchmarkId::new("selective", 4), |b| {
        b.iter(|| {
            run_dag_brb_with_role(
                4,
                2,
                Role::SelectiveBroadcast {
                    targets: [0].into_iter().collect(),
                },
            )
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_roles
}
criterion_main!(benches);
