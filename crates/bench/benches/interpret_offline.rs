//! Experiment E8: off-line interpretation throughput.
//!
//! The paper (§1, §7) claims maintaining the DAG can be fully decoupled
//! from "later or off-line interpretation of instances of protocol P".
//! This bench interprets pre-built DAGs from scratch — no network, no IO —
//! and reports blocks/second, sweeping DAG size and instance counts.
//! Throughput is reported in blocks (elements).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dagbft_bench::build_offline_dag;
use dagbft_core::{Interpreter, ReferenceInterpreter};
use dagbft_protocols::Brb;

fn bench_interpret_blocks(c: &mut Criterion) {
    let n = 4;
    let mut group = c.benchmark_group("interpret_offline/blocks");
    for rounds in [16u64, 64, 256] {
        let (dag, config) = build_offline_dag(n, rounds, 4);
        group.throughput(Throughput::Elements(dag.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(dag.len()),
            &(dag, config),
            |b, (dag, config)| {
                b.iter(|| {
                    let mut interpreter: Interpreter<Brb<u64>> = Interpreter::new(*config);
                    let interpreted = interpreter.step(dag);
                    assert_eq!(interpreted, dag.len());
                    interpreter
                });
            },
        );
    }
    group.finish();
}

fn bench_interpret_instances(c: &mut Criterion) {
    // Same number of blocks, growing instance counts: the marginal cost of
    // "parallel instances for free".
    let n = 4;
    let rounds = 32;
    let mut group = c.benchmark_group("interpret_offline/instances");
    for instances in [1usize, 10, 100, 500] {
        let (dag, config) = build_offline_dag(n, rounds, instances);
        group.throughput(Throughput::Elements(instances as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(instances),
            &(dag, config),
            |b, (dag, config)| {
                b.iter(|| {
                    let mut interpreter: Interpreter<Brb<u64>> = Interpreter::new(*config);
                    interpreter.step(dag);
                    interpreter
                });
            },
        );
    }
    group.finish();
}

fn bench_interpret_server_counts(c: &mut Criterion) {
    // Interpretation cost grows with n (one simulated instance per
    // server): quantify the slope.
    let mut group = c.benchmark_group("interpret_offline/servers");
    for n in [4usize, 7, 10] {
        let (dag, config) = build_offline_dag(n, 24, 4);
        group.throughput(Throughput::Elements(dag.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(dag, config),
            |b, (dag, config)| {
                b.iter(|| {
                    let mut interpreter: Interpreter<Brb<u64>> = Interpreter::new(*config);
                    interpreter.step(dag);
                    interpreter
                });
            },
        );
    }
    group.finish();
}

fn bench_interpret_sharing(c: &mut Criterion) {
    // Copy-on-write vs the clone-per-block reference transcription, on an
    // identical DAG: the cost line 4 of Algorithm 2 stops paying.
    let n = 4;
    let rounds = 64;
    let labels = 16;
    let (dag, config) = build_offline_dag(n, rounds, labels);
    let mut group = c.benchmark_group("interpret_offline/sharing");
    group.throughput(Throughput::Elements(dag.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("cow", dag.len()),
        &(dag.clone(), config),
        |b, (dag, config)| {
            b.iter(|| {
                let mut interpreter: Interpreter<Brb<u64>> = Interpreter::new(*config);
                interpreter.step(dag);
                interpreter
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("clone-per-block", dag.len()),
        &(dag, config),
        |b, (dag, config)| {
            b.iter(|| {
                let mut interpreter: ReferenceInterpreter<Brb<u64>> =
                    ReferenceInterpreter::new(*config);
                interpreter.step(dag);
                interpreter
            });
        },
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_interpret_blocks, bench_interpret_instances,
        bench_interpret_server_counts, bench_interpret_sharing
}
criterion_main!(benches);
