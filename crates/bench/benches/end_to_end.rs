//! End-to-end wall-clock benchmarks for the experiment families E5/E7/E11:
//! full simulated runs (request → all deliveries) of the DAG embedding vs
//! the direct baseline, sweeping server counts and instance counts.
//!
//! Wall-clock here measures the *simulator* work, which tracks total
//! protocol work (blocks validated, messages materialized or shipped);
//! the wire/signature *counts* behind the paper's claims are produced by
//! the `report_*` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagbft_bench::{run_dag_brb, run_dag_smr, run_direct_brb};
use dagbft_sim::NetworkModel;

fn bench_brb_dag_vs_direct_servers(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2e_brb/servers");
    for n in [4usize, 7, 10] {
        group.bench_with_input(BenchmarkId::new("dag", n), &n, |b, n| {
            b.iter(|| run_dag_brb(*n, 1, NetworkModel::default(), 50));
        });
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, n| {
            b.iter(|| run_direct_brb(*n, 1, NetworkModel::default()));
        });
    }
    group.finish();
}

fn bench_brb_parallel_instances(c: &mut Criterion) {
    let n = 4;
    let mut group = c.benchmark_group("e2e_brb/instances");
    for instances in [1usize, 10, 50] {
        group.bench_with_input(
            BenchmarkId::new("dag", instances),
            &instances,
            |b, instances| {
                b.iter(|| run_dag_brb(n, *instances, NetworkModel::default(), 50));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("direct", instances),
            &instances,
            |b, instances| {
                b.iter(|| run_direct_brb(n, *instances, NetworkModel::default()));
            },
        );
    }
    group.finish();
}

fn bench_smr_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2e_smr");
    for (proposals, leaders) in [(4usize, 4usize), (16, 4)] {
        group.bench_with_input(
            BenchmarkId::new("dag", format!("{proposals}p_{leaders}l")),
            &(proposals, leaders),
            |b, (proposals, leaders)| {
                b.iter(|| run_dag_smr(4, *proposals, *leaders));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_brb_dag_vs_direct_servers, bench_brb_parallel_instances, bench_smr_commit
}
criterion_main!(benches);
