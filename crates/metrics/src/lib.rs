//! Live observability for dagbft nodes.
//!
//! Three pieces, all std-only (no new dependencies, matching the
//! vendored-shim policy):
//!
//! * [`MetricsRegistry`] — a lock-light registry of named atomic
//!   counters, gauges and fixed-bucket log₂ histograms. Registration
//!   (rare) takes a mutex; every update on an already-registered metric
//!   is a single relaxed atomic operation on an `Arc`'d cell, so
//!   publishing from hot paths costs nanoseconds and never blocks the
//!   event loop. [`MetricsRegistry::snapshot_json`] serializes the whole
//!   registry to one deterministic, versioned JSON object
//!   ([`SCHEMA_VERSION`]) — the same shape the committed
//!   `BENCH_workload.json` trajectory and `docs/METRICS.md` are checked
//!   against.
//! * [`MetricsServer`] — a minimal JSON-over-HTTP/1.0 responder on a
//!   spawned thread: any `GET` returns the current snapshot. This is what
//!   `dagbft_transport::NodeConfig::metrics_addr` exposes from a running
//!   TCP node, and what `report_workload` scrapes mid-run.
//! * [`publish`] — adapters that mirror the counters the workspace
//!   already keeps (`GossipStats`, `WaveStats`, `InterpreterFootprint`,
//!   `CryptoMetrics`, `RecoveryReport`, per-peer transport traffic) into
//!   a registry under the documented field names.
//!
//! The registry deliberately *mirrors* existing counters instead of
//! instrumenting hot paths with new ones: every admission, verification
//! and interpretation counter in the workspace is already maintained
//! (and determinism-tested) where the work happens, so the live surface
//! is a periodic, lock-free copy — overhead is bounded by the publish
//! cadence, not by traffic (gated at ≤5% of the `report_admission`
//! 2k-item verify gate by `report_workload --check`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod http;
pub mod publish;
mod registry;

pub use http::{scrape, MetricsServer};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS, SCHEMA_VERSION};
