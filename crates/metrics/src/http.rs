//! The JSON-over-HTTP endpoint: a std-only HTTP/1.0 responder.
//!
//! One accept thread serves every request inline — requests are a few
//! bytes and responses one snapshot, so there is no per-connection thread
//! churn and nothing to backpressure. The server is deliberately minimal:
//! any `GET` gets the snapshot, anything else a 405; malformed or slow
//! clients are cut off by short socket timeouts so a stuck scraper can
//! never wedge the endpoint.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::MetricsRegistry;

/// Accept-loop poll interval (shutdown latency bound).
const POLL: Duration = Duration::from_millis(25);
/// Per-connection read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_millis(500);
/// Upper bound on the request head we read before answering.
const MAX_REQUEST: usize = 4096;

/// A running metrics endpoint. Dropping the handle (or calling
/// [`MetricsServer::shutdown`]) stops the thread.
#[derive(Debug)]
pub struct MetricsServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (port 0 picks an ephemeral port — read the result
    /// back via [`MetricsServer::local_addr`]) and serves
    /// `registry.snapshot_json()` to every HTTP `GET`.
    ///
    /// The server counts its own traffic into the registry: the
    /// `metrics_http_requests` counter increments per answered request —
    /// a liveness signal that is itself part of the exported field set.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind error.
    pub fn serve(registry: Arc<MetricsRegistry>, addr: SocketAddr) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let requests = registry.counter("metrics_http_requests");
        let thread = {
            let shutdown = shutdown.clone();
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if answer(stream, &registry).is_ok() {
                                requests.inc();
                            }
                        }
                        Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL);
                        }
                        Err(_) => std::thread::sleep(POLL),
                    }
                }
            })
        };
        Ok(MetricsServer {
            local_addr,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the server thread and waits for it.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The thread observes the flag within one poll interval;
        // detaching on drop is acceptable (shutdown() joins).
    }
}

/// Reads the request head and writes one HTTP/1.0 response.
fn answer(mut stream: TcpStream, registry: &MetricsRegistry) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    // Read until the blank line ending the request head (HTTP/1.0 GETs
    // have no body) or the size cap.
    loop {
        let read = stream.read(&mut buf)?;
        if read == 0 {
            break;
        }
        head.extend_from_slice(&buf[..read]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_REQUEST {
            break;
        }
    }
    let request = String::from_utf8_lossy(&head);
    let (status, body) = if request.starts_with("GET ") {
        ("200 OK", registry.snapshot_json())
    } else {
        ("405 Method Not Allowed", String::from("{}"))
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Scrapes a metrics endpoint: one blocking `GET /metrics`, returning the
/// response body (the snapshot JSON). The client half of
/// [`MetricsServer`], shared by tests and `report_workload`.
///
/// # Errors
///
/// Connect/IO errors, or [`io::ErrorKind::InvalidData`] when the response
/// is not a 200 with a body.
pub fn scrape(addr: SocketAddr) -> io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let invalid = |reason: &str| io::Error::new(io::ErrorKind::InvalidData, reason.to_owned());
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| invalid("no header/body separator"))?;
    if !head.starts_with("HTTP/1.0 200") {
        return Err(invalid(&format!("non-200 response: {head}")));
    }
    Ok(body.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ephemeral() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    #[test]
    fn serves_snapshot_over_http() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.set_counter("gossip_blocks_validated", 42);
        let server = MetricsServer::serve(registry.clone(), ephemeral()).unwrap();
        let body = scrape(server.local_addr()).expect("scrape succeeds");
        assert!(body.contains("\"schema_version\":1"), "{body}");
        assert!(body.contains("\"gossip_blocks_validated\":42"), "{body}");
        // The endpoint counts its own requests; a second scrape sees the
        // first one recorded.
        let body = scrape(server.local_addr()).expect("second scrape");
        assert!(body.contains("\"metrics_http_requests\":1"), "{body}");
        server.shutdown();
    }

    #[test]
    fn live_updates_are_visible_between_scrapes() {
        let registry = Arc::new(MetricsRegistry::new());
        let counter = registry.counter("blocks");
        let server = MetricsServer::serve(registry, ephemeral()).unwrap();
        counter.set(1);
        assert!(scrape(server.local_addr())
            .unwrap()
            .contains("\"blocks\":1"));
        counter.set(2);
        assert!(scrape(server.local_addr())
            .unwrap()
            .contains("\"blocks\":2"));
        server.shutdown();
    }

    #[test]
    fn non_get_is_rejected() {
        let registry = Arc::new(MetricsRegistry::new());
        let server = MetricsServer::serve(registry, ephemeral()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 405"), "{response}");
        server.shutdown();
    }
}
