//! Mirror-publishers: copy the workspace's existing counters into a
//! [`MetricsRegistry`] under the documented field names.
//!
//! Every function overwrites absolute values (the sources are themselves
//! monotonic counters or instantaneous footprints), so publishing is
//! idempotent and safe on any cadence. `docs/METRICS.md` documents each
//! field emitted here; `report_workload --check` fails when the two
//! drift.

use dagbft_core::{
    GossipStats, InterpreterFootprint, PeerDefense, RecoveryReport, TimeMs, WaveStats,
};
use dagbft_crypto::CryptoMetrics;

use crate::registry::MetricsRegistry;

/// Publishes [`GossipStats`] — the admission observables of Algorithm 1
/// (engine-independent: every admission mode reports identical values).
pub fn publish_gossip(registry: &MetricsRegistry, stats: &GossipStats) {
    registry.set_counter("gossip_blocks_received", stats.blocks_received);
    registry.set_counter("gossip_duplicate_blocks", stats.duplicate_blocks);
    registry.set_counter("gossip_invalid_blocks", stats.invalid_blocks);
    registry.set_counter("gossip_blocks_validated", stats.blocks_validated);
    registry.set_counter("gossip_blocks_built", stats.blocks_built);
    registry.set_counter("gossip_fwd_sent", stats.fwd_sent);
    registry.set_counter("gossip_fwd_received", stats.fwd_received);
    registry.set_counter("gossip_fwd_answered", stats.fwd_answered);
    registry.set_counter("gossip_blocks_evicted", stats.blocks_evicted);
    registry.set_gauge("gossip_pending_peak", stats.pending_peak as u64);
}

/// Publishes [`WaveStats`] — the verification-pipeline shape (waves,
/// bursts, and the wave-width log₂ histogram). Implementation properties
/// of the batched engines: the scan oracle leaves them zero.
pub fn publish_waves(registry: &MetricsRegistry, stats: &WaveStats) {
    registry.set_counter("wave_count", stats.waves);
    registry.set_counter("wave_batched_blocks", stats.batched_blocks);
    registry.set_gauge("wave_largest", stats.largest_wave as u64);
    registry.set_gauge("wave_smallest", stats.smallest_wave as u64);
    registry.set_counter("wave_bursts", stats.bursts);
    registry.set_counter("wave_burst_blocks", stats.burst_blocks);
    registry.histogram("wave_width").store(
        &stats.width_histogram,
        stats.waves,
        stats.batched_blocks,
    );
}

/// Publishes an [`InterpreterFootprint`] — resident memory shape of the
/// copy-on-write interpreter (unique vs total instances is the
/// structural-sharing win).
pub fn publish_footprint(registry: &MetricsRegistry, footprint: &InterpreterFootprint) {
    registry.set_gauge("interp_blocks", footprint.blocks as u64);
    registry.set_gauge("interp_instances", footprint.instances as u64);
    registry.set_gauge("interp_unique_instances", footprint.unique_instances as u64);
    registry.set_gauge("interp_out_envelopes", footprint.out_envelopes as u64);
    registry.set_gauge("interp_in_envelopes", footprint.in_envelopes as u64);
}

/// Publishes [`CryptoMetrics`] — sign/verify totals and the batched /
/// burst-amortized shares (the source counters are atomics shared by
/// every handle of one `KeyRegistry`, so these are live even while a
/// verification pool is running).
pub fn publish_crypto(registry: &MetricsRegistry, metrics: &CryptoMetrics) {
    registry.set_counter("crypto_signs", metrics.signs());
    registry.set_counter("crypto_verifies", metrics.verifies());
    registry.set_counter("crypto_batches", metrics.batches());
    registry.set_counter("crypto_batched_verifies", metrics.batched_verifies());
    registry.set_gauge("crypto_largest_batch", metrics.largest_batch());
    registry.set_counter("crypto_bursts", metrics.bursts());
    registry.set_counter("crypto_burst_verifies", metrics.burst_verifies());
    registry.set_gauge("crypto_largest_burst", metrics.largest_burst());
}

/// Publishes a [`RecoveryReport`] — what the durable store replayed when
/// this node last recovered (all zero for a fresh start).
pub fn publish_recovery(registry: &MetricsRegistry, report: &RecoveryReport) {
    registry.set_counter("recovery_journal_blocks", report.journal_blocks as u64);
    registry.set_counter("recovery_replayed_blocks", report.replayed_blocks as u64);
    registry.set_counter("recovery_snapshot_covered", report.snapshot_covered as u64);
    registry.set_counter(
        "recovery_requests_rebuffered",
        report.requests_rebuffered as u64,
    );
    registry.set_counter(
        "recovery_truncated_records",
        report.truncated_records as u64,
    );
}

/// Publishes store health: whether a durable store is attached, and
/// whether one was detached by a write failure (the shim's
/// fail-open-but-report policy — see `Shim::store_error`).
pub fn publish_store_health(registry: &MetricsRegistry, attached: bool, failed: bool) {
    registry.set_gauge("store_attached", attached as u64);
    registry.set_gauge("store_failed", failed as u64);
}

/// Publishes one peer's transport traffic under `peer<index>_*` names
/// (documented as `peer<i>_*` in `docs/METRICS.md`; the drift gate
/// normalizes the index).
pub fn publish_peer(
    registry: &MetricsRegistry,
    peer: usize,
    sent_msgs: u64,
    sent_bytes: u64,
    recv_msgs: u64,
    recv_bytes: u64,
) {
    registry.set_counter(&format!("peer{peer}_sent_msgs"), sent_msgs);
    registry.set_counter(&format!("peer{peer}_sent_bytes"), sent_bytes);
    registry.set_counter(&format!("peer{peer}_recv_msgs"), recv_msgs);
    registry.set_counter(&format!("peer{peer}_recv_bytes"), recv_bytes);
}

/// Publishes the defense layer's observables: aggregate counters
/// ([`dagbft_core::DefenseStats`] plus the audit-trail length) and, for
/// every peer the scoring engine has touched, a live score gauge with
/// throttle / ban counters (`peer<index>_*` names, normalized to
/// `peer<i>_*` by the drift gate like the transport-traffic fields).
/// Publishing nothing per-peer while the defense layer is disabled is
/// intentional — untouched peers have no row.
pub fn publish_defense(registry: &MetricsRegistry, defense: &PeerDefense, now: TimeMs) {
    let stats = defense.stats();
    registry.set_counter("defense_offenses", stats.offenses);
    registry.set_counter("defense_throttled_blocks", stats.throttled_blocks);
    registry.set_counter("defense_banned_blocks", stats.banned_blocks);
    registry.set_counter("defense_bans", stats.bans);
    registry.set_counter("defense_deprioritized", stats.deprioritized);
    registry.set_counter("defense_events", defense.events().len() as u64);
    for (peer, snapshot) in defense.snapshots(now) {
        let peer = peer.index();
        registry.set_gauge(&format!("peer{peer}_score"), snapshot.total);
        registry.set_counter(
            &format!("peer{peer}_throttled_blocks"),
            snapshot.throttled_blocks,
        );
        registry.set_counter(&format!("peer{peer}_banned_blocks"), snapshot.banned_blocks);
        registry.set_gauge(&format!("peer{peer}_banned"), snapshot.banned as u64);
    }
}

/// Publishes node-level liveness gauges: uptime, DAG size, and the
/// request backlog not yet sealed into a block.
pub fn publish_node(
    registry: &MetricsRegistry,
    uptime_ms: u64,
    dag_blocks: u64,
    pending_requests: u64,
) {
    registry.set_gauge("node_uptime_ms", uptime_ms);
    registry.set_gauge("node_dag_blocks", dag_blocks);
    registry.set_gauge("node_pending_requests", pending_requests);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishers_register_documented_fields() {
        let registry = MetricsRegistry::new();
        publish_gossip(&registry, &GossipStats::default());
        publish_waves(&registry, &WaveStats::default());
        publish_footprint(&registry, &InterpreterFootprint::default());
        publish_crypto(&registry, &CryptoMetrics::default());
        publish_recovery(&registry, &RecoveryReport::default());
        publish_store_health(&registry, false, false);
        publish_peer(&registry, 0, 0, 0, 0, 0);
        publish_node(&registry, 0, 0, 0);
        let mut defense = PeerDefense::new(dagbft_core::DefenseConfig::enabled());
        defense.note_offense(
            dagbft_crypto::ServerId::new(0),
            dagbft_core::Offense::DuplicateFlood,
            0,
        );
        publish_defense(&registry, &defense, 0);
        let names = registry.field_names();
        for expected in [
            "gossip_blocks_validated",
            "wave_width",
            "interp_unique_instances",
            "crypto_verifies",
            "recovery_replayed_blocks",
            "store_attached",
            "peer0_sent_bytes",
            "node_dag_blocks",
            "defense_offenses",
            "peer0_score",
            "peer0_banned",
        ] {
            assert!(names.contains(expected), "missing field {expected}");
        }
    }

    #[test]
    fn wave_histogram_mirrors_source() {
        let registry = MetricsRegistry::new();
        let mut histogram_source = [0; dagbft_core::WAVE_WIDTH_BUCKETS];
        histogram_source[2] = 3;
        let stats = WaveStats {
            waves: 3,
            batched_blocks: 12,
            width_histogram: histogram_source,
            ..WaveStats::default()
        };
        publish_waves(&registry, &stats);
        let histogram = registry.histogram("wave_width");
        assert_eq!(histogram.count(), 3);
        assert_eq!(histogram.sum(), 12);
        assert_eq!(histogram.buckets()[2], 3);
    }

    #[test]
    fn publishing_is_idempotent_overwrite() {
        let registry = MetricsRegistry::new();
        let mut stats = GossipStats {
            blocks_received: 5,
            ..GossipStats::default()
        };
        publish_gossip(&registry, &stats);
        publish_gossip(&registry, &stats);
        assert_eq!(registry.counter("gossip_blocks_received").get(), 5);
        stats.blocks_received = 9;
        publish_gossip(&registry, &stats);
        assert_eq!(registry.counter("gossip_blocks_received").get(), 9);
    }
}
