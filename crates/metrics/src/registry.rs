//! The lock-light metrics registry and its JSON snapshot format.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Version of the snapshot JSON schema. Bump when the *shape* of
/// [`MetricsRegistry::snapshot_json`] changes (new top-level sections,
/// histogram encoding, …) — adding or removing registered fields is not
/// a schema change, it is a field-set change gated by `docs/METRICS.md`.
pub const SCHEMA_VERSION: u64 = 1;

/// Number of log₂ buckets every [`Histogram`] carries: bucket `i` counts
/// observations in `[2^i, 2^(i+1))` (bucket 0 also takes zeros; the last
/// bucket is open-ended). 16 buckets cover values up to ≥ 32768 — wave
/// widths, burst sizes and batch sizes all fit with headroom.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// A monotonic counter handle: updates are single relaxed atomic
/// operations, safe to call from any thread.
///
/// [`Counter::set`] exists for the mirror-publish pattern: the workspace's
/// source counters (`GossipStats`, `CryptoMetrics`, …) are themselves
/// monotonic, and publishing copies their current totals.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrites the value (mirroring an external monotonic source).
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous gauge handle (resident instances, pending requests,
/// uptime, …). Same atomic cell as [`Counter`]; the distinction is
/// semantic and kept in the snapshot so readers know which fields may go
/// down.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// A fixed-bucket log₂ histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// The bucket index for `value`.
    fn bucket(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (value.ilog2() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.buckets[Self::bucket(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Overwrites the whole histogram from an external source (the
    /// mirror-publish pattern — e.g. `WaveStats::width_histogram`).
    /// `buckets` may be shorter than [`HISTOGRAM_BUCKETS`]; missing tail
    /// buckets are zeroed.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is longer than [`HISTOGRAM_BUCKETS`].
    pub fn store(&self, buckets: &[u64], count: u64, sum: u64) {
        assert!(buckets.len() <= HISTOGRAM_BUCKETS, "too many buckets");
        self.0.count.store(count, Ordering::Relaxed);
        self.0.sum.store(sum, Ordering::Relaxed);
        for (index, cell) in self.0.buckets.iter().enumerate() {
            cell.store(buckets.get(index).copied().unwrap_or(0), Ordering::Relaxed);
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Current bucket counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0; HISTOGRAM_BUCKETS];
        for (slot, cell) in out.iter_mut().zip(&self.0.buckets) {
            *slot = cell.load(Ordering::Relaxed);
        }
        out
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The registry: named metrics, deterministic JSON snapshots.
///
/// Lock discipline: the mutex guards only the name→handle maps.
/// Registration (`counter`/`gauge`/`histogram`) locks briefly; returned
/// handles update lock-free, and the `set_*` conveniences re-use the
/// registered handle, so steady-state publishing takes the lock once per
/// metric per publish — a few nanoseconds of uncontended `Mutex` plus one
/// relaxed store. [`MetricsRegistry::snapshot_json`] locks for the
/// duration of one serialization pass.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

/// Metric names must be snake_case identifiers: they are embedded
/// unescaped as JSON keys and matched literally against the
/// `docs/METRICS.md` field table.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter `name`, registering it at zero on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a snake_case identifier.
    pub fn counter(&self, name: &str) -> Counter {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut inner = self.inner.lock().expect("registry lock");
        inner.counters.entry(name.to_owned()).or_default().clone()
    }

    /// Returns the gauge `name`, registering it at zero on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a snake_case identifier.
    pub fn gauge(&self, name: &str) -> Gauge {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut inner = self.inner.lock().expect("registry lock");
        inner.gauges.entry(name.to_owned()).or_default().clone()
    }

    /// Returns the histogram `name`, registering it at zero on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a snake_case identifier.
    pub fn histogram(&self, name: &str) -> Histogram {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut inner = self.inner.lock().expect("registry lock");
        inner.histograms.entry(name.to_owned()).or_default().clone()
    }

    /// Registers (if needed) and overwrites counter `name`.
    pub fn set_counter(&self, name: &str, value: u64) {
        self.counter(name).set(value);
    }

    /// Registers (if needed) and overwrites gauge `name`.
    pub fn set_gauge(&self, name: &str, value: u64) {
        self.gauge(name).set(value);
    }

    /// Every registered metric name (counters, gauges and histograms),
    /// sorted — the exported field set `docs/METRICS.md` is verified
    /// against.
    pub fn field_names(&self) -> BTreeSet<String> {
        let inner = self.inner.lock().expect("registry lock");
        inner
            .counters
            .keys()
            .chain(inner.gauges.keys())
            .chain(inner.histograms.keys())
            .cloned()
            .collect()
    }

    /// Serializes the registry to one JSON object:
    ///
    /// ```json
    /// {"schema_version":1,
    ///  "counters":{"name":value,...},
    ///  "gauges":{"name":value,...},
    ///  "histograms":{"name":{"count":c,"sum":s,"buckets":[...]},...}}
    /// ```
    ///
    /// Keys are sorted, values are decimal `u64`s — the output is a
    /// deterministic function of the registered names and their current
    /// values, so equal registries snapshot to identical bytes (relied on
    /// by the cross-engine determinism test).
    pub fn snapshot_json(&self) -> String {
        let inner = self.inner.lock().expect("registry lock");
        let mut out = String::with_capacity(256);
        let _ = write!(out, "{{\"schema_version\":{SCHEMA_VERSION},\"counters\":{{");
        for (index, (name, counter)) in inner.counters.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{}", counter.get());
        }
        out.push_str("},\"gauges\":{");
        for (index, (name, gauge)) in inner.gauges.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{}", gauge.get());
        }
        out.push_str("},\"histograms\":{");
        for (index, (name, histogram)) in inner.histograms.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{name}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                histogram.count(),
                histogram.sum()
            );
            for (bucket, value) in histogram.buckets().iter().enumerate() {
                if bucket > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{value}");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("blocks");
        counter.inc();
        counter.add(4);
        assert_eq!(counter.get(), 5);
        // A second lookup returns the same cell.
        assert_eq!(registry.counter("blocks").get(), 5);
        registry.set_counter("blocks", 9);
        assert_eq!(counter.get(), 9);
        let gauge = registry.gauge("resident");
        gauge.set(17);
        assert_eq!(registry.gauge("resident").get(), 17);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let registry = MetricsRegistry::new();
        let histogram = registry.histogram("wave_width");
        for value in [0, 1, 2, 3, 4, 1024, u64::MAX] {
            histogram.observe(value);
        }
        let buckets = histogram.buckets();
        assert_eq!(buckets[0], 2); // 0 and 1
        assert_eq!(buckets[1], 2); // 2 and 3
        assert_eq!(buckets[2], 1); // 4
        assert_eq!(buckets[10], 1); // 1024
        assert_eq!(buckets[HISTOGRAM_BUCKETS - 1], 1); // open-ended tail
        assert_eq!(histogram.count(), 7);
    }

    #[test]
    fn histogram_store_mirrors_and_zeroes_tail() {
        let registry = MetricsRegistry::new();
        let histogram = registry.histogram("wave_width");
        histogram.observe(1 << 15); // tail bucket, must be cleared by store
        histogram.store(&[3, 1], 4, 5);
        assert_eq!(histogram.count(), 4);
        assert_eq!(histogram.sum(), 5);
        let buckets = histogram.buckets();
        assert_eq!(buckets[0], 3);
        assert_eq!(buckets[1], 1);
        assert!(buckets[2..].iter().all(|&b| b == 0));
    }

    #[test]
    fn snapshot_is_deterministic_and_sorted() {
        let build = || {
            let registry = MetricsRegistry::new();
            registry.set_counter("zeta", 1);
            registry.set_counter("alpha", 2);
            registry.set_gauge("mid", 3);
            registry.histogram("h").observe(4);
            registry.snapshot_json()
        };
        let first = build();
        assert_eq!(first, build(), "equal registries must snapshot equal");
        let alpha = first.find("\"alpha\"").unwrap();
        let zeta = first.find("\"zeta\"").unwrap();
        assert!(alpha < zeta, "counter keys must be sorted");
        assert!(first.starts_with(&format!("{{\"schema_version\":{SCHEMA_VERSION}")));
    }

    #[test]
    fn field_names_cover_all_sections() {
        let registry = MetricsRegistry::new();
        registry.counter("c");
        registry.gauge("g");
        registry.histogram("h");
        let names: Vec<String> = registry.field_names().into_iter().collect();
        assert_eq!(names, ["c", "g", "h"]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        MetricsRegistry::new().counter("not a name");
    }
}
