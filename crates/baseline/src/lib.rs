//! Direct point-to-point baseline.
//!
//! The paper (§1) contrasts block DAG systems with "traditional protocols
//! that materialize point-to-point messages as direct network messages".
//! This crate implements that traditional deployment for the *same*
//! protocols `P`, so the experiments can compare like with like:
//!
//! * every server runs one local instance of `P` per label — no
//!   simulation of other servers;
//! * every protocol message crosses the network as an individual,
//!   **individually signed and verified** message (the cost the paper's
//!   batch-signature claim, §4, eliminates);
//! * no blocks, no DAG, no interpretation — and also no batching: requests
//!   go out immediately, which is why the baseline *wins on latency* while
//!   losing on message and signature counts (experiments E5–E7, E9).
//!
//! The runner mirrors [`dagbft_sim`]'s event loop and reuses its scheduler,
//! network models, and metrics so numbers are directly comparable.
//!
//! # Examples
//!
//! ```
//! use dagbft_core::Label;
//! use dagbft_protocols::{Brb, BrbRequest};
//! use dagbft_baseline::{BaselineConfig, BaselineSimulation, DirectInjection};
//!
//! let config = BaselineConfig::new(4).with_max_time(5_000);
//! let mut sim: BaselineSimulation<Brb<u64>> = BaselineSimulation::new(config);
//! sim.inject(DirectInjection {
//!     at: 0,
//!     server: 0,
//!     label: Label::new(1),
//!     request: BrbRequest::Broadcast(42),
//! });
//! let outcome = sim.run();
//! assert_eq!(outcome.deliveries.len(), 4); // all four deliver
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod server;

pub use server::DirectServer;

use std::collections::{BTreeSet, HashMap};

use dagbft_codec::{encode_to_vec, WireDecode, WireEncode};
use dagbft_core::{DeterministicProtocol, Label, ProtocolConfig, TimeMs};
use dagbft_crypto::{KeyRegistry, ServerId};
use dagbft_sim::metrics::{Delivery, NetMetrics};
use dagbft_sim::net::NetworkModel;
use dagbft_sim::sched::EventQueue;
use rand::rngs::StdRng;
use rand::SeedableRng;

use server::OutMessage;

/// One request injection for the baseline.
#[derive(Debug, Clone)]
pub struct DirectInjection<P: DeterministicProtocol> {
    /// Injection time.
    pub at: TimeMs,
    /// Index of the receiving server.
    pub server: usize,
    /// The protocol instance label.
    pub label: Label,
    /// The request.
    pub request: P::Request,
}

/// Baseline simulation parameters.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Number of servers.
    pub n: usize,
    /// Randomness seed.
    pub seed: u64,
    /// Fault configuration for `P`.
    pub protocol: ProtocolConfig,
    /// Hard stop time.
    pub max_time: TimeMs,
    /// Early stop after this many deliveries.
    pub stop_after_deliveries: Option<usize>,
    /// The network model (shared with the DAG simulator for comparability).
    pub network: NetworkModel,
    /// Servers that never send (crash/byzantine-silent comparators).
    pub silent: BTreeSet<usize>,
}

impl BaselineConfig {
    /// Defaults mirroring [`dagbft_sim::SimConfig::new`].
    pub fn new(n: usize) -> Self {
        BaselineConfig {
            n,
            seed: 42,
            protocol: ProtocolConfig::for_n(n),
            max_time: 60_000,
            stop_after_deliveries: None,
            network: NetworkModel::default(),
            silent: BTreeSet::new(),
        }
    }

    /// Sets the randomness seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the network model.
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Sets the hard stop time.
    pub fn with_max_time(mut self, max_time: TimeMs) -> Self {
        self.max_time = max_time;
        self
    }

    /// Stops the run early after `count` deliveries.
    pub fn with_stop_after_deliveries(mut self, count: usize) -> Self {
        self.stop_after_deliveries = Some(count);
        self
    }

    /// Marks a server as silent (receives, never sends).
    pub fn with_silent(mut self, server: usize) -> Self {
        self.silent.insert(server);
        self
    }
}

/// Outcome of a baseline run; field meanings match
/// [`dagbft_sim::SimOutcome`].
#[derive(Debug)]
pub struct BaselineOutcome<P: DeterministicProtocol> {
    /// All deliveries in time order.
    pub deliveries: Vec<Delivery<P::Indication>>,
    /// Wire traffic.
    pub net: NetMetrics,
    /// Signing operations.
    pub signatures: u64,
    /// Verification operations.
    pub verifications: u64,
    /// Stop time.
    pub finished_at: TimeMs,
    /// First injection time per label.
    pub injected_at: HashMap<Label, TimeMs>,
}

impl<P: DeterministicProtocol> BaselineOutcome<P> {
    /// Delivery latencies for one label.
    pub fn latencies_for(&self, label: Label) -> Vec<TimeMs> {
        let Some(injected) = self.injected_at.get(&label) else {
            return Vec::new();
        };
        self.deliveries
            .iter()
            .filter(|d| d.label == label)
            .map(|d| d.latency_from(*injected))
            .collect()
    }
}

enum Event<P: DeterministicProtocol> {
    Inject(DirectInjection<P>),
    Deliver {
        to: usize,
        from: ServerId,
        /// Wire bytes of a signed protocol message.
        bytes: Vec<u8>,
    },
}

/// The baseline event loop: direct sends, no blocks.
pub struct BaselineSimulation<P: DeterministicProtocol>
where
    P::Message: WireEncode + WireDecode,
{
    config: BaselineConfig,
    registry: KeyRegistry,
    servers: Vec<DirectServer<P>>,
    queue: EventQueue<Event<P>>,
    rng: StdRng,
    net: NetMetrics,
    deliveries: Vec<Delivery<P::Indication>>,
    injected_at: HashMap<Label, TimeMs>,
}

impl<P: DeterministicProtocol> BaselineSimulation<P>
where
    P::Message: WireEncode + WireDecode,
{
    /// Builds the baseline: keys and one [`DirectServer`] per index.
    pub fn new(config: BaselineConfig) -> Self {
        let registry = KeyRegistry::generate(config.n, config.seed);
        let servers = (0..config.n)
            .map(|i| DirectServer::new(ServerId::new(i as u32), config.protocol, &registry))
            .collect();
        BaselineSimulation {
            rng: StdRng::seed_from_u64(config.seed.wrapping_add(1)),
            registry,
            servers,
            queue: EventQueue::new(),
            net: NetMetrics::default(),
            deliveries: Vec::new(),
            injected_at: HashMap::new(),
            config,
        }
    }

    /// Schedules a request injection.
    pub fn inject(&mut self, injection: DirectInjection<P>) {
        assert!(injection.server < self.config.n);
        self.injected_at
            .entry(injection.label)
            .or_insert(injection.at);
        self.queue.schedule(injection.at, Event::Inject(injection));
    }

    /// Schedules many injections.
    pub fn inject_all<I: IntoIterator<Item = DirectInjection<P>>>(&mut self, injections: I) {
        for injection in injections {
            self.inject(injection);
        }
    }

    /// Runs to completion and returns the outcome.
    pub fn run(mut self) -> BaselineOutcome<P> {
        self.registry.metrics().reset();
        while let Some((now, event)) = self.queue.pop() {
            if now > self.config.max_time {
                break;
            }
            match event {
                Event::Inject(injection) => {
                    let outgoing = self.servers[injection.server]
                        .on_request(injection.label, injection.request);
                    self.route(injection.server, outgoing, now);
                    self.collect(injection.server, now);
                }
                Event::Deliver { to, from, bytes } => {
                    let outgoing = self.servers[to].on_wire_message(from, &bytes);
                    self.route(to, outgoing, now);
                    self.collect(to, now);
                }
            }
            if let Some(stop) = self.config.stop_after_deliveries {
                if self.deliveries.len() >= stop {
                    break;
                }
            }
        }
        BaselineOutcome {
            deliveries: self.deliveries,
            net: self.net,
            signatures: self.registry.metrics().signs(),
            verifications: self.registry.metrics().verifies(),
            finished_at: self.queue.now(),
            injected_at: self.injected_at,
        }
    }

    fn route(&mut self, origin: usize, outgoing: Vec<OutMessage>, now: TimeMs) {
        if self.config.silent.contains(&origin) {
            return;
        }
        for message in outgoing {
            let to = message.to.index();
            let bytes = encode_to_vec(&message.signed);
            self.net.record_send(bytes.len(), false, false);
            if to == origin {
                // Self-delivery: loopback without the network.
                self.net.record_outcome(false);
                self.queue.schedule(
                    now,
                    Event::Deliver {
                        to,
                        from: ServerId::new(origin as u32),
                        bytes,
                    },
                );
                continue;
            }
            let dropped = self.config.network.drops(&mut self.rng, origin, to, now);
            self.net.record_outcome(dropped);
            if dropped {
                continue;
            }
            let delay = self.config.network.delay(&mut self.rng);
            self.queue.schedule(
                now + delay,
                Event::Deliver {
                    to,
                    from: ServerId::new(origin as u32),
                    bytes,
                },
            );
        }
    }

    fn collect(&mut self, server: usize, now: TimeMs) {
        for (label, indication) in self.servers[server].poll_indications() {
            self.deliveries.push(Delivery {
                at: now,
                server: ServerId::new(server as u32),
                label,
                indication,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagbft_protocols::{Brb, BrbIndication, BrbRequest, Smr, SmrIndication, SmrRequest};

    #[test]
    fn brb_all_deliver_directly() {
        let config = BaselineConfig::new(4)
            .with_max_time(5_000)
            .with_stop_after_deliveries(4);
        let mut sim: BaselineSimulation<Brb<u64>> = BaselineSimulation::new(config);
        sim.inject(DirectInjection {
            at: 0,
            server: 0,
            label: Label::new(1),
            request: BrbRequest::Broadcast(42),
        });
        let outcome = sim.run();
        assert_eq!(outcome.deliveries.len(), 4);
        assert!(outcome
            .deliveries
            .iter()
            .all(|d| d.indication == BrbIndication::Deliver(42)));
    }

    #[test]
    fn every_message_is_signed_and_verified() {
        let config = BaselineConfig::new(4)
            .with_max_time(5_000)
            .with_stop_after_deliveries(4);
        let mut sim: BaselineSimulation<Brb<u64>> = BaselineSimulation::new(config);
        sim.inject(DirectInjection {
            at: 0,
            server: 0,
            label: Label::new(1),
            request: BrbRequest::Broadcast(7),
        });
        let outcome = sim.run();
        // One signature per sent message: the cost batching removes.
        assert_eq!(outcome.signatures, outcome.net.messages_sent);
        assert!(outcome.verifications > 0);
    }

    #[test]
    fn brb_tolerates_f_silent() {
        let config = BaselineConfig::new(4)
            .with_max_time(10_000)
            .with_silent(3)
            .with_stop_after_deliveries(3);
        let mut sim: BaselineSimulation<Brb<u64>> = BaselineSimulation::new(config);
        sim.inject(DirectInjection {
            at: 0,
            server: 0,
            label: Label::new(1),
            request: BrbRequest::Broadcast(5),
        });
        let outcome = sim.run();
        let correct: Vec<_> = outcome
            .deliveries
            .iter()
            .filter(|d| d.server.index() != 3)
            .collect();
        assert_eq!(correct.len(), 3);
    }

    #[test]
    fn smr_commits_directly() {
        let config = BaselineConfig::new(4)
            .with_max_time(5_000)
            .with_stop_after_deliveries(4);
        let mut sim: BaselineSimulation<Smr<u64>> = BaselineSimulation::new(config);
        sim.inject(DirectInjection {
            at: 0,
            server: 1, // forwards to leader 0 (label 0)
            label: Label::new(0),
            request: SmrRequest::Propose(33),
        });
        let outcome = sim.run();
        assert_eq!(outcome.deliveries.len(), 4);
        assert!(outcome
            .deliveries
            .iter()
            .all(|d| d.indication == SmrIndication::Committed(0, 33)));
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let config = BaselineConfig::new(4)
                .with_max_time(5_000)
                .with_stop_after_deliveries(4);
            let mut sim: BaselineSimulation<Brb<u64>> = BaselineSimulation::new(config);
            sim.inject(DirectInjection {
                at: 0,
                server: 0,
                label: Label::new(1),
                request: BrbRequest::Broadcast(1),
            });
            let outcome = sim.run();
            (
                outcome.net.messages_sent,
                outcome.net.bytes_sent,
                outcome.finished_at,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn latency_is_constant_network_bound() {
        // With constant latency L and immediate processing, BRB needs two
        // network hops after the initial echo: deliveries land well under
        // 4 * L.
        let config = BaselineConfig::new(4)
            .with_network(NetworkModel::reliable_constant(10))
            .with_max_time(5_000)
            .with_stop_after_deliveries(4);
        let mut sim: BaselineSimulation<Brb<u64>> = BaselineSimulation::new(config);
        sim.inject(DirectInjection {
            at: 0,
            server: 0,
            label: Label::new(1),
            request: BrbRequest::Broadcast(9),
        });
        let outcome = sim.run();
        for latency in outcome.latencies_for(Label::new(1)) {
            assert!(latency <= 40, "latency {latency}");
        }
    }
}
