//! One server of the traditional deployment.

use std::collections::BTreeMap;

use dagbft_codec::{decode_from_slice, encode_to_vec, DecodeError, Reader, WireDecode, WireEncode};
use dagbft_core::{DeterministicProtocol, Label, Outbox, ProtocolConfig};
use dagbft_crypto::{KeyRegistry, ServerId, Signature, Signer, Verifier};

/// A protocol message as it crosses the wire in the direct deployment:
/// labeled, sender-attributed, and individually signed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedMessage {
    /// The protocol instance.
    pub label: Label,
    /// The claimed sender (bound by the signature).
    pub sender: ServerId,
    /// The receiver (bound by the signature to prevent redirection).
    pub receiver: ServerId,
    /// Encoded `P::Message`.
    pub payload: Vec<u8>,
    /// Signature over `(label, sender, receiver, payload)`.
    pub signature: Signature,
}

impl SignedMessage {
    fn signing_bytes(
        label: Label,
        sender: ServerId,
        receiver: ServerId,
        payload: &[u8],
    ) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(payload.len() + 24);
        label.encode(&mut bytes);
        sender.encode(&mut bytes);
        receiver.encode(&mut bytes);
        bytes.extend_from_slice(payload);
        bytes
    }
}

impl WireEncode for SignedMessage {
    fn encode(&self, out: &mut Vec<u8>) {
        self.label.encode(out);
        self.sender.encode(out);
        self.receiver.encode(out);
        self.payload.encode(out);
        self.signature.encode(out);
    }
}

impl WireDecode for SignedMessage {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SignedMessage {
            label: Label::decode(reader)?,
            sender: ServerId::decode(reader)?,
            receiver: ServerId::decode(reader)?,
            payload: Vec::<u8>::decode(reader)?,
            signature: Signature::decode(reader)?,
        })
    }
}

/// An outgoing signed message with its routing destination.
#[derive(Debug, Clone)]
pub struct OutMessage {
    /// Destination server.
    pub to: ServerId,
    /// The signed wire message.
    pub signed: SignedMessage,
}

/// A server of the direct point-to-point deployment: one local instance of
/// `P` per label, every message individually signed/verified.
///
/// # Examples
///
/// ```
/// use dagbft_core::{Label, ProtocolConfig};
/// use dagbft_crypto::{KeyRegistry, ServerId};
/// use dagbft_baseline::DirectServer;
/// use dagbft_protocols::{Brb, BrbRequest};
///
/// let registry = KeyRegistry::generate(4, 1);
/// let mut server: DirectServer<Brb<u64>> =
///     DirectServer::new(ServerId::new(0), ProtocolConfig::for_n(4), &registry);
/// let outgoing = server.on_request(Label::new(1), BrbRequest::Broadcast(5));
/// assert_eq!(outgoing.len(), 4); // ECHO to everyone, individually signed
/// ```
#[derive(Debug)]
pub struct DirectServer<P: DeterministicProtocol> {
    me: ServerId,
    config: ProtocolConfig,
    signer: Signer,
    verifier: Verifier,
    instances: BTreeMap<Label, P>,
    delivered: Vec<(Label, P::Indication)>,
    /// Messages rejected for bad signatures or malformed payloads.
    rejected: u64,
}

impl<P: DeterministicProtocol> DirectServer<P>
where
    P::Message: WireEncode + WireDecode,
{
    /// Creates the server.
    ///
    /// # Panics
    ///
    /// Panics if `me` has no key in the registry.
    pub fn new(me: ServerId, config: ProtocolConfig, registry: &KeyRegistry) -> Self {
        DirectServer {
            me,
            config,
            signer: registry.signer(me).expect("key for server"),
            verifier: registry.verifier(),
            instances: BTreeMap::new(),
            delivered: Vec::new(),
            rejected: 0,
        }
    }

    /// The server identity.
    pub fn me(&self) -> ServerId {
        self.me
    }

    /// Messages rejected so far (bad signature / malformed payload).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Handles `request(label, request)` from the user, returning the
    /// triggered signed messages.
    pub fn on_request(&mut self, label: Label, request: P::Request) -> Vec<OutMessage> {
        let config = self.config;
        let me = self.me;
        let instance = self
            .instances
            .entry(label)
            .or_insert_with(|| P::new(&config, label, me));
        let mut outbox = Outbox::new();
        instance.on_request(request, &mut outbox);
        let out = self.sign_all(label, outbox);
        self.drain(label);
        out
    }

    /// Handles a wire message: verifies the signature, decodes the payload,
    /// feeds the instance, and returns triggered signed messages.
    ///
    /// Messages failing verification or decoding are counted and dropped —
    /// `P` never observes them (authenticity, Lemma 4.3 (3) analogue).
    pub fn on_wire_message(&mut self, from: ServerId, bytes: &[u8]) -> Vec<OutMessage> {
        let Ok(signed) = decode_from_slice::<SignedMessage>(bytes) else {
            self.rejected += 1;
            return Vec::new();
        };
        // The transport-level sender must match the claimed sender, the
        // receiver must be us, and the signature must bind it all.
        if signed.sender != from || signed.receiver != self.me {
            self.rejected += 1;
            return Vec::new();
        }
        let signing_bytes = SignedMessage::signing_bytes(
            signed.label,
            signed.sender,
            signed.receiver,
            &signed.payload,
        );
        if !self
            .verifier
            .verify(signed.sender, &signing_bytes, &signed.signature)
        {
            self.rejected += 1;
            return Vec::new();
        }
        let Ok(message) = decode_from_slice::<P::Message>(&signed.payload) else {
            self.rejected += 1;
            return Vec::new();
        };
        let config = self.config;
        let me = self.me;
        let instance = self
            .instances
            .entry(signed.label)
            .or_insert_with(|| P::new(&config, signed.label, me));
        let mut outbox = Outbox::new();
        instance.on_message(signed.sender, message, &mut outbox);
        let out = self.sign_all(signed.label, outbox);
        self.drain(signed.label);
        out
    }

    /// Returns indications raised since the last poll.
    pub fn poll_indications(&mut self) -> Vec<(Label, P::Indication)> {
        std::mem::take(&mut self.delivered)
    }

    fn sign_all(&mut self, label: Label, outbox: Outbox<P::Message>) -> Vec<OutMessage> {
        outbox
            .into_messages()
            .into_iter()
            .map(|(to, message)| {
                let payload = encode_to_vec(&message);
                let signing_bytes = SignedMessage::signing_bytes(label, self.me, to, &payload);
                let signature = self.signer.sign(&signing_bytes);
                OutMessage {
                    to,
                    signed: SignedMessage {
                        label,
                        sender: self.me,
                        receiver: to,
                        payload,
                        signature,
                    },
                }
            })
            .collect()
    }

    fn drain(&mut self, label: Label) {
        if let Some(instance) = self.instances.get_mut(&label) {
            for indication in instance.drain_indications() {
                self.delivered.push((label, indication));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagbft_protocols::{Brb, BrbMessage, BrbRequest};

    fn setup() -> (KeyRegistry, DirectServer<Brb<u64>>, DirectServer<Brb<u64>>) {
        let registry = KeyRegistry::generate(4, 2);
        let a = DirectServer::new(ServerId::new(0), ProtocolConfig::for_n(4), &registry);
        let b = DirectServer::new(ServerId::new(1), ProtocolConfig::for_n(4), &registry);
        (registry, a, b)
    }

    #[test]
    fn request_produces_signed_echoes() {
        let (_, mut alice, mut bob) = setup();
        let outgoing = alice.on_request(Label::new(1), BrbRequest::Broadcast(5));
        assert_eq!(outgoing.len(), 4);
        // Bob accepts the one addressed to him.
        let to_bob = outgoing.iter().find(|m| m.to == ServerId::new(1)).unwrap();
        let bytes = encode_to_vec(&to_bob.signed);
        let followups = bob.on_wire_message(ServerId::new(0), &bytes);
        // Bob's first ECHO triggers his own echo broadcast.
        assert_eq!(followups.len(), 4);
        assert_eq!(bob.rejected(), 0);
    }

    #[test]
    fn tampered_payload_rejected() {
        let (_, mut alice, mut bob) = setup();
        let outgoing = alice.on_request(Label::new(1), BrbRequest::Broadcast(5));
        let to_bob = outgoing.iter().find(|m| m.to == ServerId::new(1)).unwrap();
        let mut signed = to_bob.signed.clone();
        signed.payload = encode_to_vec(&BrbMessage::Echo(999u64));
        let bytes = encode_to_vec(&signed);
        let followups = bob.on_wire_message(ServerId::new(0), &bytes);
        assert!(followups.is_empty());
        assert_eq!(bob.rejected(), 1);
    }

    #[test]
    fn redirected_message_rejected() {
        // A message signed for receiver s2 replayed to s1 must fail.
        let (_, mut alice, mut bob) = setup();
        let outgoing = alice.on_request(Label::new(1), BrbRequest::Broadcast(5));
        let to_carol = outgoing.iter().find(|m| m.to == ServerId::new(2)).unwrap();
        let bytes = encode_to_vec(&to_carol.signed);
        let followups = bob.on_wire_message(ServerId::new(0), &bytes);
        assert!(followups.is_empty());
        assert_eq!(bob.rejected(), 1);
    }

    #[test]
    fn spoofed_sender_rejected() {
        let (_, mut alice, mut bob) = setup();
        let outgoing = alice.on_request(Label::new(1), BrbRequest::Broadcast(5));
        let to_bob = outgoing.iter().find(|m| m.to == ServerId::new(1)).unwrap();
        let bytes = encode_to_vec(&to_bob.signed);
        // Transport says it came from s2, but it is signed by s0.
        let followups = bob.on_wire_message(ServerId::new(2), &bytes);
        assert!(followups.is_empty());
        assert_eq!(bob.rejected(), 1);
    }

    #[test]
    fn garbage_bytes_rejected() {
        let (_, _, mut bob) = setup();
        let followups = bob.on_wire_message(ServerId::new(0), &[1, 2, 3]);
        assert!(followups.is_empty());
        assert_eq!(bob.rejected(), 1);
    }
}
