//! Storage media behind the journal: real files, in-memory buffers, and a
//! fault-injecting wrapper.
//!
//! [`crate::JournalStore`] is generic over [`Media`] so one journal engine
//! serves three purposes: [`FileMedia`] persists to disk, [`MemMedia`]
//! backs fast tests and pure parsing matrices, and [`FaultyMedia`]
//! simulates crashes mid-write (short writes at an exact byte budget) and
//! media corruption (bit flips) to drive the recovery matrix.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use dagbft_core::StoreError;

/// Maps an I/O failure to the typed store error.
pub(crate) fn io_err(err: std::io::Error) -> StoreError {
    StoreError::Io(err.to_string())
}

/// The byte-level storage a [`crate::JournalStore`] writes to: an
/// append-only journal stream plus a tiny fixed-size tip sidecar
/// (rewritten slot-wise, see the crate docs for the format).
pub trait Media: fmt::Debug + Send {
    /// Reads the whole journal back.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on read failure.
    fn journal_bytes(&self) -> Result<Vec<u8>, StoreError>;

    /// Appends bytes to the journal.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write failure.
    fn append_journal(&mut self, bytes: &[u8]) -> Result<(), StoreError>;

    /// Truncates the journal to `len` bytes — used once at open to cut a
    /// torn tail so subsequent appends continue from the valid prefix.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on failure.
    fn truncate_journal(&mut self, len: u64) -> Result<(), StoreError>;

    /// Makes journal appends durable.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on sync failure.
    fn sync_journal(&mut self) -> Result<(), StoreError>;

    /// Reads the tip sidecar (may be shorter than the full sidecar size if
    /// never written).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on read failure.
    fn tip_bytes(&self) -> Result<Vec<u8>, StoreError>;

    /// Durably writes `bytes` at `offset` within the tip sidecar (one
    /// slot; the writer alternates slots so a torn slot write never
    /// destroys the previous marker).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write or sync failure.
    fn write_tip(&mut self, offset: u64, bytes: &[u8]) -> Result<(), StoreError>;
}

/// On-disk media: a directory holding `journal.log` and `tip.bin`.
#[derive(Debug)]
pub struct FileMedia {
    journal_path: PathBuf,
    tip_path: PathBuf,
    journal: File,
    tip: File,
}

impl FileMedia {
    /// Opens (creating if needed) the media files under `dir`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir).map_err(io_err)?;
        let journal_path = dir.join("journal.log");
        let tip_path = dir.join("tip.bin");
        let journal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&journal_path)
            .map_err(io_err)?;
        let tip = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&tip_path)
            .map_err(io_err)?;
        Ok(FileMedia {
            journal_path,
            tip_path,
            journal,
            tip,
        })
    }
}

impl Media for FileMedia {
    fn journal_bytes(&self) -> Result<Vec<u8>, StoreError> {
        fs::read(&self.journal_path).map_err(io_err)
    }

    fn append_journal(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.journal.seek(SeekFrom::End(0)).map_err(io_err)?;
        self.journal.write_all(bytes).map_err(io_err)
    }

    fn truncate_journal(&mut self, len: u64) -> Result<(), StoreError> {
        self.journal.set_len(len).map_err(io_err)
    }

    fn sync_journal(&mut self) -> Result<(), StoreError> {
        self.journal.sync_data().map_err(io_err)
    }

    fn tip_bytes(&self) -> Result<Vec<u8>, StoreError> {
        fs::read(&self.tip_path).map_err(io_err)
    }

    fn write_tip(&mut self, offset: u64, bytes: &[u8]) -> Result<(), StoreError> {
        self.tip.seek(SeekFrom::Start(offset)).map_err(io_err)?;
        self.tip.write_all(bytes).map_err(io_err)?;
        self.tip.sync_data().map_err(io_err)
    }
}

/// In-memory media: infallible, used by tests and the parse matrices.
#[derive(Debug, Default, Clone)]
pub struct MemMedia {
    journal: Vec<u8>,
    tip: Vec<u8>,
}

impl MemMedia {
    /// Fresh, empty media.
    pub fn new() -> Self {
        MemMedia::default()
    }

    /// Media whose journal already holds `bytes` (e.g. a corrupted or
    /// truncated image produced by a test).
    pub fn from_journal(bytes: Vec<u8>) -> Self {
        MemMedia {
            journal: bytes,
            tip: Vec::new(),
        }
    }

    /// The raw journal bytes.
    pub fn journal(&self) -> &[u8] {
        &self.journal
    }

    /// The raw tip sidecar bytes.
    pub fn tip(&self) -> &[u8] {
        &self.tip
    }
}

impl Media for MemMedia {
    fn journal_bytes(&self) -> Result<Vec<u8>, StoreError> {
        Ok(self.journal.clone())
    }

    fn append_journal(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.journal.extend_from_slice(bytes);
        Ok(())
    }

    fn truncate_journal(&mut self, len: u64) -> Result<(), StoreError> {
        self.journal.truncate(len as usize);
        Ok(())
    }

    fn sync_journal(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn tip_bytes(&self) -> Result<Vec<u8>, StoreError> {
        Ok(self.tip.clone())
    }

    fn write_tip(&mut self, offset: u64, bytes: &[u8]) -> Result<(), StoreError> {
        let end = offset as usize + bytes.len();
        if self.tip.len() < end {
            self.tip.resize(end, 0);
        }
        self.tip[offset as usize..end].copy_from_slice(bytes);
        Ok(())
    }
}

/// Fault-injecting media: wraps [`MemMedia`] and simulates a crash at an
/// exact journal byte budget — the write that crosses the budget is torn
/// (its prefix lands, the rest is lost), and every later journal write is
/// lost entirely, exactly like a process dying mid-`write(2)`. Bit flips
/// model at-rest corruption.
///
/// A test "restarts the node" by taking [`FaultyMedia::into_surviving`]
/// and re-opening a [`crate::JournalStore`] over it.
#[derive(Debug)]
pub struct FaultyMedia {
    inner: MemMedia,
    /// Journal bytes still allowed to land; `None` = no crash scheduled.
    budget: Option<usize>,
}

impl FaultyMedia {
    /// Wraps `inner` with no fault scheduled.
    pub fn new(inner: MemMedia) -> Self {
        FaultyMedia {
            inner,
            budget: None,
        }
    }

    /// Schedules a crash after exactly `bytes` more journal bytes land.
    pub fn crash_after(mut self, bytes: usize) -> Self {
        self.budget = Some(bytes);
        self
    }

    /// Whether the scheduled crash point has been reached.
    pub fn crashed(&self) -> bool {
        self.budget == Some(0)
    }

    /// Flips one bit of the stored journal (at-rest corruption).
    ///
    /// # Panics
    ///
    /// Panics if `byte` is out of range (test harness misuse).
    pub fn flip_journal_bit(&mut self, byte: usize, bit: u8) {
        self.inner.journal[byte] ^= 1 << (bit & 7);
    }

    /// The bytes that survived the crash — what a restart reads back.
    pub fn into_surviving(self) -> MemMedia {
        self.inner
    }
}

impl Media for FaultyMedia {
    fn journal_bytes(&self) -> Result<Vec<u8>, StoreError> {
        self.inner.journal_bytes()
    }

    fn append_journal(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        match &mut self.budget {
            None => self.inner.append_journal(bytes),
            Some(budget) => {
                let landed = bytes.len().min(*budget);
                *budget -= landed;
                // The caller believes the write succeeded — the crash is
                // only observed at restart, like a real torn write.
                self.inner.append_journal(&bytes[..landed])
            }
        }
    }

    fn truncate_journal(&mut self, len: u64) -> Result<(), StoreError> {
        self.inner.truncate_journal(len)
    }

    fn sync_journal(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn tip_bytes(&self) -> Result<Vec<u8>, StoreError> {
        self.inner.tip_bytes()
    }

    fn write_tip(&mut self, offset: u64, bytes: &[u8]) -> Result<(), StoreError> {
        if self.crashed() {
            // Post-crash tip writes are lost with the process.
            return Ok(());
        }
        self.inner.write_tip(offset, bytes)
    }
}
