//! Durable, log-structured block journal for the DAG-BFT workspace.
//!
//! The paper's §7 observes that the block DAG *is* the log: because
//! interpretation is a pure function of the DAG (Lemma 4.2), a server
//! that persists every admitted block can recover its entire protocol
//! state by replay. This crate supplies the on-disk half of that story —
//! [`JournalStore`] implements [`dagbft_core::BlockStore`] by appending
//! each admitted block's cached canonical wire bytes verbatim as
//! checksummed, length-prefixed records, and re-verifies everything
//! (strict decode plus `ref(B)` recheck) when the journal is re-opened.
//!
//! Robustness guarantees, enforced by the fault matrices in
//! `tests/journal_faults.rs`:
//!
//! * a crash mid-append (torn tail) truncates *exactly* the incomplete
//!   record — the surviving prefix is byte-identical to what was synced;
//! * every other corruption (bit flips, wrong magic, bad framing) maps to
//!   a typed [`StoreError`](dagbft_core::StoreError) — never a panic;
//! * the own-tip sidecar survives torn writes by slot alternation, so the
//!   §7 equivocation guard (never rebuild a sequence number that was
//!   already broadcast) holds even when the journal tail is lost.
//!
//! Periodic interpreter snapshots (kind-3 records) bound recovery work:
//! replay touches only the suffix of blocks past the latest snapshot's
//! coverage.
//!
//! The [`Media`] abstraction separates the journal logic from its
//! storage: [`FileMedia`] persists to a directory, [`MemMedia`] backs
//! tests, and [`FaultyMedia`] injects short writes at exact byte budgets
//! and at-rest bit flips.

mod journal;
mod media;

pub use journal::{
    encode_record, parse, JournalStore, ParsedJournal, KIND_BLOCK, KIND_REQUEST, KIND_SNAPSHOT,
    MAGIC,
};
pub use media::{FaultyMedia, FileMedia, Media, MemMedia};

/// On-disk journal store (directory-backed).
pub type FileStore = JournalStore<FileMedia>;
/// In-memory journal store (same format, no filesystem).
pub type MemStore = JournalStore<MemMedia>;

#[cfg(test)]
mod tests {
    use super::*;
    use dagbft_core::{Block, BlockStore, Label, LabeledRequest, SeqNum, StoreError};
    use dagbft_crypto::{KeyRegistry, ServerId};

    fn registry() -> KeyRegistry {
        KeyRegistry::generate(1, 77)
    }

    fn block(registry: &KeyRegistry, seq: u64) -> Block {
        let signer = registry.signer(ServerId::new(0)).unwrap();
        Block::build(ServerId::new(0), SeqNum::new(seq), vec![], vec![], &signer)
    }

    #[test]
    fn roundtrip_through_memory_journal() {
        let registry = registry();
        let mut store = MemStore::in_memory();
        let b0 = block(&registry, 0);
        store.append_block(&b0).unwrap();
        store
            .append_request(&LabeledRequest::encode(Label::new(9), &42u64))
            .unwrap();
        store.append_snapshot(1, &[7, 7, 7]).unwrap();
        store.mark_own_tip(SeqNum::ZERO).unwrap();
        store.sync().unwrap();

        let contents = store.contents().unwrap();
        assert_eq!(contents.blocks, vec![b0.clone()]);
        assert_eq!(contents.requests.len(), 1);
        assert_eq!(contents.snapshot, Some((1, vec![7, 7, 7])));
        assert_eq!(contents.own_tip, Some(SeqNum::ZERO));
        assert_eq!(contents.truncated_records, 0);

        // Reopening over the same bytes reads back the same history.
        let reopened = JournalStore::open(store.into_media()).unwrap();
        let contents = reopened.contents().unwrap();
        assert_eq!(contents.blocks, vec![b0]);
        assert_eq!(contents.own_tip, Some(SeqNum::ZERO));
    }

    #[test]
    fn roundtrip_through_files() {
        let dir = std::env::temp_dir().join(format!("dagbft-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let registry = registry();
        let b0 = block(&registry, 0);
        {
            let mut store = FileStore::open_dir(&dir).unwrap();
            store.append_block(&b0).unwrap();
            store.mark_own_tip(SeqNum::ZERO).unwrap();
            store.sync().unwrap();
        }
        let store = FileStore::open_dir(&dir).unwrap();
        let contents = store.contents().unwrap();
        assert_eq!(contents.blocks, vec![b0]);
        assert_eq!(contents.own_tip, Some(SeqNum::ZERO));
        assert_eq!(contents.truncated_records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tip_survives_and_stays_monotonic() {
        let mut store = MemStore::in_memory();
        store.mark_own_tip(SeqNum::new(2)).unwrap();
        store.mark_own_tip(SeqNum::new(5)).unwrap();
        store.mark_own_tip(SeqNum::new(3)).unwrap();
        assert_eq!(store.contents().unwrap().own_tip, Some(SeqNum::new(5)));

        let reopened = JournalStore::open(store.into_media()).unwrap();
        assert_eq!(reopened.contents().unwrap().own_tip, Some(SeqNum::new(5)));
    }

    #[test]
    fn torn_tail_is_truncated_exactly() {
        let registry = registry();
        let mut store = MemStore::in_memory();
        store.append_block(&block(&registry, 0)).unwrap();
        let clean_len = store.media().journal().len();
        store.append_block(&block(&registry, 1)).unwrap();

        // Crash lost the tail of the second record.
        let mut bytes = store.into_media().journal_bytes().unwrap();
        bytes.truncate(clean_len + 9);
        let reopened = JournalStore::open(MemMedia::from_journal(bytes)).unwrap();
        assert_eq!(reopened.truncated_at_open(), 1);
        let contents = reopened.contents().unwrap();
        assert_eq!(contents.blocks.len(), 1);
        assert_eq!(contents.truncated_records, 1);
        // The surviving prefix is byte-identical to the synced image.
        assert_eq!(reopened.media().journal().len(), clean_len);
    }

    #[test]
    fn wrong_magic_is_typed() {
        let err = JournalStore::open(MemMedia::from_journal(b"NOTAJRNL".to_vec())).unwrap_err();
        assert_eq!(err, StoreError::BadMagic);
    }

    #[test]
    fn snapshot_covering_future_is_typed() {
        let mut store = MemStore::in_memory();
        store.append_snapshot(3, &[]).unwrap();
        let err = store.contents().unwrap_err();
        assert_eq!(
            err,
            StoreError::SnapshotCoversFuture {
                covered: 3,
                blocks: 0
            }
        );
    }
}
