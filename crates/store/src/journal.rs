//! The log-structured journal: record framing, strict re-verifying
//! parser, and the [`JournalStore`] that implements
//! [`dagbft_core::BlockStore`] over any [`Media`].
//!
//! # Journal format
//!
//! ```text
//! journal.log := MAGIC record*
//! MAGIC       := "DAGBFTJ1"                              (8 bytes)
//! record      := len:u32le kind:u8 payload:[u8; len] checksum:[u8; 8]
//! checksum    := sha256(kind ‖ len:u32le ‖ payload)[..8]
//! ```
//!
//! Record kinds:
//!
//! * `1` (block): `ref(B):[u8; 32]` followed by the block's canonical
//!   wire bytes verbatim — the exact bytes that were admitted. The parser
//!   strictly decodes the wire image and recomputes `ref(B)`; any
//!   mismatch is [`StoreError::RefMismatch`].
//! * `2` (request): the wire encoding of a [`LabeledRequest`] (the
//!   request WAL).
//! * `3` (snapshot): `covered:u64le` followed by an opaque interpreter
//!   snapshot payload. Only the latest snapshot is kept.
//!
//! # Torn tails vs corruption
//!
//! A crash mid-append leaves a record whose framing extends past
//! end-of-file. That — and only that — is treated as a *torn tail*:
//! [`parse`] drops it (at most one record), and [`JournalStore::open`]
//! physically truncates it so appends resume from the valid prefix. A
//! record whose framing is size-complete but whose bytes are wrong is
//! *corruption* and maps to a typed [`StoreError`] — never a panic,
//! never a silently-altered block.
//!
//! # Own-tip sidecar
//!
//! `tip.bin` holds two 16-byte slots, each `seq:u64le` followed by
//! `sha256("DAGBFTT1" ‖ seq)[..8]`. The writer alternates slots so a torn
//! slot write can never destroy the previous marker; the reader takes the
//! highest valid slot. This is the §7 equivocation guard's durable
//! high-water mark, written *after* the journal sync that makes the
//! corresponding own block durable.

use std::path::Path;

use dagbft_codec::decode_from_slice;
use dagbft_core::{Block, BlockStore, LabeledRequest, SeqNum, StoreContents, StoreError};
use dagbft_crypto::sha256;

use crate::media::{FileMedia, Media, MemMedia};

/// Journal file magic: format name + version.
pub const MAGIC: [u8; 8] = *b"DAGBFTJ1";

/// Record kind: an admitted block (`ref(B)` + wire bytes).
pub const KIND_BLOCK: u8 = 1;
/// Record kind: a buffered user request.
pub const KIND_REQUEST: u8 = 2;
/// Record kind: an interpreter snapshot.
pub const KIND_SNAPSHOT: u8 = 3;

/// Bytes of record framing before the payload (`len:u32le kind:u8`).
const HEADER_LEN: usize = 5;
/// Bytes of checksum after the payload.
const CHECKSUM_LEN: usize = 8;

/// Domain prefix for tip-slot checksums (distinct from record checksums).
const TIP_DOMAIN: &[u8; 8] = b"DAGBFTT1";
/// Bytes per tip slot (`seq:u64le` + 8-byte checksum).
const TIP_SLOT_LEN: usize = 16;

/// Truncated sha256 over the checksummed span of one record.
fn record_checksum(kind: u8, payload: &[u8]) -> [u8; 8] {
    let mut preimage = Vec::with_capacity(HEADER_LEN + payload.len());
    preimage.push(kind);
    preimage.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    preimage.extend_from_slice(payload);
    let digest = sha256(&preimage);
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&digest.as_bytes()[..8]);
    sum
}

/// Frames one record (`len kind payload checksum`) ready to append.
pub fn encode_record(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(payload);
    out.extend_from_slice(&record_checksum(kind, payload));
    out
}

/// What [`parse`] recovered from a journal image.
#[derive(Debug, Default)]
pub struct ParsedJournal {
    /// Admitted blocks, in journal (= admission) order.
    pub blocks: Vec<Block>,
    /// Buffered requests, in arrival order.
    pub requests: Vec<LabeledRequest>,
    /// The latest snapshot record, as `(covered, payload)`.
    pub snapshot: Option<(u64, Vec<u8>)>,
    /// Records dropped as an incomplete tail (0 or 1).
    pub truncated_records: usize,
    /// Length in bytes of the valid prefix — everything past it is the
    /// torn tail the store physically truncates.
    pub valid_len: usize,
}

/// Strictly parses a journal image.
///
/// Pure function of the bytes — the fault-injection matrices call it
/// directly over every possible truncation and bit flip. Guarantees:
/// never panics; a record extending past end-of-input is dropped as a
/// torn tail (`truncated_records = 1`, `valid_len` marks the cut); every
/// other malformation is a typed [`StoreError`].
///
/// # Errors
///
/// [`StoreError::BadMagic`] if 8+ bytes are present but are not the
/// journal magic; [`StoreError::ChecksumMismatch`],
/// [`StoreError::Decode`], [`StoreError::RefMismatch`],
/// [`StoreError::UnknownKind`], or [`StoreError::SnapshotCoversFuture`]
/// for size-complete records whose contents are wrong.
pub fn parse(bytes: &[u8]) -> Result<ParsedJournal, StoreError> {
    let mut parsed = ParsedJournal::default();
    if bytes.is_empty() {
        return Ok(parsed);
    }
    if bytes.len() < MAGIC.len() {
        // A crash during the very first write tore the magic itself.
        parsed.truncated_records = 1;
        return Ok(parsed);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(StoreError::BadMagic);
    }

    let mut offset = MAGIC.len();
    parsed.valid_len = offset;
    let mut record = 0usize;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if rest.len() < HEADER_LEN {
            parsed.truncated_records = 1;
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4-byte slice")) as usize;
        let kind = rest[4];
        let Some(total) = len
            .checked_add(HEADER_LEN + CHECKSUM_LEN)
            .filter(|total| *total <= rest.len())
        else {
            // Framing runs past end-of-file: the torn tail. (A bit flip
            // that enlarged `len` is indistinguishable from a torn write
            // by construction; both resolve to a clean prefix.)
            parsed.truncated_records = 1;
            break;
        };
        let payload = &rest[HEADER_LEN..HEADER_LEN + len];
        let stored: [u8; 8] = rest[total - CHECKSUM_LEN..total]
            .try_into()
            .expect("8-byte slice");
        if record_checksum(kind, payload) != stored {
            return Err(StoreError::ChecksumMismatch { record });
        }
        match kind {
            KIND_BLOCK => {
                if payload.len() < 32 {
                    return Err(StoreError::Decode {
                        record,
                        error: "block record shorter than its ref prefix".into(),
                    });
                }
                let block: Block =
                    decode_from_slice(&payload[32..]).map_err(|err| StoreError::Decode {
                        record,
                        error: err.to_string(),
                    })?;
                if block.block_ref().as_bytes()[..] != payload[..32] {
                    return Err(StoreError::RefMismatch { record });
                }
                parsed.blocks.push(block);
            }
            KIND_REQUEST => {
                let request: LabeledRequest =
                    decode_from_slice(payload).map_err(|err| StoreError::Decode {
                        record,
                        error: err.to_string(),
                    })?;
                parsed.requests.push(request);
            }
            KIND_SNAPSHOT => {
                if payload.len() < 8 {
                    return Err(StoreError::Decode {
                        record,
                        error: "snapshot record shorter than its coverage prefix".into(),
                    });
                }
                let covered = u64::from_le_bytes(payload[..8].try_into().expect("8-byte slice"));
                if covered > parsed.blocks.len() as u64 {
                    return Err(StoreError::SnapshotCoversFuture {
                        covered,
                        blocks: parsed.blocks.len() as u64,
                    });
                }
                parsed.snapshot = Some((covered, payload[8..].to_vec()));
            }
            other => {
                return Err(StoreError::UnknownKind {
                    record,
                    kind: other,
                });
            }
        }
        offset += total;
        parsed.valid_len = offset;
        record += 1;
    }
    Ok(parsed)
}

/// Reads the tip sidecar: highest valid slot wins; returns the marker and
/// the slot index the *next* write should use (always the other slot, so
/// a torn write can only damage the older marker).
fn parse_tip(bytes: &[u8]) -> (Option<SeqNum>, u64) {
    let mut best: Option<(SeqNum, usize)> = None;
    for slot in 0..2 {
        let start = slot * TIP_SLOT_LEN;
        let Some(raw) = bytes.get(start..start + TIP_SLOT_LEN) else {
            continue;
        };
        if raw.iter().all(|b| *b == 0) {
            // Never written (fresh file reads back zeros).
            continue;
        }
        let seq = u64::from_le_bytes(raw[..8].try_into().expect("8-byte slice"));
        if tip_checksum(seq) != raw[8..16] {
            continue;
        }
        let seq = SeqNum::new(seq);
        if best.is_none_or(|(tip, _)| tip < seq) {
            best = Some((seq, slot));
        }
    }
    match best {
        Some((tip, slot)) => (Some(tip), (slot ^ 1) as u64),
        None => (None, 0),
    }
}

fn tip_checksum(seq: u64) -> [u8; 8] {
    let mut preimage = [0u8; 16];
    preimage[..8].copy_from_slice(TIP_DOMAIN);
    preimage[8..].copy_from_slice(&seq.to_le_bytes());
    let digest = sha256(preimage);
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&digest.as_bytes()[..8]);
    sum
}

/// The log-structured [`BlockStore`]: appends checksummed records through
/// a [`Media`], re-verifies everything on open, and truncates torn tails.
#[derive(Debug)]
pub struct JournalStore<M: Media> {
    media: M,
    /// Torn-tail records dropped (and physically truncated) at open.
    truncated_at_open: usize,
    /// Highest own-tip marker; mirrors the sidecar.
    tip: Option<SeqNum>,
    /// Sidecar slot the next marker write goes to.
    tip_slot: u64,
}

impl<M: Media> JournalStore<M> {
    /// Opens a journal over `media`: parses and re-verifies the full
    /// image, physically truncates a torn tail (at most one record), and
    /// reads the own-tip sidecar. Never panics on corrupt media.
    ///
    /// # Errors
    ///
    /// Any typed [`StoreError`] from [`parse`] or the media.
    pub fn open(mut media: M) -> Result<Self, StoreError> {
        let bytes = media.journal_bytes()?;
        let parsed = parse(&bytes)?;
        if parsed.valid_len < bytes.len() {
            media.truncate_journal(parsed.valid_len as u64)?;
        }
        if parsed.valid_len == 0 {
            media.append_journal(&MAGIC)?;
        }
        let (tip, tip_slot) = parse_tip(&media.tip_bytes()?);
        Ok(JournalStore {
            media,
            truncated_at_open: parsed.truncated_records,
            tip,
            tip_slot,
        })
    }

    /// Records dropped as a torn tail when this store was opened.
    pub fn truncated_at_open(&self) -> usize {
        self.truncated_at_open
    }

    /// The underlying media (tests inspect raw bytes through this).
    pub fn media(&self) -> &M {
        &self.media
    }

    /// Consumes the store, returning its media.
    pub fn into_media(self) -> M {
        self.media
    }
}

impl JournalStore<FileMedia> {
    /// Opens (creating if needed) an on-disk journal under `dir`.
    ///
    /// # Errors
    ///
    /// Any typed [`StoreError`] from the filesystem or from re-verifying
    /// an existing journal.
    pub fn open_dir(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        JournalStore::open(FileMedia::open(dir)?)
    }
}

impl JournalStore<MemMedia> {
    /// An empty in-memory journal.
    ///
    /// # Panics
    ///
    /// Never — in-memory media is infallible.
    pub fn in_memory() -> Self {
        JournalStore::open(MemMedia::new()).expect("in-memory media is infallible")
    }
}

impl<M: Media> BlockStore for JournalStore<M> {
    fn append_block(&mut self, block: &Block) -> Result<(), StoreError> {
        let wire = block.wire_bytes();
        let mut payload = Vec::with_capacity(32 + wire.len());
        payload.extend_from_slice(block.block_ref().as_bytes());
        payload.extend_from_slice(wire);
        self.media
            .append_journal(&encode_record(KIND_BLOCK, &payload))
    }

    fn append_request(&mut self, request: &LabeledRequest) -> Result<(), StoreError> {
        let payload = dagbft_codec::encode_to_vec(request);
        self.media
            .append_journal(&encode_record(KIND_REQUEST, &payload))
    }

    fn append_snapshot(&mut self, covered: u64, payload: &[u8]) -> Result<(), StoreError> {
        let mut framed = Vec::with_capacity(8 + payload.len());
        framed.extend_from_slice(&covered.to_le_bytes());
        framed.extend_from_slice(payload);
        self.media
            .append_journal(&encode_record(KIND_SNAPSHOT, &framed))
    }

    fn mark_own_tip(&mut self, seq: SeqNum) -> Result<(), StoreError> {
        if self.tip.is_some_and(|tip| seq <= tip) {
            return Ok(());
        }
        let mut slot = [0u8; TIP_SLOT_LEN];
        slot[..8].copy_from_slice(&seq.value().to_le_bytes());
        slot[8..].copy_from_slice(&tip_checksum(seq.value()));
        self.media
            .write_tip(self.tip_slot * TIP_SLOT_LEN as u64, &slot)?;
        self.tip = Some(seq);
        self.tip_slot ^= 1;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        self.media.sync_journal()
    }

    fn contents(&self) -> Result<StoreContents, StoreError> {
        let parsed = parse(&self.media.journal_bytes()?)?;
        Ok(StoreContents {
            blocks: parsed.blocks,
            requests: parsed.requests,
            snapshot: parsed.snapshot,
            own_tip: self.tip,
            truncated_records: self.truncated_at_open + parsed.truncated_records,
        })
    }
}
