//! Crash-fault-injection matrices for the journal.
//!
//! Three exhaustive matrices plus randomized property tests, all pinning
//! the same contract: opening a damaged journal never panics; a torn
//! tail is truncated *exactly* (at most one record, surviving prefix
//! byte-identical to what was synced); every other corruption maps to a
//! typed [`StoreError`].
//!
//! * truncate-at-every-byte — every possible crash point in an existing
//!   image;
//! * crash-at-every-write-budget — a live [`JournalStore`] over
//!   [`FaultyMedia`] whose writes tear at an exact byte budget, then a
//!   "restart" over the surviving bytes;
//! * flip-every-bit — at-rest corruption of each bit in the image.

use dagbft_core::{Block, BlockStore, Label, LabeledRequest, SeqNum, StoreError};
use dagbft_crypto::{KeyRegistry, ServerId};
use dagbft_store::{parse, FaultyMedia, JournalStore, MemMedia, MemStore, MAGIC};
use proptest::prelude::*;

/// A short chain of valid blocks (each referencing its predecessor) from
/// one builder, with a request in every other block.
fn chain(len: u64) -> Vec<Block> {
    let registry = KeyRegistry::generate(2, 77);
    let signer = registry.signer(ServerId::new(0)).unwrap();
    let mut blocks: Vec<Block> = Vec::new();
    for seq in 0..len {
        let preds = blocks.last().map(|b| b.block_ref()).into_iter().collect();
        let requests = if seq % 2 == 0 {
            vec![LabeledRequest::encode(Label::new(seq), &seq)]
        } else {
            vec![]
        };
        blocks.push(Block::build(
            ServerId::new(0),
            SeqNum::new(seq),
            preds,
            requests,
            &signer,
        ));
    }
    blocks
}

/// Writes the reference workload into a fresh in-memory journal and
/// returns `(image bytes, record boundary offsets, blocks written)`.
/// Boundaries include the magic (offset of record 0) and end-of-image.
fn reference_image(blocks: &[Block]) -> (Vec<u8>, Vec<usize>) {
    let mut store = MemStore::in_memory();
    let mut boundaries = vec![store.media().journal().len()];
    for (index, block) in blocks.iter().enumerate() {
        store.append_block(block).unwrap();
        boundaries.push(store.media().journal().len());
        if index == 1 {
            store
                .append_request(&LabeledRequest::encode(Label::new(99), &(index as u64)))
                .unwrap();
            boundaries.push(store.media().journal().len());
        }
        if index == 2 {
            store
                .append_snapshot(index as u64 + 1, &[0xAB; 40])
                .unwrap();
            boundaries.push(store.media().journal().len());
        }
    }
    store.sync().unwrap();
    let media = store.into_media();
    (media.journal().to_vec(), boundaries)
}

/// The invariant every truncation must satisfy: parse succeeds, keeps a
/// byte-identical prefix ending on the last record boundary at or below
/// the cut, drops at most one record, and reproduces a block prefix.
fn assert_clean_truncation(image: &[u8], cut: usize, boundaries: &[usize], blocks: &[Block]) {
    let parsed = parse(&image[..cut]).expect("truncation is never a typed error");
    assert!(parsed.truncated_records <= 1, "cut={cut}");
    let expected_valid = boundaries
        .iter()
        .copied()
        .filter(|b| *b <= cut)
        .max()
        .unwrap_or(0);
    assert_eq!(parsed.valid_len, expected_valid, "cut={cut}");
    assert_eq!(
        parsed.truncated_records,
        usize::from(cut != expected_valid),
        "cut={cut}"
    );
    // The surviving prefix is byte-identical to the uncorrupted image.
    assert_eq!(&image[..parsed.valid_len], &image[..expected_valid]);
    assert_eq!(
        parsed.blocks,
        blocks[..parsed.blocks.len()],
        "cut={cut}: surviving blocks must be an exact prefix"
    );

    // The store-level open physically truncates to the same point and
    // reads back the same prefix.
    let store = JournalStore::open(MemMedia::from_journal(image[..cut].to_vec()))
        .expect("open never fails on truncation");
    assert_eq!(store.truncated_at_open(), parsed.truncated_records);
    let journal = store.media().journal();
    // A fully empty valid prefix re-seeds the magic; otherwise the media
    // holds exactly the valid prefix.
    if expected_valid == 0 {
        assert_eq!(journal, MAGIC);
    } else {
        assert_eq!(journal, &image[..expected_valid]);
    }
    assert_eq!(store.contents().unwrap().blocks, parsed.blocks);
}

#[test]
fn truncate_at_every_byte_is_clean() {
    let blocks = chain(6);
    let (image, boundaries) = reference_image(&blocks);
    for cut in 0..=image.len() {
        assert_clean_truncation(&image, cut, &boundaries, &blocks);
    }
}

#[test]
fn crash_at_every_write_budget_recovers_a_prefix() {
    let blocks = chain(5);
    let (clean_image, _) = reference_image(&blocks);
    for budget in 0..=clean_image.len() {
        // Run the workload against media that tears at `budget` bytes.
        let media = FaultyMedia::new(MemMedia::new()).crash_after(budget);
        let mut store = JournalStore::open(media).expect("fresh open");
        for (index, block) in blocks.iter().enumerate() {
            store.append_block(block).unwrap();
            if index == 1 {
                store
                    .append_request(&LabeledRequest::encode(Label::new(99), &(index as u64)))
                    .unwrap();
            }
            if index == 2 {
                store
                    .append_snapshot(index as u64 + 1, &[0xAB; 40])
                    .unwrap();
            }
            store.sync().unwrap();
            store.mark_own_tip(SeqNum::new(index as u64)).unwrap();
        }

        // "Restart": reopen over whatever survived the crash.
        let surviving = store.into_media().into_surviving();
        let restarted = JournalStore::open(surviving).expect("restart never fails");
        assert!(restarted.truncated_at_open() <= 1, "budget={budget}");
        let contents = restarted.contents().unwrap();
        assert_eq!(
            contents.blocks,
            blocks[..contents.blocks.len()],
            "budget={budget}: recovered blocks must be an exact prefix"
        );
        // The tip marker is durable independently of the journal tail,
        // but never runs ahead of what the workload marked.
        if let Some(tip) = contents.own_tip {
            assert!(
                tip <= SeqNum::new(blocks.len() as u64 - 1),
                "budget={budget}"
            );
        }
    }
}

#[test]
fn flip_every_bit_is_typed_or_clean() {
    let blocks = chain(4);
    let (image, boundaries) = reference_image(&blocks);
    for byte in 0..image.len() {
        for bit in 0..8u8 {
            let mut media = FaultyMedia::new(MemMedia::from_journal(image.clone()));
            media.flip_journal_bit(byte, bit);
            let corrupted = media.into_surviving();
            let corrupted_bytes = corrupted.journal().to_vec();
            match parse(&corrupted_bytes) {
                Err(
                    StoreError::BadMagic
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::Decode { .. }
                    | StoreError::RefMismatch { .. }
                    | StoreError::UnknownKind { .. }
                    | StoreError::SnapshotCoversFuture { .. },
                ) => {
                    // Typed corruption. The store-level open surfaces the
                    // same error instead of panicking.
                    assert!(
                        JournalStore::open(corrupted).is_err(),
                        "byte={byte} bit={bit}"
                    );
                }
                Err(other) => panic!("byte={byte} bit={bit}: unexpected error {other:?}"),
                Ok(parsed) => {
                    // Clean truncation (a flip in the length field can only
                    // present as a torn tail): the surviving prefix must be
                    // byte-identical to the uncorrupted image and end on a
                    // record boundary at or before the flipped byte.
                    assert!(parsed.truncated_records <= 1, "byte={byte} bit={bit}");
                    assert!(
                        boundaries.contains(&parsed.valid_len),
                        "byte={byte} bit={bit}: valid_len {} off-boundary",
                        parsed.valid_len
                    );
                    if parsed.valid_len < image.len() {
                        assert!(byte >= parsed.valid_len, "byte={byte} bit={bit}");
                    }
                    assert_eq!(
                        &corrupted_bytes[..parsed.valid_len],
                        &image[..parsed.valid_len],
                        "byte={byte} bit={bit}"
                    );
                    assert_eq!(parsed.blocks, blocks[..parsed.blocks.len()]);
                }
            }
        }
    }
}

#[test]
fn lost_own_tip_marker_never_resurrects_higher_seq() {
    // Marker writes after the crash budget are lost entirely; the
    // surviving marker must be one the workload actually issued, never a
    // torn hybrid — slot alternation plus the slot checksum guarantee it.
    let blocks = chain(3);
    // Size the budget so block 0 (and its marker) land, and the crash
    // tears block 1's record.
    let block0_len = {
        let mut probe = MemStore::in_memory();
        probe.append_block(&blocks[0]).unwrap();
        probe.media().journal().len()
    };
    let media = FaultyMedia::new(MemMedia::new()).crash_after(block0_len + 5);
    let mut store = JournalStore::open(media).expect("fresh open");
    for (index, block) in blocks.iter().enumerate() {
        store.append_block(block).unwrap();
        store.sync().unwrap();
        store.mark_own_tip(SeqNum::new(index as u64)).unwrap();
    }
    let restarted = JournalStore::open(store.into_media().into_surviving()).unwrap();
    let contents = restarted.contents().unwrap();
    assert_eq!(contents.blocks, vec![blocks[0].clone()]);
    assert_eq!(
        contents.own_tip,
        Some(SeqNum::ZERO),
        "pre-crash marker survives"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random chain length + random cut point: same clean-truncation
    /// invariant as the exhaustive matrix, over varied content.
    #[test]
    fn random_truncation_is_clean(len in 1u64..8, cut_seed in any::<usize>()) {
        let blocks = chain(len);
        let (image, boundaries) = reference_image(&blocks);
        let cut = cut_seed % (image.len() + 1);
        assert_clean_truncation(&image, cut, &boundaries, &blocks);
    }

    /// Random single-bit corruption: exact typed error, or clean
    /// truncation with a byte-identical surviving prefix.
    #[test]
    fn random_bit_flip_is_typed_or_clean(
        len in 1u64..8,
        byte_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        let blocks = chain(len);
        let (image, boundaries) = reference_image(&blocks);
        let byte = byte_seed % image.len();
        let mut corrupted = image.clone();
        corrupted[byte] ^= 1 << bit;
        match parse(&corrupted) {
            Err(err) => {
                // Typed, renders, and open() agrees without panicking.
                prop_assert!(!err.to_string().is_empty());
                prop_assert!(JournalStore::open(MemMedia::from_journal(corrupted)).is_err());
            }
            Ok(parsed) => {
                prop_assert!(parsed.truncated_records <= 1);
                prop_assert!(boundaries.contains(&parsed.valid_len));
                prop_assert_eq!(&corrupted[..parsed.valid_len], &image[..parsed.valid_len]);
                prop_assert_eq!(&parsed.blocks, &blocks[..parsed.blocks.len()]);
            }
        }
    }
}
