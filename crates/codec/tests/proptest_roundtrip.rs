//! Property tests: every encodable value roundtrips, and encoding is
//! canonical (equal values, equal bytes).

use std::collections::{BTreeMap, BTreeSet};

use dagbft_codec::{decode_from_slice, encode_to_vec, DecodeError};
use proptest::prelude::*;

proptest! {
    #[test]
    fn u64_roundtrip(value: u64) {
        let bytes = encode_to_vec(&value);
        prop_assert_eq!(decode_from_slice::<u64>(&bytes).unwrap(), value);
    }

    #[test]
    fn string_roundtrip(value in ".*") {
        let value: String = value;
        let bytes = encode_to_vec(&value);
        prop_assert_eq!(decode_from_slice::<String>(&bytes).unwrap(), value);
    }

    #[test]
    fn vec_of_tuples_roundtrip(value in proptest::collection::vec((any::<u64>(), ".{0,16}"), 0..32)) {
        let bytes = encode_to_vec(&value);
        prop_assert_eq!(decode_from_slice::<Vec<(u64, String)>>(&bytes).unwrap(), value);
    }

    #[test]
    fn map_roundtrip(value in proptest::collection::btree_map(any::<u32>(), any::<u64>(), 0..32)) {
        let bytes = encode_to_vec(&value);
        prop_assert_eq!(decode_from_slice::<BTreeMap<u32, u64>>(&bytes).unwrap(), value);
    }

    #[test]
    fn set_roundtrip(value in proptest::collection::btree_set(any::<u64>(), 0..32)) {
        let bytes = encode_to_vec(&value);
        prop_assert_eq!(decode_from_slice::<BTreeSet<u64>>(&bytes).unwrap(), value);
    }

    #[test]
    fn nested_option_roundtrip(value in proptest::collection::vec(proptest::option::of(any::<u16>()), 0..64)) {
        let bytes = encode_to_vec(&value);
        prop_assert_eq!(decode_from_slice::<Vec<Option<u16>>>(&bytes).unwrap(), value);
    }

    #[test]
    fn truncation_never_panics(value in proptest::collection::vec(any::<u64>(), 0..16), cut in 0usize..128) {
        let bytes = encode_to_vec(&value);
        let cut = cut.min(bytes.len());
        // Decoding a truncated prefix must error cleanly (or succeed only
        // when nothing was cut).
        match decode_from_slice::<Vec<u64>>(&bytes[..bytes.len() - cut]) {
            Ok(decoded) => prop_assert_eq!(decoded, value),
            Err(DecodeError::UnexpectedEof { .. })
            | Err(DecodeError::LengthOutOfBounds { .. })
            | Err(DecodeError::TrailingBytes { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Fuzz the decoder with random input across several schemas.
        let _ = decode_from_slice::<Vec<(u64, String)>>(&bytes);
        let _ = decode_from_slice::<BTreeMap<u32, Vec<u8>>>(&bytes);
        let _ = decode_from_slice::<Option<(u8, u64, String)>>(&bytes);
    }
}
