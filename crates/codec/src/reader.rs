//! Cursor over wire bytes.

use crate::{DecodeError, MAX_SEQUENCE_LEN};

/// A forward-only cursor over a byte slice used by [`crate::WireDecode`].
///
/// # Examples
///
/// ```
/// use dagbft_codec::Reader;
///
/// let mut reader = Reader::new(&[1, 2, 3]);
/// assert_eq!(reader.read_u8()?, 1);
/// assert_eq!(reader.remaining(), 2);
/// # Ok::<(), dagbft_codec::DecodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Number of bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if the input is exhausted.
    pub fn read_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] on truncated input.
    pub fn read_u16(&mut self) -> Result<u16, DecodeError> {
        let bytes = self.take(2)?;
        Ok(u16::from_le_bytes([bytes[0], bytes[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] on truncated input.
    pub fn read_u32(&mut self) -> Result<u32, DecodeError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] on truncated input.
    pub fn read_u64(&mut self) -> Result<u64, DecodeError> {
        let bytes = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(buf))
    }

    /// Reads and validates a sequence length prefix.
    ///
    /// The claimed length is checked against both [`MAX_SEQUENCE_LEN`] and
    /// the number of remaining bytes divided by `min_elem_size` (each element
    /// needs at least that many bytes), so a hostile prefix can never force a
    /// large allocation.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::LengthOutOfBounds`] if the prefix is too large,
    /// or [`DecodeError::UnexpectedEof`] if the prefix itself is truncated.
    pub fn read_len(&mut self, min_elem_size: usize) -> Result<usize, DecodeError> {
        let claimed = self.read_u32()? as usize;
        let feasible = self
            .remaining()
            .checked_div(min_elem_size)
            .unwrap_or(MAX_SEQUENCE_LEN);
        let max = feasible.min(MAX_SEQUENCE_LEN);
        if claimed > max {
            return Err(DecodeError::LengthOutOfBounds { claimed, max });
        }
        Ok(claimed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_past_end_errors() {
        let mut reader = Reader::new(&[1, 2]);
        let err = reader.take(3).unwrap_err();
        assert_eq!(
            err,
            DecodeError::UnexpectedEof {
                needed: 3,
                available: 2
            }
        );
    }

    #[test]
    fn read_len_rejects_infeasible_prefix() {
        // Claims 1000 elements of at least 1 byte, but no bytes remain.
        let bytes = 1000u32.to_le_bytes();
        let mut reader = Reader::new(&bytes);
        let err = reader.read_len(1).unwrap_err();
        assert!(matches!(err, DecodeError::LengthOutOfBounds { .. }));
    }

    #[test]
    fn read_len_accepts_feasible_prefix() {
        let mut bytes = 3u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[9, 9, 9]);
        let mut reader = Reader::new(&bytes);
        assert_eq!(reader.read_len(1).unwrap(), 3);
    }

    #[test]
    fn position_tracks_consumption() {
        let mut reader = Reader::new(&[0; 10]);
        reader.take(4).unwrap();
        assert_eq!(reader.position(), 4);
        assert_eq!(reader.remaining(), 6);
    }

    #[test]
    fn integer_endianness_is_little() {
        let mut reader = Reader::new(&[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08]);
        assert_eq!(reader.read_u64().unwrap(), 0x0807_0605_0403_0201);
    }
}
