//! Cursor over wire bytes.

use bytes::Bytes;

use crate::{DecodeError, MAX_SEQUENCE_LEN};

/// A forward-only cursor over a byte slice used by [`crate::WireDecode`].
///
/// A reader can optionally be backed by a shared [`Bytes`] buffer
/// ([`Reader::from_shared`]); decoders that need to retain payload bytes
/// (block wire images, request payloads) then *slice* the shared buffer
/// instead of copying it — the zero-copy receive path.
///
/// # Examples
///
/// ```
/// use dagbft_codec::Reader;
///
/// let mut reader = Reader::new(&[1, 2, 3]);
/// assert_eq!(reader.read_u8()?, 1);
/// assert_eq!(reader.remaining(), 2);
/// # Ok::<(), dagbft_codec::DecodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// When decoding out of a shared buffer, the owner of `bytes`:
    /// retained payloads are sliced from it instead of copied.
    shared: Option<&'a Bytes>,
}

impl<'a> Reader<'a> {
    /// Creates a reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader {
            bytes,
            pos: 0,
            shared: None,
        }
    }

    /// Creates a reader over a shared buffer. Decoders that retain payload
    /// bytes ([`Reader::take_bytes`], [`Reader::bytes_between`]) will slice
    /// `bytes` zero-copy instead of allocating.
    pub fn from_shared(bytes: &'a Bytes) -> Self {
        Reader {
            bytes,
            pos: 0,
            shared: Some(bytes),
        }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Number of bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Takes the next `n` bytes as an owned [`Bytes`] value: a zero-copy
    /// slice of the backing buffer when the reader was built with
    /// [`Reader::from_shared`], a copy otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take_bytes(&mut self, n: usize) -> Result<Bytes, DecodeError> {
        let start = self.pos;
        let slice = self.take(n)?;
        Ok(match self.shared {
            Some(shared) => shared.slice(start..start + n),
            None => Bytes::copy_from_slice(slice),
        })
    }

    /// Re-reads the already-consumed window `[start, end)` as a borrowed
    /// slice — used by decoders that hash or re-examine their own input
    /// (e.g. a block's `ref` preimage).
    ///
    /// # Panics
    ///
    /// Panics if the window is inverted or extends past the current
    /// position (it must already have been consumed).
    pub fn window(&self, start: usize, end: usize) -> &'a [u8] {
        assert!(
            start <= end && end <= self.pos,
            "window [{start}, {end}) not fully consumed (pos {})",
            self.pos
        );
        &self.bytes[start..end]
    }

    /// Returns the already-consumed window `[start, end)` as owned
    /// [`Bytes`]: a zero-copy slice of the backing buffer when shared, a
    /// copy otherwise. Used by decoders that retain their own canonical
    /// encoding (e.g. a block's cached wire image).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Reader::window`].
    pub fn bytes_between(&self, start: usize, end: usize) -> Bytes {
        let window = self.window(start, end);
        match self.shared {
            Some(shared) => shared.slice(start..end),
            None => Bytes::copy_from_slice(window),
        }
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if the input is exhausted.
    pub fn read_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] on truncated input.
    pub fn read_u16(&mut self) -> Result<u16, DecodeError> {
        let bytes = self.take(2)?;
        Ok(u16::from_le_bytes([bytes[0], bytes[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] on truncated input.
    pub fn read_u32(&mut self) -> Result<u32, DecodeError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] on truncated input.
    pub fn read_u64(&mut self) -> Result<u64, DecodeError> {
        let bytes = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(buf))
    }

    /// Reads and validates a sequence length prefix.
    ///
    /// The claimed length is checked against both [`MAX_SEQUENCE_LEN`] and
    /// the number of remaining bytes divided by `min_elem_size` (each element
    /// needs at least that many bytes), so a hostile prefix can never force a
    /// large allocation.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::LengthOutOfBounds`] if the prefix is too large,
    /// or [`DecodeError::UnexpectedEof`] if the prefix itself is truncated.
    pub fn read_len(&mut self, min_elem_size: usize) -> Result<usize, DecodeError> {
        let claimed = self.read_u32()? as usize;
        let feasible = self
            .remaining()
            .checked_div(min_elem_size)
            .unwrap_or(MAX_SEQUENCE_LEN);
        let max = feasible.min(MAX_SEQUENCE_LEN);
        if claimed > max {
            return Err(DecodeError::LengthOutOfBounds { claimed, max });
        }
        Ok(claimed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_past_end_errors() {
        let mut reader = Reader::new(&[1, 2]);
        let err = reader.take(3).unwrap_err();
        assert_eq!(
            err,
            DecodeError::UnexpectedEof {
                needed: 3,
                available: 2
            }
        );
    }

    #[test]
    fn read_len_rejects_infeasible_prefix() {
        // Claims 1000 elements of at least 1 byte, but no bytes remain.
        let bytes = 1000u32.to_le_bytes();
        let mut reader = Reader::new(&bytes);
        let err = reader.read_len(1).unwrap_err();
        assert!(matches!(err, DecodeError::LengthOutOfBounds { .. }));
    }

    #[test]
    fn read_len_accepts_feasible_prefix() {
        let mut bytes = 3u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[9, 9, 9]);
        let mut reader = Reader::new(&bytes);
        assert_eq!(reader.read_len(1).unwrap(), 3);
    }

    #[test]
    fn position_tracks_consumption() {
        let mut reader = Reader::new(&[0; 10]);
        reader.take(4).unwrap();
        assert_eq!(reader.position(), 4);
        assert_eq!(reader.remaining(), 6);
    }

    #[test]
    fn integer_endianness_is_little() {
        let mut reader = Reader::new(&[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08]);
        assert_eq!(reader.read_u64().unwrap(), 0x0807_0605_0403_0201);
    }

    #[test]
    fn take_bytes_slices_shared_buffer() {
        let buffer = Bytes::from(vec![9, 8, 7, 6]);
        let mut reader = Reader::from_shared(&buffer);
        reader.read_u8().unwrap();
        let taken = reader.take_bytes(2).unwrap();
        assert_eq!(taken.as_ref(), &[8, 7]);
        assert!(taken.shares_allocation_with(&buffer), "must not copy");
    }

    #[test]
    fn take_bytes_copies_without_shared_backing() {
        let data = [9u8, 8, 7, 6];
        let mut reader = Reader::new(&data);
        let taken = reader.take_bytes(4).unwrap();
        assert_eq!(taken.as_ref(), &data);
    }

    #[test]
    fn bytes_between_returns_consumed_window() {
        let buffer = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mut reader = Reader::from_shared(&buffer);
        reader.take(4).unwrap();
        let window = reader.bytes_between(1, 4);
        assert_eq!(window.as_ref(), &[2, 3, 4]);
        assert!(window.shares_allocation_with(&buffer));
        assert_eq!(reader.window(1, 4), &[2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "not fully consumed")]
    fn bytes_between_rejects_unconsumed_window() {
        let buffer = Bytes::from(vec![1, 2, 3]);
        let reader = Reader::from_shared(&buffer);
        let _ = reader.bytes_between(0, 2);
    }
}
