//! Decoding error type.

use std::error::Error;
use std::fmt;

/// Error produced when decoding wire bytes fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// Bytes needed to make progress.
        needed: usize,
        /// Bytes that were actually available.
        available: usize,
    },
    /// A length prefix exceeded the remaining input or the global bound.
    LengthOutOfBounds {
        /// The claimed element count.
        claimed: usize,
        /// The maximum that would have been accepted.
        max: usize,
    },
    /// A `u8` discriminant did not correspond to any variant.
    InvalidDiscriminant {
        /// Name of the type being decoded.
        type_name: &'static str,
        /// The value found on the wire.
        value: u8,
    },
    /// A byte sequence was not valid UTF-8 where a string was expected.
    InvalidUtf8,
    /// A domain-specific invariant was violated (e.g. out-of-range id).
    Invalid {
        /// Human-readable description of the violated invariant.
        reason: &'static str,
    },
    /// Input remained after a complete value was decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, available } => write!(
                f,
                "unexpected end of input: needed {needed} bytes, {available} available"
            ),
            DecodeError::LengthOutOfBounds { claimed, max } => {
                write!(f, "length prefix {claimed} exceeds bound {max}")
            }
            DecodeError::InvalidDiscriminant { type_name, value } => {
                write!(f, "invalid discriminant {value} for type {type_name}")
            }
            DecodeError::InvalidUtf8 => write!(f, "byte sequence is not valid utf-8"),
            DecodeError::Invalid { reason } => write!(f, "invalid value: {reason}"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after complete value")
            }
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            DecodeError::UnexpectedEof {
                needed: 4,
                available: 1,
            },
            DecodeError::LengthOutOfBounds {
                claimed: 10,
                max: 5,
            },
            DecodeError::InvalidDiscriminant {
                type_name: "T",
                value: 9,
            },
            DecodeError::InvalidUtf8,
            DecodeError::Invalid { reason: "bad id" },
            DecodeError::TrailingBytes { remaining: 3 },
        ];
        for err in errors {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(!text.chars().next().unwrap().is_uppercase());
        }
    }
}
