//! [`WireEncode`]/[`WireDecode`] implementations for primitives and containers.

use std::collections::{BTreeMap, BTreeSet};

use bytes::Bytes;

use crate::{DecodeError, Reader, WireDecode, WireEncode};

impl WireEncode for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
}

impl WireDecode for u8 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        reader.read_u8()
    }
}

impl WireEncode for u16 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl WireDecode for u16 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        reader.read_u16()
    }
}

impl WireEncode for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl WireDecode for u32 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        reader.read_u32()
    }
}

impl WireEncode for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl WireDecode for u64 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        reader.read_u64()
    }
}

impl WireEncode for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl WireDecode for i64 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(reader.read_u64()? as i64)
    }
}

impl WireEncode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl WireDecode for bool {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match reader.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            value => Err(DecodeError::InvalidDiscriminant {
                type_name: "bool",
                value,
            }),
        }
    }
}

impl WireEncode for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
}

impl WireDecode for () {
    fn decode(_reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(())
    }
}

impl WireEncode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_str().encode(out);
    }
}

impl WireEncode for str {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl WireDecode for String {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = reader.read_len(1)?;
        let bytes = reader.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::InvalidUtf8)
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_slice().encode(out);
    }
}

impl<T: WireEncode> WireEncode for [T] {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = reader.read_len(1)?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(reader)?);
        }
        Ok(items)
    }
}

impl WireEncode for Bytes {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self);
    }
}

impl WireDecode for Bytes {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = reader.read_len(1)?;
        // Zero-copy when the reader is backed by a shared buffer
        // (`decode_from_bytes`): the payload is a slice of the input.
        reader.take_bytes(len)
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.encode(out);
            }
        }
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match reader.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(reader)?)),
            value => Err(DecodeError::InvalidDiscriminant {
                type_name: "Option",
                value,
            }),
        }
    }
}

impl<const N: usize> WireEncode for [u8; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
}

impl<const N: usize> WireDecode for [u8; N] {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let bytes = reader.take(N)?;
        let mut buf = [0u8; N];
        buf.copy_from_slice(bytes);
        Ok(buf)
    }
}

impl<A: WireEncode, B: WireEncode> WireEncode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: WireDecode, B: WireDecode> WireDecode for (A, B) {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(reader)?, B::decode(reader)?))
    }
}

impl<A: WireEncode, B: WireEncode, C: WireEncode> WireEncode for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
}

impl<A: WireDecode, B: WireDecode, C: WireDecode> WireDecode for (A, B, C) {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(reader)?, B::decode(reader)?, C::decode(reader)?))
    }
}

impl<K: WireEncode, V: WireEncode> WireEncode for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for (key, value) in self {
            key.encode(out);
            value.encode(out);
        }
    }
}

impl<K: WireDecode + Ord, V: WireDecode> WireDecode for BTreeMap<K, V> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = reader.read_len(1)?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let key = K::decode(reader)?;
            let value = V::decode(reader)?;
            map.insert(key, value);
        }
        Ok(map)
    }
}

impl<T: WireEncode> WireEncode for BTreeSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: WireDecode + Ord> WireDecode for BTreeSet<T> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = reader.read_len(1)?;
        let mut set = BTreeSet::new();
        for _ in 0..len {
            set.insert(T::decode(reader)?);
        }
        Ok(set)
    }
}

impl<T: WireEncode + ?Sized> WireEncode for &T {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self).encode(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_from_slice, encode_to_vec};

    fn roundtrip<T>(value: T)
    where
        T: WireEncode + WireDecode + PartialEq + std::fmt::Debug,
    {
        let bytes = encode_to_vec(&value);
        let back: T = decode_from_slice(&bytes).unwrap();
        assert_eq!(value, back);
    }

    #[test]
    fn roundtrip_integers() {
        roundtrip(0u8);
        roundtrip(u8::MAX);
        roundtrip(0u16);
        roundtrip(u16::MAX);
        roundtrip(0u32);
        roundtrip(u32::MAX);
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(-1i64);
    }

    #[test]
    fn roundtrip_bool_and_unit() {
        roundtrip(true);
        roundtrip(false);
        roundtrip(());
    }

    #[test]
    fn bool_invalid_discriminant() {
        let err = decode_from_slice::<bool>(&[2]).unwrap_err();
        assert!(matches!(err, DecodeError::InvalidDiscriminant { .. }));
    }

    #[test]
    fn roundtrip_string() {
        roundtrip(String::new());
        roundtrip("hello world".to_owned());
        roundtrip("ünïcödé ⇀ ⇀*".to_owned());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut bytes = encode_to_vec(&2u32);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let err = decode_from_slice::<String>(&bytes).unwrap_err();
        assert_eq!(err, DecodeError::InvalidUtf8);
    }

    #[test]
    fn roundtrip_vec_and_option() {
        roundtrip::<Vec<u64>>(vec![]);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Some(42u32));
        roundtrip::<Option<u32>>(None);
        roundtrip(vec![Some(1u8), None, Some(3)]);
    }

    #[test]
    fn roundtrip_bytes() {
        roundtrip(Bytes::from_static(b""));
        roundtrip(Bytes::from_static(b"payload"));
    }

    #[test]
    fn roundtrip_arrays_and_tuples() {
        roundtrip([7u8; 32]);
        roundtrip((1u8, 2u64));
        roundtrip((1u8, "x".to_owned(), vec![9u16]));
    }

    #[test]
    fn roundtrip_maps_and_sets() {
        let mut map = BTreeMap::new();
        map.insert(3u32, "three".to_owned());
        map.insert(1u32, "one".to_owned());
        roundtrip(map);

        let set: BTreeSet<u16> = [5, 1, 9].into_iter().collect();
        roundtrip(set);
    }

    #[test]
    fn map_encoding_is_order_canonical() {
        // BTreeMap iterates in key order, so insertion order cannot leak
        // into the encoding.
        let mut forwards = BTreeMap::new();
        forwards.insert(1u8, 10u8);
        forwards.insert(2u8, 20u8);
        let mut backwards = BTreeMap::new();
        backwards.insert(2u8, 20u8);
        backwards.insert(1u8, 10u8);
        assert_eq!(encode_to_vec(&forwards), encode_to_vec(&backwards));
    }

    #[test]
    fn truncated_vec_rejected() {
        let bytes = encode_to_vec(&vec![1u64, 2, 3]);
        let err = decode_from_slice::<Vec<u64>>(&bytes[..bytes.len() - 1]).unwrap_err();
        assert!(matches!(err, DecodeError::UnexpectedEof { .. }));
    }

    #[test]
    fn reference_encoding_matches_value() {
        let value = "abc".to_owned();
        assert_eq!(encode_to_vec(&&value), encode_to_vec(&value));
    }
}
