//! Deterministic binary wire format for `dagbft`.
//!
//! Blocks are hashed and signed over their *canonical encoding*
//! (Definition 3.1 of the paper computes `ref` from `n`, `k`, `preds`, and
//! `rs`), so the codec must be deterministic: the same value always encodes
//! to the same bytes. This crate provides that format as a pair of traits,
//! [`WireEncode`] and [`WireDecode`], with implementations for the primitive
//! and container types the rest of the workspace needs.
//!
//! The format is not self-describing; both sides must agree on the schema.
//! Integers are little-endian fixed width, sequences carry a `u32` length
//! prefix, and enum-like types encode a `u8` discriminant first.
//!
//! # Examples
//!
//! ```
//! use dagbft_codec::{decode_from_slice, encode_to_vec};
//!
//! let value: (u64, String) = (7, "hello".to_owned());
//! let bytes = encode_to_vec(&value);
//! let back: (u64, String) = decode_from_slice(&bytes)?;
//! assert_eq!(value, back);
//! # Ok::<(), dagbft_codec::DecodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod impls;
mod reader;

pub use error::DecodeError;
pub use reader::Reader;

/// Types that can be deterministically encoded to bytes.
///
/// Implementations must be *canonical*: equal values produce identical byte
/// strings. This is what makes block hashing and signing well defined.
pub trait WireEncode {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Returns the canonical encoding as a fresh vector.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// Types that can be decoded from the wire format produced by [`WireEncode`].
pub trait WireDecode: Sized {
    /// Reads one value from `reader`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the input is truncated, malformed, or
    /// violates a length bound.
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

/// Encodes `value` into a fresh byte vector.
pub fn encode_to_vec<T: WireEncode + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes a single `T` from `bytes`, requiring that all input is consumed.
///
/// # Errors
///
/// Returns [`DecodeError::TrailingBytes`] if input remains after decoding,
/// or any error produced by the underlying [`WireDecode`] implementation.
pub fn decode_from_slice<T: WireDecode>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut reader = Reader::new(bytes);
    let value = T::decode(&mut reader)?;
    if reader.remaining() != 0 {
        return Err(DecodeError::TrailingBytes {
            remaining: reader.remaining(),
        });
    }
    Ok(value)
}

/// Decodes a single `T` from a shared buffer, requiring that all input is
/// consumed. Unlike [`decode_from_slice`], decoders that retain payload
/// bytes (block wire images, opaque request payloads) *slice* `bytes`
/// instead of copying — the zero-copy receive path.
///
/// # Errors
///
/// Returns [`DecodeError::TrailingBytes`] if input remains after decoding,
/// or any error produced by the underlying [`WireDecode`] implementation.
pub fn decode_from_bytes<T: WireDecode>(bytes: &bytes::Bytes) -> Result<T, DecodeError> {
    let mut reader = Reader::from_shared(bytes);
    let value = T::decode(&mut reader)?;
    if reader.remaining() != 0 {
        return Err(DecodeError::TrailingBytes {
            remaining: reader.remaining(),
        });
    }
    Ok(value)
}

/// Maximum element count accepted for any length-prefixed sequence.
///
/// This bounds allocation on malformed or hostile input: a decoder never
/// trusts a length prefix beyond what the remaining input could possibly
/// hold, and never beyond this constant.
pub const MAX_SEQUENCE_LEN: usize = 1 << 24;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let bytes = encode_to_vec(&0xdead_beef_u32);
        assert_eq!(bytes, vec![0xef, 0xbe, 0xad, 0xde]);
        let back: u32 = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, 0xdead_beef);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_to_vec(&1_u8);
        bytes.push(0);
        let err = decode_from_slice::<u8>(&bytes).unwrap_err();
        assert!(matches!(err, DecodeError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn canonical_equal_values_equal_bytes() {
        let a = vec!["x".to_owned(), "y".to_owned()];
        let b = vec!["x".to_owned(), "y".to_owned()];
        assert_eq!(encode_to_vec(&a), encode_to_vec(&b));
    }

    #[test]
    fn decode_from_bytes_slices_payloads() {
        let payload = bytes::Bytes::from(b"payload".to_vec());
        let buffer = bytes::Bytes::from(encode_to_vec(&payload));
        let decoded: bytes::Bytes = decode_from_bytes(&buffer).unwrap();
        assert_eq!(decoded, payload);
        assert!(
            decoded.shares_allocation_with(&buffer),
            "payload must be a slice of the input buffer, not a copy"
        );
    }

    #[test]
    fn decode_from_bytes_rejects_trailing() {
        let mut raw = encode_to_vec(&1_u8);
        raw.push(0);
        let buffer = bytes::Bytes::from(raw);
        let err = decode_from_bytes::<u8>(&buffer).unwrap_err();
        assert!(matches!(err, DecodeError::TrailingBytes { remaining: 1 }));
    }
}
