//! The value alphabet `Vals` protocols range over.

use std::fmt::Debug;

use dagbft_codec::{WireDecode, WireEncode};

/// Bound alias for the values a protocol broadcasts or commits
/// (`v ∈ Vals` in the paper's §5).
///
/// Values must be orderable (they appear inside protocol messages, which
/// carry the total order `<_M`), cloneable, printable, and wire-codable
/// (they travel inside block request payloads).
///
/// The trait is blanket-implemented; never implement it manually.
pub trait Value: Clone + Debug + Ord + WireEncode + WireDecode {}

impl<T: Clone + Debug + Ord + WireEncode + WireDecode> Value for T {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_value<V: Value>() {}

    #[test]
    fn common_types_are_values() {
        assert_value::<u64>();
        assert_value::<String>();
        assert_value::<Vec<u8>>();
        assert_value::<(u64, String)>();
    }
}
