//! A FastPay-style payment/settlement layer on top of reliable broadcast.
//!
//! The paper's introduction motivates block DAGs with "Byzantine consistent
//! and reliable broadcast that is sufficient to build payment systems
//! [2, 13]" — FastPay and the Consensus Number of a Cryptocurrency: asset
//! transfers do **not** need consensus, only reliable broadcast of each
//! account's sequenced transfer orders.
//!
//! This module provides the deterministic settlement logic:
//!
//! * a [`Transfer`] is an order "account `from`, at sequence number `seq`,
//!   pays `amount` to account `to`";
//! * each transfer is broadcast on its own BRB instance, labeled by
//!   [`Transfer::label`] — one fresh label per `(from, seq)`, so parallel
//!   transfers ride the same blocks "for free";
//! * every server applies delivered transfers to its local [`Ledger`];
//!   per-account sequencing plus BRB consistency make all correct ledgers
//!   converge.
//!
//! The wiring of transfers to `shim(Brb)` lives in the simulator and the
//! `payments` example; this module is pure, deterministic bookkeeping.

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use dagbft_codec::{DecodeError, Reader, WireDecode, WireEncode};
use dagbft_core::Label;

/// A payment account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AccountId(pub u32);

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "acct{}", self.0)
    }
}

impl WireEncode for AccountId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl WireDecode for AccountId {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(AccountId(u32::decode(reader)?))
    }
}

/// A sequenced transfer order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Transfer {
    /// Paying account.
    pub from: AccountId,
    /// Receiving account.
    pub to: AccountId,
    /// Amount to move.
    pub amount: u64,
    /// Per-sender sequence number; must be exactly the sender's next.
    pub seq: u32,
}

impl Transfer {
    /// The BRB instance label dedicated to this transfer: unique per
    /// `(from, seq)` — the FastPay trick of one broadcast per order.
    pub fn label(&self) -> Label {
        Label::new(((self.from.0 as u64) << 32) | self.seq as u64)
    }
}

impl fmt::Display for Transfer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}→{} {} (seq {})",
            self.from, self.to, self.amount, self.seq
        )
    }
}

impl WireEncode for Transfer {
    fn encode(&self, out: &mut Vec<u8>) {
        self.from.encode(out);
        self.to.encode(out);
        self.amount.encode(out);
        self.seq.encode(out);
    }
}

impl WireDecode for Transfer {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Transfer {
            from: AccountId::decode(reader)?,
            to: AccountId::decode(reader)?,
            amount: u64::decode(reader)?,
            seq: u32::decode(reader)?,
        })
    }
}

/// Why a transfer cannot be applied (yet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferError {
    /// The paying account does not exist.
    UnknownAccount(AccountId),
    /// The paying account lacks funds *at this point*; may succeed after
    /// incoming transfers settle.
    InsufficientFunds {
        /// Current balance of the paying account.
        balance: u64,
        /// Amount the transfer needs.
        needed: u64,
    },
    /// The sequence number is not the account's next one.
    BadSequence {
        /// The sequence number the ledger expects next.
        expected: u32,
        /// The sequence number the transfer carries.
        got: u32,
    },
    /// Self-payments are rejected.
    SelfTransfer,
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferError::UnknownAccount(account) => write!(f, "unknown account {account}"),
            TransferError::InsufficientFunds { balance, needed } => {
                write!(f, "insufficient funds: have {balance}, need {needed}")
            }
            TransferError::BadSequence { expected, got } => {
                write!(f, "bad sequence: expected {expected}, got {got}")
            }
            TransferError::SelfTransfer => write!(f, "self transfers are not allowed"),
        }
    }
}

impl Error for TransferError {}

/// A deterministic replicated ledger.
///
/// Correct servers feed it the transfers **delivered** by BRB; thanks to
/// per-account sequencing, any delivery interleaving settles to the same
/// balances (see [`Ledger::settle`]).
///
/// # Examples
///
/// ```
/// use dagbft_protocols::{AccountId, Ledger, Transfer};
///
/// let mut ledger = Ledger::new([(AccountId(1), 100), (AccountId(2), 0)]);
/// ledger.apply(&Transfer { from: AccountId(1), to: AccountId(2), amount: 30, seq: 0 })?;
/// assert_eq!(ledger.balance(AccountId(1)), 70);
/// assert_eq!(ledger.balance(AccountId(2)), 30);
/// # Ok::<(), dagbft_protocols::TransferError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ledger {
    balances: BTreeMap<AccountId, u64>,
    next_seq: BTreeMap<AccountId, u32>,
    applied: Vec<Transfer>,
}

impl Ledger {
    /// Creates a ledger with the given initial balances.
    pub fn new<I: IntoIterator<Item = (AccountId, u64)>>(initial: I) -> Self {
        Ledger {
            balances: initial.into_iter().collect(),
            next_seq: BTreeMap::new(),
            applied: Vec::new(),
        }
    }

    /// Current balance of `account` (0 if unknown).
    pub fn balance(&self, account: AccountId) -> u64 {
        self.balances.get(&account).copied().unwrap_or(0)
    }

    /// The sequence number `account`'s next transfer must carry.
    pub fn next_seq(&self, account: AccountId) -> u32 {
        self.next_seq.get(&account).copied().unwrap_or(0)
    }

    /// Transfers applied so far, in application order.
    pub fn applied(&self) -> &[Transfer] {
        &self.applied
    }

    /// Sum of all balances — conserved by every transfer.
    pub fn total_supply(&self) -> u64 {
        self.balances.values().sum()
    }

    /// Checks whether `transfer` can be applied right now.
    ///
    /// # Errors
    ///
    /// See [`TransferError`]; `InsufficientFunds` and `BadSequence` are
    /// possibly-transient (retried by [`Ledger::settle`]).
    pub fn validate(&self, transfer: &Transfer) -> Result<(), TransferError> {
        if transfer.from == transfer.to {
            return Err(TransferError::SelfTransfer);
        }
        if !self.balances.contains_key(&transfer.from) {
            return Err(TransferError::UnknownAccount(transfer.from));
        }
        let expected = self.next_seq(transfer.from);
        if transfer.seq != expected {
            return Err(TransferError::BadSequence {
                expected,
                got: transfer.seq,
            });
        }
        let balance = self.balance(transfer.from);
        if balance < transfer.amount {
            return Err(TransferError::InsufficientFunds {
                balance,
                needed: transfer.amount,
            });
        }
        Ok(())
    }

    /// Applies one transfer.
    ///
    /// # Errors
    ///
    /// Fails with the [`Ledger::validate`] error, leaving state unchanged.
    pub fn apply(&mut self, transfer: &Transfer) -> Result<(), TransferError> {
        self.validate(transfer)?;
        *self.balances.get_mut(&transfer.from).expect("validated") -= transfer.amount;
        *self.balances.entry(transfer.to).or_insert(0) += transfer.amount;
        self.next_seq.insert(transfer.from, transfer.seq + 1);
        self.applied.push(transfer.clone());
        Ok(())
    }

    /// Applies a batch of delivered transfers to a fixed point, in a
    /// deterministic order, retrying transfers that were waiting on funds
    /// or sequence gaps. Returns the transfers that remain unapplicable.
    ///
    /// Determinism: the batch is sorted (by the derived `Ord`) and applied
    /// round-robin until no progress, so every correct server — which by
    /// BRB totality eventually holds the same delivered set — reaches the
    /// same ledger state regardless of delivery interleavings.
    pub fn settle(&mut self, delivered: impl IntoIterator<Item = Transfer>) -> Vec<Transfer> {
        let mut waiting: BTreeSet<Transfer> = delivered.into_iter().collect();
        loop {
            let mut progressed = false;
            let candidates: Vec<Transfer> = waiting.iter().cloned().collect();
            for transfer in candidates {
                if self.apply(&transfer).is_ok() {
                    waiting.remove(&transfer);
                    progressed = true;
                }
            }
            if !progressed {
                return waiting.into_iter().collect();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transfer(from: u32, to: u32, amount: u64, seq: u32) -> Transfer {
        Transfer {
            from: AccountId(from),
            to: AccountId(to),
            amount,
            seq,
        }
    }

    #[test]
    fn apply_moves_funds_and_bumps_seq() {
        let mut ledger = Ledger::new([(AccountId(1), 100)]);
        ledger.apply(&transfer(1, 2, 40, 0)).unwrap();
        assert_eq!(ledger.balance(AccountId(1)), 60);
        assert_eq!(ledger.balance(AccountId(2)), 40);
        assert_eq!(ledger.next_seq(AccountId(1)), 1);
        assert_eq!(ledger.applied().len(), 1);
    }

    #[test]
    fn supply_is_conserved() {
        let mut ledger = Ledger::new([(AccountId(1), 100), (AccountId(2), 50)]);
        let supply = ledger.total_supply();
        ledger.apply(&transfer(1, 2, 10, 0)).unwrap();
        ledger.apply(&transfer(2, 3, 60, 0)).unwrap();
        assert_eq!(ledger.total_supply(), supply);
    }

    #[test]
    fn overdraft_rejected() {
        let mut ledger = Ledger::new([(AccountId(1), 10)]);
        let err = ledger.apply(&transfer(1, 2, 11, 0)).unwrap_err();
        assert!(matches!(err, TransferError::InsufficientFunds { .. }));
        assert_eq!(ledger.balance(AccountId(1)), 10);
    }

    #[test]
    fn sequence_enforced() {
        let mut ledger = Ledger::new([(AccountId(1), 100)]);
        let err = ledger.apply(&transfer(1, 2, 1, 5)).unwrap_err();
        assert!(matches!(
            err,
            TransferError::BadSequence {
                expected: 0,
                got: 5
            }
        ));
        ledger.apply(&transfer(1, 2, 1, 0)).unwrap();
        // Replaying the same seq fails: double-spend protection.
        let err = ledger.apply(&transfer(1, 3, 1, 0)).unwrap_err();
        assert!(matches!(err, TransferError::BadSequence { .. }));
    }

    #[test]
    fn unknown_account_and_self_transfer_rejected() {
        let mut ledger = Ledger::new([(AccountId(1), 5)]);
        assert!(matches!(
            ledger.apply(&transfer(9, 2, 1, 0)),
            Err(TransferError::UnknownAccount(_))
        ));
        assert!(matches!(
            ledger.apply(&transfer(1, 1, 1, 0)),
            Err(TransferError::SelfTransfer)
        ));
    }

    #[test]
    fn settle_converges_regardless_of_order() {
        // t2 spends money that only arrives via t1.
        let t1 = transfer(1, 2, 50, 0);
        let t2 = transfer(2, 3, 50, 0);
        let initial = [(AccountId(1), 50), (AccountId(2), 0)];

        let mut forward = Ledger::new(initial);
        let leftover = forward.settle([t1.clone(), t2.clone()]);
        assert!(leftover.is_empty());

        let mut backward = Ledger::new(initial);
        let leftover = backward.settle([t2, t1]);
        assert!(leftover.is_empty());

        assert_eq!(forward.balance(AccountId(3)), 50);
        assert_eq!(forward.balances, backward.balances);
    }

    #[test]
    fn settle_reports_unapplicable() {
        let mut ledger = Ledger::new([(AccountId(1), 10)]);
        let bad = transfer(1, 2, 1000, 0);
        let leftover = ledger.settle([bad.clone()]);
        assert_eq!(leftover, vec![bad]);
    }

    #[test]
    fn labels_unique_per_sender_and_seq() {
        let a = transfer(1, 2, 5, 0).label();
        let b = transfer(1, 2, 5, 1).label();
        let c = transfer(2, 1, 5, 0).label();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn transfer_wire_roundtrip() {
        let t = transfer(3, 4, 123, 9);
        let bytes = dagbft_codec::encode_to_vec(&t);
        let decoded: Transfer = dagbft_codec::decode_from_slice(&bytes).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn display_formats() {
        let t = transfer(1, 2, 30, 4);
        assert_eq!(t.to_string(), "acct1→acct2 30 (seq 4)");
    }
}
