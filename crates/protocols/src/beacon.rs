//! A randomness beacon — the paper's §7 de-randomization recipe, applied.
//!
//! The embedding requires `P` to be deterministic; §7 sketches the way
//! out for protocols that *want* randomness: "in case randomness is merely
//! at the discretion of a server … de-randomize the protocol by relying on
//! the server including in their created block any coin flips used".
//!
//! This module is that recipe as a concrete protocol: each server draws a
//! coin **outside** the protocol (at the user/shim layer, where
//! non-determinism is allowed) and submits it as the request
//! [`BeaconRequest::Contribute`] — so the coin travels *inside a block*
//! and the protocol itself stays a pure state machine. Once shares from
//! **all** `n` servers are collected, every server deterministically
//! derives the same beacon output and winner.
//!
//! Honest scope notes (both flagged by the paper):
//!
//! * **liveness** needs all `n` contributions — a silent server stalls the
//!   round (tolerating `f` requires threshold cryptography, "a joint
//!   shared randomness protocol", which §7 cites as reference 17 and leaves out);
//! * the output is **biasable** by the last contributor, who can see the
//!   other coins in the DAG before choosing its own — fine for
//!   load-balancing-grade randomness, not for adversarial lotteries.

use std::collections::BTreeMap;

use dagbft_codec::{DecodeError, Reader, WireDecode, WireEncode};
use dagbft_core::{DeterministicProtocol, Label, Outbox, ProtocolConfig};
use dagbft_crypto::{sha256, ServerId};

/// Requests: contribute a locally drawn coin to this beacon round.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum BeaconRequest {
    /// `contribute(coin)` — the coin was drawn outside the protocol and is
    /// inscribed in the contributor's block.
    Contribute(u64),
}

impl WireEncode for BeaconRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BeaconRequest::Contribute(coin) => {
                out.push(0);
                coin.encode(out);
            }
        }
    }
}

impl WireDecode for BeaconRequest {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match reader.read_u8()? {
            0 => Ok(BeaconRequest::Contribute(u64::decode(reader)?)),
            value => Err(DecodeError::InvalidDiscriminant {
                type_name: "BeaconRequest",
                value,
            }),
        }
    }
}

/// Messages: a server's share, broadcast to everyone.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum BeaconMessage {
    /// The sender's coin for this round.
    Share(u64),
}

/// Indications: the agreed beacon output.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BeaconOutput {
    /// The 64-bit beacon value (prefix of a hash over all shares).
    pub value: u64,
    /// `value mod n`, as a ready-made leader/lottery winner.
    pub winner: ServerId,
}

/// One process instance of the beacon.
///
/// # Examples
///
/// ```
/// use dagbft_core::{DeterministicProtocol, Label, Outbox, ProtocolConfig};
/// use dagbft_crypto::ServerId;
/// use dagbft_protocols::beacon::{Beacon, BeaconRequest};
///
/// let config = ProtocolConfig::for_n(4);
/// let mut instance = Beacon::new(&config, Label::new(1), ServerId::new(0));
/// let mut outbox = Outbox::new();
/// instance.on_request(BeaconRequest::Contribute(0xfeed), &mut outbox);
/// assert_eq!(outbox.len(), 4); // the share goes to everyone
/// ```
#[derive(Debug, Clone)]
pub struct Beacon {
    config: ProtocolConfig,
    contributed: bool,
    shares: BTreeMap<ServerId, u64>,
    output: Option<BeaconOutput>,
    pending: Vec<BeaconOutput>,
}

impl Beacon {
    /// Shares collected so far.
    pub fn share_count(&self) -> usize {
        self.shares.len()
    }

    /// The beacon output, once every server contributed.
    pub fn output(&self) -> Option<&BeaconOutput> {
        self.output.as_ref()
    }

    fn try_finalize(&mut self) {
        if self.output.is_some() || self.shares.len() < self.config.n {
            return;
        }
        // Deterministic mix: hash the (server, coin) pairs in server order.
        let mut preimage = Vec::with_capacity(self.shares.len() * 12);
        for (server, coin) in &self.shares {
            server.encode(&mut preimage);
            coin.encode(&mut preimage);
        }
        let digest = sha256(&preimage);
        let mut prefix = [0u8; 8];
        prefix.copy_from_slice(&digest.as_bytes()[..8]);
        let value = u64::from_le_bytes(prefix);
        let output = BeaconOutput {
            value,
            winner: ServerId::new((value % self.config.n as u64) as u32),
        };
        self.output = Some(output.clone());
        self.pending.push(output);
    }
}

impl DeterministicProtocol for Beacon {
    type Request = BeaconRequest;
    type Message = BeaconMessage;
    type Indication = BeaconOutput;

    fn new(config: &ProtocolConfig, _label: Label, _me: ServerId) -> Self {
        Beacon {
            config: *config,
            contributed: false,
            shares: BTreeMap::new(),
            output: None,
            pending: Vec::new(),
        }
    }

    fn on_request(&mut self, request: Self::Request, outbox: &mut Outbox<Self::Message>) {
        let BeaconRequest::Contribute(coin) = request;
        if !self.contributed {
            self.contributed = true;
            outbox.broadcast(&self.config, BeaconMessage::Share(coin));
        }
    }

    fn on_message(
        &mut self,
        sender: ServerId,
        message: Self::Message,
        _outbox: &mut Outbox<Self::Message>,
    ) {
        let BeaconMessage::Share(coin) = message;
        // First share per sender counts (equivocating shares are absorbed
        // by whichever version the interpretation's total order feeds
        // first — consistently across all correct interpreters).
        self.shares.entry(sender).or_insert(coin);
        self.try_finalize();
    }

    fn drain_indications(&mut self) -> Vec<Self::Indication> {
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_all_contribute(n: usize, coins: &[u64]) -> Vec<Option<BeaconOutput>> {
        let config = ProtocolConfig::for_n(n);
        let mut instances: Vec<Beacon> = (0..n)
            .map(|i| Beacon::new(&config, Label::new(1), ServerId::new(i as u32)))
            .collect();
        let mut queue: Vec<(usize, ServerId, BeaconMessage)> = Vec::new();
        for (i, coin) in coins.iter().enumerate() {
            let mut outbox = Outbox::new();
            instances[i].on_request(BeaconRequest::Contribute(*coin), &mut outbox);
            for (to, message) in outbox.into_messages() {
                queue.push((to.index(), ServerId::new(i as u32), message));
            }
        }
        while let Some((to, from, message)) = queue.pop() {
            let mut outbox = Outbox::new();
            instances[to].on_message(from, message, &mut outbox);
            assert!(outbox.is_empty(), "beacon sends only on request");
        }
        instances
            .iter_mut()
            .map(|i| i.drain_indications().pop())
            .collect()
    }

    #[test]
    fn all_contributions_yield_agreed_output() {
        let outputs = run_all_contribute(4, &[1, 2, 3, 4]);
        let first = outputs[0].clone().expect("beacon fired");
        for output in &outputs {
            assert_eq!(output.as_ref(), Some(&first), "disagreement");
        }
        assert!(first.winner.index() < 4);
    }

    #[test]
    fn missing_contribution_stalls() {
        let outputs = run_all_contribute(4, &[1, 2, 3]); // s3 never contributes
        assert!(outputs.iter().all(Option::is_none));
    }

    #[test]
    fn different_coins_different_output() {
        let a = run_all_contribute(4, &[1, 2, 3, 4])[0].clone().unwrap();
        let b = run_all_contribute(4, &[1, 2, 3, 5])[0].clone().unwrap();
        assert_ne!(a.value, b.value);
    }

    #[test]
    fn output_is_deterministic() {
        let a = run_all_contribute(4, &[9, 8, 7, 6])[0].clone().unwrap();
        let b = run_all_contribute(4, &[9, 8, 7, 6])[0].clone().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_shares_ignored() {
        let config = ProtocolConfig::for_n(2);
        let mut instance = Beacon::new(&config, Label::new(1), ServerId::new(0));
        let mut sink = Outbox::new();
        instance.on_message(ServerId::new(1), BeaconMessage::Share(5), &mut sink);
        instance.on_message(ServerId::new(1), BeaconMessage::Share(6), &mut sink);
        assert_eq!(instance.share_count(), 1);
        assert!(instance.output().is_none());
    }

    #[test]
    fn request_wire_roundtrip() {
        let request = BeaconRequest::Contribute(42);
        let bytes = dagbft_codec::encode_to_vec(&request);
        let decoded: BeaconRequest = dagbft_codec::decode_from_slice(&bytes).unwrap();
        assert_eq!(decoded, request);
    }
}
