//! Wire codecs for protocol *messages*.
//!
//! Inside the block DAG embedding, protocol messages are **never**
//! serialized — they are materialized locally (§4). The direct
//! point-to-point baseline, however, ships every message over the network,
//! so it needs these codecs. Keeping them here (rather than in the
//! baseline) also documents exactly what the traditional deployment pays
//! to encode.

use dagbft_codec::{DecodeError, Reader, WireDecode, WireEncode};

use crate::bcb::BcbMessage;
use crate::brb::BrbMessage;
use crate::smr::SmrMessage;

impl<V: WireEncode> WireEncode for BrbMessage<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BrbMessage::Echo(value) => {
                out.push(0);
                value.encode(out);
            }
            BrbMessage::Ready(value) => {
                out.push(1);
                value.encode(out);
            }
        }
    }
}

impl<V: WireDecode> WireDecode for BrbMessage<V> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match reader.read_u8()? {
            0 => Ok(BrbMessage::Echo(V::decode(reader)?)),
            1 => Ok(BrbMessage::Ready(V::decode(reader)?)),
            value => Err(DecodeError::InvalidDiscriminant {
                type_name: "BrbMessage",
                value,
            }),
        }
    }
}

impl<V: WireEncode> WireEncode for BcbMessage<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BcbMessage::Send(value) => {
                out.push(0);
                value.encode(out);
            }
            BcbMessage::Echo(value) => {
                out.push(1);
                value.encode(out);
            }
        }
    }
}

impl<V: WireDecode> WireDecode for BcbMessage<V> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match reader.read_u8()? {
            0 => Ok(BcbMessage::Send(V::decode(reader)?)),
            1 => Ok(BcbMessage::Echo(V::decode(reader)?)),
            value => Err(DecodeError::InvalidDiscriminant {
                type_name: "BcbMessage",
                value,
            }),
        }
    }
}

impl<V: WireEncode> WireEncode for SmrMessage<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SmrMessage::Forward(value) => {
                out.push(0);
                value.encode(out);
            }
            SmrMessage::PrePrepare(slot, value) => {
                out.push(1);
                slot.encode(out);
                value.encode(out);
            }
            SmrMessage::Prepare(slot, value) => {
                out.push(2);
                slot.encode(out);
                value.encode(out);
            }
            SmrMessage::Commit(slot, value) => {
                out.push(3);
                slot.encode(out);
                value.encode(out);
            }
        }
    }
}

impl<V: WireDecode> WireDecode for SmrMessage<V> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match reader.read_u8()? {
            0 => Ok(SmrMessage::Forward(V::decode(reader)?)),
            1 => Ok(SmrMessage::PrePrepare(
                u64::decode(reader)?,
                V::decode(reader)?,
            )),
            2 => Ok(SmrMessage::Prepare(
                u64::decode(reader)?,
                V::decode(reader)?,
            )),
            3 => Ok(SmrMessage::Commit(u64::decode(reader)?, V::decode(reader)?)),
            value => Err(DecodeError::InvalidDiscriminant {
                type_name: "SmrMessage",
                value,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagbft_codec::{decode_from_slice, encode_to_vec};

    fn roundtrip<M>(message: M)
    where
        M: WireEncode + WireDecode + PartialEq + std::fmt::Debug,
    {
        let bytes = encode_to_vec(&message);
        assert_eq!(decode_from_slice::<M>(&bytes).unwrap(), message);
    }

    #[test]
    fn brb_messages() {
        roundtrip(BrbMessage::Echo(5u64));
        roundtrip(BrbMessage::Ready("x".to_owned()));
    }

    #[test]
    fn bcb_messages() {
        roundtrip(BcbMessage::Send(5u64));
        roundtrip(BcbMessage::Echo(9u64));
    }

    #[test]
    fn smr_messages() {
        roundtrip(SmrMessage::Forward(1u64));
        roundtrip(SmrMessage::PrePrepare(3, 1u64));
        roundtrip(SmrMessage::Prepare(3, 1u64));
        roundtrip(SmrMessage::Commit(3, 1u64));
    }

    #[test]
    fn bad_discriminant_rejected() {
        let err = decode_from_slice::<BrbMessage<u64>>(&[9]).unwrap_err();
        assert!(matches!(err, DecodeError::InvalidDiscriminant { .. }));
    }
}
