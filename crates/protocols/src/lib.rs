//! Deterministic BFT protocols `P` for the block DAG framework.
//!
//! The embedding of Schett & Danezis is parametric in a *deterministic* BFT
//! protocol `P` (any implementation of
//! [`dagbft_core::DeterministicProtocol`]). This crate provides the
//! protocols used throughout the reproduction:
//!
//! * [`brb`] — **Byzantine Reliable Broadcast**, the paper's running
//!   example (§5, Algorithm 4: authenticated double-echo broadcast after
//!   Cachin–Guerraoui–Rodrigues, Module 3.12);
//! * [`bcb`] — **Byzantine Consistent Broadcast** (authenticated echo
//!   broadcast, CGR Module 3.10): a second, cheaper `P` demonstrating the
//!   framework's generality;
//! * [`smr`] — **PBFT-lite state machine replication**: a deterministic
//!   three-phase commit with one leader per instance label, the
//!   "Blockmania encodes a simplified PBFT" use case (§6);
//! * [`payments`] / [`settlement`] — a FastPay-style settlement layer
//!   *using* BRB instances, the application domain the paper's
//!   introduction motivates [2, 13];
//! * [`beacon`] — the §7 de-randomization recipe as a protocol: coin flips
//!   drawn outside `P` travel inside blocks;
//! * [`fifo`] — FIFO-ordered reliable broadcast: a *composite* protocol
//!   (per-sender streams of double-echo sub-instances) embedding
//!   unchanged.
//!
//! All protocols are pure state machines: no clocks, no randomness, ordered
//! internal collections — see the determinism contract on
//! [`dagbft_core::DeterministicProtocol`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bcb;
pub mod beacon;
pub mod brb;
pub mod fifo;
pub mod payments;
pub mod settlement;
pub mod smr;
mod value;
mod wire_msgs;

pub use bcb::{Bcb, BcbIndication, BcbMessage, BcbRequest};
pub use beacon::{Beacon, BeaconOutput, BeaconRequest};
pub use brb::{Brb, BrbIndication, BrbMessage, BrbRequest};
pub use fifo::{Fifo, FifoDeliver, FifoMessage, FifoRequest};
pub use payments::{AccountId, Ledger, Transfer, TransferError};
pub use settlement::SettlementNode;
pub use smr::{Smr, SmrIndication, SmrMessage, SmrRequest};
pub use value::Value;
