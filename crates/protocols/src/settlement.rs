//! A full settlement node: `shim(BRB)` wired to the replicated [`Ledger`].
//!
//! This is the deployable form of the FastPay-style payment system the
//! paper's introduction motivates: one [`SettlementNode`] per server, each
//! broadcasting transfer orders on per-transfer BRB instances and settling
//! whatever BRB delivers. It packages the glue the examples and tests
//! would otherwise repeat: optimistic local validation on submit, delivery
//! draining, and fixed-point settlement of out-of-order arrivals.

use std::collections::BTreeSet;

use dagbft_core::{shim::SetupError, NetCommand, NetMessage, Shim, ShimConfig, TimeMs};
use dagbft_crypto::{KeyRegistry, ServerId};

use crate::brb::{Brb, BrbIndication, BrbRequest};
use crate::payments::{Ledger, Transfer, TransferError};

/// A server of the payment system: block DAG underneath, ledger on top.
///
/// # Examples
///
/// See `examples/payments.rs` and the settlement tests; the node is driven
/// exactly like a [`Shim`] (deliver messages, tick, disseminate), plus
/// [`SettlementNode::submit`] and [`SettlementNode::ledger`].
#[derive(Debug)]
pub struct SettlementNode {
    shim: Shim<Brb<Transfer>>,
    ledger: Ledger,
    /// Delivered transfers waiting for funds or sequence predecessors.
    unsettled: BTreeSet<Transfer>,
}

impl SettlementNode {
    /// Creates a node with the given initial account balances.
    ///
    /// # Errors
    ///
    /// [`SetupError::UnknownServer`] if `registry` lacks a key for `me`.
    pub fn new<I: IntoIterator<Item = (crate::payments::AccountId, u64)>>(
        me: ServerId,
        config: ShimConfig,
        registry: &KeyRegistry,
        initial: I,
    ) -> Result<Self, SetupError> {
        Ok(SettlementNode {
            shim: Shim::new(me, config, registry)?,
            ledger: Ledger::new(initial),
            unsettled: BTreeSet::new(),
        })
    }

    /// The server identity.
    pub fn me(&self) -> ServerId {
        self.shim.me()
    }

    /// The local replicated ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Transfers delivered by BRB but not yet applicable.
    pub fn unsettled(&self) -> impl Iterator<Item = &Transfer> {
        self.unsettled.iter()
    }

    /// Read access to the underlying shim (DAG, stats).
    pub fn shim(&self) -> &Shim<Brb<Transfer>> {
        &self.shim
    }

    /// Submits a transfer order: validates it against the local ledger
    /// view (optimistically — concurrent transfers may still invalidate
    /// it) and broadcasts it on its dedicated BRB instance.
    ///
    /// # Errors
    ///
    /// The local [`Ledger::validate`] error; nothing is broadcast then.
    pub fn submit(&mut self, transfer: Transfer) -> Result<(), TransferError> {
        self.ledger.validate(&transfer)?;
        self.shim
            .request(transfer.label(), BrbRequest::Broadcast(transfer));
        Ok(())
    }

    /// Delivers a network message and settles any resulting transfers.
    pub fn on_message(
        &mut self,
        from: ServerId,
        message: NetMessage,
        now: TimeMs,
    ) -> Vec<NetCommand> {
        let commands = self.shim.on_message(from, message, now);
        self.settle_deliveries();
        commands
    }

    /// Advances timers.
    pub fn on_tick(&mut self, now: TimeMs) -> Vec<NetCommand> {
        self.shim.on_tick(now)
    }

    /// Disseminates the current block and settles any deliveries.
    pub fn disseminate(&mut self, now: TimeMs) -> Vec<NetCommand> {
        let commands = self.shim.disseminate(now);
        self.settle_deliveries();
        commands
    }

    fn settle_deliveries(&mut self) {
        let mut batch: Vec<Transfer> = self.unsettled.iter().cloned().collect();
        for (_, indication) in self.shim.poll_indications() {
            let BrbIndication::Deliver(transfer) = indication;
            batch.push(transfer);
        }
        self.unsettled = self.ledger.settle(batch).into_iter().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payments::AccountId;
    use dagbft_core::ProtocolConfig;

    fn cluster(n: usize) -> Vec<SettlementNode> {
        let registry = KeyRegistry::generate(n, 31);
        let config = ShimConfig::new(ProtocolConfig::for_n(n));
        let initial = [(AccountId(1), 100u64), (AccountId(2), 50)];
        (0..n)
            .map(|i| {
                SettlementNode::new(ServerId::new(i as u32), config, &registry, initial).unwrap()
            })
            .collect()
    }

    /// Synchronous full-mesh delivery of all commands.
    fn pump(nodes: &mut [SettlementNode], origin: usize, commands: Vec<NetCommand>, now: TimeMs) {
        let mut queue: Vec<(usize, NetCommand)> =
            commands.into_iter().map(|c| (origin, c)).collect();
        while let Some((from, command)) = queue.pop() {
            match command {
                NetCommand::Broadcast { message } => {
                    for (target, node) in nodes.iter_mut().enumerate() {
                        if target != from {
                            let more =
                                node.on_message(ServerId::new(from as u32), message.clone(), now);
                            queue.extend(more.into_iter().map(|c| (target, c)));
                        }
                    }
                }
                NetCommand::SendTo { to, message } => {
                    let more =
                        nodes[to.index()].on_message(ServerId::new(from as u32), message, now);
                    queue.extend(more.into_iter().map(|c| (to.index(), c)));
                }
            }
        }
    }

    fn rounds(nodes: &mut [SettlementNode], count: usize) {
        for round in 0..count {
            for origin in 0..nodes.len() {
                let commands = nodes[origin].disseminate(round as u64);
                pump(nodes, origin, commands, round as u64);
            }
        }
    }

    #[test]
    fn transfer_settles_on_every_node() {
        let mut nodes = cluster(4);
        nodes[0]
            .submit(Transfer {
                from: AccountId(1),
                to: AccountId(2),
                amount: 30,
                seq: 0,
            })
            .unwrap();
        rounds(&mut nodes, 4);
        for node in &nodes {
            assert_eq!(node.ledger().balance(AccountId(1)), 70, "{}", node.me());
            assert_eq!(node.ledger().balance(AccountId(2)), 80);
            assert_eq!(node.ledger().total_supply(), 150);
        }
    }

    #[test]
    fn submit_rejects_invalid_locally() {
        let mut nodes = cluster(2);
        let err = nodes[0]
            .submit(Transfer {
                from: AccountId(1),
                to: AccountId(2),
                amount: 1_000,
                seq: 0,
            })
            .unwrap_err();
        assert!(matches!(err, TransferError::InsufficientFunds { .. }));
        // Nothing was broadcast.
        assert_eq!(nodes[0].shim().pending_requests(), 0);
    }

    #[test]
    fn chained_funds_settle_via_unsettled_buffer() {
        let mut nodes = cluster(4);
        // acct3 has nothing; it receives 40 from acct1 and then pays 25 on.
        nodes[0]
            .submit(Transfer {
                from: AccountId(1),
                to: AccountId(3),
                amount: 40,
                seq: 0,
            })
            .unwrap();
        rounds(&mut nodes, 4);
        // Now every node knows acct3 holds 40; node 1 submits the spend.
        nodes[1]
            .submit(Transfer {
                from: AccountId(3),
                to: AccountId(2),
                amount: 25,
                seq: 0,
            })
            .unwrap();
        rounds(&mut nodes, 4);
        for node in &nodes {
            assert_eq!(node.ledger().balance(AccountId(3)), 15);
            assert_eq!(node.ledger().balance(AccountId(2)), 75);
            assert_eq!(node.unsettled().count(), 0);
        }
    }

    #[test]
    fn replicas_agree_exactly() {
        let mut nodes = cluster(4);
        nodes[0]
            .submit(Transfer {
                from: AccountId(1),
                to: AccountId(2),
                amount: 10,
                seq: 0,
            })
            .unwrap();
        nodes[1]
            .submit(Transfer {
                from: AccountId(2),
                to: AccountId(1),
                amount: 5,
                seq: 0,
            })
            .unwrap();
        rounds(&mut nodes, 5);
        let reference = nodes[0].ledger().clone();
        for node in &nodes[1..] {
            assert_eq!(node.ledger(), &reference);
        }
    }
}
