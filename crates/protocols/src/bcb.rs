//! Byzantine Consistent Broadcast (authenticated echo broadcast).
//!
//! A second, cheaper deterministic protocol `P` after
//! Cachin–Guerraoui–Rodrigues Module 3.10, demonstrating that the block DAG
//! framework is parametric in `P`:
//!
//! ```text
//! broadcast(v):                        send SEND v to all
//! on SEND v, no echo sent yet:         send ECHO v to all
//! on ECHO v from 2f+1, not delivered:  deliver(v)
//! ```
//!
//! Compared with [`crate::brb`] it provides *consistency* (no two correct
//! servers deliver different values) but **not totality**: with a byzantine
//! broadcaster some correct servers may deliver while others never do. The
//! difference is observable in the workspace's byzantine integration tests
//! — a nice illustration that the embedding preserves each protocol's exact
//! property set (Theorem 5.1), neither strengthening nor weakening it.

use std::collections::{BTreeMap, BTreeSet};

use dagbft_codec::{DecodeError, Reader, WireDecode, WireEncode};
use dagbft_core::{DeterministicProtocol, Label, Outbox, ProtocolConfig};
use dagbft_crypto::ServerId;

use crate::value::Value;

/// Requests `{ broadcast(v) }`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum BcbRequest<V> {
    /// `broadcast(v)`.
    Broadcast(V),
}

impl<V: WireEncode> WireEncode for BcbRequest<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BcbRequest::Broadcast(value) => {
                out.push(0);
                value.encode(out);
            }
        }
    }
}

impl<V: WireDecode> WireDecode for BcbRequest<V> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match reader.read_u8()? {
            0 => Ok(BcbRequest::Broadcast(V::decode(reader)?)),
            value => Err(DecodeError::InvalidDiscriminant {
                type_name: "BcbRequest",
                value,
            }),
        }
    }
}

/// Messages `{ SEND v, ECHO v }`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum BcbMessage<V> {
    /// The broadcaster's initial `SEND v`.
    Send(V),
    /// A witness's `ECHO v`.
    Echo(V),
}

/// Indications `{ deliver(v) }`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum BcbIndication<V> {
    /// `deliver(v)`.
    Deliver(V),
}

/// One process instance of byzantine consistent broadcast.
///
/// # Examples
///
/// ```
/// use dagbft_core::{DeterministicProtocol, Label, Outbox, ProtocolConfig};
/// use dagbft_crypto::ServerId;
/// use dagbft_protocols::{Bcb, BcbRequest};
///
/// let config = ProtocolConfig::for_n(4);
/// let mut instance: Bcb<u64> = Bcb::new(&config, Label::new(1), ServerId::new(0));
/// let mut outbox = Outbox::new();
/// instance.on_request(BcbRequest::Broadcast(9), &mut outbox);
/// assert_eq!(outbox.len(), 4); // SEND 9 to everyone
/// ```
#[derive(Debug, Clone)]
pub struct Bcb<V: Value> {
    config: ProtocolConfig,
    sent: bool,
    /// The value this instance echoed, if any (one echo, ever).
    echoed: Option<V>,
    delivered: bool,
    echoes: BTreeMap<V, BTreeSet<ServerId>>,
    pending: Vec<BcbIndication<V>>,
}

impl<V: Value> Bcb<V> {
    /// The value this instance echoed, if any.
    pub fn echoed(&self) -> Option<&V> {
        self.echoed.as_ref()
    }

    /// Whether this instance has delivered.
    pub fn delivered(&self) -> bool {
        self.delivered
    }

    /// Number of distinct `ECHO` senders recorded for `value`.
    pub fn echo_count(&self, value: &V) -> usize {
        self.echoes.get(value).map_or(0, BTreeSet::len)
    }
}

impl<V: Value> DeterministicProtocol for Bcb<V> {
    type Request = BcbRequest<V>;
    type Message = BcbMessage<V>;
    type Indication = BcbIndication<V>;

    fn new(config: &ProtocolConfig, _label: Label, _me: ServerId) -> Self {
        Bcb {
            config: *config,
            sent: false,
            echoed: None,
            delivered: false,
            echoes: BTreeMap::new(),
            pending: Vec::new(),
        }
    }

    fn on_request(&mut self, request: Self::Request, outbox: &mut Outbox<Self::Message>) {
        let BcbRequest::Broadcast(value) = request;
        if !self.sent {
            self.sent = true;
            outbox.broadcast(&self.config, BcbMessage::Send(value));
        }
    }

    fn on_message(
        &mut self,
        sender: ServerId,
        message: Self::Message,
        outbox: &mut Outbox<Self::Message>,
    ) {
        match message {
            BcbMessage::Send(value) => {
                if self.echoed.is_none() {
                    self.echoed = Some(value.clone());
                    outbox.broadcast(&self.config, BcbMessage::Echo(value));
                }
            }
            BcbMessage::Echo(value) => {
                self.echoes.entry(value.clone()).or_default().insert(sender);
                if !self.delivered && self.echo_count(&value) >= self.config.quorum() {
                    self.delivered = true;
                    self.pending.push(BcbIndication::Deliver(value));
                }
            }
        }
    }

    fn drain_indications(&mut self) -> Vec<Self::Indication> {
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pump(
        instances: &mut [Bcb<u64>],
        mut queue: Vec<(usize, ServerId, BcbMessage<u64>)>,
    ) -> Vec<Option<u64>> {
        let mut delivered = vec![None; instances.len()];
        while let Some((to, from, message)) = queue.pop() {
            let mut outbox = Outbox::new();
            instances[to].on_message(from, message, &mut outbox);
            for (next_to, next_message) in outbox.into_messages() {
                queue.push((next_to.index(), ServerId::new(to as u32), next_message));
            }
            for BcbIndication::Deliver(value) in instances[to].drain_indications() {
                assert!(delivered[to].is_none(), "no duplication");
                delivered[to] = Some(value);
            }
        }
        delivered
    }

    fn fresh(n: usize) -> Vec<Bcb<u64>> {
        let config = ProtocolConfig::for_n(n);
        (0..n)
            .map(|i| Bcb::new(&config, Label::new(1), ServerId::new(i as u32)))
            .collect()
    }

    #[test]
    fn validity_with_correct_broadcaster() {
        let mut instances = fresh(4);
        let mut outbox = Outbox::new();
        instances[0].on_request(BcbRequest::Broadcast(5), &mut outbox);
        let queue = outbox
            .into_messages()
            .into_iter()
            .map(|(to, m)| (to.index(), ServerId::new(0), m))
            .collect();
        let delivered = pump(&mut instances, queue);
        assert_eq!(delivered, vec![Some(5); 4]);
    }

    #[test]
    fn consistency_split_sends_cannot_deliver_two_values() {
        // Byzantine broadcaster sends SEND 1 to {0,1} and SEND 2 to {2}.
        // Echo quorums (3 of 4) for two different values would need 6
        // distinct echoers among 4 — impossible: at most one value delivers.
        let mut instances = fresh(4);
        let byz = ServerId::new(3);
        let queue = vec![
            (0, byz, BcbMessage::Send(1)),
            (1, byz, BcbMessage::Send(1)),
            (2, byz, BcbMessage::Send(2)),
        ];
        let delivered = pump(&mut instances, queue);
        let values: BTreeSet<u64> = delivered.iter().flatten().copied().collect();
        assert!(values.len() <= 1, "consistency violated: {values:?}");
    }

    #[test]
    fn no_totality_guarantee_documented() {
        // With the byzantine broadcaster echoing for itself, value 1 can
        // reach quorum {0, 1, 3} while server 2 (echoed 2) never delivers —
        // consistent but not total.
        let mut instances = fresh(4);
        let byz = ServerId::new(3);
        let queue = vec![
            (0, byz, BcbMessage::Send(1)),
            (1, byz, BcbMessage::Send(1)),
            (2, byz, BcbMessage::Send(2)),
            (0, byz, BcbMessage::Echo(1)),
            (1, byz, BcbMessage::Echo(1)),
        ];
        let delivered = pump(&mut instances, queue);
        assert_eq!(delivered[0], Some(1));
        assert_eq!(delivered[1], Some(1));
        assert_eq!(delivered[2], None, "no totality");
    }

    #[test]
    fn echo_only_once() {
        let config = ProtocolConfig::for_n(4);
        let mut instance: Bcb<u64> = Bcb::new(&config, Label::new(1), ServerId::new(0));
        let mut outbox = Outbox::new();
        instance.on_message(ServerId::new(1), BcbMessage::Send(1), &mut outbox);
        assert_eq!(outbox.len(), 4);
        let mut outbox = Outbox::new();
        instance.on_message(ServerId::new(2), BcbMessage::Send(2), &mut outbox);
        assert!(outbox.is_empty(), "echoes exactly once");
        assert_eq!(instance.echoed(), Some(&1));
    }

    #[test]
    fn request_wire_roundtrip() {
        let request: BcbRequest<String> = BcbRequest::Broadcast("pay".to_owned());
        let bytes = dagbft_codec::encode_to_vec(&request);
        let decoded: BcbRequest<String> = dagbft_codec::decode_from_slice(&bytes).unwrap();
        assert_eq!(decoded, request);
    }
}
