//! FIFO-ordered byzantine reliable broadcast.
//!
//! A *composite* deterministic protocol: each instance carries an
//! unbounded stream of broadcasts per sender, every `(origin, seq)` pair
//! running the double-echo logic of [`crate::brb`] as a sub-instance,
//! with delivery gated by per-origin sequence order (after
//! Cachin–Guerraoui–Rodrigues Module 3.9 layered over Module 3.12).
//!
//! Included to demonstrate that protocol *composition* embeds in the block
//! DAG unchanged: the framework only sees one more deterministic state
//! machine. One instance label can now serve a whole application stream
//! instead of one broadcast — the complementary point to the payments
//! app's one-label-per-transfer design.
//!
//! Properties: those of BRB per `(origin, seq)`, plus **FIFO delivery** —
//! if a correct server broadcasts `v1` before `v2`, no correct server
//! delivers `v2` before `v1`. A byzantine origin that skips a sequence
//! number stalls only *its own* stream.

use std::collections::{BTreeMap, BTreeSet};

use dagbft_codec::{DecodeError, Reader, WireDecode, WireEncode};
use dagbft_core::{DeterministicProtocol, Label, Outbox, ProtocolConfig};
use dagbft_crypto::ServerId;

use crate::value::Value;

/// Per-sender stream position.
pub type StreamSeq = u64;

/// Requests: broadcast the next value in this server's stream.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum FifoRequest<V> {
    /// `broadcast(v)` — sequenced automatically per sender.
    Broadcast(V),
}

impl<V: WireEncode> WireEncode for FifoRequest<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            FifoRequest::Broadcast(value) => {
                out.push(0);
                value.encode(out);
            }
        }
    }
}

impl<V: WireDecode> WireDecode for FifoRequest<V> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match reader.read_u8()? {
            0 => Ok(FifoRequest::Broadcast(V::decode(reader)?)),
            value => Err(DecodeError::InvalidDiscriminant {
                type_name: "FifoRequest",
                value,
            }),
        }
    }
}

/// Messages: double-echo phases tagged with the sub-instance `(origin, seq)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum FifoMessage<V> {
    /// `ECHO` for stream element `(origin, seq)`.
    Echo(ServerId, StreamSeq, V),
    /// `READY` for stream element `(origin, seq)`.
    Ready(ServerId, StreamSeq, V),
}

/// Indications: FIFO-ordered deliveries.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FifoDeliver<V> {
    /// The broadcasting server.
    pub origin: ServerId,
    /// Position in the origin's stream.
    pub seq: StreamSeq,
    /// The delivered value.
    pub value: V,
}

/// Double-echo state of one `(origin, seq)` sub-instance.
#[derive(Debug, Clone)]
struct Sub<V: Value> {
    echoed: bool,
    readied: bool,
    delivered: bool,
    echoes: BTreeMap<V, BTreeSet<ServerId>>,
    readies: BTreeMap<V, BTreeSet<ServerId>>,
}

impl<V: Value> Default for Sub<V> {
    fn default() -> Self {
        Sub {
            echoed: false,
            readied: false,
            delivered: false,
            echoes: BTreeMap::new(),
            readies: BTreeMap::new(),
        }
    }
}

/// One process instance of FIFO reliable broadcast.
///
/// # Examples
///
/// ```
/// use dagbft_core::{DeterministicProtocol, Label, Outbox, ProtocolConfig};
/// use dagbft_crypto::ServerId;
/// use dagbft_protocols::fifo::{Fifo, FifoRequest};
///
/// let config = ProtocolConfig::for_n(4);
/// let mut instance: Fifo<u64> = Fifo::new(&config, Label::new(1), ServerId::new(0));
/// let mut outbox = Outbox::new();
/// instance.on_request(FifoRequest::Broadcast(1), &mut outbox);
/// instance.on_request(FifoRequest::Broadcast(2), &mut outbox);
/// assert_eq!(outbox.len(), 8); // two sequenced ECHO broadcasts
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<V: Value> {
    config: ProtocolConfig,
    me: ServerId,
    /// Next sequence number for own broadcasts.
    next_own_seq: StreamSeq,
    subs: BTreeMap<(ServerId, StreamSeq), Sub<V>>,
    /// Values whose sub-instance completed, awaiting FIFO release.
    staged: BTreeMap<(ServerId, StreamSeq), V>,
    /// Next deliverable position per origin.
    cursor: BTreeMap<ServerId, StreamSeq>,
    pending: Vec<FifoDeliver<V>>,
}

impl<V: Value> Fifo<V> {
    /// Number of completed-but-held-back stream elements (gaps ahead).
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// The next position expected from `origin`.
    pub fn cursor_of(&self, origin: ServerId) -> StreamSeq {
        self.cursor.get(&origin).copied().unwrap_or(0)
    }

    fn handle_echo(
        &mut self,
        sender: ServerId,
        origin: ServerId,
        seq: StreamSeq,
        value: V,
        outbox: &mut Outbox<FifoMessage<V>>,
    ) {
        let quorum = self.config.quorum();
        let config = self.config;
        let sub = self.subs.entry((origin, seq)).or_default();
        if !sub.echoed {
            sub.echoed = true;
            outbox.broadcast(&config, FifoMessage::Echo(origin, seq, value.clone()));
        }
        sub.echoes.entry(value.clone()).or_default().insert(sender);
        if !sub.readied && sub.echoes[&value].len() >= quorum {
            sub.readied = true;
            outbox.broadcast(&config, FifoMessage::Ready(origin, seq, value));
        }
    }

    fn handle_ready(
        &mut self,
        sender: ServerId,
        origin: ServerId,
        seq: StreamSeq,
        value: V,
        outbox: &mut Outbox<FifoMessage<V>>,
    ) {
        let quorum = self.config.quorum();
        let plurality = self.config.plurality();
        let config = self.config;
        let sub = self.subs.entry((origin, seq)).or_default();
        sub.readies.entry(value.clone()).or_default().insert(sender);
        let ready_count = sub.readies[&value].len();
        if !sub.readied && ready_count >= plurality {
            sub.readied = true;
            outbox.broadcast(&config, FifoMessage::Ready(origin, seq, value.clone()));
        }
        if !sub.delivered && ready_count >= quorum {
            sub.delivered = true;
            self.staged.insert((origin, seq), value);
            self.release(origin);
        }
    }

    /// Releases staged values of `origin` in sequence order.
    fn release(&mut self, origin: ServerId) {
        let mut cursor = self.cursor_of(origin);
        while let Some(value) = self.staged.remove(&(origin, cursor)) {
            self.pending.push(FifoDeliver {
                origin,
                seq: cursor,
                value,
            });
            cursor += 1;
        }
        self.cursor.insert(origin, cursor);
    }
}

impl<V: Value> DeterministicProtocol for Fifo<V> {
    type Request = FifoRequest<V>;
    type Message = FifoMessage<V>;
    type Indication = FifoDeliver<V>;

    fn new(config: &ProtocolConfig, _label: Label, me: ServerId) -> Self {
        Fifo {
            config: *config,
            me,
            next_own_seq: 0,
            subs: BTreeMap::new(),
            staged: BTreeMap::new(),
            cursor: BTreeMap::new(),
            pending: Vec::new(),
        }
    }

    fn on_request(&mut self, request: Self::Request, outbox: &mut Outbox<Self::Message>) {
        let FifoRequest::Broadcast(value) = request;
        let seq = self.next_own_seq;
        self.next_own_seq += 1;
        let me = self.me;
        // Act as the origin's first echo (Algorithm 4 lines 3–5, per sub).
        self.handle_echo(me, me, seq, value, outbox);
    }

    fn on_message(
        &mut self,
        sender: ServerId,
        message: Self::Message,
        outbox: &mut Outbox<Self::Message>,
    ) {
        match message {
            FifoMessage::Echo(origin, seq, value) => {
                self.handle_echo(sender, origin, seq, value, outbox)
            }
            FifoMessage::Ready(origin, seq, value) => {
                self.handle_ready(sender, origin, seq, value, outbox)
            }
        }
    }

    fn drain_indications(&mut self) -> Vec<Self::Indication> {
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Net {
        instances: Vec<Fifo<u64>>,
        /// Messages held back (not delivered) while `true`.
        hold: bool,
        held: Vec<(usize, ServerId, FifoMessage<u64>)>,
    }

    impl Net {
        fn new(n: usize) -> Self {
            let config = ProtocolConfig::for_n(n);
            Net {
                instances: (0..n)
                    .map(|i| Fifo::new(&config, Label::new(1), ServerId::new(i as u32)))
                    .collect(),
                hold: false,
                held: Vec::new(),
            }
        }

        fn broadcast(&mut self, origin: usize, value: u64) {
            let mut outbox = Outbox::new();
            self.instances[origin].on_request(FifoRequest::Broadcast(value), &mut outbox);
            let queue: Vec<_> = outbox
                .into_messages()
                .into_iter()
                .map(|(to, m)| (to.index(), ServerId::new(origin as u32), m))
                .collect();
            self.pump(queue);
        }

        fn pump(&mut self, mut queue: Vec<(usize, ServerId, FifoMessage<u64>)>) {
            while let Some((to, from, message)) = queue.pop() {
                if self.hold {
                    self.held.push((to, from, message));
                    continue;
                }
                let mut outbox = Outbox::new();
                self.instances[to].on_message(from, message, &mut outbox);
                for (next_to, next_message) in outbox.into_messages() {
                    queue.push((next_to.index(), ServerId::new(to as u32), next_message));
                }
            }
        }

        fn release_held(&mut self) {
            self.hold = false;
            let held = std::mem::take(&mut self.held);
            self.pump(held);
        }

        fn deliveries(&mut self) -> Vec<Vec<FifoDeliver<u64>>> {
            self.instances
                .iter_mut()
                .map(|i| i.drain_indications())
                .collect()
        }
    }

    #[test]
    fn stream_delivers_in_order() {
        let mut net = Net::new(4);
        net.broadcast(0, 10);
        net.broadcast(0, 11);
        net.broadcast(0, 12);
        for log in net.deliveries() {
            let values: Vec<u64> = log
                .iter()
                .filter(|d| d.origin == ServerId::new(0))
                .map(|d| d.value)
                .collect();
            assert_eq!(values, vec![10, 11, 12]);
        }
    }

    #[test]
    fn out_of_order_completion_still_fifo() {
        // Hold the network while seq 0 is broadcast, let seq 1 finish
        // first, then release: delivery must still be 0 before 1.
        let mut net = Net::new(4);
        net.hold = true;
        net.broadcast(0, 100); // seq 0 — all traffic held
        net.hold = false;
        net.broadcast(0, 101); // seq 1 — completes immediately
                               // seq 1 is staged everywhere, not delivered (cursor at 0).
        for instance in &net.instances {
            assert_eq!(instance.staged_len(), 1);
            assert_eq!(instance.cursor_of(ServerId::new(0)), 0);
        }
        assert!(net.deliveries().iter().all(Vec::is_empty));
        // Now let seq 0 finish: both deliver, in order.
        net.release_held();
        for log in net.deliveries() {
            let values: Vec<u64> = log.iter().map(|d| d.value).collect();
            assert_eq!(values, vec![100, 101]);
        }
    }

    #[test]
    fn origins_are_independent_streams() {
        let mut net = Net::new(4);
        net.broadcast(0, 1);
        net.broadcast(1, 2);
        net.broadcast(0, 3);
        for log in net.deliveries() {
            let from0: Vec<u64> = log
                .iter()
                .filter(|d| d.origin == ServerId::new(0))
                .map(|d| d.value)
                .collect();
            let from1: Vec<u64> = log
                .iter()
                .filter(|d| d.origin == ServerId::new(1))
                .map(|d| d.value)
                .collect();
            assert_eq!(from0, vec![1, 3]);
            assert_eq!(from1, vec![2]);
        }
    }

    #[test]
    fn byzantine_gap_stalls_only_that_stream() {
        // A byzantine origin starts its stream at seq 5: correct servers
        // complete the sub-instance but never deliver (cursor waits at 0),
        // while other origins' streams are unaffected.
        let mut net = Net::new(4);
        let byz = ServerId::new(3);
        let queue: Vec<_> = (0..3)
            .map(|to| (to, byz, FifoMessage::Echo(byz, 5, 999u64)))
            .collect();
        net.pump(queue);
        net.broadcast(0, 7); // an honest stream proceeds
        for (index, log) in net.deliveries().into_iter().enumerate() {
            if index == 3 {
                continue; // byzantine's own state is its own business
            }
            assert!(log.iter().all(|d| d.origin != byz), "gap must hold back");
            assert_eq!(
                log.iter().filter(|d| d.origin == ServerId::new(0)).count(),
                1
            );
        }
        // The completed-but-gapped element is staged.
        assert_eq!(net.instances[0].staged_len(), 1);
    }

    #[test]
    fn no_duplication_per_stream_element() {
        let mut net = Net::new(4);
        net.broadcast(0, 42);
        let first = net.deliveries();
        // Replay a full round of READYs for the same element.
        let queue: Vec<_> = (0..4)
            .flat_map(|to| {
                (0..4).map(move |from| {
                    (
                        to,
                        ServerId::new(from as u32),
                        FifoMessage::Ready(ServerId::new(0), 0, 42u64),
                    )
                })
            })
            .collect();
        net.pump(queue);
        let second = net.deliveries();
        assert!(first.iter().all(|log| log.len() == 1));
        assert!(second.iter().all(Vec::is_empty), "no re-delivery");
    }

    #[test]
    fn request_wire_roundtrip() {
        let request: FifoRequest<u64> = FifoRequest::Broadcast(5);
        let bytes = dagbft_codec::encode_to_vec(&request);
        let decoded: FifoRequest<u64> = dagbft_codec::decode_from_slice(&bytes).unwrap();
        assert_eq!(decoded, request);
    }
}
