//! Byzantine Reliable Broadcast — the paper's Algorithm 4.
//!
//! Authenticated double-echo broadcast after Cachin–Guerraoui–Rodrigues
//! (Module 3.12), transcribed from the paper's appendix:
//!
//! ```text
//! broadcast(v):                       echoed := true; send ECHO v to all
//! on ECHO v, not echoed:              echoed := true; send ECHO v to all
//! on ECHO v from 2f+1, not readied:   readied := true; send READY v to all
//! on READY v from f+1, not readied:   readied := true; send READY v to all
//! on READY v from 2f+1, not delivered: delivered := true; deliver(v)
//! ```
//!
//! Properties (with `n ≥ 3f + 1`, one broadcast per instance): *validity*,
//! *no duplication*, *integrity*, *consistency*, and *totality*. Embedded
//! in the block DAG, these are preserved by the paper's Theorem 5.1; the
//! workspace's integration tests exercise them under byzantine behaviour.
//!
//! One instance (one [`dagbft_core::Label`]) carries one broadcast; the
//! application assigns fresh labels per broadcast (as the payments layer
//! does). The request is self-contained and authenticated by the block
//! signature of the server that inscribed it (§5).

use std::collections::{BTreeMap, BTreeSet};

use dagbft_codec::{DecodeError, Reader, WireDecode, WireEncode};
use dagbft_core::{DeterministicProtocol, Label, Outbox, ProtocolConfig, SnapshotProtocol};
use dagbft_crypto::ServerId;

use crate::value::Value;

/// Requests `Rqsts_BRB = { broadcast(v) | v ∈ Vals }`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum BrbRequest<V> {
    /// `broadcast(v)`.
    Broadcast(V),
}

impl<V: WireEncode> WireEncode for BrbRequest<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BrbRequest::Broadcast(value) => {
                out.push(0);
                value.encode(out);
            }
        }
    }
}

impl<V: WireDecode> WireDecode for BrbRequest<V> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match reader.read_u8()? {
            0 => Ok(BrbRequest::Broadcast(V::decode(reader)?)),
            value => Err(DecodeError::InvalidDiscriminant {
                type_name: "BrbRequest",
                value,
            }),
        }
    }
}

/// Messages `M_BRB = { ECHO v, READY v | v ∈ Vals }`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum BrbMessage<V> {
    /// First phase: `ECHO v`.
    Echo(V),
    /// Second phase: `READY v`.
    Ready(V),
}

/// Indications `Inds_BRB = { deliver(v) | v ∈ Vals }`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum BrbIndication<V> {
    /// `deliver(v)`.
    Deliver(V),
}

impl<V: WireEncode> WireEncode for BrbIndication<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        let BrbIndication::Deliver(value) = self;
        out.push(0);
        value.encode(out);
    }
}

impl<V: WireDecode> WireDecode for BrbIndication<V> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match reader.read_u8()? {
            0 => Ok(BrbIndication::Deliver(V::decode(reader)?)),
            value => Err(DecodeError::InvalidDiscriminant {
                type_name: "BrbIndication",
                value,
            }),
        }
    }
}

/// One process instance of byzantine reliable broadcast (Algorithm 4).
///
/// # Examples
///
/// Driving an instance directly (outside the DAG):
///
/// ```
/// use dagbft_core::{DeterministicProtocol, Label, Outbox, ProtocolConfig};
/// use dagbft_crypto::ServerId;
/// use dagbft_protocols::{Brb, BrbMessage, BrbRequest};
///
/// let config = ProtocolConfig::for_n(4);
/// let mut instance: Brb<u64> = Brb::new(&config, Label::new(1), ServerId::new(0));
/// let mut outbox = Outbox::new();
/// instance.on_request(BrbRequest::Broadcast(42), &mut outbox);
/// // ECHO 42 to all four servers.
/// assert_eq!(outbox.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Brb<V: Value> {
    config: ProtocolConfig,
    echoed: bool,
    readied: bool,
    delivered: bool,
    /// `ECHO v` senders, per value.
    echoes: BTreeMap<V, BTreeSet<ServerId>>,
    /// `READY v` senders, per value.
    readies: BTreeMap<V, BTreeSet<ServerId>>,
    pending: Vec<BrbIndication<V>>,
}

impl<V: Value> Brb<V> {
    /// Whether this instance has already sent its `ECHO`.
    pub fn echoed(&self) -> bool {
        self.echoed
    }

    /// Whether this instance has already sent its `READY`.
    pub fn readied(&self) -> bool {
        self.readied
    }

    /// Whether this instance has delivered.
    pub fn delivered(&self) -> bool {
        self.delivered
    }

    /// Number of distinct `ECHO` senders recorded for `value`.
    pub fn echo_count(&self, value: &V) -> usize {
        self.echoes.get(value).map_or(0, BTreeSet::len)
    }

    /// Number of distinct `READY` senders recorded for `value`.
    pub fn ready_count(&self, value: &V) -> usize {
        self.readies.get(value).map_or(0, BTreeSet::len)
    }

    fn maybe_ready(&mut self, value: &V, outbox: &mut Outbox<BrbMessage<V>>) {
        // Lines 9–11: 2f+1 ECHOs. Lines 12–14: f+1 READYs (amplification).
        let echo_quorum = self.echo_count(value) >= self.config.quorum();
        let ready_plurality = self.ready_count(value) >= self.config.plurality();
        if !self.readied && (echo_quorum || ready_plurality) {
            self.readied = true;
            outbox.broadcast(&self.config, BrbMessage::Ready(value.clone()));
        }
    }

    fn maybe_deliver(&mut self, value: &V) {
        // Lines 15–17: 2f+1 READYs.
        if !self.delivered && self.ready_count(value) >= self.config.quorum() {
            self.delivered = true;
            self.pending.push(BrbIndication::Deliver(value.clone()));
        }
    }
}

impl<V: Value> DeterministicProtocol for Brb<V> {
    type Request = BrbRequest<V>;
    type Message = BrbMessage<V>;
    type Indication = BrbIndication<V>;

    fn new(config: &ProtocolConfig, _label: Label, _me: ServerId) -> Self {
        Brb {
            config: *config,
            echoed: false,
            readied: false,
            delivered: false,
            echoes: BTreeMap::new(),
            readies: BTreeMap::new(),
            pending: Vec::new(),
        }
    }

    fn on_request(&mut self, request: Self::Request, outbox: &mut Outbox<Self::Message>) {
        let BrbRequest::Broadcast(value) = request;
        // Lines 3–5: the request is assumed authenticated (§5); echo once.
        if !self.echoed {
            self.echoed = true;
            outbox.broadcast(&self.config, BrbMessage::Echo(value));
        }
    }

    fn on_message(
        &mut self,
        sender: ServerId,
        message: Self::Message,
        outbox: &mut Outbox<Self::Message>,
    ) {
        match message {
            BrbMessage::Echo(value) => {
                // Lines 6–8: echo amplification on first ECHO.
                if !self.echoed {
                    self.echoed = true;
                    outbox.broadcast(&self.config, BrbMessage::Echo(value.clone()));
                }
                self.echoes.entry(value.clone()).or_default().insert(sender);
                self.maybe_ready(&value, outbox);
            }
            BrbMessage::Ready(value) => {
                self.readies
                    .entry(value.clone())
                    .or_default()
                    .insert(sender);
                self.maybe_ready(&value, outbox);
                self.maybe_deliver(&value);
            }
        }
    }

    fn drain_indications(&mut self) -> Vec<Self::Indication> {
        std::mem::take(&mut self.pending)
    }
}

impl<V: Value> SnapshotProtocol for Brb<V> {
    fn encode_state(&self, out: &mut Vec<u8>) {
        (self.config.n as u64).encode(out);
        (self.config.f as u64).encode(out);
        out.push(u8::from(self.echoed));
        out.push(u8::from(self.readied));
        out.push(u8::from(self.delivered));
        for tally in [&self.echoes, &self.readies] {
            (tally.len() as u32).encode(out);
            for (value, senders) in tally {
                value.encode(out);
                (senders.len() as u32).encode(out);
                for sender in senders {
                    sender.encode(out);
                }
            }
        }
        (self.pending.len() as u32).encode(out);
        for indication in &self.pending {
            indication.encode(out);
        }
    }

    fn decode_state(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = u64::decode(reader)? as usize;
        let f = u64::decode(reader)? as usize;
        let config = ProtocolConfig { n, f };
        let mut flags = [false; 3];
        for flag in &mut flags {
            *flag = match reader.read_u8()? {
                0 => false,
                1 => true,
                value => {
                    return Err(DecodeError::InvalidDiscriminant {
                        type_name: "Brb flag",
                        value,
                    })
                }
            };
        }
        let mut tallies: Vec<BTreeMap<V, BTreeSet<ServerId>>> = Vec::with_capacity(2);
        for _ in 0..2 {
            let entries = reader.read_len(2)?;
            let mut tally = BTreeMap::new();
            for _ in 0..entries {
                let value = V::decode(reader)?;
                let count = reader.read_len(4)?;
                let mut senders = BTreeSet::new();
                for _ in 0..count {
                    senders.insert(ServerId::decode(reader)?);
                }
                tally.insert(value, senders);
            }
            tallies.push(tally);
        }
        let readies = tallies.pop().expect("two tallies");
        let echoes = tallies.pop().expect("two tallies");
        let pending_count = reader.read_len(2)?;
        let mut pending = Vec::with_capacity(pending_count);
        for _ in 0..pending_count {
            pending.push(BrbIndication::decode(reader)?);
        }
        Ok(Brb {
            config,
            echoed: flags[0],
            readied: flags[1],
            delivered: flags[2],
            echoes,
            readies,
            pending,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny in-memory network of BRB instances with synchronous,
    /// in-order delivery. `byzantine_silent` servers never respond.
    struct Net {
        config: ProtocolConfig,
        instances: Vec<Brb<u64>>,
        silent: BTreeSet<usize>,
    }

    impl Net {
        fn new(n: usize) -> Self {
            let config = ProtocolConfig::for_n(n);
            Net {
                config,
                instances: (0..n)
                    .map(|i| Brb::new(&config, Label::new(1), ServerId::new(i as u32)))
                    .collect(),
                silent: BTreeSet::new(),
            }
        }

        fn silence(&mut self, server: usize) {
            self.silent.insert(server);
        }

        /// Runs `broadcast(value)` at `origin` and delivers all messages to
        /// quiescence. Returns per-server delivered values.
        fn run(&mut self, origin: usize, value: u64) -> Vec<Option<u64>> {
            let mut queue: Vec<(usize, ServerId, BrbMessage<u64>)> = Vec::new();
            let mut outbox = Outbox::new();
            self.instances[origin].on_request(BrbRequest::Broadcast(value), &mut outbox);
            for (to, message) in outbox.into_messages() {
                queue.push((to.index(), ServerId::new(origin as u32), message));
            }
            self.pump(queue)
        }

        fn pump(&mut self, mut queue: Vec<(usize, ServerId, BrbMessage<u64>)>) -> Vec<Option<u64>> {
            while let Some((to, from, message)) = queue.pop() {
                if self.silent.contains(&to) {
                    continue;
                }
                let mut outbox = Outbox::new();
                self.instances[to].on_message(from, message, &mut outbox);
                for (next_to, next_message) in outbox.into_messages() {
                    queue.push((next_to.index(), ServerId::new(to as u32), next_message));
                }
            }
            self.instances
                .iter_mut()
                .map(|instance| {
                    instance.drain_indications().pop().map(|indication| {
                        let BrbIndication::Deliver(value) = indication;
                        value
                    })
                })
                .collect()
        }

        fn config(&self) -> ProtocolConfig {
            self.config
        }
    }

    #[test]
    fn validity_all_correct_deliver() {
        let mut net = Net::new(4);
        let delivered = net.run(0, 42);
        assert_eq!(delivered, vec![Some(42); 4]);
    }

    #[test]
    fn totality_with_f_silent() {
        let mut net = Net::new(4);
        net.silence(3);
        let delivered = net.run(0, 7);
        assert_eq!(&delivered[..3], &[Some(7), Some(7), Some(7)]);
        assert_eq!(delivered[3], None);
    }

    #[test]
    fn no_progress_beyond_f_silent() {
        // With 2 of 4 silent (> f = 1), no correct server can reach the
        // 2f+1 READY quorum — safety over liveness.
        let mut net = Net::new(4);
        net.silence(2);
        net.silence(3);
        let delivered = net.run(0, 7);
        assert_eq!(delivered, vec![None, None, None, None]);
    }

    #[test]
    fn no_duplication_second_broadcast_ignored() {
        let mut net = Net::new(4);
        let first = net.run(0, 1);
        assert_eq!(first, vec![Some(1); 4]);
        // Same instance: a second broadcast finds `echoed` set everywhere.
        let second = net.run(0, 2);
        assert_eq!(second, vec![None; 4]);
    }

    #[test]
    fn consistency_under_equivocating_echoes() {
        // A byzantine broadcaster (server 3) sends ECHO 1 to {0} and
        // ECHO 2 to {1, 2} directly. No value can gather 2f+1 = 3 ECHOs
        // from distinct servers, because correct servers echo only their
        // first value... except amplification: 0 echoes 1; 1 and 2 echo 2.
        // ECHO 2 reaches {3(silent now), 1, 2} → count(2) = 3 including the
        // byzantine echo; so 2 may deliver — but crucially no correct server
        // delivers 1 as well: agreement on a single value.
        let config = ProtocolConfig::for_n(4);
        let mut instances: Vec<Brb<u64>> = (0..4)
            .map(|i| Brb::new(&config, Label::new(1), ServerId::new(i as u32)))
            .collect();
        let byz = ServerId::new(3);
        let mut queue: Vec<(usize, ServerId, BrbMessage<u64>)> = vec![
            (0, byz, BrbMessage::Echo(1)),
            (1, byz, BrbMessage::Echo(2)),
            (2, byz, BrbMessage::Echo(2)),
        ];
        let mut delivered: Vec<Option<u64>> = vec![None; 4];
        while let Some((to, from, message)) = queue.pop() {
            if to == 3 {
                continue; // byzantine stays silent from here on
            }
            let mut outbox = Outbox::new();
            instances[to].on_message(from, message, &mut outbox);
            for (next_to, next_message) in outbox.into_messages() {
                queue.push((next_to.index(), ServerId::new(to as u32), next_message));
            }
            for indication in instances[to].drain_indications() {
                let BrbIndication::Deliver(value) = indication;
                assert!(delivered[to].is_none(), "no duplication");
                delivered[to] = Some(value);
            }
        }
        let values: BTreeSet<u64> = delivered.iter().flatten().copied().collect();
        assert!(values.len() <= 1, "consistency violated: {values:?}");
    }

    #[test]
    fn ready_amplification_from_f_plus_1() {
        // A server that saw no ECHO quorum still sends READY after f+1
        // READYs (lines 12–14) — needed for totality.
        let config = ProtocolConfig::for_n(4);
        let mut instance: Brb<u64> = Brb::new(&config, Label::new(1), ServerId::new(0));
        let mut outbox = Outbox::new();
        instance.on_message(ServerId::new(1), BrbMessage::Ready(9), &mut outbox);
        assert!(outbox.is_empty());
        assert!(!instance.readied());
        let mut outbox = Outbox::new();
        instance.on_message(ServerId::new(2), BrbMessage::Ready(9), &mut outbox);
        assert!(instance.readied());
        let readies = outbox
            .into_messages()
            .into_iter()
            .filter(|(_, m)| matches!(m, BrbMessage::Ready(9)))
            .count();
        assert_eq!(readies, 4);
    }

    #[test]
    fn duplicate_senders_counted_once() {
        let config = ProtocolConfig::for_n(4);
        let mut instance: Brb<u64> = Brb::new(&config, Label::new(1), ServerId::new(0));
        let mut outbox = Outbox::new();
        for _ in 0..5 {
            instance.on_message(ServerId::new(1), BrbMessage::Ready(3), &mut outbox);
        }
        assert_eq!(instance.ready_count(&3), 1);
        assert!(!instance.readied());
    }

    #[test]
    fn larger_network_n_10() {
        let mut net = Net::new(10);
        // f = 3: silence exactly f servers.
        net.silence(7);
        net.silence(8);
        net.silence(9);
        let delivered = net.run(0, 100);
        for (server, value) in delivered.iter().enumerate().take(7) {
            assert_eq!(*value, Some(100), "server {server}");
        }
        let _ = net.config();
    }

    #[test]
    fn request_wire_roundtrip() {
        let request: BrbRequest<u64> = BrbRequest::Broadcast(77);
        let bytes = dagbft_codec::encode_to_vec(&request);
        let decoded: BrbRequest<u64> = dagbft_codec::decode_from_slice(&bytes).unwrap();
        assert_eq!(decoded, request);
    }

    #[test]
    fn snapshot_state_roundtrip_is_canonical() {
        let config = ProtocolConfig::for_n(4);
        let mut instance: Brb<u64> = Brb::new(&config, Label::new(1), ServerId::new(0));
        let mut outbox = Outbox::new();
        instance.on_message(ServerId::new(1), BrbMessage::Echo(9), &mut outbox);
        instance.on_message(ServerId::new(2), BrbMessage::Ready(9), &mut outbox);
        instance.on_message(ServerId::new(3), BrbMessage::Ready(9), &mut outbox);

        let mut bytes = Vec::new();
        instance.encode_state(&mut bytes);
        let mut reader = Reader::new(&bytes);
        let decoded = Brb::<u64>::decode_state(&mut reader).unwrap();
        assert_eq!(reader.remaining(), 0, "snapshot must be self-delimiting");

        // Canonical: identical state re-encodes to identical bytes.
        let mut reencoded = Vec::new();
        decoded.encode_state(&mut reencoded);
        assert_eq!(reencoded, bytes);

        // Observationally identical.
        assert_eq!(decoded.echoed(), instance.echoed());
        assert_eq!(decoded.readied(), instance.readied());
        assert_eq!(decoded.delivered(), instance.delivered());
        assert_eq!(decoded.echo_count(&9), instance.echo_count(&9));
        assert_eq!(decoded.ready_count(&9), instance.ready_count(&9));
    }

    #[test]
    fn snapshot_decode_never_panics_on_garbage() {
        for len in 0..64usize {
            let bytes = vec![0xFFu8; len];
            let mut reader = Reader::new(&bytes);
            let _ = Brb::<u64>::decode_state(&mut reader);
        }
    }

    #[test]
    fn message_order_echo_before_ready() {
        // The derived total order is part of the protocol contract.
        assert!(BrbMessage::Echo(5u64) < BrbMessage::Ready(0u64));
    }
}
