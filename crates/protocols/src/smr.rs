//! PBFT-lite state machine replication — the Blockmania use case.
//!
//! Blockmania (§6 of the paper) encodes "a simplified version of PBFT" in a
//! block DAG. This module provides that style of protocol as a deterministic
//! `P`: a three-phase commit (`PRE-PREPARE` → `PREPARE` → `COMMIT`) with a
//! **fixed leader per instance label** (`leader = ℓ mod n`). Running many
//! labels round-robin gives a rotating-leader system "for free" — precisely
//! the parallel-instances benefit the paper claims, and the same trick
//! Blockmania uses (one instance per block producer).
//!
//! Properties:
//!
//! * **Safety** (always, `n ≥ 3f + 1`): no two correct servers commit
//!   different values for the same slot — correct servers prepare at most
//!   one value per slot, and two 2f+1 quorums intersect in a correct
//!   server.
//! * **Liveness** (correct leader): every forwarded proposal commits.
//!   A byzantine leader can halt its own instance (never its safety);
//!   view-change requires timeouts, i.e. non-determinism, which the paper
//!   explicitly defers (§7 "partial synchrony" extension) — rotating labels
//!   provide the practical fallback.
//!
//! Committed slots are indicated **in slot order** per instance (total
//! order delivery).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dagbft_codec::{DecodeError, Reader, WireDecode, WireEncode};
use dagbft_core::{DeterministicProtocol, Label, Outbox, ProtocolConfig};
use dagbft_crypto::ServerId;

use crate::value::Value;

/// A slot in the replicated log of one SMR instance.
pub type Slot = u64;

/// Requests: propose a value for the next free slot.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum SmrRequest<V> {
    /// `propose(v)` — forwarded to the instance leader if necessary.
    Propose(V),
}

impl<V: WireEncode> WireEncode for SmrRequest<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SmrRequest::Propose(value) => {
                out.push(0);
                value.encode(out);
            }
        }
    }
}

impl<V: WireDecode> WireDecode for SmrRequest<V> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match reader.read_u8()? {
            0 => Ok(SmrRequest::Propose(V::decode(reader)?)),
            value => Err(DecodeError::InvalidDiscriminant {
                type_name: "SmrRequest",
                value,
            }),
        }
    }
}

/// Protocol messages of the three-phase commit.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum SmrMessage<V> {
    /// A non-leader forwards a proposal to the leader.
    Forward(V),
    /// The leader assigns a slot: `PRE-PREPARE(slot, v)`.
    PrePrepare(Slot, V),
    /// `PREPARE(slot, v)`.
    Prepare(Slot, V),
    /// `COMMIT(slot, v)`.
    Commit(Slot, V),
}

/// Indications: a slot committed (raised in slot order).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum SmrIndication<V> {
    /// `committed(slot, v)`.
    Committed(Slot, V),
}

/// Per-slot consensus state.
#[derive(Debug, Clone)]
struct SlotState<V: Value> {
    /// The value accepted from the leader's first `PRE-PREPARE` — the
    /// prepare lock: a correct server prepares at most one value per slot.
    accepted: Option<V>,
    prepares: BTreeMap<V, BTreeSet<ServerId>>,
    commits: BTreeMap<V, BTreeSet<ServerId>>,
    sent_commit: bool,
    committed: Option<V>,
}

impl<V: Value> Default for SlotState<V> {
    fn default() -> Self {
        SlotState {
            accepted: None,
            prepares: BTreeMap::new(),
            commits: BTreeMap::new(),
            sent_commit: false,
            committed: None,
        }
    }
}

/// One process instance of PBFT-lite SMR with leader `ℓ mod n`.
///
/// # Examples
///
/// ```
/// use dagbft_core::{DeterministicProtocol, Label, Outbox, ProtocolConfig};
/// use dagbft_crypto::ServerId;
/// use dagbft_protocols::{Smr, SmrRequest};
///
/// let config = ProtocolConfig::for_n(4);
/// // Label 2 → leader is server 2; this instance runs as server 2.
/// let mut leader: Smr<u64> = Smr::new(&config, Label::new(2), ServerId::new(2));
/// let mut outbox = Outbox::new();
/// leader.on_request(SmrRequest::Propose(9), &mut outbox);
/// assert_eq!(outbox.len(), 4); // PRE-PREPARE(0, 9) to everyone
/// ```
#[derive(Debug, Clone)]
pub struct Smr<V: Value> {
    config: ProtocolConfig,
    me: ServerId,
    leader: ServerId,
    /// Next slot the leader assigns.
    next_slot: Slot,
    /// Values the leader has already assigned a slot (at-most-once per
    /// distinct value per instance).
    assigned: BTreeSet<V>,
    slots: BTreeMap<Slot, SlotState<V>>,
    /// Lowest slot not yet delivered (ordered delivery).
    next_deliver: Slot,
    pending: VecDeque<SmrIndication<V>>,
}

impl<V: Value> Smr<V> {
    /// The leader of this instance (`ℓ mod n`).
    pub fn leader(&self) -> ServerId {
        self.leader
    }

    /// Whether this instance is the leader's.
    pub fn is_leader(&self) -> bool {
        self.me == self.leader
    }

    /// The committed value of `slot`, if any.
    pub fn committed(&self, slot: Slot) -> Option<&V> {
        self.slots.get(&slot).and_then(|s| s.committed.as_ref())
    }

    /// Number of slots committed (delivered or not).
    pub fn committed_count(&self) -> usize {
        self.slots
            .values()
            .filter(|s| s.committed.is_some())
            .count()
    }

    fn leader_assign(&mut self, value: V, outbox: &mut Outbox<SmrMessage<V>>) {
        if self.assigned.contains(&value) {
            return;
        }
        self.assigned.insert(value.clone());
        let slot = self.next_slot;
        self.next_slot += 1;
        outbox.broadcast(&self.config, SmrMessage::PrePrepare(slot, value));
    }

    fn try_deliver(&mut self) {
        while let Some(state) = self.slots.get(&self.next_deliver) {
            let Some(value) = state.committed.clone() else {
                break;
            };
            self.pending
                .push_back(SmrIndication::Committed(self.next_deliver, value));
            self.next_deliver += 1;
        }
    }
}

impl<V: Value> DeterministicProtocol for Smr<V> {
    type Request = SmrRequest<V>;
    type Message = SmrMessage<V>;
    type Indication = SmrIndication<V>;

    fn new(config: &ProtocolConfig, label: Label, me: ServerId) -> Self {
        let leader = ServerId::new((label.id() % config.n as u64) as u32);
        Smr {
            config: *config,
            me,
            leader,
            next_slot: 0,
            assigned: BTreeSet::new(),
            slots: BTreeMap::new(),
            next_deliver: 0,
            pending: VecDeque::new(),
        }
    }

    fn on_request(&mut self, request: Self::Request, outbox: &mut Outbox<Self::Message>) {
        let SmrRequest::Propose(value) = request;
        if self.is_leader() {
            self.leader_assign(value, outbox);
        } else {
            outbox.send(self.leader, SmrMessage::Forward(value));
        }
    }

    fn on_message(
        &mut self,
        sender: ServerId,
        message: Self::Message,
        outbox: &mut Outbox<Self::Message>,
    ) {
        match message {
            SmrMessage::Forward(value) => {
                if self.is_leader() {
                    self.leader_assign(value, outbox);
                }
            }
            SmrMessage::PrePrepare(slot, value) => {
                // Accept only from the leader, at most once per slot.
                if sender != self.leader {
                    return;
                }
                let state = self.slots.entry(slot).or_default();
                if state.accepted.is_none() {
                    state.accepted = Some(value.clone());
                    outbox.broadcast(&self.config, SmrMessage::Prepare(slot, value));
                }
            }
            SmrMessage::Prepare(slot, value) => {
                let quorum = self.config.quorum();
                let state = self.slots.entry(slot).or_default();
                state
                    .prepares
                    .entry(value.clone())
                    .or_default()
                    .insert(sender);
                let prepared = state.prepares[&value].len() >= quorum;
                // Commit only for the value we accepted (the prepare lock):
                // a correct server never helps commit a value it did not
                // accept from the leader.
                let is_accepted = state.accepted.as_ref() == Some(&value);
                if prepared && is_accepted && !state.sent_commit {
                    state.sent_commit = true;
                    outbox.broadcast(&self.config, SmrMessage::Commit(slot, value));
                }
            }
            SmrMessage::Commit(slot, value) => {
                let quorum = self.config.quorum();
                let state = self.slots.entry(slot).or_default();
                state
                    .commits
                    .entry(value.clone())
                    .or_default()
                    .insert(sender);
                if state.committed.is_none() && state.commits[&value].len() >= quorum {
                    state.committed = Some(value);
                    self.try_deliver();
                }
            }
        }
    }

    fn drain_indications(&mut self) -> Vec<Self::Indication> {
        self.pending.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Net {
        instances: Vec<Smr<u64>>,
        /// Servers that drop all incoming traffic.
        silent: BTreeSet<usize>,
    }

    impl Net {
        fn new(n: usize, label: u64) -> Self {
            let config = ProtocolConfig::for_n(n);
            Net {
                instances: (0..n)
                    .map(|i| Smr::new(&config, Label::new(label), ServerId::new(i as u32)))
                    .collect(),
                silent: BTreeSet::new(),
            }
        }

        fn propose(&mut self, origin: usize, value: u64) {
            let mut outbox = Outbox::new();
            self.instances[origin].on_request(SmrRequest::Propose(value), &mut outbox);
            let queue: VecDeque<(usize, ServerId, SmrMessage<u64>)> = outbox
                .into_messages()
                .into_iter()
                .map(|(to, m)| (to.index(), ServerId::new(origin as u32), m))
                .collect();
            self.pump(queue);
        }

        fn pump(&mut self, mut queue: VecDeque<(usize, ServerId, SmrMessage<u64>)>) {
            while let Some((to, from, message)) = queue.pop_front() {
                if self.silent.contains(&to) {
                    continue;
                }
                let mut outbox = Outbox::new();
                self.instances[to].on_message(from, message, &mut outbox);
                for (next_to, next_message) in outbox.into_messages() {
                    queue.push_back((next_to.index(), ServerId::new(to as u32), next_message));
                }
            }
        }

        fn committed_logs(&mut self) -> Vec<Vec<(Slot, u64)>> {
            self.instances
                .iter_mut()
                .map(|i| {
                    i.drain_indications()
                        .into_iter()
                        .map(|SmrIndication::Committed(slot, value)| (slot, value))
                        .collect()
                })
                .collect()
        }
    }

    #[test]
    fn leader_derivation_from_label() {
        let config = ProtocolConfig::for_n(4);
        let instance: Smr<u64> = Smr::new(&config, Label::new(6), ServerId::new(0));
        assert_eq!(instance.leader(), ServerId::new(2));
        assert!(!instance.is_leader());
    }

    #[test]
    fn commit_via_leader_proposal() {
        let mut net = Net::new(4, 0); // leader = s0
        net.propose(0, 42);
        let logs = net.committed_logs();
        assert_eq!(logs, vec![vec![(0, 42)]; 4]);
    }

    #[test]
    fn commit_via_forwarded_proposal() {
        let mut net = Net::new(4, 1); // leader = s1
        net.propose(3, 9); // s3 forwards to s1
        let logs = net.committed_logs();
        assert_eq!(logs, vec![vec![(0, 9)]; 4]);
    }

    #[test]
    fn slots_assigned_in_order_and_delivered_in_order() {
        let mut net = Net::new(4, 0);
        net.propose(0, 10);
        net.propose(0, 20);
        net.propose(2, 30);
        let logs = net.committed_logs();
        for log in logs {
            assert_eq!(log, vec![(0, 10), (1, 20), (2, 30)]);
        }
    }

    #[test]
    fn duplicate_proposals_assigned_once() {
        let mut net = Net::new(4, 0);
        net.propose(0, 5);
        net.propose(1, 5); // forwarded duplicate
        let logs = net.committed_logs();
        assert_eq!(logs, vec![vec![(0, 5)]; 4]);
    }

    #[test]
    fn tolerates_f_silent_followers() {
        let mut net = Net::new(4, 0);
        net.silent.insert(3);
        net.propose(0, 7);
        let logs = net.committed_logs();
        for log in &logs[..3] {
            assert_eq!(log, &vec![(0, 7)]);
        }
        assert!(logs[3].is_empty());
    }

    #[test]
    fn halts_without_quorum() {
        let mut net = Net::new(4, 0);
        net.silent.insert(2);
        net.silent.insert(3);
        net.propose(0, 7);
        let logs = net.committed_logs();
        assert!(logs.iter().all(Vec::is_empty), "no quorum, no commit");
    }

    #[test]
    fn byzantine_leader_equivocation_is_safe() {
        // The "leader" (s0) sends PRE-PREPARE(0, 1) to {s1} and
        // PRE-PREPARE(0, 2) to {s2, s3}: prepares split 1:2 (+leader's own
        // choices), no value reaches quorum 3 among correct acceptors —
        // nothing commits, and certainly not two values.
        let config = ProtocolConfig::for_n(4);
        let mut instances: Vec<Smr<u64>> = (0..4)
            .map(|i| Smr::new(&config, Label::new(0), ServerId::new(i as u32)))
            .collect();
        let leader = ServerId::new(0);
        let mut queue: VecDeque<(usize, ServerId, SmrMessage<u64>)> = VecDeque::from(vec![
            (1, leader, SmrMessage::PrePrepare(0, 1)),
            (2, leader, SmrMessage::PrePrepare(0, 2)),
            (3, leader, SmrMessage::PrePrepare(0, 2)),
        ]);
        while let Some((to, from, message)) = queue.pop_front() {
            if to == 0 {
                continue; // byzantine leader ignores the protocol now
            }
            let mut outbox = Outbox::new();
            instances[to].on_message(from, message, &mut outbox);
            for (next_to, next_message) in outbox.into_messages() {
                queue.push_back((next_to.index(), ServerId::new(to as u32), next_message));
            }
        }
        let committed: Vec<_> = instances
            .iter_mut()
            .flat_map(|i| i.drain_indications())
            .collect();
        // Value 2 gathers prepares from {2, 3} only (s1 is locked on 1):
        // 2 < quorum 3 → no commit anywhere.
        assert!(
            committed.is_empty(),
            "equivocation must not commit: {committed:?}"
        );
    }

    #[test]
    fn non_leader_preprepare_ignored() {
        let config = ProtocolConfig::for_n(4);
        let mut instance: Smr<u64> = Smr::new(&config, Label::new(0), ServerId::new(1));
        let mut outbox = Outbox::new();
        instance.on_message(ServerId::new(2), SmrMessage::PrePrepare(0, 5), &mut outbox);
        assert!(outbox.is_empty(), "only the leader may pre-prepare");
    }

    #[test]
    fn out_of_order_commits_delivered_in_order() {
        // Commit slot 1 first, then slot 0: indications must come out 0, 1.
        let config = ProtocolConfig::for_n(4);
        let mut instance: Smr<u64> = Smr::new(&config, Label::new(0), ServerId::new(1));
        let leader = ServerId::new(0);
        let mut sink = Outbox::new();
        for slot in [1u64, 0u64] {
            instance.on_message(leader, SmrMessage::PrePrepare(slot, slot + 10), &mut sink);
            for sender in 0..3 {
                instance.on_message(
                    ServerId::new(sender),
                    SmrMessage::Prepare(slot, slot + 10),
                    &mut sink,
                );
            }
            for sender in 0..3 {
                instance.on_message(
                    ServerId::new(sender),
                    SmrMessage::Commit(slot, slot + 10),
                    &mut sink,
                );
            }
        }
        let indications = instance.drain_indications();
        assert_eq!(
            indications,
            vec![
                SmrIndication::Committed(0, 10),
                SmrIndication::Committed(1, 11),
            ]
        );
    }

    #[test]
    fn request_wire_roundtrip() {
        let request: SmrRequest<u64> = SmrRequest::Propose(3);
        let bytes = dagbft_codec::encode_to_vec(&request);
        let decoded: SmrRequest<u64> = dagbft_codec::decode_from_slice(&bytes).unwrap();
        assert_eq!(decoded, request);
    }
}
