//! Adversarial property tests: protocol safety survives *arbitrary*
//! byzantine message injections and schedules.
//!
//! The byzantine servers here are unconstrained message oracles — they can
//! inject any well-typed message at any point (strictly more powerful than
//! the structured adversaries in `dagbft-sim`, though unlike real
//! byzantine servers they cannot forge *identities*, which the signature
//! layer prevents). Safety must hold in every schedule.

use std::collections::BTreeSet;

use dagbft_core::{DeterministicProtocol, Label, Outbox, ProtocolConfig};
use dagbft_crypto::ServerId;
use dagbft_protocols::{
    Brb, BrbIndication, BrbMessage, BrbRequest, Smr, SmrIndication, SmrMessage, SmrRequest,
};
use proptest::prelude::*;

/// A byzantine action: inject `message` claiming to come from the (single)
/// byzantine server, delivered to `target`.
#[derive(Debug, Clone)]
enum ByzAction {
    Echo(usize, u64),
    Ready(usize, u64),
}

fn byz_actions() -> impl Strategy<Value = Vec<ByzAction>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..3, 0u64..3).prop_map(|(t, v)| ByzAction::Echo(t, v)),
            (0usize..3, 0u64..3).prop_map(|(t, v)| ByzAction::Ready(t, v)),
        ],
        0..24,
    )
}

/// Drives 3 correct BRB instances plus one byzantine message oracle
/// (server 3). `lifo` flips the queue discipline, changing the schedule.
fn run_brb(broadcast: Option<u64>, actions: Vec<ByzAction>, lifo: bool) -> Vec<Option<u64>> {
    let config = ProtocolConfig::for_n(4);
    let mut instances: Vec<Brb<u64>> = (0..3)
        .map(|i| Brb::new(&config, Label::new(1), ServerId::new(i as u32)))
        .collect();
    let byz = ServerId::new(3);
    let mut queue: Vec<(usize, ServerId, BrbMessage<u64>)> = Vec::new();

    if let Some(value) = broadcast {
        let mut outbox = Outbox::new();
        instances[0].on_request(BrbRequest::Broadcast(value), &mut outbox);
        for (to, message) in outbox.into_messages() {
            if to.index() < 3 {
                queue.push((to.index(), ServerId::new(0), message));
            }
        }
    }
    for action in actions {
        match action {
            ByzAction::Echo(to, v) => queue.push((to, byz, BrbMessage::Echo(v))),
            ByzAction::Ready(to, v) => queue.push((to, byz, BrbMessage::Ready(v))),
        }
    }

    let mut delivered: Vec<Option<u64>> = vec![None; 3];
    while !queue.is_empty() {
        let (to, from, message) = if lifo {
            queue.pop().unwrap()
        } else {
            queue.remove(0)
        };
        let mut outbox = Outbox::new();
        instances[to].on_message(from, message, &mut outbox);
        for (next_to, next_message) in outbox.into_messages() {
            if next_to.index() < 3 {
                queue.push((next_to.index(), ServerId::new(to as u32), next_message));
            }
        }
        for BrbIndication::Deliver(value) in instances[to].drain_indications() {
            assert!(delivered[to].is_none(), "no duplication");
            delivered[to] = Some(value);
        }
    }
    delivered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn brb_consistency_under_arbitrary_byzantine_messages(
        actions in byz_actions(),
        lifo: bool,
    ) {
        // No correct broadcast: a lone byzantine server (f = 1) may or may
        // not cause delivery, but never two different values.
        let delivered = run_brb(None, actions, lifo);
        let values: BTreeSet<u64> = delivered.iter().flatten().copied().collect();
        prop_assert!(values.len() <= 1, "consistency: {values:?}");
    }

    #[test]
    fn brb_integrity_with_correct_broadcaster(
        actions in byz_actions(),
        lifo: bool,
    ) {
        // With a correct broadcaster of value 7 and byzantine values drawn
        // from 0..3 (disjoint), no correct server may deliver a byzantine
        // value once 7 is delivered anywhere (consistency), and any
        // delivered set is a single value.
        let delivered = run_brb(Some(7), actions, lifo);
        let values: BTreeSet<u64> = delivered.iter().flatten().copied().collect();
        prop_assert!(values.len() <= 1, "consistency: {values:?}");
        // Note: with f = 1 and 2f+1 = 3 quorums over {3 correct + 1 byz},
        // a byzantine value would need 2 correct echoes — impossible when
        // all correct echo 7 first in this schedule? Not guaranteed for
        // all schedules, but *agreement* (one value) always holds, which
        // is what we assert.
    }
}

/// SMR: a byzantine leader injects arbitrary pre-prepares/prepares/commits;
/// no slot may ever commit two different values at correct servers.
#[derive(Debug, Clone)]
enum SmrAction {
    PrePrepare(usize, u64, u64),
    Prepare(usize, u64, u64),
    Commit(usize, u64, u64),
}

fn smr_actions() -> impl Strategy<Value = Vec<SmrAction>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..3, 0u64..2, 0u64..3).prop_map(|(t, s, v)| SmrAction::PrePrepare(t, s, v)),
            (0usize..3, 0u64..2, 0u64..3).prop_map(|(t, s, v)| SmrAction::Prepare(t, s, v)),
            (0usize..3, 0u64..2, 0u64..3).prop_map(|(t, s, v)| SmrAction::Commit(t, s, v)),
        ],
        0..32,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn smr_agreement_under_byzantine_leader(actions in smr_actions(), lifo: bool) {
        // Label 0 → leader is server 0, which we make byzantine: it sends
        // arbitrary protocol messages. Correct servers 1..3 run the
        // protocol. Per slot, the set of committed values across correct
        // servers must be ≤ 1.
        let config = ProtocolConfig::for_n(4);
        let mut instances: Vec<Smr<u64>> = (1..4)
            .map(|i| Smr::new(&config, Label::new(0), ServerId::new(i)))
            .collect();
        let leader = ServerId::new(0);
        let mut queue: Vec<(usize, ServerId, SmrMessage<u64>)> = Vec::new();
        for action in actions {
            match action {
                SmrAction::PrePrepare(to, slot, v) => {
                    queue.push((to, leader, SmrMessage::PrePrepare(slot, v)))
                }
                SmrAction::Prepare(to, slot, v) => {
                    queue.push((to, leader, SmrMessage::Prepare(slot, v)))
                }
                SmrAction::Commit(to, slot, v) => {
                    queue.push((to, leader, SmrMessage::Commit(slot, v)))
                }
            }
        }
        // A correct proposer also forwards a proposal, exercising the
        // normal path interleaved with the attack.
        let mut outbox = Outbox::new();
        instances[0].on_request(SmrRequest::Propose(9), &mut outbox);
        for (to, message) in outbox.into_messages() {
            if (1..4).contains(&to.index()) {
                queue.push((to.index() - 1, ServerId::new(1), message));
            }
        }

        let mut committed: Vec<std::collections::BTreeMap<u64, u64>> =
            vec![Default::default(); 3];
        while !queue.is_empty() {
            let (to, from, message) = if lifo {
                queue.pop().unwrap()
            } else {
                queue.remove(0)
            };
            let mut outbox = Outbox::new();
            instances[to].on_message(from, message, &mut outbox);
            for (next_to, next_message) in outbox.into_messages() {
                if (1..4).contains(&next_to.index()) {
                    queue.push((next_to.index() - 1, ServerId::new(to as u32 + 1), next_message));
                }
            }
            for SmrIndication::Committed(slot, value) in instances[to].drain_indications() {
                let previous = committed[to].insert(slot, value);
                prop_assert!(previous.is_none(), "slot committed twice at one server");
            }
        }
        // Agreement per slot across correct servers.
        for slot in 0..2u64 {
            let values: BTreeSet<u64> = committed
                .iter()
                .filter_map(|log| log.get(&slot))
                .copied()
                .collect();
            prop_assert!(values.len() <= 1, "slot {slot} disagreement: {values:?}");
        }
    }
}
