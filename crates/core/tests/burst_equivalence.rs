//! Property tests for the deferred-admission burst engine and the
//! pending-buffer cap:
//!
//! * **burst ≡ per-message** — delivering a hostile schedule (shuffled
//!   honest rounds, an equivocation, a permanently invalid block with
//!   stranded descendants, one tampered signature per burst) through
//!   `on_block_burst` brackets produces the *byte-identical admitted
//!   DAG* and identical rejection set that one-at-a-time `on_block`
//!   produces, under all three admission engines;
//! * **burst is engine-equivalent** — under burst ingest, the three
//!   engines agree on every observable: commands per bracket, promotion
//!   order, stats, rejections, evictions, and the next own block's wire
//!   bytes;
//! * **flood stays capped** — a byzantine flood of never-promotable
//!   blocks is held at the configured pending cap by stranded-first
//!   eviction, with no change to the admitted-set bytes and an
//!   accountability event per eviction.

use std::collections::BTreeSet;

use dagbft_core::{
    AdmissionMode, Block, BlockRef, Gossip, GossipConfig, Label, LabeledRequest, SeqNum,
};
use dagbft_crypto::{sha256, Digest, KeyRegistry, ServerId, Signature};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const ALL_MODES: [AdmissionMode; 3] = [
    AdmissionMode::Index,
    AdmissionMode::Scan,
    AdmissionMode::Parallel { workers: 2 },
];

fn receiver(registry: &KeyRegistry, n: usize, mode: AdmissionMode, cap: usize) -> Gossip {
    Gossip::new(
        ServerId::new(0),
        GossipConfig::for_n(n)
            .with_admission(mode)
            .with_pending_cap(cap),
        registry.signer(ServerId::new(0)).unwrap(),
        registry.verifier(),
    )
}

/// A hostile soup: `builders` honest chained rounds, an equivocating
/// `k = 0` pair for the last builder, a permanently invalid two-parent
/// child, and a stranded grandchild.
fn hostile_soup(builders: usize, rounds: u64, registry: &KeyRegistry) -> Vec<Block> {
    let signers: Vec<_> = (1..=builders)
        .map(|i| registry.signer(ServerId::new(i as u32)).unwrap())
        .collect();
    let mut blocks = Vec::new();
    let mut prev: Vec<BlockRef> = Vec::new();
    for round in 0..rounds {
        let mut layer = Vec::new();
        for (index, signer) in signers.iter().enumerate() {
            let block = Block::build(
                signer.id(),
                SeqNum::new(round),
                prev.clone(),
                vec![LabeledRequest::encode(
                    Label::new(index as u64),
                    &(round * 10),
                )],
                signer,
            );
            layer.push(block.block_ref());
            blocks.push(block);
        }
        prev = layer;
    }
    let signer = &signers[builders - 1];
    let equivocation = Block::build(
        signer.id(),
        SeqNum::ZERO,
        vec![],
        vec![LabeledRequest::encode(Label::new(99), &7u8)],
        signer,
    );
    let two_parents = Block::build(
        signer.id(),
        SeqNum::new(1),
        vec![blocks[builders - 1].block_ref(), equivocation.block_ref()],
        vec![],
        signer,
    );
    let grandchild = Block::build(
        signer.id(),
        SeqNum::new(2),
        vec![two_parents.block_ref()],
        vec![],
        signer,
    );
    blocks.push(equivocation);
    blocks.push(two_parents);
    blocks.push(grandchild);
    blocks
}

/// Hash of the admitted DAG as a *set*: sorted refs plus each block's
/// canonical wire bytes — the burst-vs-incremental comparison unit (the
/// promotion fixed point is confluent, so the set must match even where
/// reference order may not).
fn dag_set_digest(gossip: &Gossip) -> Digest {
    let refs: BTreeSet<BlockRef> = gossip.dag().refs().copied().collect();
    let mut transcript = Vec::new();
    for block_ref in refs {
        let block = gossip.dag().get(&block_ref).expect("ref resolves");
        transcript.extend_from_slice(block_ref.as_bytes());
        transcript.extend_from_slice(block.wire_bytes());
    }
    sha256(&transcript)
}

/// Everything observable about a run, for cross-engine byte-identity.
fn full_fingerprint(gossip: &mut Gossip) -> Digest {
    let mut transcript = Vec::new();
    for block in gossip.dag().iter() {
        transcript.extend_from_slice(block.block_ref().as_bytes());
    }
    transcript.extend_from_slice(format!("{:?}", gossip.stats()).as_bytes());
    transcript.extend_from_slice(format!("{:?}", gossip.rejected()).as_bytes());
    transcript.extend_from_slice(format!("{:?}", gossip.evictions()).as_bytes());
    transcript.extend_from_slice(format!("pending:{}", gossip.pending_len()).as_bytes());
    let (own, _) = gossip.disseminate(vec![], 1_000_000);
    transcript.extend_from_slice(own.wire_bytes());
    sha256(&transcript)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite: `on_block` one-at-a-time vs `on_block_burst` (shuffled,
    /// hostile, one tampered signature per burst) produce byte-identical
    /// DAGs and identical rejection sets across all three engines — and
    /// all three engines are byte-identical to each other on the burst
    /// path.
    #[test]
    fn burst_and_per_message_admit_identical_dags(
        builders in 2usize..5,
        rounds in 2u64..6,
        // Up to 8 brackets per schedule: small late brackets against the
        // accumulated backlog exercise the incremental burst gear, big
        // ones the whole-buffer analysis gear.
        bursts in 1usize..9,
        seed in 0u64..10_000,
    ) {
        let registry = KeyRegistry::generate(builders + 1, 17);
        let mut blocks = hostile_soup(builders, rounds, &registry);
        blocks.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        // One tampered signature per burst: same shape, forged σ. The
        // twin keeps the ref its dependents committed to, so dependents
        // strand exactly as under per-message ingest.
        let burst_len = blocks.len().div_ceil(bursts);
        let mut schedule = blocks.clone();
        for chunk_start in (0..schedule.len()).step_by(burst_len.max(1)) {
            let victim = &schedule[chunk_start];
            schedule[chunk_start] = Block::build_with_signature(
                victim.builder(),
                victim.seq(),
                victim.preds().to_vec(),
                victim.requests().to_vec(),
                Signature::NULL,
            );
        }

        let mut burst_fingerprints = Vec::new();
        for mode in ALL_MODES {
            let mut one_at_a_time = receiver(&registry, builders + 1, mode, usize::MAX);
            for (t, block) in schedule.iter().enumerate() {
                one_at_a_time.on_block(block.clone(), t as u64);
            }
            let mut bursty = receiver(&registry, builders + 1, mode, usize::MAX);
            for (t, bracket) in schedule.chunks(burst_len.max(1)).enumerate() {
                bursty.on_block_burst(bracket.iter().cloned(), t as u64);
            }
            // Byte-identical admitted DAG, identical rejection set and
            // validation counters.
            prop_assert_eq!(
                dag_set_digest(&one_at_a_time),
                dag_set_digest(&bursty),
                "{:?}: admitted DAG diverged",
                mode
            );
            let rejected = |g: &Gossip| {
                g.rejected()
                    .iter()
                    .map(|(r, e)| (*r, format!("{e:?}")))
                    .collect::<BTreeSet<_>>()
            };
            prop_assert_eq!(rejected(&one_at_a_time), rejected(&bursty), "{:?}", mode);
            prop_assert_eq!(
                one_at_a_time.stats().blocks_validated,
                bursty.stats().blocks_validated,
                "{:?}", mode
            );
            prop_assert_eq!(
                one_at_a_time.stats().invalid_blocks,
                bursty.stats().invalid_blocks,
                "{:?}", mode
            );
            prop_assert_eq!(one_at_a_time.pending_len(), bursty.pending_len(), "{:?}", mode);
            burst_fingerprints.push(full_fingerprint(&mut bursty));
        }
        // Cross-engine byte-identity on the burst path, own block included.
        prop_assert_eq!(burst_fingerprints[0], burst_fingerprints[1]);
        prop_assert_eq!(burst_fingerprints[0], burst_fingerprints[2]);
    }

    /// Satellite: a byzantine flood of never-promotable blocks stays
    /// within the pending cap — honest admission unchanged byte-for-byte,
    /// one accountability event per eviction, all engines identical.
    /// Honest traffic and the flood arrive in causal order (the cap
    /// bounds *memory*; out-of-order honest gaps are the FWD path's job,
    /// pinned by the gossip unit tests).
    #[test]
    fn byzantine_flood_stays_within_cap(
        cap in 4usize..12,
        flood in 16usize..48,
        chain_flood in any::<bool>(),
        rounds in 2u64..6,
    ) {
        let registry = KeyRegistry::generate(3, 23);
        let honest = hostile_soup(2, rounds, &registry);
        // The flood hangs off the permanently invalid two-parent block
        // (third from the end of the soup): either a deep chain or a wide
        // fan of direct children — both never-promotable.
        let flooder = registry.signer(ServerId::new(2)).unwrap();
        let rejected_root = honest[honest.len() - 2].block_ref();
        let mut flood_blocks = Vec::new();
        let mut parent = rejected_root;
        for k in 0..flood as u64 {
            let block = Block::build(
                ServerId::new(2),
                SeqNum::new(10 + k),
                vec![if chain_flood { parent } else { rejected_root }],
                vec![LabeledRequest::encode(Label::new(777), &k)],
                &flooder,
            );
            parent = block.block_ref();
            flood_blocks.push(block);
        }
        let mut fingerprints = Vec::new();
        for mode in ALL_MODES {
            let mut baseline = receiver(&registry, 3, mode, usize::MAX);
            for (t, block) in honest.iter().enumerate() {
                baseline.on_block(block.clone(), t as u64);
            }
            let baseline_digest = dag_set_digest(&baseline);

            let mut capped = receiver(&registry, 3, mode, cap);
            for (t, block) in honest.iter().enumerate() {
                capped.on_block(block.clone(), t as u64);
                prop_assert!(capped.pending_len() <= cap, "{:?}: honest phase", mode);
            }
            for (t, block) in flood_blocks.iter().enumerate() {
                capped.on_block(block.clone(), 1_000 + t as u64);
                prop_assert!(capped.pending_len() <= cap, "{:?}: flood phase", mode);
            }
            // The flood changed nothing about what was admitted.
            prop_assert_eq!(baseline_digest, dag_set_digest(&capped), "{:?}", mode);
            // Every eviction is logged, and evictions only ever hit the
            // flooder's stranded blocks (the honest soup's own stranded
            // grandchild is older than every flood block, so it may be
            // evicted too — but it belongs to the equivocator, builder 2).
            prop_assert_eq!(
                capped.stats().blocks_evicted as usize,
                capped.evictions().len(),
                "{:?}", mode
            );
            for event in capped.evictions() {
                prop_assert!(
                    event.stranded_on.is_some(),
                    "{:?}: only never-promotable blocks evicted under flood",
                    mode
                );
            }
            fingerprints.push(full_fingerprint(&mut capped));
        }
        prop_assert_eq!(fingerprints[0], fingerprints[1]);
        prop_assert_eq!(fingerprints[0], fingerprints[2]);
    }
}
