//! Property tests at the gossip/DAG level:
//!
//! * delivery-order invariance — a gossip instance receiving the same
//!   block set in any permutation builds the same DAG (the fixed point of
//!   Algorithm 1's promotion loop, Lemma A.5);
//! * reference-once — correct servers reference each received block
//!   exactly once (Lemma A.6), regardless of arrival order;
//! * block wire fuzz — arbitrary bytes never panic the block decoder;
//! * tampered-wave rejection — a delivery wave containing one
//!   forged-signature block rejects exactly that block, promotes every
//!   honest block not depending on it, and leaves its dependents pending,
//!   identically under all three admission engines;
//! * encode-once cache — a block's cached wire bytes are bit-identical to
//!   a fresh field-by-field encoding across build → encode → decode
//!   round-trips, `ref(B)` from the cached preimage equals the recomputed
//!   reference, and tampered bytes fail validation instead of being
//!   vouched for by the cache.

use dagbft_core::{
    AdmissionMode, Block, Gossip, GossipConfig, Label, LabeledRequest, NetMessage, SeqNum,
};
use dagbft_crypto::{KeyRegistry, SchemeKind, ServerId, Signature};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Builds a set of valid blocks: `builders` servers × `rounds` rounds,
/// each block referencing the whole previous round.
fn block_soup(builders: usize, rounds: u64, with_requests: bool) -> Vec<Block> {
    block_soup_with(SchemeKind::Hmac, builders, rounds, with_requests)
}

/// [`block_soup`] under an explicit signature scheme.
fn block_soup_with(
    scheme: SchemeKind,
    builders: usize,
    rounds: u64,
    with_requests: bool,
) -> Vec<Block> {
    let registry = KeyRegistry::generate_kind(scheme, builders + 1, 17);
    let signers: Vec<_> = (1..=builders)
        .map(|i| registry.signer(ServerId::new(i as u32)).unwrap())
        .collect();
    let mut blocks = Vec::new();
    let mut prev: Vec<_> = Vec::new();
    for round in 0..rounds {
        let mut layer = Vec::new();
        for (index, signer) in signers.iter().enumerate() {
            let requests = if with_requests && round == 0 {
                vec![LabeledRequest::encode(Label::new(index as u64), &round)]
            } else {
                vec![]
            };
            let block = Block::build(
                signer.id(),
                SeqNum::new(round),
                prev.clone(),
                requests,
                signer,
            );
            layer.push(block.block_ref());
            blocks.push(block);
        }
        prev = layer;
    }
    blocks
}

/// Feeds `blocks` to a fresh receiver (server 0) in the given order and
/// returns (dag block count, refs of the receiver's next block).
fn receive_in_order(blocks: &[Block], order: &[usize], builders: usize) -> (usize, Vec<String>) {
    let registry = KeyRegistry::generate(builders + 1, 17);
    let mut receiver = Gossip::new(
        ServerId::new(0),
        GossipConfig::for_n(builders + 1),
        registry.signer(ServerId::new(0)).unwrap(),
        registry.verifier(),
    );
    for index in order {
        receiver.on_block(blocks[*index].clone(), 0);
    }
    let received = receiver.dag().len(); // before the own block is added
    let (own, _) = receiver.disseminate(vec![], 1);
    let mut refs: Vec<String> = own.preds().iter().map(|r| r.to_string()).collect();
    refs.sort();
    (received, refs)
}

/// Forges one block's signature inside a full delivery wave and checks —
/// under every admission engine — that exactly the tampered block is
/// rejected, its round-mates promote, and its dependents stay pending,
/// with identical promotion orders across engines.
fn tampered_wave_case(scheme: SchemeKind, builders: usize, rounds: u64, tamper: usize, seed: u64) {
    let mut blocks = block_soup_with(scheme, builders, rounds, true);
    let tamper = tamper % blocks.len();
    // Forge the signature of one block. `ref(B)` excludes `σ`
    // (Definition 3.1), so the twin keeps the reference its
    // dependents committed to — the wave sees a correctly shaped,
    // badly signed block.
    let victim = &blocks[tamper];
    let forged = Block::build_with_signature(
        victim.builder(),
        victim.seq(),
        victim.preds().to_vec(),
        victim.requests().to_vec(),
        Signature::NULL,
    );
    prop_assert_eq!(forged.block_ref(), victim.block_ref());
    let forged_ref = forged.block_ref();
    blocks[tamper] = forged;

    let mut order: Vec<usize> = (0..blocks.len()).collect();
    order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));

    // Expectations from the soup's shape (each block references the
    // whole previous round): rounds before the victim's promote in
    // full, the victim's round-mates promote, every later round
    // depends on the victim and must stay pending.
    let tamper_round = tamper / builders;
    let expected_promoted = tamper_round * builders + (builders - 1);
    let expected_pending = (rounds as usize - tamper_round - 1) * builders;

    let registry = KeyRegistry::generate_kind(scheme, builders + 1, 17);
    let mut orders = Vec::new();
    for mode in [
        AdmissionMode::Index,
        AdmissionMode::Scan,
        AdmissionMode::Parallel { workers: 2 },
    ] {
        let mut receiver = Gossip::new(
            ServerId::new(0),
            GossipConfig::for_n(builders + 1).with_admission(mode),
            registry.signer(ServerId::new(0)).unwrap(),
            registry.verifier(),
        );
        for index in &order {
            receiver.on_block(blocks[*index].clone(), 0);
        }
        prop_assert_eq!(receiver.dag().len(), expected_promoted, "{mode:?}");
        prop_assert_eq!(receiver.pending_len(), expected_pending, "{mode:?}");
        prop_assert_eq!(receiver.rejected().len(), 1, "{mode:?}");
        let (rejected_ref, reason) = &receiver.rejected()[0];
        prop_assert_eq!(*rejected_ref, forged_ref, "{mode:?}");
        prop_assert!(
            matches!(reason, dagbft_core::InvalidBlockError::BadSignature { .. }),
            "{mode:?}: wrong rejection reason {reason:?}"
        );
        prop_assert!(!receiver.dag().contains(&forged_ref), "{mode:?}");
        prop_assert_eq!(receiver.stats().invalid_blocks, 1, "{mode:?}");
        orders.push(
            receiver
                .dag()
                .iter()
                .map(|b| b.block_ref())
                .collect::<Vec<_>>(),
        );
    }
    // All three engines promoted in the same order.
    prop_assert_eq!(&orders[0], &orders[1]);
    prop_assert_eq!(&orders[0], &orders[2]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gossip_is_delivery_order_invariant(
        builders in 2usize..4,
        rounds in 1u64..4,
        seed_a in 0u64..10_000,
        seed_b in 0u64..10_000,
    ) {
        let blocks = block_soup(builders, rounds, true);
        let mut order_a: Vec<usize> = (0..blocks.len()).collect();
        let mut order_b = order_a.clone();
        order_a.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed_a));
        order_b.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed_b));

        let (len_a, refs_a) = receive_in_order(&blocks, &order_a, builders);
        let (len_b, refs_b) = receive_in_order(&blocks, &order_b, builders);
        // Same DAG regardless of arrival order (Lemma A.5 fixed point)…
        prop_assert_eq!(len_a, blocks.len());
        prop_assert_eq!(len_a, len_b);
        // …and the own block references every received block exactly once
        // (Lemma A.6), as a set.
        prop_assert_eq!(refs_a.len(), blocks.len());
        prop_assert_eq!(refs_a, refs_b);
    }

    #[test]
    fn tampered_block_in_wave_rejected_exactly(
        builders in 2usize..5,
        rounds in 2u64..5,
        tamper in 0usize..16,
        seed in 0u64..10_000,
    ) {
        tampered_wave_case(SchemeKind::Hmac, builders, rounds, tamper, seed);
    }

    #[test]
    fn duplicate_deliveries_change_nothing(
        builders in 2usize..4,
        rounds in 1u64..4,
        dup_factor in 2usize..4,
        seed in 0u64..10_000,
    ) {
        let blocks = block_soup(builders, rounds, false);
        let mut order: Vec<usize> = (0..blocks.len())
            .flat_map(|i| std::iter::repeat_n(i, dup_factor))
            .collect();
        order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let (len, refs) = receive_in_order(&blocks, &order, builders);
        prop_assert_eq!(len, blocks.len());
        // Each block referenced once despite duplicate deliveries.
        prop_assert_eq!(refs.len(), blocks.len());
    }

    #[test]
    fn block_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = dagbft_codec::decode_from_slice::<Block>(&bytes);
        let _ = dagbft_codec::decode_from_slice::<NetMessage>(&bytes);
    }

    #[test]
    fn block_wire_roundtrip(
        builder in 0u32..4,
        seq in 0u64..100,
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 0..5),
    ) {
        let registry = KeyRegistry::generate(4, 3);
        let signer = registry.signer(ServerId::new(builder)).unwrap();
        let requests: Vec<LabeledRequest> = payloads
            .into_iter()
            .enumerate()
            .map(|(i, payload)| LabeledRequest {
                label: Label::new(i as u64),
                payload: bytes::Bytes::from(payload),
            })
            .collect();
        let block = Block::build(ServerId::new(builder), SeqNum::new(seq), vec![], requests, &signer);
        let bytes = dagbft_codec::encode_to_vec(&block);
        let decoded: Block = dagbft_codec::decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(decoded.block_ref(), block.block_ref());
        prop_assert_eq!(decoded, block);
    }

    #[test]
    fn cached_wire_bytes_bit_identical_across_roundtrips(
        builder in 0u32..4,
        seq in 0u64..100,
        with_pred in any::<bool>(),
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 0..5),
    ) {
        let registry = KeyRegistry::generate(4, 3);
        let signer = registry.signer(ServerId::new(builder)).unwrap();
        let preds = if with_pred {
            let parent = Block::build(ServerId::new(builder), SeqNum::ZERO, vec![], vec![], &signer);
            vec![parent.block_ref()]
        } else {
            vec![]
        };
        let requests: Vec<LabeledRequest> = payloads
            .into_iter()
            .enumerate()
            .map(|(i, payload)| LabeledRequest {
                label: Label::new(i as u64),
                payload: bytes::Bytes::from(payload),
            })
            .collect();
        let block = Block::build(ServerId::new(builder), SeqNum::new(seq), preds, requests, &signer);

        // The cache equals a fresh encoding at every stage of the
        // build → encode → decode → re-encode pipeline.
        let fresh = dagbft_codec::encode_to_vec(&block);
        prop_assert_eq!(block.wire_bytes().as_ref(), fresh.as_slice());

        let decoded: Block = dagbft_codec::decode_from_slice(&fresh).unwrap();
        prop_assert_eq!(decoded.wire_bytes().as_ref(), fresh.as_slice());
        prop_assert_eq!(dagbft_codec::encode_to_vec(&decoded), fresh.clone());

        // The zero-copy path produces the same cache, as a slice of the
        // receive buffer.
        let buffer = bytes::Bytes::from(fresh.clone());
        let sliced: Block = dagbft_codec::decode_from_bytes(&buffer).unwrap();
        prop_assert_eq!(sliced.wire_bytes().as_ref(), fresh.as_slice());
        prop_assert!(sliced.wire_bytes().shares_allocation_with(&buffer));

        // ref(B) from the cached preimage equals the reference recomputed
        // from a fresh field-by-field encoding of the decoded block.
        let recomputed = Block::build_with_signature(
            decoded.builder(),
            decoded.seq(),
            decoded.preds().to_vec(),
            decoded.requests().to_vec(),
            *decoded.signature(),
        );
        prop_assert_eq!(recomputed.block_ref(), block.block_ref());
        prop_assert_eq!(
            dagbft_crypto::sha256(decoded.signing_preimage()),
            block.block_ref().digest()
        );
    }

    #[test]
    fn tampered_wire_bytes_fail_validation(
        builder in 0u32..4,
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 0..4),
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let registry = KeyRegistry::generate(4, 3);
        let signer = registry.signer(ServerId::new(builder)).unwrap();
        let requests: Vec<LabeledRequest> = payloads
            .into_iter()
            .enumerate()
            .map(|(i, payload)| LabeledRequest {
                label: Label::new(i as u64),
                payload: bytes::Bytes::from(payload),
            })
            .collect();
        let block = Block::build(ServerId::new(builder), SeqNum::ZERO, vec![], requests, &signer);
        let mut tampered = dagbft_codec::encode_to_vec(&block);
        let index = flip_at % tampered.len();
        tampered[index] ^= 1 << flip_bit;

        // A tampered byte either breaks decoding outright, or yields a
        // block whose cached reference no longer matches the signature —
        // the cache is derived from the actual bytes, never trusted.
        let buffer = bytes::Bytes::from(tampered.clone());
        if let Ok(decoded) = dagbft_codec::decode_from_bytes::<Block>(&buffer) {
            prop_assert_eq!(decoded.wire_bytes().as_ref(), tampered.as_slice());
            prop_assert!(
                decoded.block_ref() != block.block_ref()
                    || !decoded.verify_signature(&registry.verifier()),
                "tampered block must not keep the original ref AND verify"
            );
        }
    }
}

/// Builds a [`dagbft_core::BlockDag`] from a soup (which is emitted in
/// topological order, so plain insertion succeeds).
fn soup_dag(blocks: &[Block]) -> dagbft_core::BlockDag {
    let mut dag = dagbft_core::BlockDag::new();
    for block in blocks {
        dag.insert(block.clone()).expect("soup is topological");
    }
    dag
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dag_image_roundtrip_and_truncation(
        builders in 2usize..4,
        rounds in 1u64..4,
        cut in any::<usize>(),
    ) {
        let dag = soup_dag(&block_soup(builders, rounds, true));
        let bytes = dagbft_core::persist_dag(&dag);

        // Roundtrip: same refs, valid invariants, and a byte-identical
        // re-persist (the image is canonical, not merely equivalent).
        let restored = dagbft_core::restore_dag(&bytes).unwrap();
        prop_assert_eq!(restored.len(), dag.len());
        for r in dag.refs() {
            prop_assert!(restored.contains(r));
        }
        prop_assert!(restored.check_invariants());
        prop_assert_eq!(dagbft_core::persist_dag(&restored), bytes.clone());

        // Any strict-prefix truncation maps to the exact typed error —
        // the image's block count promises bytes that are no longer
        // there. Never a panic, never a silently shorter DAG.
        let cut = cut % bytes.len();
        prop_assert!(matches!(
            dagbft_core::restore_dag(&bytes[..cut]),
            Err(dagbft_core::recovery::RestoreError::Corrupt(_))
        ));
    }

    #[test]
    fn dag_image_bit_flips_are_caught_or_rejected(
        builders in 2usize..4,
        rounds in 1u64..3,
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
        seq_bit in 0u8..64,
    ) {
        let dag = soup_dag(&block_soup(builders, rounds, false));
        let originals: Vec<_> = dag.refs().copied().collect();
        let bytes = dagbft_core::persist_dag(&dag);

        // An arbitrary single-bit flip anywhere never panics the restore,
        // and whatever survives still satisfies the DAG invariants.
        let mut anywhere = bytes.clone();
        let at = flip_at % anywhere.len();
        anywhere[at] ^= 1 << flip_bit;
        if let Ok(restored) = dagbft_core::restore_dag(&anywhere) {
            prop_assert!(restored.check_invariants());
        }

        // A flip inside the first block's *content* (its sequence-number
        // field: u32 image count, u32 builder, then the u64 seq) changes
        // the block's recomputed `ref(B)` — the original identity must
        // not survive the restore (successors referencing it fail, or the
        // ref set visibly changes). Tampering never goes unnoticed.
        let mut tampered = bytes.clone();
        tampered[8 + (seq_bit / 8) as usize] ^= 1 << (seq_bit % 8);
        match dagbft_core::restore_dag(&tampered) {
            Err(_) => {}
            Ok(restored) => prop_assert!(
                !originals.iter().all(|r| restored.contains(r)),
                "a content flip kept every original block identity"
            ),
        }
    }
}

proptest! {
    // Real ed25519 admission is ~three orders of magnitude costlier than
    // the HMAC stand-in, so a few cases suffice — the HMAC variant above
    // carries the case-count load and the schemes share every code path
    // beyond `SignatureScheme::verify*`.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn tampered_block_in_wave_rejected_exactly_ed25519(
        builders in 2usize..4,
        rounds in 2u64..4,
        tamper in 0usize..16,
        seed in 0u64..10_000,
    ) {
        tampered_wave_case(SchemeKind::Ed25519, builders, rounds, tamper, seed);
    }
}
