//! Copy-on-write ≡ clone-per-block: the two interpreters are
//! observationally identical.
//!
//! [`dagbft_core::Interpreter`] shares per-block state structurally
//! (`Arc`-of-map, clone-on-write per touched label);
//! [`dagbft_core::ReferenceInterpreter`] is the literal Algorithm 2
//! transcription that deep-clones `PIs` at every block. Lemma 4.2 makes
//! interpretation a pure function of the DAG, so the two must agree on
//! *everything* observable: per-block instance states, in/out buffers,
//! active sets, indications (including order, when driven in the same
//! block order), and work counters.
//!
//! The property runs both interpreters in lockstep over random DAGs that
//! include the hostile shapes: equivocating builders (two valid blocks at
//! the same sequence number), malformed request payloads (byzantine bytes
//! that fail to decode), servers skipping rounds, and multi-label traffic.

use std::collections::{BTreeMap, BTreeSet};

use dagbft_core::{
    Block, BlockDag, BlockRef, DeterministicProtocol, Interpreter, Label, LabeledRequest, Outbox,
    ProtocolConfig, ReferenceInterpreter, SeqNum,
};
use dagbft_crypto::{KeyRegistry, ServerId};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A deterministic protocol with enough internal state to catch sharing
/// bugs: it counts every received (sender, value) pair, relays odd values
/// back once (second-hop traffic), and indicates every receipt.
#[derive(Debug, Clone, PartialEq)]
struct Relay {
    config: ProtocolConfig,
    received: BTreeMap<(ServerId, u64), u32>,
    relayed: BTreeSet<u64>,
    pending: Vec<(ServerId, u64)>,
}

impl DeterministicProtocol for Relay {
    type Request = u64;
    type Message = u64;
    type Indication = (ServerId, u64);

    fn new(config: &ProtocolConfig, _label: Label, _me: ServerId) -> Self {
        Relay {
            config: *config,
            received: BTreeMap::new(),
            relayed: BTreeSet::new(),
            pending: Vec::new(),
        }
    }

    fn on_request(&mut self, request: u64, outbox: &mut Outbox<u64>) {
        outbox.broadcast(&self.config, request);
    }

    fn on_message(&mut self, sender: ServerId, message: u64, outbox: &mut Outbox<u64>) {
        *self.received.entry((sender, message)).or_default() += 1;
        self.pending.push((sender, message));
        if message % 2 == 1 && self.relayed.insert(message) {
            outbox.send(sender, message + 1);
        }
    }

    fn drain_indications(&mut self) -> Vec<(ServerId, u64)> {
        std::mem::take(&mut self.pending)
    }
}

/// Per server and round: whether it produces a block, whether it
/// *equivocates* (a second valid block at the same sequence number), and
/// which payload kind the block carries (0 = none, 1 = valid request,
/// 2 = malformed garbage, 3 = valid + garbage).
#[derive(Debug, Clone)]
struct DagSpec {
    n: usize,
    rounds: Vec<Vec<(bool, bool, u8, u64)>>,
}

fn dag_spec() -> impl Strategy<Value = DagSpec> {
    (2usize..5)
        .prop_flat_map(|n| {
            let entry = (any::<bool>(), any::<bool>(), 0u8..4, 0u64..100);
            let round = proptest::collection::vec(entry, n..=n);
            (Just(n), proptest::collection::vec(round, 1..5))
        })
        .prop_map(|(n, rounds)| DagSpec { n, rounds })
}

fn requests_for(kind: u8, value: u64) -> Vec<LabeledRequest> {
    let label = Label::new(value % 3);
    let valid = LabeledRequest::encode(label, &value);
    let garbage = LabeledRequest {
        label,
        // Too short to decode as u64: the interpreter must count it as
        // malformed and never show it to P.
        payload: bytes::Bytes::from_static(&[0xde, 0xad]),
    };
    match kind {
        0 => vec![],
        1 => vec![valid],
        2 => vec![garbage],
        _ => vec![valid, garbage],
    }
}

/// Builds a block DAG from the spec. Every produced block references the
/// previous layer's blocks of *other* builders (both branches of an
/// equivocator — correct servers may see and reference both) plus its own
/// parent; an equivocating builder continues its chain from the first
/// branch only (Definition 3.3 (ii) forbids joining them).
fn build_dag(spec: &DagSpec) -> BlockDag {
    let registry = KeyRegistry::generate(spec.n, 5);
    let signers: Vec<_> = (0..spec.n)
        .map(|i| registry.signer(ServerId::new(i as u32)).unwrap())
        .collect();
    let mut dag = BlockDag::new();
    let mut seqs = vec![0u64; spec.n];
    let mut parents: Vec<Option<BlockRef>> = vec![None; spec.n];
    let mut last_layer: Vec<(usize, BlockRef)> = Vec::new();

    for round in &spec.rounds {
        let mut this_layer = Vec::new();
        for (server, (produce, equivocate, kind, value)) in round.iter().enumerate() {
            if !produce {
                continue;
            }
            let mut preds: Vec<BlockRef> = last_layer
                .iter()
                .filter(|(builder, _)| *builder != server)
                .map(|(_, r)| *r)
                .collect();
            if let Some(parent) = parents[server] {
                preds.push(parent);
            }
            let block = Block::build(
                ServerId::new(server as u32),
                SeqNum::new(seqs[server]),
                preds.clone(),
                requests_for(*kind, *value),
                &signers[server],
            );
            dag.insert(block.clone()).unwrap();
            this_layer.push((server, block.block_ref()));
            if *equivocate {
                // Same builder, same sequence number, same preds — but
                // different content: a *valid* equivocation (Example 3.5).
                let twin = Block::build(
                    ServerId::new(server as u32),
                    SeqNum::new(seqs[server]),
                    preds,
                    requests_for(1, value + 1000),
                    &signers[server],
                );
                dag.insert(twin.clone()).unwrap();
                this_layer.push((server, twin.block_ref()));
            }
            // The builder's own chain continues from the first branch.
            parents[server] = Some(block.block_ref());
            seqs[server] += 1;
        }
        if !this_layer.is_empty() {
            last_layer = this_layer;
        }
    }
    dag
}

/// Drives both interpreters over `dag` in the *same* (seed-shuffled)
/// eligible order and asserts observational equality block by block.
fn assert_equivalent(dag: &BlockDag, pick_seed: u64) {
    let n = dag.known_servers().count().max(1);
    let config = ProtocolConfig::for_n(n);
    let mut reference: ReferenceInterpreter<Relay> = ReferenceInterpreter::new(config);
    let mut cow: Interpreter<Relay> = Interpreter::new(config);
    let mut rng = rand::rngs::StdRng::seed_from_u64(pick_seed);

    loop {
        let mut eligible = reference.eligible(dag);
        if eligible.is_empty() {
            break;
        }
        eligible.shuffle(&mut rng);
        let pick = eligible[0];
        reference.interpret_block(dag, &pick).expect("eligible");
        cow.interpret_block(dag, &pick).expect("eligible");
    }

    // Same work counters and the same indication *sequence* (both were
    // driven in the same block order).
    assert_eq!(reference.stats(), cow.stats());
    assert_eq!(reference.drain_indications(), cow.drain_indications());
    assert_eq!(reference.interpreted_count(), dag.len());
    assert_eq!(cow.interpreted_count(), dag.len());

    for r in dag.refs() {
        let naive = reference.state(r).expect("interpreted");
        let shared = cow.state(r).expect("interpreted");

        let labels_naive: Vec<Label> = naive.instance_labels().copied().collect();
        let labels_shared: Vec<Label> = shared.instance_labels().copied().collect();
        assert_eq!(&labels_naive, &labels_shared, "instance labels at {}", r);

        let active_naive: Vec<Label> = naive.active_labels().copied().collect();
        let active_shared: Vec<Label> = shared.active_labels().copied().collect();
        assert_eq!(active_naive, active_shared, "active labels at {}", r);

        for label in labels_naive {
            // Bit-identical instance state: Relay derives PartialEq over
            // its entire state.
            assert_eq!(
                naive.instance(label),
                shared.instance(label),
                "instance {} at {}",
                label,
                r
            );
        }
        for label in (0..3).map(Label::new) {
            let outs_naive: Vec<_> = naive.out_messages(label).collect();
            let outs_shared: Vec<_> = shared.out_messages(label).collect();
            assert_eq!(outs_naive, outs_shared, "out buffers {} at {}", label, r);
            let ins_naive: Vec<_> = naive.in_messages(label).collect();
            let ins_shared: Vec<_> = shared.in_messages(label).collect();
            assert_eq!(ins_naive, ins_shared, "in buffers {} at {}", label, r);
        }
    }

    // The sharing interpreter never stores more than the naive one would.
    let footprint = cow.footprint();
    assert!(footprint.unique_instances <= footprint.instances);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cow_interpreter_equals_reference_on_random_dags(
        spec in dag_spec(),
        pick_seed in 0u64..10_000,
    ) {
        let dag = build_dag(&spec);
        assert!(dag.check_invariants());
        assert_equivalent(&dag, pick_seed);
    }
}

/// A fixed, maximally hostile scenario kept as a plain test so it runs
/// even with `PROPTEST_CASES=0`: every server equivocates at round 0 with
/// garbage alongside valid requests.
#[test]
fn equivalence_under_full_equivocation() {
    let spec = DagSpec {
        n: 4,
        rounds: vec![
            vec![
                (true, true, 3, 1),
                (true, true, 3, 2),
                (true, true, 3, 3),
                (true, true, 3, 4),
            ],
            vec![
                (true, false, 0, 0),
                (true, false, 0, 0),
                (true, false, 0, 0),
                (true, false, 0, 0),
            ],
            vec![
                (true, false, 1, 50),
                (false, false, 0, 0),
                (true, false, 2, 60),
                (true, false, 0, 0),
            ],
        ],
    };
    let dag = build_dag(&spec);
    assert!(dag.check_invariants());
    assert_equivalent(&dag, 7);
}
