//! Block DAG framework for embedding deterministic BFT protocols.
//!
//! This crate implements the core contribution of *"Embedding a
//! Deterministic BFT Protocol in a Block DAG"* (Schett & Danezis,
//! PODC 2021): a framework that lets servers run any deterministic
//! Byzantine fault tolerant protocol `P` on top of a jointly built block
//! DAG instead of a point-to-point network, preserving `P`'s interface,
//! safety, and liveness (the paper's Theorem 5.1).
//!
//! The components follow the paper's Figure 1:
//!
//! * [`block`] — blocks and their validity (Definitions 3.1 and 3.3);
//! * [`dag`] — the block DAG itself (Definitions 2.1 and 3.4);
//! * [`gossip`] — Algorithm 1: building and exchanging blocks;
//! * [`interpret`] — Algorithm 2: off-line interpretation of `P` over the
//!   DAG, materializing messages without sending them;
//! * [`shim`] — Algorithm 3: the user-facing choreography of the above;
//! * [`protocol`] — the black-box abstraction of a deterministic `P`.
//!
//! # Quickstart
//!
//! ```
//! use dagbft_core::{
//!     Label, ProtocolConfig, Shim, ShimConfig,
//!     protocol::{DeterministicProtocol, Outbox},
//! };
//! use dagbft_crypto::{KeyRegistry, ServerId};
//!
//! // A trivial deterministic protocol: indicate every received request.
//! #[derive(Clone, Debug)]
//! struct Echo { pending: Vec<u64> }
//! impl DeterministicProtocol for Echo {
//!     type Request = u64;
//!     type Message = u64;
//!     type Indication = u64;
//!     fn new(_: &ProtocolConfig, _: Label, _: ServerId) -> Self {
//!         Echo { pending: Vec::new() }
//!     }
//!     fn on_request(&mut self, req: u64, _out: &mut Outbox<u64>) {
//!         self.pending.push(req);
//!     }
//!     fn on_message(&mut self, _from: ServerId, _msg: u64, _out: &mut Outbox<u64>) {}
//!     fn drain_indications(&mut self) -> Vec<u64> {
//!         std::mem::take(&mut self.pending)
//!     }
//! }
//!
//! let registry = KeyRegistry::generate(1, 7);
//! let config = ShimConfig::new(ProtocolConfig::for_n(1));
//! let mut shim: Shim<Echo> = Shim::new(ServerId::new(0), config, &registry).unwrap();
//! shim.request(Label::new(1), 42);
//! shim.disseminate(0); // a single server needs no network
//! assert_eq!(shim.poll_indications(), vec![(Label::new(1), 42)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accountability;
pub mod block;
pub mod dag;
pub mod defense;
pub mod digraph;
mod error;
pub mod gossip;
pub mod interpret;
mod label;
pub mod protocol;
pub mod recovery;
pub mod reference;
pub mod shim;
pub mod store;

pub use accountability::EquivocationProof;
pub use block::{Block, BlockRef, LabeledRequest, SeqNum};
pub use dag::BlockDag;
pub use defense::{
    AdmitVerdict, DefenseConfig, DefenseEvent, DefenseStats, Offense, PeerDefense,
    PeerScoreSnapshot,
};
pub use error::{DagError, InvalidBlockError};
pub use gossip::{
    AdmissionMode, EvictionEvent, Gossip, GossipConfig, GossipStats, NetCommand, NetMessage,
    WaveStats, DEFAULT_PENDING_CAP, WAVE_WIDTH_BUCKETS,
};
pub use interpret::{Indication, InterpretStats, Interpreter, InterpreterFootprint, SnapshotError};
pub use label::Label;
pub use protocol::{DeterministicProtocol, Envelope, Outbox, ProtocolConfig, SnapshotProtocol};
pub use recovery::{persist_dag, restore_dag};
pub use reference::ReferenceInterpreter;
pub use shim::{SetupError, Shim, ShimConfig};
pub use store::{BlockStore, MemoryStore, RecoverError, RecoveryReport, StoreContents, StoreError};

/// Simulation / wall-clock time in milliseconds.
///
/// The core is time-agnostic: callers (the simulator or a real event loop)
/// pass the current time into [`Gossip`] and [`Shim`] entry points, which
/// only use it to pace `FWD` retransmissions (Algorithm 1, lines 10–11).
pub type TimeMs = u64;
