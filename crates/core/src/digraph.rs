//! Directed graphs exactly as in §2 of the paper.
//!
//! This module is a direct, generic transcription of the paper's graph
//! preliminaries: the restrictive [`DiGraph::insert`] of Definition 2.1
//! (a new vertex may only receive edges *from* existing vertices), the
//! subgraph relation `≤`, union, and reachability. [`crate::BlockDag`] is a
//! specialized, indexed implementation for blocks; this generic one exists
//! so the properties of Lemma 2.2 can be stated and property-tested in the
//! paper's own terms.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A directed graph over ordered vertex ids, following §2.
///
/// # Examples
///
/// ```
/// use dagbft_core::digraph::DiGraph;
///
/// let mut graph = DiGraph::new();
/// graph.insert(1, []);
/// graph.insert(2, [1]);
/// assert!(graph.reaches(&1, &2)); // 1 ⇀ 2
/// assert!(graph.is_acyclic());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DiGraph<V: Ord + Clone> {
    /// Adjacency: vertex → direct successors (`v ⇀ v'`).
    successors: BTreeMap<V, BTreeSet<V>>,
}

impl<V: Ord + Clone> DiGraph<V> {
    /// Creates the empty graph `∅`.
    pub fn new() -> Self {
        DiGraph {
            successors: BTreeMap::new(),
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.successors.len()
    }

    /// Returns `true` for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.successors.is_empty()
    }

    /// `v ∈ G`.
    pub fn contains(&self, v: &V) -> bool {
        self.successors.contains_key(v)
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.successors.values().map(BTreeSet::len).sum()
    }

    /// `(v, v') ∈ E`, i.e. `v ⇀ v'`.
    pub fn has_edge(&self, v: &V, v2: &V) -> bool {
        self.successors.get(v).is_some_and(|out| out.contains(v2))
    }

    /// Inserts vertex `v` with edges `{(vᵢ, v) | vᵢ ∈ sources}` per
    /// Definition 2.1: only edges *into* the new vertex, only from vertices
    /// already in the graph.
    ///
    /// Edge sources not present in the graph are ignored (`vᵢ ∈ V ⊆ G` is a
    /// precondition of the definition; dropping violators keeps the
    /// definition's closure properties, which the tests verify).
    ///
    /// Re-inserting an existing vertex with edges already present is a
    /// no-op (Lemma 2.2 (1)); new edges to an *existing* vertex are allowed
    /// by the definition and may create cycles — exactly the caveat the
    /// paper illustrates after Lemma 2.2 — so callers wanting acyclicity
    /// insert fresh vertices only, as the block DAG does.
    pub fn insert<I: IntoIterator<Item = V>>(&mut self, v: V, sources: I) {
        let sources: Vec<V> = sources
            .into_iter()
            .filter(|source| self.contains(source))
            .collect();
        self.successors.entry(v.clone()).or_default();
        for source in sources {
            self.successors
                .get_mut(&source)
                .expect("source vertex present")
                .insert(v.clone());
        }
    }

    /// Iterator over the vertices.
    pub fn vertices(&self) -> impl Iterator<Item = &V> {
        self.successors.keys()
    }

    /// Iterator over all edges `(v, v')`.
    pub fn edges(&self) -> impl Iterator<Item = (&V, &V)> {
        self.successors
            .iter()
            .flat_map(|(v, outs)| outs.iter().map(move |v2| (v, v2)))
    }

    /// Direct successors of `v`.
    pub fn successors_of(&self, v: &V) -> impl Iterator<Item = &V> {
        self.successors.get(v).into_iter().flatten()
    }

    /// `v ⇀⁺ v'`: `v'` reachable from `v` in one or more steps.
    pub fn reaches(&self, v: &V, v2: &V) -> bool {
        let mut queue: VecDeque<&V> = self.successors_of(v).collect();
        let mut seen: BTreeSet<&V> = queue.iter().copied().collect();
        while let Some(current) = queue.pop_front() {
            if current == v2 {
                return true;
            }
            for next in self.successors_of(current) {
                if seen.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        false
    }

    /// `v ⇀* v'`: reflexive-transitive reachability.
    pub fn reaches_reflexive(&self, v: &V, v2: &V) -> bool {
        (v == v2 && self.contains(v)) || self.reaches(v, v2)
    }

    /// A graph is acyclic if `v ⇀⁺ v'` implies `v ≠ v'` for all vertices.
    pub fn is_acyclic(&self) -> bool {
        self.vertices().all(|v| !self.reaches(v, v))
    }

    /// The subgraph relation `G₁ ≤ G₂`: `V₁ ⊆ V₂` **and**
    /// `E₁ = E₂ ∩ (V₁ × V₁)` — `G₁` must already contain every `G₂`-edge
    /// between its own vertices (§2).
    pub fn le(&self, other: &Self) -> bool {
        for v in self.vertices() {
            if !other.contains(v) {
                return false;
            }
        }
        // E₁ ⊆ E₂.
        for (v, v2) in self.edges() {
            if !other.has_edge(v, v2) {
                return false;
            }
        }
        // E₂ ∩ (V₁ × V₁) ⊆ E₁.
        for (v, v2) in other.edges() {
            if self.contains(v) && self.contains(v2) && !self.has_edge(v, v2) {
                return false;
            }
        }
        true
    }

    /// `G₁ ∪ G₂ = (V₁ ∪ V₂, E₁ ∪ E₂)` (§2).
    pub fn union(&self, other: &Self) -> Self {
        let mut successors = self.successors.clone();
        for (v, outs) in &other.successors {
            successors
                .entry(v.clone())
                .or_default()
                .extend(outs.iter().cloned());
        }
        DiGraph { successors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let graph: DiGraph<u32> = DiGraph::new();
        assert!(graph.is_empty());
        assert!(graph.is_acyclic());
        assert_eq!(graph.edge_count(), 0);
    }

    #[test]
    fn lemma_2_2_1_insert_idempotent() {
        let mut graph = DiGraph::new();
        graph.insert(1, []);
        graph.insert(2, [1]);
        let before = graph.clone();
        graph.insert(2, [1]);
        assert_eq!(graph, before);
    }

    #[test]
    fn lemma_2_2_2_original_is_subgraph_after_fresh_insert() {
        let mut graph = DiGraph::new();
        graph.insert(1, []);
        graph.insert(2, []);
        let before = graph.clone();
        graph.insert(3, [1, 2]);
        assert!(before.le(&graph));
    }

    #[test]
    fn le_counterexample_from_paper() {
        // G: vertices {v1, v2}, no edges. G' = insert(G, v2, {(v1, v2)})
        // (via re-insert adding an edge) gives E_G ≠ E_G' ∩ (V×V), so the
        // edge-completeness side of ≤ fails.
        let mut g = DiGraph::new();
        g.insert(1, []);
        g.insert(2, []);
        let mut g_prime = g.clone();
        g_prime.insert(2, [1]); // re-insert with a new edge
        assert!(!g.le(&g_prime));
        assert!(g_prime.le(&g_prime));
    }

    #[test]
    fn lemma_2_2_3_fresh_insert_preserves_acyclicity() {
        let mut graph = DiGraph::new();
        graph.insert(1, []);
        graph.insert(2, [1]);
        graph.insert(3, [1, 2]);
        assert!(graph.is_acyclic());
    }

    #[test]
    fn reinsert_can_create_cycle_as_paper_warns() {
        // Paper example after Lemma 2.2: G with {v1, v2}, edge (v1, v2);
        // insert(G, v1, {(v2, v1)}) contains a cycle.
        let mut graph = DiGraph::new();
        graph.insert(1, []);
        graph.insert(2, [1]);
        graph.insert(1, [2]);
        assert!(!graph.is_acyclic());
    }

    #[test]
    fn insert_ignores_unknown_sources() {
        let mut graph = DiGraph::new();
        graph.insert(5, [99]); // 99 ∉ G: edge dropped
        assert_eq!(graph.edge_count(), 0);
        assert!(graph.contains(&5));
    }

    #[test]
    fn reachability_transitive_and_reflexive_variants() {
        let mut graph = DiGraph::new();
        graph.insert(1, []);
        graph.insert(2, [1]);
        graph.insert(3, [2]);
        assert!(graph.reaches(&1, &3));
        assert!(!graph.reaches(&3, &1));
        assert!(!graph.reaches(&1, &1));
        assert!(graph.reaches_reflexive(&1, &1));
        assert!(!graph.reaches_reflexive(&4, &4)); // 4 ∉ G
    }

    #[test]
    fn union_merges_vertices_and_edges() {
        let mut g1 = DiGraph::new();
        g1.insert(1, []);
        g1.insert(2, [1]);
        let mut g2 = DiGraph::new();
        g2.insert(1, []);
        g2.insert(3, [1]);
        let joined = g1.union(&g2);
        assert_eq!(joined.len(), 3);
        assert!(joined.has_edge(&1, &2));
        assert!(joined.has_edge(&1, &3));
        assert!(g1.le(&joined));
        assert!(g2.le(&joined));
    }

    #[test]
    fn le_is_a_partial_order_on_grown_graphs() {
        let mut g = DiGraph::new();
        g.insert(1, []);
        let g1 = g.clone();
        g.insert(2, [1]);
        let g2 = g.clone();
        g.insert(3, [2]);
        let g3 = g.clone();
        // Reflexivity, antisymmetry (by inequality), transitivity.
        assert!(g1.le(&g1));
        assert!(g1.le(&g2) && g2.le(&g3) && g1.le(&g3));
        assert!(!g2.le(&g1));
    }
}
