//! Blocks — the single message type of the block DAG protocol.
//!
//! Implements Definition 3.1: a block has (i) the identity `n` of the server
//! that built it, (ii) a sequence number `k`, (iii) a list of hashes of
//! predecessor blocks `preds`, (iv) a list of labeled requests `rs`, and
//! (v) a signature `σ = sign(n, ref(B))`, where `ref` is a cryptographic
//! hash over `n`, `k`, `preds` and `rs` — but not `σ`.
//!
//! Because `ref(B)` must be known to build a block referencing `B`,
//! reference cycles are impossible (Lemma 3.2): temporal order is a static,
//! cryptographic property.

use std::fmt;

use bytes::Bytes;
use dagbft_codec::{encode_to_vec, DecodeError, Reader, WireDecode, WireEncode};
use dagbft_crypto::{sha256, Digest, ServerId, Signature, Signer, Verifier};

use crate::error::InvalidBlockError;
use crate::label::Label;

/// A block reference `ref(B)`: the SHA-256 digest of the block's canonical
/// encoding without the signature (Definition 3.1).
///
/// Collision resistance justifies using a block and its reference
/// interchangeably, as the paper does.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockRef(Digest);

impl BlockRef {
    /// Wraps a digest as a block reference.
    pub fn from_digest(digest: Digest) -> Self {
        BlockRef(digest)
    }

    /// The underlying digest.
    pub fn digest(&self) -> Digest {
        self.0
    }

    /// Compact prefix for display in traces and rendered DAGs.
    pub fn short_hex(&self) -> String {
        self.0.short_hex()
    }
}

impl fmt::Display for BlockRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.short_hex())
    }
}

impl fmt::Debug for BlockRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.short_hex())
    }
}

impl WireEncode for BlockRef {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl WireDecode for BlockRef {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BlockRef(Digest::decode(reader)?))
    }
}

/// A block's sequence number `k ∈ ℕ₀` (Definition 3.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqNum(u64);

impl SeqNum {
    /// The genesis sequence number, `k = 0`.
    pub const ZERO: SeqNum = SeqNum(0);

    /// Creates a sequence number.
    pub fn new(k: u64) -> Self {
        SeqNum(k)
    }

    /// The numeric value.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// The next sequence number, `k + 1`.
    pub fn next(&self) -> SeqNum {
        SeqNum(self.0 + 1)
    }

    /// The preceding sequence number, or `None` for genesis.
    pub fn prev(&self) -> Option<SeqNum> {
        self.0.checked_sub(1).map(SeqNum)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Debug for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl WireEncode for SeqNum {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl WireDecode for SeqNum {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SeqNum(u64::decode(reader)?))
    }
}

/// A labeled request `(ℓ, r) ∈ L × Rqsts` carried inside a block.
///
/// The payload is the *opaque* wire encoding of `P::Request`; keeping it
/// opaque makes `gossip` independent of the embedded protocol, exactly as in
/// the paper's Figure 1 where only `interpret(G, P)` knows `P`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabeledRequest {
    /// The protocol instance the request addresses.
    pub label: Label,
    /// Canonical encoding of the request `r ∈ Rqsts_P`.
    pub payload: Bytes,
}

impl LabeledRequest {
    /// Encodes a typed request for inclusion in a block.
    pub fn encode<R: WireEncode>(label: Label, request: &R) -> Self {
        LabeledRequest {
            label,
            payload: Bytes::from(encode_to_vec(request)),
        }
    }
}

impl WireEncode for LabeledRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.label.encode(out);
        self.payload.encode(out);
    }
}

impl WireDecode for LabeledRequest {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(LabeledRequest {
            label: Label::decode(reader)?,
            payload: Bytes::decode(reader)?,
        })
    }
}

/// A block `B ∈ Blks` (Definition 3.1).
///
/// Blocks are immutable once built; the reference `ref(B)` is computed at
/// construction (or decode) time and cached.
///
/// # Examples
///
/// ```
/// use dagbft_core::Block;
/// use dagbft_crypto::{KeyRegistry, ServerId};
///
/// let registry = KeyRegistry::generate(2, 1);
/// let signer = registry.signer(ServerId::new(0)).unwrap();
/// let genesis = Block::build(ServerId::new(0), dagbft_core::SeqNum::ZERO, vec![], vec![], &signer);
/// assert!(genesis.is_genesis());
/// assert_eq!(genesis.builder(), ServerId::new(0));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Block {
    builder: ServerId,
    seq: SeqNum,
    preds: Vec<BlockRef>,
    requests: Vec<LabeledRequest>,
    signature: Signature,
    /// Cached `ref(B)`.
    block_ref: BlockRef,
}

impl Block {
    /// Builds and signs a block (Algorithm 1, line 15: `σ := sign(s, B)`).
    pub fn build(
        builder: ServerId,
        seq: SeqNum,
        preds: Vec<BlockRef>,
        requests: Vec<LabeledRequest>,
        signer: &Signer,
    ) -> Block {
        debug_assert_eq!(signer.id(), builder, "blocks are signed by their builder");
        let block_ref = Self::compute_ref(builder, seq, &preds, &requests);
        let signature = signer.sign(block_ref.digest().as_bytes());
        Block {
            builder,
            seq,
            preds,
            requests,
            signature,
            block_ref,
        }
    }

    /// Assembles a block with an arbitrary signature, for adversarial tests
    /// that need ill-signed blocks.
    pub fn build_with_signature(
        builder: ServerId,
        seq: SeqNum,
        preds: Vec<BlockRef>,
        requests: Vec<LabeledRequest>,
        signature: Signature,
    ) -> Block {
        let block_ref = Self::compute_ref(builder, seq, &preds, &requests);
        Block {
            builder,
            seq,
            preds,
            requests,
            signature,
            block_ref,
        }
    }

    /// Computes `ref` over `n`, `k`, `preds`, `rs` — and *not* `σ`
    /// (Definition 3.1: this keeps `sign(B.n, ref(B))` well defined).
    fn compute_ref(
        builder: ServerId,
        seq: SeqNum,
        preds: &[BlockRef],
        requests: &[LabeledRequest],
    ) -> BlockRef {
        let mut preimage = Vec::new();
        builder.encode(&mut preimage);
        seq.encode(&mut preimage);
        preds.encode(&mut preimage);
        requests.encode(&mut preimage);
        BlockRef(sha256(&preimage))
    }

    /// The identity `n` of the server that built this block.
    pub fn builder(&self) -> ServerId {
        self.builder
    }

    /// The sequence number `k`.
    pub fn seq(&self) -> SeqNum {
        self.seq
    }

    /// References to predecessor blocks, in inclusion order.
    pub fn preds(&self) -> &[BlockRef] {
        &self.preds
    }

    /// The labeled requests `rs` carried by this block.
    pub fn requests(&self) -> &[LabeledRequest] {
        &self.requests
    }

    /// The signature `σ = sign(n, ref(B))`.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The cached block reference `ref(B)`.
    pub fn block_ref(&self) -> BlockRef {
        self.block_ref
    }

    /// Returns `true` for genesis blocks (`k = 0`), which cannot — and need
    /// not — have a parent.
    pub fn is_genesis(&self) -> bool {
        self.seq == SeqNum::ZERO
    }

    /// Verifies `σ` against the claimed builder (Definition 3.3 (i)).
    pub fn verify_signature(&self, verifier: &Verifier) -> bool {
        verifier.verify(
            self.builder,
            self.block_ref.digest().as_bytes(),
            &self.signature,
        )
    }

    /// Finds this block's parent among its predecessors: the unique distinct
    /// predecessor built by the same server with sequence number `k − 1`.
    ///
    /// `meta` resolves a reference to the `(builder, seq)` of an
    /// already-known block; unresolvable references are skipped (callers
    /// ensure all predecessors are known before validity is decided).
    ///
    /// # Errors
    ///
    /// * [`InvalidBlockError::MissingParent`] — non-genesis block with no
    ///   parent among the resolvable predecessors.
    /// * [`InvalidBlockError::MultipleParents`] — two distinct candidate
    ///   parents (an equivocation *within* the block's own history).
    pub fn parent_via<F>(&self, meta: F) -> Result<Option<BlockRef>, InvalidBlockError>
    where
        F: Fn(&BlockRef) -> Option<(ServerId, SeqNum)>,
    {
        let Some(expected_seq) = self.seq.prev() else {
            return Ok(None); // Genesis: 0 is minimal in ℕ₀, no parent possible.
        };
        let mut parent: Option<BlockRef> = None;
        for pred in &self.preds {
            let Some((builder, seq)) = meta(pred) else {
                continue;
            };
            if builder == self.builder && seq == expected_seq {
                match parent {
                    None => parent = Some(*pred),
                    Some(existing) if existing == *pred => {}
                    Some(existing) => {
                        return Err(InvalidBlockError::MultipleParents {
                            builder: self.builder,
                            parents: (existing, *pred),
                        })
                    }
                }
            }
        }
        match parent {
            Some(parent) => Ok(Some(parent)),
            None => Err(InvalidBlockError::MissingParent {
                builder: self.builder,
                seq: self.seq,
            }),
        }
    }

    /// Size of this block on the wire, in bytes (used by the metrics plane).
    pub fn wire_len(&self) -> usize {
        encode_to_vec(self).len()
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Block({}/{} {} preds={} rs={})",
            self.builder,
            self.seq,
            self.block_ref,
            self.preds.len(),
            self.requests.len()
        )
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}{}", self.builder, self.seq, self.block_ref)
    }
}

impl WireEncode for Block {
    fn encode(&self, out: &mut Vec<u8>) {
        self.builder.encode(out);
        self.seq.encode(out);
        self.preds.encode(out);
        self.requests.encode(out);
        self.signature.encode(out);
    }
}

impl WireDecode for Block {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let builder = ServerId::decode(reader)?;
        let seq = SeqNum::decode(reader)?;
        let preds = Vec::<BlockRef>::decode(reader)?;
        let requests = Vec::<LabeledRequest>::decode(reader)?;
        let signature = Signature::decode(reader)?;
        let block_ref = Self::compute_ref(builder, seq, &preds, &requests);
        Ok(Block {
            builder,
            seq,
            preds,
            requests,
            signature,
            block_ref,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagbft_codec::decode_from_slice;
    use dagbft_crypto::KeyRegistry;

    fn registry() -> KeyRegistry {
        KeyRegistry::generate(4, 11)
    }

    fn signer(registry: &KeyRegistry, id: u32) -> Signer {
        registry.signer(ServerId::new(id)).unwrap()
    }

    #[test]
    fn ref_excludes_signature() {
        let registry = registry();
        let block = Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![],
            &signer(&registry, 0),
        );
        // Same content, different (null) signature: identical reference.
        let forged = Block::build_with_signature(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![],
            Signature::NULL,
        );
        assert_eq!(block.block_ref(), forged.block_ref());
        assert_ne!(block.signature(), forged.signature());
    }

    #[test]
    fn ref_covers_all_content_fields() {
        let registry = registry();
        let signer0 = signer(&registry, 0);
        let base = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer0);

        let different_seq =
            Block::build(ServerId::new(0), SeqNum::new(1), vec![], vec![], &signer0);
        assert_ne!(base.block_ref(), different_seq.block_ref());

        let signer1 = signer(&registry, 1);
        let different_builder =
            Block::build(ServerId::new(1), SeqNum::ZERO, vec![], vec![], &signer1);
        assert_ne!(base.block_ref(), different_builder.block_ref());

        let with_pred = Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![base.block_ref()],
            vec![],
            &signer0,
        );
        assert_ne!(base.block_ref(), with_pred.block_ref());

        let with_request = Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(Label::new(1), &42u64)],
            &signer0,
        );
        assert_ne!(base.block_ref(), with_request.block_ref());
    }

    #[test]
    fn signature_verifies_for_builder_only() {
        let registry = registry();
        let block = Block::build(
            ServerId::new(2),
            SeqNum::ZERO,
            vec![],
            vec![],
            &signer(&registry, 2),
        );
        assert!(block.verify_signature(&registry.verifier()));

        // A block claiming builder 3 but signed by 2 must not verify.
        let forged = Block::build_with_signature(
            ServerId::new(3),
            SeqNum::ZERO,
            vec![],
            vec![],
            *block.signature(),
        );
        assert!(!forged.verify_signature(&registry.verifier()));
    }

    #[test]
    fn wire_roundtrip_preserves_ref() {
        let registry = registry();
        let signer0 = signer(&registry, 0);
        let genesis = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer0);
        let block = Block::build(
            ServerId::new(0),
            SeqNum::new(1),
            vec![genesis.block_ref()],
            vec![LabeledRequest::encode(Label::new(7), &"hello".to_owned())],
            &signer0,
        );
        let bytes = encode_to_vec(&block);
        assert_eq!(bytes.len(), block.wire_len());
        let decoded: Block = decode_from_slice(&bytes).unwrap();
        assert_eq!(decoded, block);
        assert_eq!(decoded.block_ref(), block.block_ref());
        assert!(decoded.verify_signature(&registry.verifier()));
    }

    #[test]
    fn parent_detection_genesis() {
        let registry = registry();
        let genesis = Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![],
            &signer(&registry, 0),
        );
        assert_eq!(genesis.parent_via(|_| None).unwrap(), None);
    }

    #[test]
    fn parent_detection_single_parent() {
        let registry = registry();
        let signer0 = signer(&registry, 0);
        let genesis = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer0);
        let other = Block::build(
            ServerId::new(1),
            SeqNum::ZERO,
            vec![],
            vec![],
            &signer(&registry, 1),
        );
        let child = Block::build(
            ServerId::new(0),
            SeqNum::new(1),
            vec![genesis.block_ref(), other.block_ref()],
            vec![],
            &signer0,
        );
        let meta = |r: &BlockRef| {
            [&genesis, &other]
                .iter()
                .find(|b| b.block_ref() == *r)
                .map(|b| (b.builder(), b.seq()))
        };
        assert_eq!(child.parent_via(meta).unwrap(), Some(genesis.block_ref()));
    }

    #[test]
    fn parent_detection_missing() {
        let registry = registry();
        let orphan = Block::build(
            ServerId::new(0),
            SeqNum::new(5),
            vec![],
            vec![],
            &signer(&registry, 0),
        );
        assert!(matches!(
            orphan.parent_via(|_| None),
            Err(InvalidBlockError::MissingParent { .. })
        ));
    }

    #[test]
    fn parent_detection_two_distinct_parents_rejected() {
        let registry = registry();
        let signer0 = signer(&registry, 0);
        // Two equivocating k=0 blocks by server 0.
        let genesis_a = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer0);
        let genesis_b = Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(Label::new(0), &1u8)],
            &signer0,
        );
        let child = Block::build(
            ServerId::new(0),
            SeqNum::new(1),
            vec![genesis_a.block_ref(), genesis_b.block_ref()],
            vec![],
            &signer0,
        );
        let meta = |r: &BlockRef| {
            [&genesis_a, &genesis_b]
                .iter()
                .find(|b| b.block_ref() == *r)
                .map(|b| (b.builder(), b.seq()))
        };
        assert!(matches!(
            child.parent_via(meta),
            Err(InvalidBlockError::MultipleParents { .. })
        ));
    }

    #[test]
    fn duplicate_parent_reference_is_one_parent() {
        let registry = registry();
        let signer0 = signer(&registry, 0);
        let genesis = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer0);
        let child = Block::build(
            ServerId::new(0),
            SeqNum::new(1),
            vec![genesis.block_ref(), genesis.block_ref()],
            vec![],
            &signer0,
        );
        let meta =
            |r: &BlockRef| (*r == genesis.block_ref()).then(|| (genesis.builder(), genesis.seq()));
        assert_eq!(child.parent_via(meta).unwrap(), Some(genesis.block_ref()));
    }

    #[test]
    fn lemma_3_2_no_mutual_references() {
        // Cryptographic argument: to build B1 with ref(B2) ∈ B1.preds we
        // need ref(B2) first, and vice versa. We test the observable
        // consequence: any two constructible blocks can never reference each
        // other, because a block's own ref depends on its preds list.
        let registry = registry();
        let signer0 = signer(&registry, 0);
        let b1 = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer0);
        let b2 = Block::build(
            ServerId::new(1),
            SeqNum::ZERO,
            vec![b1.block_ref()],
            vec![],
            &signer(&registry, 1),
        );
        assert!(b2.preds().contains(&b1.block_ref()));
        assert!(!b1.preds().contains(&b2.block_ref()));
        // Rebuilding b1 to include b2 changes its ref — it is a different
        // block, so the original b2 no longer references "it".
        let b1_prime = Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![b2.block_ref()],
            vec![],
            &signer0,
        );
        assert_ne!(b1_prime.block_ref(), b1.block_ref());
    }

    #[test]
    fn display_and_debug_are_informative() {
        let registry = registry();
        let block = Block::build(
            ServerId::new(1),
            SeqNum::new(3),
            vec![],
            vec![],
            &signer(&registry, 1),
        );
        let debug = format!("{block:?}");
        assert!(debug.contains("s1"));
        assert!(debug.contains("k3"));
        let display = format!("{block}");
        assert!(display.contains("s1/k3#"));
    }
}
