//! Blocks — the single message type of the block DAG protocol.
//!
//! Implements Definition 3.1: a block has (i) the identity `n` of the server
//! that built it, (ii) a sequence number `k`, (iii) a list of hashes of
//! predecessor blocks `preds`, (iv) a list of labeled requests `rs`, and
//! (v) a signature `σ = sign(n, ref(B))`, where `ref` is a cryptographic
//! hash over `n`, `k`, `preds` and `rs` — but not `σ`.
//!
//! Because `ref(B)` must be known to build a block referencing `B`,
//! reference cycles are impossible (Lemma 3.2): temporal order is a static,
//! cryptographic property.
//!
//! # The encode-once wire path
//!
//! The canonical encoding is a first-class artifact: a block computes its
//! wire bytes exactly once — at [`Block::build`] time, or by *slicing* the
//! received buffer at decode time — and caches them as shared [`Bytes`].
//! `ref(B)`, signature verification, [`Block::wire_len`], and every send
//! reuse that one buffer; [`Block::clone`] is a reference-count bump (the
//! block body lives behind an `Arc`), so broadcasting to `n − 1` peers
//! costs one canonical encode total instead of `n − 1`.
//! [`Block::canonical_encodes`] counts the encodes actually performed,
//! which the `report_wire` bench uses to pin the encode-once claim.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use bytes::Bytes;
use dagbft_codec::{DecodeError, Reader, WireDecode, WireEncode};
use dagbft_crypto::{sha256, Digest, ServerId, Signature, Signer, Verifier};

use crate::error::InvalidBlockError;
use crate::label::Label;

/// Number of canonical block encodings performed since process start
/// (field-by-field serializations — cache hits don't count).
static CANONICAL_ENCODES: AtomicU64 = AtomicU64::new(0);
/// Total bytes produced by those canonical encodings.
static CANONICAL_ENCODE_BYTES: AtomicU64 = AtomicU64::new(0);

/// A block reference `ref(B)`: the SHA-256 digest of the block's canonical
/// encoding without the signature (Definition 3.1).
///
/// Collision resistance justifies using a block and its reference
/// interchangeably, as the paper does.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockRef(Digest);

impl BlockRef {
    /// Wraps a digest as a block reference.
    pub fn from_digest(digest: Digest) -> Self {
        BlockRef(digest)
    }

    /// The underlying digest.
    pub fn digest(&self) -> Digest {
        self.0
    }

    /// The raw digest bytes — also the exact canonical wire encoding of a
    /// reference, so transports can write it without re-encoding.
    pub fn as_bytes(&self) -> &[u8; 32] {
        self.0.as_bytes()
    }

    /// Compact prefix for display in traces and rendered DAGs.
    pub fn short_hex(&self) -> String {
        self.0.short_hex()
    }
}

impl fmt::Display for BlockRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.short_hex())
    }
}

impl fmt::Debug for BlockRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.short_hex())
    }
}

impl WireEncode for BlockRef {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl WireDecode for BlockRef {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BlockRef(Digest::decode(reader)?))
    }
}

/// A block's sequence number `k ∈ ℕ₀` (Definition 3.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqNum(u64);

impl SeqNum {
    /// The genesis sequence number, `k = 0`.
    pub const ZERO: SeqNum = SeqNum(0);

    /// Creates a sequence number.
    pub fn new(k: u64) -> Self {
        SeqNum(k)
    }

    /// The numeric value.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// The next sequence number, `k + 1`.
    pub fn next(&self) -> SeqNum {
        SeqNum(self.0 + 1)
    }

    /// The preceding sequence number, or `None` for genesis.
    pub fn prev(&self) -> Option<SeqNum> {
        self.0.checked_sub(1).map(SeqNum)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Debug for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl WireEncode for SeqNum {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl WireDecode for SeqNum {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SeqNum(u64::decode(reader)?))
    }
}

/// A labeled request `(ℓ, r) ∈ L × Rqsts` carried inside a block.
///
/// The payload is the *opaque* wire encoding of `P::Request`; keeping it
/// opaque makes `gossip` independent of the embedded protocol, exactly as in
/// the paper's Figure 1 where only `interpret(G, P)` knows `P`. When a block
/// is decoded from a shared receive buffer, the payload is a zero-copy slice
/// of that buffer.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabeledRequest {
    /// The protocol instance the request addresses.
    pub label: Label,
    /// Canonical encoding of the request `r ∈ Rqsts_P`.
    pub payload: Bytes,
}

impl LabeledRequest {
    /// Encodes a typed request for inclusion in a block.
    pub fn encode<R: WireEncode>(label: Label, request: &R) -> Self {
        LabeledRequest {
            label,
            payload: Bytes::from(dagbft_codec::encode_to_vec(request)),
        }
    }
}

impl WireEncode for LabeledRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.label.encode(out);
        self.payload.encode(out);
    }
}

impl WireDecode for LabeledRequest {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(LabeledRequest {
            label: Label::decode(reader)?,
            payload: Bytes::decode(reader)?,
        })
    }
}

/// The immutable body of a [`Block`], shared behind an `Arc`.
#[derive(Debug)]
struct BlockInner {
    builder: ServerId,
    seq: SeqNum,
    preds: Vec<BlockRef>,
    requests: Vec<LabeledRequest>,
    signature: Signature,
    /// Cached `ref(B)`, computed on first use. Builders fill it eagerly
    /// (they sign it); decoded blocks leave it empty so the hash can be
    /// computed off the receive path — on a [`VerifyPool`] worker for
    /// bursts, or lazily at first reference otherwise.
    ///
    /// [`VerifyPool`]: crate::gossip::VerifyPool
    block_ref: OnceLock<BlockRef>,
    /// Cached canonical wire encoding, *including* the trailing signature.
    /// The signing preimage (Definition 3.1's hash input) is the prefix
    /// `wire[..wire.len() − Signature::SIZE]`.
    wire: Bytes,
}

/// A block `B ∈ Blks` (Definition 3.1).
///
/// Blocks are immutable once built; the reference `ref(B)` *and* the
/// canonical wire bytes are computed at construction (or sliced from the
/// input at decode) time and cached. `Clone` is a reference-count bump.
///
/// # Examples
///
/// ```
/// use dagbft_core::Block;
/// use dagbft_crypto::{KeyRegistry, ServerId};
///
/// let registry = KeyRegistry::generate(2, 1);
/// let signer = registry.signer(ServerId::new(0)).unwrap();
/// let genesis = Block::build(ServerId::new(0), dagbft_core::SeqNum::ZERO, vec![], vec![], &signer);
/// assert!(genesis.is_genesis());
/// assert_eq!(genesis.builder(), ServerId::new(0));
/// // The cached wire image is the canonical encoding.
/// assert_eq!(genesis.wire_bytes().len(), genesis.wire_len());
/// ```
#[derive(Clone)]
pub struct Block {
    inner: Arc<BlockInner>,
}

impl Block {
    /// Builds and signs a block (Algorithm 1, line 15: `σ := sign(s, B)`).
    ///
    /// This is the **one** canonical encode in a block's lifetime: the
    /// signing preimage is serialized once, hashed into `ref(B)`, extended
    /// with the signature, and cached as the block's wire image.
    pub fn build(
        builder: ServerId,
        seq: SeqNum,
        preds: Vec<BlockRef>,
        requests: Vec<LabeledRequest>,
        signer: &Signer,
    ) -> Block {
        debug_assert_eq!(signer.id(), builder, "blocks are signed by their builder");
        let preimage = Self::encode_preimage(builder, seq, &preds, &requests);
        let block_ref = BlockRef(sha256(&preimage));
        let signature = signer.sign(block_ref.digest().as_bytes());
        Self::assemble(
            builder, seq, preds, requests, signature, block_ref, preimage,
        )
    }

    /// Assembles a block with an arbitrary signature, for adversarial tests
    /// that need ill-signed blocks.
    pub fn build_with_signature(
        builder: ServerId,
        seq: SeqNum,
        preds: Vec<BlockRef>,
        requests: Vec<LabeledRequest>,
        signature: Signature,
    ) -> Block {
        let preimage = Self::encode_preimage(builder, seq, &preds, &requests);
        let block_ref = BlockRef(sha256(&preimage));
        Self::assemble(
            builder, seq, preds, requests, signature, block_ref, preimage,
        )
    }

    fn assemble(
        builder: ServerId,
        seq: SeqNum,
        preds: Vec<BlockRef>,
        requests: Vec<LabeledRequest>,
        signature: Signature,
        block_ref: BlockRef,
        mut wire: Vec<u8>,
    ) -> Block {
        signature.encode(&mut wire);
        let cached = OnceLock::new();
        cached.set(block_ref).expect("fresh cell");
        Block {
            inner: Arc::new(BlockInner {
                builder,
                seq,
                preds,
                requests,
                signature,
                block_ref: cached,
                wire: Bytes::from(wire),
            }),
        }
    }

    /// Serializes the `ref` preimage — `n`, `k`, `preds`, `rs`, and *not*
    /// `σ` (Definition 3.1: this keeps `sign(B.n, ref(B))` well defined).
    /// The only place block fields are turned into bytes.
    fn encode_preimage(
        builder: ServerId,
        seq: SeqNum,
        preds: &[BlockRef],
        requests: &[LabeledRequest],
    ) -> Vec<u8> {
        let mut preimage = Vec::new();
        builder.encode(&mut preimage);
        seq.encode(&mut preimage);
        preds.encode(&mut preimage);
        requests.encode(&mut preimage);
        CANONICAL_ENCODES.fetch_add(1, Ordering::Relaxed);
        CANONICAL_ENCODE_BYTES.fetch_add(
            preimage.len() as u64 + Signature::SIZE as u64,
            Ordering::Relaxed,
        );
        preimage
    }

    /// Number of canonical (field-by-field) block encodings performed by
    /// this process so far. Sends that reuse the cached wire image do not
    /// count — the `report_wire` bench asserts exactly one per block
    /// regardless of broadcast fan-out.
    pub fn canonical_encodes() -> u64 {
        CANONICAL_ENCODES.load(Ordering::Relaxed)
    }

    /// Total bytes produced by canonical block encodings so far.
    pub fn canonical_encode_bytes() -> u64 {
        CANONICAL_ENCODE_BYTES.load(Ordering::Relaxed)
    }

    /// The identity `n` of the server that built this block.
    pub fn builder(&self) -> ServerId {
        self.inner.builder
    }

    /// The sequence number `k`.
    pub fn seq(&self) -> SeqNum {
        self.inner.seq
    }

    /// References to predecessor blocks, in inclusion order.
    pub fn preds(&self) -> &[BlockRef] {
        &self.inner.preds
    }

    /// The labeled requests `rs` carried by this block.
    pub fn requests(&self) -> &[LabeledRequest] {
        &self.inner.requests
    }

    /// The signature `σ = sign(n, ref(B))`.
    pub fn signature(&self) -> &Signature {
        &self.inner.signature
    }

    /// The block reference `ref(B)`, hashed on first use and cached.
    ///
    /// For built blocks this is always already cached (building signs
    /// it); for decoded blocks the first caller pays one SHA-256 over
    /// the signing preimage — which burst admission schedules on the
    /// gossip verify-pool workers so the receive thread rarely does.
    pub fn block_ref(&self) -> BlockRef {
        *self
            .inner
            .block_ref
            .get_or_init(|| BlockRef(sha256(self.signing_preimage())))
    }

    /// The cached canonical wire encoding (including the signature).
    /// Cloning the returned [`Bytes`] shares the buffer — this is what
    /// every send of the block puts on the wire.
    pub fn wire_bytes(&self) -> &Bytes {
        &self.inner.wire
    }

    /// The cached signing preimage — the canonical encoding of `n`, `k`,
    /// `preds`, `rs` that `ref(B)` hashes — as a zero-copy slice of the
    /// wire image.
    pub fn signing_preimage(&self) -> Bytes {
        let wire = &self.inner.wire;
        wire.slice(..wire.len() - Signature::SIZE)
    }

    /// Returns `true` for genesis blocks (`k = 0`), which cannot — and need
    /// not — have a parent.
    pub fn is_genesis(&self) -> bool {
        self.inner.seq == SeqNum::ZERO
    }

    /// Verifies `σ` against the claimed builder (Definition 3.3 (i)).
    pub fn verify_signature(&self, verifier: &Verifier) -> bool {
        verifier.verify(
            self.inner.builder,
            self.block_ref().digest().as_bytes(),
            &self.inner.signature,
        )
    }

    /// The block's signature claim as a batch-verification item: "`σ` is
    /// `sign(B.n, ref(B))`". With `ref(B)` cached (the common case — see
    /// [`Block::block_ref`]), assembling a verification wave copies 3
    /// small values per block and never touches the wire bytes.
    pub fn signed_digest(&self) -> dagbft_crypto::SignedDigest {
        dagbft_crypto::SignedDigest {
            claimed: self.inner.builder,
            digest: self.block_ref().digest(),
            signature: self.inner.signature,
        }
    }

    /// Finds this block's parent among its predecessors: the unique distinct
    /// predecessor built by the same server with sequence number `k − 1`.
    ///
    /// `meta` resolves a reference to the `(builder, seq)` of an
    /// already-known block; unresolvable references are skipped (callers
    /// ensure all predecessors are known before validity is decided).
    ///
    /// # Errors
    ///
    /// * [`InvalidBlockError::MissingParent`] — non-genesis block with no
    ///   parent among the resolvable predecessors.
    /// * [`InvalidBlockError::MultipleParents`] — two distinct candidate
    ///   parents (an equivocation *within* the block's own history).
    pub fn parent_via<F>(&self, meta: F) -> Result<Option<BlockRef>, InvalidBlockError>
    where
        F: Fn(&BlockRef) -> Option<(ServerId, SeqNum)>,
    {
        let Some(expected_seq) = self.inner.seq.prev() else {
            return Ok(None); // Genesis: 0 is minimal in ℕ₀, no parent possible.
        };
        let mut parent: Option<BlockRef> = None;
        for pred in &self.inner.preds {
            let Some((builder, seq)) = meta(pred) else {
                continue;
            };
            if builder == self.inner.builder && seq == expected_seq {
                match parent {
                    None => parent = Some(*pred),
                    Some(existing) if existing == *pred => {}
                    Some(existing) => {
                        return Err(InvalidBlockError::MultipleParents {
                            builder: self.inner.builder,
                            parents: (existing, *pred),
                        })
                    }
                }
            }
        }
        match parent {
            Some(parent) => Ok(Some(parent)),
            None => Err(InvalidBlockError::MissingParent {
                builder: self.inner.builder,
                seq: self.inner.seq,
            }),
        }
    }

    /// Size of this block on the wire, in bytes. O(1): served from the
    /// cached wire image, never by re-encoding.
    pub fn wire_len(&self) -> usize {
        self.inner.wire.len()
    }
}

impl PartialEq for Block {
    fn eq(&self, other: &Block) -> bool {
        // The wire image is canonical: byte equality ⟺ field equality
        // (including the signature). Pointer equality short-circuits the
        // common shared-Arc case.
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner.wire == other.inner.wire
    }
}

impl Eq for Block {}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Block({}/{} {} preds={} rs={})",
            self.inner.builder,
            self.inner.seq,
            self.block_ref(),
            self.inner.preds.len(),
            self.inner.requests.len()
        )
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}{}",
            self.inner.builder,
            self.inner.seq,
            self.block_ref()
        )
    }
}

impl WireEncode for Block {
    fn encode(&self, out: &mut Vec<u8>) {
        // Encode-once: replay the cached canonical image.
        out.extend_from_slice(&self.inner.wire);
    }
}

impl WireDecode for Block {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let start = reader.position();
        let builder = ServerId::decode(reader)?;
        let seq = SeqNum::decode(reader)?;
        let preds = Vec::<BlockRef>::decode(reader)?;
        let requests = Vec::<LabeledRequest>::decode(reader)?;
        let signature = Signature::decode(reader)?;
        let end = reader.position();
        // The codec is canonical (fixed-width integers, length-prefixed
        // sequences), so the consumed input *is* the canonical encoding:
        // retain it as the cached wire image (a zero-copy slice of the
        // receive buffer when the reader is shared) and defer hashing
        // `ref(B)` out of it until first use — burst admission moves that
        // hash onto pool workers. A tampered byte lands in the hash — the
        // cache can never vouch for bytes the signature doesn't.
        let wire = reader.bytes_between(start, end);
        Ok(Block {
            inner: Arc::new(BlockInner {
                builder,
                seq,
                preds,
                requests,
                signature,
                block_ref: OnceLock::new(),
                wire,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagbft_codec::{decode_from_bytes, decode_from_slice, encode_to_vec};
    use dagbft_crypto::KeyRegistry;

    fn registry() -> KeyRegistry {
        KeyRegistry::generate(4, 11)
    }

    fn signer(registry: &KeyRegistry, id: u32) -> Signer {
        registry.signer(ServerId::new(id)).unwrap()
    }

    #[test]
    fn ref_excludes_signature() {
        let registry = registry();
        let block = Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![],
            &signer(&registry, 0),
        );
        // Same content, different (null) signature: identical reference.
        let forged = Block::build_with_signature(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![],
            Signature::NULL,
        );
        assert_eq!(block.block_ref(), forged.block_ref());
        assert_ne!(block.signature(), forged.signature());
    }

    #[test]
    fn ref_covers_all_content_fields() {
        let registry = registry();
        let signer0 = signer(&registry, 0);
        let base = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer0);

        let different_seq =
            Block::build(ServerId::new(0), SeqNum::new(1), vec![], vec![], &signer0);
        assert_ne!(base.block_ref(), different_seq.block_ref());

        let signer1 = signer(&registry, 1);
        let different_builder =
            Block::build(ServerId::new(1), SeqNum::ZERO, vec![], vec![], &signer1);
        assert_ne!(base.block_ref(), different_builder.block_ref());

        let with_pred = Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![base.block_ref()],
            vec![],
            &signer0,
        );
        assert_ne!(base.block_ref(), with_pred.block_ref());

        let with_request = Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(Label::new(1), &42u64)],
            &signer0,
        );
        assert_ne!(base.block_ref(), with_request.block_ref());
    }

    #[test]
    fn signature_verifies_for_builder_only() {
        let registry = registry();
        let block = Block::build(
            ServerId::new(2),
            SeqNum::ZERO,
            vec![],
            vec![],
            &signer(&registry, 2),
        );
        assert!(block.verify_signature(&registry.verifier()));

        // A block claiming builder 3 but signed by 2 must not verify.
        let forged = Block::build_with_signature(
            ServerId::new(3),
            SeqNum::ZERO,
            vec![],
            vec![],
            *block.signature(),
        );
        assert!(!forged.verify_signature(&registry.verifier()));
    }

    #[test]
    fn wire_roundtrip_preserves_ref() {
        let registry = registry();
        let signer0 = signer(&registry, 0);
        let genesis = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer0);
        let block = Block::build(
            ServerId::new(0),
            SeqNum::new(1),
            vec![genesis.block_ref()],
            vec![LabeledRequest::encode(Label::new(7), &"hello".to_owned())],
            &signer0,
        );
        let bytes = encode_to_vec(&block);
        assert_eq!(bytes.len(), block.wire_len());
        let decoded: Block = decode_from_slice(&bytes).unwrap();
        assert_eq!(decoded, block);
        assert_eq!(decoded.block_ref(), block.block_ref());
        assert!(decoded.verify_signature(&registry.verifier()));
    }

    #[test]
    fn cached_wire_image_is_canonical_and_shared() {
        let registry = registry();
        let signer0 = signer(&registry, 0);
        let block = Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(Label::new(3), &7u64)],
            &signer0,
        );
        // The cache equals a fresh field-by-field encoding.
        assert_eq!(
            block.wire_bytes().as_ref(),
            encode_to_vec(&block).as_slice()
        );
        // Clones share the buffer (and the whole body) — no copies.
        let clone = block.clone();
        assert!(clone
            .wire_bytes()
            .shares_allocation_with(block.wire_bytes()));
        // The signing preimage is the wire image minus the signature.
        let preimage = block.signing_preimage();
        assert_eq!(preimage.len(), block.wire_len() - Signature::SIZE);
        assert!(preimage.shares_allocation_with(block.wire_bytes()));
        assert_eq!(BlockRef(sha256(&preimage)), block.block_ref());
    }

    #[test]
    fn decode_from_shared_buffer_slices_not_copies() {
        let registry = registry();
        let signer0 = signer(&registry, 0);
        let block = Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(Label::new(1), &vec![9u8; 64])],
            &signer0,
        );
        let buffer = Bytes::from(encode_to_vec(&block));
        let decoded: Block = decode_from_bytes(&buffer).unwrap();
        assert_eq!(decoded, block);
        // The decoded block's wire image and request payloads are slices of
        // the receive buffer — the zero-copy path.
        assert!(decoded.wire_bytes().shares_allocation_with(&buffer));
        assert!(decoded.requests()[0]
            .payload
            .shares_allocation_with(&buffer));
    }

    #[test]
    fn canonical_encode_counter_ignores_sends() {
        // The counter is process-global and other unit tests build blocks
        // on parallel threads, so assert *deltas with slack*: a build adds
        // at least one encode, and a large batch of re-encodes adds far
        // fewer than one encode each (none from this thread; at most a few
        // dozen from concurrent builds elsewhere).
        const REENCODES: u64 = 100_000;
        let registry = registry();
        let signer0 = signer(&registry, 0);
        let before_build = Block::canonical_encodes();
        let block = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer0);
        assert!(Block::canonical_encodes() > before_build);
        let before_sends = Block::canonical_encodes();
        // Re-encoding (what every send does) replays the cache: no new
        // canonical encode, regardless of fan-out.
        for _ in 0..REENCODES {
            let _ = encode_to_vec(&block);
        }
        assert!(
            Block::canonical_encodes() - before_sends < REENCODES,
            "re-encoding must serve the cache, not re-serialize"
        );
        assert!(Block::canonical_encode_bytes() > 0);
    }

    #[test]
    fn parent_detection_genesis() {
        let registry = registry();
        let genesis = Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![],
            &signer(&registry, 0),
        );
        assert_eq!(genesis.parent_via(|_| None).unwrap(), None);
    }

    #[test]
    fn parent_detection_single_parent() {
        let registry = registry();
        let signer0 = signer(&registry, 0);
        let genesis = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer0);
        let other = Block::build(
            ServerId::new(1),
            SeqNum::ZERO,
            vec![],
            vec![],
            &signer(&registry, 1),
        );
        let child = Block::build(
            ServerId::new(0),
            SeqNum::new(1),
            vec![genesis.block_ref(), other.block_ref()],
            vec![],
            &signer0,
        );
        let meta = |r: &BlockRef| {
            [&genesis, &other]
                .iter()
                .find(|b| b.block_ref() == *r)
                .map(|b| (b.builder(), b.seq()))
        };
        assert_eq!(child.parent_via(meta).unwrap(), Some(genesis.block_ref()));
    }

    #[test]
    fn parent_detection_missing() {
        let registry = registry();
        let orphan = Block::build(
            ServerId::new(0),
            SeqNum::new(5),
            vec![],
            vec![],
            &signer(&registry, 0),
        );
        assert!(matches!(
            orphan.parent_via(|_| None),
            Err(InvalidBlockError::MissingParent { .. })
        ));
    }

    #[test]
    fn parent_detection_two_distinct_parents_rejected() {
        let registry = registry();
        let signer0 = signer(&registry, 0);
        // Two equivocating k=0 blocks by server 0.
        let genesis_a = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer0);
        let genesis_b = Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(Label::new(0), &1u8)],
            &signer0,
        );
        let child = Block::build(
            ServerId::new(0),
            SeqNum::new(1),
            vec![genesis_a.block_ref(), genesis_b.block_ref()],
            vec![],
            &signer0,
        );
        let meta = |r: &BlockRef| {
            [&genesis_a, &genesis_b]
                .iter()
                .find(|b| b.block_ref() == *r)
                .map(|b| (b.builder(), b.seq()))
        };
        assert!(matches!(
            child.parent_via(meta),
            Err(InvalidBlockError::MultipleParents { .. })
        ));
    }

    #[test]
    fn duplicate_parent_reference_is_one_parent() {
        let registry = registry();
        let signer0 = signer(&registry, 0);
        let genesis = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer0);
        let child = Block::build(
            ServerId::new(0),
            SeqNum::new(1),
            vec![genesis.block_ref(), genesis.block_ref()],
            vec![],
            &signer0,
        );
        let meta =
            |r: &BlockRef| (*r == genesis.block_ref()).then(|| (genesis.builder(), genesis.seq()));
        assert_eq!(child.parent_via(meta).unwrap(), Some(genesis.block_ref()));
    }

    #[test]
    fn lemma_3_2_no_mutual_references() {
        // Cryptographic argument: to build B1 with ref(B2) ∈ B1.preds we
        // need ref(B2) first, and vice versa. We test the observable
        // consequence: any two constructible blocks can never reference each
        // other, because a block's own ref depends on its preds list.
        let registry = registry();
        let signer0 = signer(&registry, 0);
        let b1 = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer0);
        let b2 = Block::build(
            ServerId::new(1),
            SeqNum::ZERO,
            vec![b1.block_ref()],
            vec![],
            &signer(&registry, 1),
        );
        assert!(b2.preds().contains(&b1.block_ref()));
        assert!(!b1.preds().contains(&b2.block_ref()));
        // Rebuilding b1 to include b2 changes its ref — it is a different
        // block, so the original b2 no longer references "it".
        let b1_prime = Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![b2.block_ref()],
            vec![],
            &signer0,
        );
        assert_ne!(b1_prime.block_ref(), b1.block_ref());
    }

    #[test]
    fn display_and_debug_are_informative() {
        let registry = registry();
        let block = Block::build(
            ServerId::new(1),
            SeqNum::new(3),
            vec![],
            vec![],
            &signer(&registry, 1),
        );
        let debug = format!("{block:?}");
        assert!(debug.contains("s1"));
        assert!(debug.contains("k3"));
        let display = format!("{block}");
        assert!(display.contains("s1/k3#"));
    }
}
