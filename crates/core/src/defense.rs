//! Adversarial peer defense: deterministic scoring, rate limiting, and
//! time-decaying bans.
//!
//! The paper assumes well-behaved dissemination and treats accountability
//! as an extension (§6). A node serving open networks cannot: peers may
//! flood duplicates, drip garbage, or equivocate. [`PeerDefense`] turns
//! the admission outcomes the gossip layer already computes — invalid
//! signatures, duplicate floods, pending-cap evictions, equivocations —
//! into a **graduated, fully deterministic** response:
//!
//! 1. **Scoring** — every offense adds a configured penalty to the
//!    offender's score. Transient offenses decay with (logical) time;
//!    equivocations are durable — they are provable from the DAG
//!    ([`crate::accountability`]) and are re-derived on crash recovery.
//! 2. **Token-bucket rate limits** — per-peer blocks/bytes buckets gate
//!    ingest; a flooding peer's surplus is dropped before it buys any
//!    verification work.
//! 3. **Deprioritization** — a caught equivocator's blocks admit last in
//!    every burst wave and its pending allowance shrinks
//!    ([`DefenseConfig::deprioritized_allowance`]).
//! 4. **Bans** — a score crossing [`DefenseConfig::ban_threshold`]
//!    triggers a time-bounded ban: gossip drops the peer's traffic, and
//!    the TCP transport refuses its reconnects until the ban decays.
//!
//! Every state change emits a typed [`DefenseEvent`] — the auditable
//! trail next to gossip's `EvictionEvent` log — and everything is keyed
//! on the logical [`TimeMs`] the caller supplies, so identical event
//! sequences produce byte-identical score trajectories across admission
//! engines, signature schemes, and restarts.

use std::collections::BTreeMap;

use dagbft_crypto::ServerId;

use crate::TimeMs;

/// Configuration of the peer-defense engine. `enabled: false` (the
/// default) turns the whole subsystem into a no-op so deployments opt in
/// explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefenseConfig {
    /// Master switch; all other knobs are inert when `false`.
    pub enabled: bool,
    /// Score added per block rejected as permanently invalid (forged
    /// signature, unknown builder, malformed parent structure).
    pub invalid_penalty: u64,
    /// Score added per received block already held (duplicate flood).
    pub duplicate_penalty: u64,
    /// Score added per pending-cap eviction attributed to the peer that
    /// delivered the victim.
    pub eviction_penalty: u64,
    /// Score added per malformed frame reported by the transport.
    pub malformed_penalty: u64,
    /// Score added per throttled block (sustained flooding escalates
    /// from throttling to a ban).
    pub throttle_penalty: u64,
    /// Durable score per proven equivocation (counted from the DAG, so
    /// it survives crash/restart).
    pub equivocation_penalty: u64,
    /// Volatile score decays by [`DefenseConfig::decay_step`] once per
    /// this many logical milliseconds.
    pub decay_interval_ms: u64,
    /// Volatile score subtracted per elapsed decay interval.
    pub decay_step: u64,
    /// Total score at or above which an offense triggers a ban.
    pub ban_threshold: u64,
    /// Ban duration in logical milliseconds.
    pub ban_ms: u64,
    /// Token-bucket capacity, in blocks, per peer.
    pub bucket_blocks: u64,
    /// Blocks refilled per refill interval.
    pub refill_blocks: u64,
    /// Token-bucket capacity, in wire bytes, per peer.
    pub bucket_bytes: u64,
    /// Wire bytes refilled per refill interval.
    pub refill_bytes: u64,
    /// Refill cadence in logical milliseconds.
    pub refill_interval_ms: u64,
    /// Maximum pending-buffer slots a deprioritized (equivocating)
    /// builder may occupy; excess blocks are evicted oldest-first.
    pub deprioritized_allowance: usize,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        DefenseConfig {
            enabled: false,
            invalid_penalty: 40,
            duplicate_penalty: 2,
            eviction_penalty: 5,
            malformed_penalty: 20,
            throttle_penalty: 3,
            equivocation_penalty: 120,
            decay_interval_ms: 1_000,
            decay_step: 10,
            ban_threshold: 240,
            ban_ms: 10_000,
            bucket_blocks: 64,
            refill_blocks: 32,
            bucket_bytes: 1 << 20,
            refill_bytes: 512 << 10,
            refill_interval_ms: 100,
            deprioritized_allowance: 16,
        }
    }
}

impl DefenseConfig {
    /// The default knobs with the subsystem switched on.
    pub fn enabled() -> Self {
        DefenseConfig {
            enabled: true,
            ..DefenseConfig::default()
        }
    }

    /// Sets the ban threshold and duration.
    pub fn with_ban(mut self, threshold: u64, ban_ms: u64) -> Self {
        self.ban_threshold = threshold;
        self.ban_ms = ban_ms;
        self
    }

    /// Sets the per-peer block bucket (capacity and per-interval refill).
    pub fn with_block_bucket(mut self, capacity: u64, refill: u64) -> Self {
        self.bucket_blocks = capacity.max(1);
        self.refill_blocks = refill;
        self
    }

    /// Sets the per-peer byte bucket (capacity and per-interval refill).
    pub fn with_byte_bucket(mut self, capacity: u64, refill: u64) -> Self {
        self.bucket_bytes = capacity.max(1);
        self.refill_bytes = refill;
        self
    }

    /// Sets the volatile-score decay (subtract `step` every `interval_ms`).
    pub fn with_decay(mut self, interval_ms: u64, step: u64) -> Self {
        self.decay_interval_ms = interval_ms.max(1);
        self.decay_step = step;
        self
    }

    /// Sets the deprioritized builders' pending allowance (at least 1).
    pub fn with_deprioritized_allowance(mut self, allowance: usize) -> Self {
        self.deprioritized_allowance = allowance.max(1);
        self
    }
}

/// The admission outcomes the scoring engine consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Offense {
    /// A block rejected as permanently invalid (Definition 3.3).
    InvalidBlock,
    /// A received block already present (duplicate flood).
    DuplicateFlood,
    /// A pending-cap eviction attributed to the delivering peer.
    Eviction,
    /// A malformed frame reported by the transport layer.
    MalformedFrame,
    /// A block dropped by the token bucket (flood pressure).
    Throttled,
    /// A proven equivocation (durable; convicts the builder).
    Equivocation,
}

impl Offense {
    fn penalty(self, config: &DefenseConfig) -> u64 {
        match self {
            Offense::InvalidBlock => config.invalid_penalty,
            Offense::DuplicateFlood => config.duplicate_penalty,
            Offense::Eviction => config.eviction_penalty,
            Offense::MalformedFrame => config.malformed_penalty,
            Offense::Throttled => config.throttle_penalty,
            Offense::Equivocation => config.equivocation_penalty,
        }
    }

    fn code(self) -> u8 {
        match self {
            Offense::InvalidBlock => 0,
            Offense::DuplicateFlood => 1,
            Offense::Eviction => 2,
            Offense::MalformedFrame => 3,
            Offense::Throttled => 4,
            Offense::Equivocation => 5,
        }
    }
}

/// Verdict of the per-peer ingest gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitVerdict {
    /// Within budget: hand the block to admission.
    Admit,
    /// Token bucket empty: drop the block (recoverable via `FWD`).
    Throttle,
    /// The peer is banned: drop without charging the bucket.
    Ban,
}

/// One auditable defensive action — the defense layer's analogue of
/// gossip's `EvictionEvent`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseEvent {
    /// An offense changed a peer's score.
    Scored {
        /// The penalized peer.
        peer: ServerId,
        /// What it did.
        offense: Offense,
        /// Its total score after the penalty.
        score: u64,
        /// Logical time of the offense.
        at: TimeMs,
    },
    /// The token bucket dropped a block.
    Throttled {
        /// The throttled peer.
        peer: ServerId,
        /// Wire length of the dropped block.
        wire_len: u64,
        /// Logical time of the drop.
        at: TimeMs,
    },
    /// A score crossing the threshold triggered a ban.
    Banned {
        /// The banned peer.
        peer: ServerId,
        /// Logical time the ban lapses.
        until: TimeMs,
        /// The score that triggered it.
        score: u64,
        /// Logical time of the ban.
        at: TimeMs,
    },
    /// A previously imposed ban lapsed (noted on the peer's next
    /// admission attempt).
    BanLifted {
        /// The reinstated peer.
        peer: ServerId,
        /// Logical time the lapse was observed.
        at: TimeMs,
    },
    /// A builder was (or remains, after recovery) deprioritized for
    /// proven equivocation.
    Deprioritized {
        /// The convicted builder.
        builder: ServerId,
        /// Total proven equivocations so far.
        equivocations: u64,
        /// Logical time of conviction.
        at: TimeMs,
    },
}

/// Aggregate counters of one [`PeerDefense`] instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefenseStats {
    /// Offenses scored (all kinds, all peers).
    pub offenses: u64,
    /// Blocks dropped by the token bucket.
    pub throttled_blocks: u64,
    /// Blocks dropped because their sender was banned.
    pub banned_blocks: u64,
    /// Bans imposed.
    pub bans: u64,
    /// Builders currently deprioritized for proven equivocation.
    pub deprioritized: u64,
}

/// Point-in-time view of one peer's defense state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerScoreSnapshot {
    /// Decaying score component from transient offenses.
    pub volatile: u64,
    /// Proven equivocations (durable; re-derived from the DAG on
    /// recovery).
    pub equivocations: u64,
    /// Total score: `volatile + equivocations · equivocation_penalty`.
    pub total: u64,
    /// Whether the peer is currently banned.
    pub banned: bool,
    /// Blocks of this peer dropped by the token bucket.
    pub throttled_blocks: u64,
    /// Blocks of this peer dropped while it was banned.
    pub banned_blocks: u64,
}

/// Per-peer defense state. Buckets start full; decay and refill are
/// applied lazily from the stored timestamps, in whole intervals, so the
/// state is a pure function of the offense/admission sequence.
#[derive(Debug, Clone, Copy)]
struct PeerState {
    volatile: u64,
    decayed_to: TimeMs,
    equivocations: u64,
    block_tokens: u64,
    byte_tokens: u64,
    refilled_to: TimeMs,
    /// `0` — not banned; otherwise the logical lapse time.
    banned_until: TimeMs,
    throttled_blocks: u64,
    banned_blocks: u64,
}

impl PeerState {
    fn fresh(config: &DefenseConfig, now: TimeMs) -> Self {
        PeerState {
            volatile: 0,
            decayed_to: now,
            equivocations: 0,
            block_tokens: config.bucket_blocks,
            byte_tokens: config.bucket_bytes,
            refilled_to: now,
            banned_until: 0,
            throttled_blocks: 0,
            banned_blocks: 0,
        }
    }

    /// Applies pending decay and refill up to `now` (whole intervals
    /// only, remainder carried in the timestamps — lossless and
    /// deterministic).
    fn advance(&mut self, config: &DefenseConfig, now: TimeMs) {
        let decay_steps = now.saturating_sub(self.decayed_to) / config.decay_interval_ms;
        if decay_steps > 0 {
            self.volatile = self
                .volatile
                .saturating_sub(decay_steps.saturating_mul(config.decay_step));
            self.decayed_to += decay_steps * config.decay_interval_ms;
        }
        let refill_steps = now.saturating_sub(self.refilled_to) / config.refill_interval_ms;
        if refill_steps > 0 {
            self.block_tokens = self
                .block_tokens
                .saturating_add(refill_steps.saturating_mul(config.refill_blocks))
                .min(config.bucket_blocks);
            self.byte_tokens = self
                .byte_tokens
                .saturating_add(refill_steps.saturating_mul(config.refill_bytes))
                .min(config.bucket_bytes);
            self.refilled_to += refill_steps * config.refill_interval_ms;
        }
    }

    fn total(&self, config: &DefenseConfig) -> u64 {
        self.volatile.saturating_add(
            self.equivocations
                .saturating_mul(config.equivocation_penalty),
        )
    }
}

/// The deterministic per-peer defense engine (see the module docs).
///
/// All entry points take the caller's logical clock: the simulator's
/// event time or a node's milliseconds-since-start. Nothing here reads
/// wall-clock time, so a run's defensive behaviour — scores, throttles,
/// bans, and the full [`DefenseEvent`] trajectory — is reproducible from
/// the event sequence alone.
#[derive(Debug, Clone)]
pub struct PeerDefense {
    config: DefenseConfig,
    peers: BTreeMap<ServerId, PeerState>,
    events: Vec<DefenseEvent>,
    stats: DefenseStats,
}

impl PeerDefense {
    /// Creates an engine with the given configuration.
    pub fn new(config: DefenseConfig) -> Self {
        PeerDefense {
            config,
            peers: BTreeMap::new(),
            events: Vec::new(),
            stats: DefenseStats::default(),
        }
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &DefenseConfig {
        &self.config
    }

    /// Whether the subsystem is active at all.
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// Aggregate counters.
    pub fn stats(&self) -> DefenseStats {
        self.stats
    }

    /// The auditable trail of every defensive action, in order.
    pub fn events(&self) -> &[DefenseEvent] {
        &self.events
    }

    /// Gates one block from `peer` (`wire_len` canonical bytes) through
    /// the ban check and the token buckets. Call only for remote peers;
    /// a disabled engine always admits.
    pub fn admit_block(&mut self, peer: ServerId, wire_len: u64, now: TimeMs) -> AdmitVerdict {
        if !self.config.enabled {
            return AdmitVerdict::Admit;
        }
        let config = self.config;
        let state = self
            .peers
            .entry(peer)
            .or_insert_with(|| PeerState::fresh(&config, now));
        state.advance(&config, now);
        if state.banned_until > now {
            state.banned_blocks += 1;
            self.stats.banned_blocks += 1;
            return AdmitVerdict::Ban;
        }
        if state.banned_until != 0 {
            state.banned_until = 0;
            self.events.push(DefenseEvent::BanLifted { peer, at: now });
        }
        if state.block_tokens >= 1 && state.byte_tokens >= wire_len {
            state.block_tokens -= 1;
            state.byte_tokens -= wire_len;
            return AdmitVerdict::Admit;
        }
        state.throttled_blocks += 1;
        self.stats.throttled_blocks += 1;
        self.events.push(DefenseEvent::Throttled {
            peer,
            wire_len,
            at: now,
        });
        self.score_offense(peer, Offense::Throttled, now);
        AdmitVerdict::Throttle
    }

    /// Records one offense by `peer`, emitting the score event and — if
    /// the total crosses [`DefenseConfig::ban_threshold`] — a ban.
    pub fn note_offense(&mut self, peer: ServerId, offense: Offense, now: TimeMs) {
        if !self.config.enabled {
            return;
        }
        self.score_offense(peer, offense, now);
    }

    fn score_offense(&mut self, peer: ServerId, offense: Offense, now: TimeMs) {
        let config = self.config;
        let state = self
            .peers
            .entry(peer)
            .or_insert_with(|| PeerState::fresh(&config, now));
        state.advance(&config, now);
        if offense == Offense::Equivocation {
            state.equivocations += 1;
            let equivocations = state.equivocations;
            if equivocations == 1 {
                self.stats.deprioritized += 1;
            }
            self.events.push(DefenseEvent::Deprioritized {
                builder: peer,
                equivocations,
                at: now,
            });
        } else {
            state.volatile = state.volatile.saturating_add(offense.penalty(&config));
        }
        let score = state.total(&config);
        self.stats.offenses += 1;
        self.events.push(DefenseEvent::Scored {
            peer,
            offense,
            score,
            at: now,
        });
        let state = self.peers.get_mut(&peer).expect("just inserted");
        if score >= config.ban_threshold && state.banned_until <= now {
            let until = now + config.ban_ms;
            state.banned_until = until;
            self.stats.bans += 1;
            self.events.push(DefenseEvent::Banned {
                peer,
                until,
                score,
                at: now,
            });
        }
    }

    /// Restores the durable score component after crash recovery: sets
    /// `builder`'s proven-equivocation count as re-derived from the
    /// recovered DAG. Idempotent; emits a [`DefenseEvent::Deprioritized`]
    /// record so the audit trail shows the recovered conviction.
    pub fn seed_equivocations(&mut self, builder: ServerId, count: u64, now: TimeMs) {
        if !self.config.enabled || count == 0 {
            return;
        }
        let config = self.config;
        let state = self
            .peers
            .entry(builder)
            .or_insert_with(|| PeerState::fresh(&config, now));
        if state.equivocations == 0 {
            self.stats.deprioritized += 1;
        }
        state.equivocations = state.equivocations.max(count);
        let equivocations = state.equivocations;
        self.events.push(DefenseEvent::Deprioritized {
            builder,
            equivocations,
            at: now,
        });
    }

    /// Whether `builder` has at least one proven equivocation (its
    /// blocks admit last and its pending allowance shrinks).
    pub fn is_deprioritized(&self, builder: ServerId) -> bool {
        self.config.enabled
            && self
                .peers
                .get(&builder)
                .is_some_and(|state| state.equivocations > 0)
    }

    /// Whether any builder is deprioritized (cheap guard for allowance
    /// enforcement).
    pub fn any_deprioritized(&self) -> bool {
        self.stats.deprioritized > 0
    }

    /// Whether `peer` is banned at `now`.
    pub fn is_banned(&self, peer: ServerId, now: TimeMs) -> bool {
        self.config.enabled
            && self
                .peers
                .get(&peer)
                .is_some_and(|state| state.banned_until > now)
    }

    /// Active bans at `now`: `(peer, lapse time)` — what a transport
    /// syncs into its reconnect gate.
    pub fn bans(&self, now: TimeMs) -> Vec<(ServerId, TimeMs)> {
        self.peers
            .iter()
            .filter(|(_, state)| state.banned_until > now)
            .map(|(peer, state)| (*peer, state.banned_until))
            .collect()
    }

    /// `peer`'s current score with decay applied virtually (the stored
    /// state is not mutated).
    pub fn score(&self, peer: ServerId, now: TimeMs) -> u64 {
        match self.peers.get(&peer) {
            Some(state) => {
                let mut copy = *state;
                copy.advance(&self.config, now);
                copy.total(&self.config)
            }
            None => 0,
        }
    }

    /// Point-in-time snapshots for every peer the engine has seen, in
    /// `ServerId` order — the metrics mirror-publisher's source.
    pub fn snapshots(&self, now: TimeMs) -> Vec<(ServerId, PeerScoreSnapshot)> {
        self.peers
            .iter()
            .map(|(peer, state)| {
                let mut copy = *state;
                copy.advance(&self.config, now);
                (
                    *peer,
                    PeerScoreSnapshot {
                        volatile: copy.volatile,
                        equivocations: copy.equivocations,
                        total: copy.total(&self.config),
                        banned: copy.banned_until > now,
                        throttled_blocks: copy.throttled_blocks,
                        banned_blocks: copy.banned_blocks,
                    },
                )
            })
            .collect()
    }

    /// Canonical byte encoding of the full event trajectory — what the
    /// determinism tests compare across admission engines and signature
    /// schemes.
    pub fn trajectory_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.events.len() * 24);
        for event in &self.events {
            match *event {
                DefenseEvent::Scored {
                    peer,
                    offense,
                    score,
                    at,
                } => {
                    out.push(b'S');
                    out.extend_from_slice(&peer.index().to_le_bytes());
                    out.push(offense.code());
                    out.extend_from_slice(&score.to_le_bytes());
                    out.extend_from_slice(&at.to_le_bytes());
                }
                DefenseEvent::Throttled { peer, wire_len, at } => {
                    out.push(b'T');
                    out.extend_from_slice(&peer.index().to_le_bytes());
                    out.extend_from_slice(&wire_len.to_le_bytes());
                    out.extend_from_slice(&at.to_le_bytes());
                }
                DefenseEvent::Banned {
                    peer,
                    until,
                    score,
                    at,
                } => {
                    out.push(b'B');
                    out.extend_from_slice(&peer.index().to_le_bytes());
                    out.extend_from_slice(&until.to_le_bytes());
                    out.extend_from_slice(&score.to_le_bytes());
                    out.extend_from_slice(&at.to_le_bytes());
                }
                DefenseEvent::BanLifted { peer, at } => {
                    out.push(b'L');
                    out.extend_from_slice(&peer.index().to_le_bytes());
                    out.extend_from_slice(&at.to_le_bytes());
                }
                DefenseEvent::Deprioritized {
                    builder,
                    equivocations,
                    at,
                } => {
                    out.push(b'D');
                    out.extend_from_slice(&builder.index().to_le_bytes());
                    out.extend_from_slice(&equivocations.to_le_bytes());
                    out.extend_from_slice(&at.to_le_bytes());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(i: u32) -> ServerId {
        ServerId::new(i)
    }

    #[test]
    fn disabled_engine_is_inert() {
        let mut defense = PeerDefense::new(DefenseConfig::default());
        assert_eq!(
            defense.admit_block(peer(1), 10_000_000, 0),
            AdmitVerdict::Admit
        );
        defense.note_offense(peer(1), Offense::InvalidBlock, 0);
        defense.note_offense(peer(1), Offense::Equivocation, 0);
        assert_eq!(defense.score(peer(1), 0), 0);
        assert!(defense.events().is_empty());
        assert!(!defense.is_deprioritized(peer(1)));
        assert_eq!(defense.stats(), DefenseStats::default());
    }

    #[test]
    fn scores_accumulate_and_decay() {
        let config = DefenseConfig::enabled().with_decay(1_000, 10);
        let mut defense = PeerDefense::new(config);
        defense.note_offense(peer(1), Offense::InvalidBlock, 0);
        assert_eq!(defense.score(peer(1), 0), config.invalid_penalty);
        // After 2 intervals, two decay steps have been subtracted.
        assert_eq!(
            defense.score(peer(1), 2_000),
            config.invalid_penalty - 2 * config.decay_step
        );
        // Decay is lazy but lossless: an offense later sees the same total.
        defense.note_offense(peer(1), Offense::DuplicateFlood, 2_000);
        assert_eq!(
            defense.score(peer(1), 2_000),
            config.invalid_penalty - 2 * config.decay_step + config.duplicate_penalty
        );
        // Eventually the volatile component reaches zero.
        assert_eq!(defense.score(peer(1), 1_000_000), 0);
    }

    #[test]
    fn token_bucket_throttles_floods_and_refills() {
        let config = DefenseConfig::enabled().with_block_bucket(2, 1);
        let mut defense = PeerDefense::new(config);
        assert_eq!(defense.admit_block(peer(1), 100, 0), AdmitVerdict::Admit);
        assert_eq!(defense.admit_block(peer(1), 100, 0), AdmitVerdict::Admit);
        assert_eq!(defense.admit_block(peer(1), 100, 0), AdmitVerdict::Throttle);
        assert_eq!(defense.stats().throttled_blocks, 1);
        // One refill interval restores one token.
        let later = config.refill_interval_ms;
        assert_eq!(
            defense.admit_block(peer(1), 100, later),
            AdmitVerdict::Admit
        );
        assert_eq!(
            defense.admit_block(peer(1), 100, later),
            AdmitVerdict::Throttle
        );
    }

    #[test]
    fn byte_bucket_bounds_large_blocks() {
        let config = DefenseConfig::enabled().with_byte_bucket(1_000, 100);
        let mut defense = PeerDefense::new(config);
        assert_eq!(defense.admit_block(peer(1), 900, 0), AdmitVerdict::Admit);
        assert_eq!(defense.admit_block(peer(1), 900, 0), AdmitVerdict::Throttle);
        assert_eq!(defense.admit_block(peer(1), 50, 0), AdmitVerdict::Admit);
    }

    #[test]
    fn crossing_threshold_bans_and_ban_decays() {
        let config = DefenseConfig::enabled().with_ban(80, 5_000);
        let mut defense = PeerDefense::new(config);
        defense.note_offense(peer(1), Offense::InvalidBlock, 0);
        assert!(!defense.is_banned(peer(1), 0), "below threshold");
        defense.note_offense(peer(1), Offense::InvalidBlock, 0);
        assert!(defense.is_banned(peer(1), 0), "threshold crossed");
        assert_eq!(defense.stats().bans, 1);
        assert_eq!(defense.bans(0), vec![(peer(1), 5_000)]);
        // Banned traffic is dropped without charging the bucket.
        assert_eq!(defense.admit_block(peer(1), 100, 1_000), AdmitVerdict::Ban);
        assert_eq!(defense.stats().banned_blocks, 1);
        // After the lapse the peer is readmitted (and the lift is logged).
        assert!(!defense.is_banned(peer(1), 5_000));
        assert_eq!(
            defense.admit_block(peer(1), 100, 6_000),
            AdmitVerdict::Admit
        );
        assert!(defense
            .events()
            .iter()
            .any(|e| matches!(e, DefenseEvent::BanLifted { .. })));
    }

    #[test]
    fn equivocation_is_durable_and_deprioritizes() {
        let mut defense = PeerDefense::new(DefenseConfig::enabled());
        defense.note_offense(peer(2), Offense::Equivocation, 100);
        assert!(defense.is_deprioritized(peer(2)));
        assert!(defense.any_deprioritized());
        assert!(!defense.is_deprioritized(peer(1)));
        // Equivocation score never decays.
        let config = defense.config();
        assert_eq!(
            defense.score(peer(2), 10_000_000),
            config.equivocation_penalty
        );
        assert_eq!(defense.stats().deprioritized, 1);
    }

    #[test]
    fn seeding_matches_live_conviction_scores() {
        let mut live = PeerDefense::new(DefenseConfig::enabled());
        live.note_offense(peer(2), Offense::Equivocation, 50);
        live.note_offense(peer(2), Offense::Equivocation, 60);

        let mut recovered = PeerDefense::new(DefenseConfig::enabled());
        recovered.seed_equivocations(peer(2), 2, 0);
        assert_eq!(
            live.score(peer(2), 100_000),
            recovered.score(peer(2), 100_000),
            "durable component identical after recovery"
        );
        assert!(recovered.is_deprioritized(peer(2)));
        // Seeding twice is idempotent.
        recovered.seed_equivocations(peer(2), 2, 0);
        assert_eq!(recovered.score(peer(2), 0), live.score(peer(2), 100_000));
    }

    #[test]
    fn trajectories_are_a_pure_function_of_the_event_sequence() {
        let run = || {
            let mut defense = PeerDefense::new(DefenseConfig::enabled());
            defense.note_offense(peer(1), Offense::InvalidBlock, 10);
            defense.admit_block(peer(1), 500, 20);
            defense.note_offense(peer(3), Offense::Equivocation, 30);
            defense.note_offense(peer(1), Offense::DuplicateFlood, 40);
            defense.trajectory_bytes()
        };
        assert_eq!(run(), run());
        assert!(!run().is_empty());
    }

    #[test]
    fn sustained_throttling_escalates_to_a_ban() {
        let config = DefenseConfig::enabled()
            .with_block_bucket(1, 0)
            .with_ban(9, 1_000);
        let mut defense = PeerDefense::new(config);
        assert_eq!(defense.admit_block(peer(1), 1, 0), AdmitVerdict::Admit);
        for _ in 0..3 {
            assert_eq!(defense.admit_block(peer(1), 1, 0), AdmitVerdict::Throttle);
        }
        // 3 × throttle_penalty(3) = 9 ≥ threshold: the next block is
        // dropped by the ban, not the bucket.
        assert_eq!(defense.admit_block(peer(1), 1, 0), AdmitVerdict::Ban);
    }
}
