//! The black-box abstraction of a deterministic BFT protocol `P`.
//!
//! The paper (§2, §4) treats `P` as a black box with a high-level interface
//! (requests `Rqsts_P`, indications `Inds_P`) and a low-level interface
//! (receive a message, immediately return triggered messages). This module
//! captures exactly that contract as [`DeterministicProtocol`]:
//!
//! * handlers are *synchronous* — a request or message immediately produces
//!   the triggered out-going messages (collected in an [`Outbox`]);
//! * the implementation must be **deterministic**: state plus an ordered
//!   message sequence fully determine the next state and outputs. No clocks,
//!   no randomness, no global mutable state. The interpreter exploits this
//!   to recompute message contents instead of shipping them (the paper's
//!   message-compression claim);
//! * the required total order `<_M` on messages (§2) is the derived [`Ord`]
//!   on [`Envelope`].

use std::fmt::Debug;

use dagbft_codec::{DecodeError, Reader, WireDecode, WireEncode};
use dagbft_crypto::ServerId;

use crate::Label;

/// Static configuration shared by all process instances of `P`.
///
/// The server set is fixed and known (§2): `n = |Srvrs|` with at most `f`
/// byzantine servers and `n ≥ 3f + 1`.
///
/// # Examples
///
/// ```
/// use dagbft_core::ProtocolConfig;
///
/// let config = ProtocolConfig::for_n(4);
/// assert_eq!(config.f, 1);
/// assert_eq!(config.quorum(), 3); // 2f + 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Total number of servers, `|Srvrs|`.
    pub n: usize,
    /// Maximum number of byzantine servers tolerated.
    pub f: usize,
}

impl ProtocolConfig {
    /// Configuration for `n` servers tolerating the maximum `f = ⌊(n−1)/3⌋`.
    pub fn for_n(n: usize) -> Self {
        ProtocolConfig {
            n,
            f: n.saturating_sub(1) / 3,
        }
    }

    /// Byzantine quorum size, `2f + 1`.
    pub fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// Plurality guaranteeing at least one correct sender, `f + 1`.
    pub fn plurality(&self) -> usize {
        self.f + 1
    }

    /// Iterator over all server identities in this configuration.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> + Clone {
        ServerId::all(self.n)
    }
}

/// A protocol message together with its addressing, `m.sender` and
/// `m.receiver` (§2).
///
/// The derived lexicographic [`Ord`] — sender, then receiver, then message —
/// is the arbitrary-but-fixed total order `<_M` the interpreter uses to feed
/// messages to process instances in a globally agreed order
/// (Algorithm 2, line 10).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Envelope<M> {
    /// The server whose process instance produced the message.
    pub sender: ServerId,
    /// The server whose process instance should receive the message.
    pub receiver: ServerId,
    /// The protocol-level message body.
    pub message: M,
}

impl<M: WireEncode> WireEncode for Envelope<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sender.encode(out);
        self.receiver.encode(out);
        self.message.encode(out);
    }
}

impl<M: WireDecode> WireDecode for Envelope<M> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Envelope {
            sender: ServerId::decode(reader)?,
            receiver: ServerId::decode(reader)?,
            message: M::decode(reader)?,
        })
    }
}

/// Collector for the messages a protocol handler emits.
///
/// The sender is implicit (the process instance being driven); the
/// interpreter stamps it when materializing [`Envelope`]s.
///
/// # Examples
///
/// ```
/// use dagbft_core::{Outbox, ProtocolConfig};
/// use dagbft_crypto::ServerId;
///
/// let config = ProtocolConfig::for_n(3);
/// let mut outbox: Outbox<&'static str> = Outbox::new();
/// outbox.send(ServerId::new(1), "hi");
/// outbox.broadcast(&config, "all");
/// assert_eq!(outbox.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Outbox<M> {
    messages: Vec<(ServerId, M)>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Outbox<M> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Outbox {
            messages: Vec::new(),
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Returns `true` if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Queues `message` for `receiver`.
    pub fn send(&mut self, receiver: ServerId, message: M) {
        self.messages.push((receiver, message));
    }

    /// Consumes the outbox, yielding `(receiver, message)` pairs.
    pub fn into_messages(self) -> Vec<(ServerId, M)> {
        self.messages
    }

    /// Stamps `sender` on every queued message, producing envelopes.
    pub fn into_envelopes(self, sender: ServerId) -> impl Iterator<Item = Envelope<M>> {
        self.messages
            .into_iter()
            .map(move |(receiver, message)| Envelope {
                sender,
                receiver,
                message,
            })
    }
}

impl<M: Clone> Outbox<M> {
    /// Queues `message` for every server in the configuration, including the
    /// sender itself (the usual "send to all" of broadcast protocols).
    pub fn broadcast(&mut self, config: &ProtocolConfig, message: M) {
        for server in config.servers() {
            self.messages.push((server, message.clone()));
        }
    }
}

/// A deterministic BFT protocol `P`, as required by the embedding (§2, §4).
///
/// # Determinism contract
///
/// Implementations **must** be pure state machines: identical sequences of
/// [`DeterministicProtocol::on_request`] / [`DeterministicProtocol::on_message`]
/// calls from a fresh instance must produce identical outputs and identical
/// subsequent behaviour. In particular:
///
/// * no randomness, clocks, thread identity, or I/O;
/// * iteration order over internal collections must be deterministic
///   (use `BTreeMap`/`BTreeSet`, not hash maps);
/// * `Clone` must produce an observationally identical instance — the
///   interpreter clones instance state along DAG edges
///   (Algorithm 2, line 4).
///
/// Violating the contract does not corrupt the DAG, but different servers'
/// interpretations may diverge, which is precisely what the paper's
/// Lemma 4.2 excludes for deterministic `P`.
///
/// # Examples
///
/// See the crate-level docs for a complete miniature implementation.
pub trait DeterministicProtocol: Clone {
    /// User requests, `Rqsts_P`. They travel inside blocks, hence the wire
    /// bounds; everything else never touches the network.
    type Request: Clone + Debug + WireEncode + WireDecode;
    /// Protocol messages, `M_P`. `Ord` supplies the total order `<_M`.
    type Message: Clone + Debug + Ord;
    /// Indications to the user, `Inds_P`.
    type Indication: Clone + Debug + PartialEq;

    /// Creates the process instance of this protocol for instance `label`,
    /// running *as* server `me` within the configured server set.
    fn new(config: &ProtocolConfig, label: Label, me: ServerId) -> Self;

    /// High-level interface: the user requests `request`; messages
    /// triggered by it are returned immediately via `outbox` (§4).
    fn on_request(&mut self, request: Self::Request, outbox: &mut Outbox<Self::Message>);

    /// Low-level interface: `message` from `sender` reaches this instance;
    /// messages triggered by it are returned immediately via `outbox` (§4).
    fn on_message(
        &mut self,
        sender: ServerId,
        message: Self::Message,
        outbox: &mut Outbox<Self::Message>,
    );

    /// Removes and returns any pending indications `i ∈ Inds_P`.
    ///
    /// Called by the interpreter after each block interpretation
    /// (Algorithm 2, lines 13–14). Draining must be destructive so an
    /// indication is raised exactly once per occurrence.
    fn drain_indications(&mut self) -> Vec<Self::Indication>;
}

/// A [`DeterministicProtocol`] whose process-instance state can be
/// serialized into interpreter snapshots.
///
/// The interpreter persists periodic state snapshots through a
/// [`crate::store::BlockStore`] so crash recovery replays only the block
/// suffix past the last snapshot instead of from genesis. The encoding
/// must be **self-contained and canonical**: `decode_state` applied to
/// `encode_state`'s output must reproduce an observationally identical
/// instance (including its [`ProtocolConfig`] and [`Label`], if behaviour
/// depends on them), and identical instances must encode to identical
/// bytes — snapshots feed determinism fingerprints.
///
/// Messages additionally need wire bounds because a snapshot persists the
/// materialized out-message sets of every interpreted block.
pub trait SnapshotProtocol: DeterministicProtocol
where
    Self::Message: WireEncode + WireDecode,
{
    /// Appends this instance's complete state to `out`.
    fn encode_state(&self, out: &mut Vec<u8>);

    /// Rebuilds an instance from bytes produced by
    /// [`SnapshotProtocol::encode_state`].
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] on malformed or truncated input; implementations
    /// must not panic.
    fn decode_state(reader: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_for_n_maximizes_f() {
        assert_eq!(ProtocolConfig::for_n(1).f, 0);
        assert_eq!(ProtocolConfig::for_n(3).f, 0);
        assert_eq!(ProtocolConfig::for_n(4).f, 1);
        assert_eq!(ProtocolConfig::for_n(7).f, 2);
        assert_eq!(ProtocolConfig::for_n(10).f, 3);
    }

    #[test]
    fn quorum_and_plurality() {
        let config = ProtocolConfig::for_n(7);
        assert_eq!(config.quorum(), 5);
        assert_eq!(config.plurality(), 3);
    }

    #[test]
    fn envelope_total_order_is_sender_receiver_message() {
        let a = Envelope {
            sender: ServerId::new(0),
            receiver: ServerId::new(9),
            message: 5u8,
        };
        let b = Envelope {
            sender: ServerId::new(1),
            receiver: ServerId::new(0),
            message: 0u8,
        };
        assert!(a < b);
        let c = Envelope {
            sender: ServerId::new(0),
            receiver: ServerId::new(9),
            message: 6u8,
        };
        assert!(a < c);
    }

    #[test]
    fn outbox_broadcast_includes_self() {
        let config = ProtocolConfig::for_n(4);
        let mut outbox = Outbox::new();
        outbox.broadcast(&config, 1u8);
        let receivers: Vec<_> = outbox
            .into_messages()
            .into_iter()
            .map(|(to, _)| to.index())
            .collect();
        assert_eq!(receivers, vec![0, 1, 2, 3]);
    }

    #[test]
    fn outbox_envelopes_stamp_sender() {
        let mut outbox = Outbox::new();
        outbox.send(ServerId::new(2), "m");
        let envelopes: Vec<_> = outbox.into_envelopes(ServerId::new(7)).collect();
        assert_eq!(envelopes.len(), 1);
        assert_eq!(envelopes[0].sender, ServerId::new(7));
        assert_eq!(envelopes[0].receiver, ServerId::new(2));
    }
}
