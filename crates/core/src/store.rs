//! Durable block storage behind the [`BlockStore`] trait.
//!
//! The paper's §7 observes that crash–recovery is "a great match for the
//! block DAG approach": the DAG *is* the log, and interpretation is a pure
//! function of it (Lemma 4.2). This module defines the storage seam the
//! rest of the workspace shares — the shim journals every admitted block
//! (its already-canonical wire bytes), every buffered user request, and
//! periodic interpreter snapshots through a `BlockStore`, and recovery
//! ([`crate::Shim::recover_from_store`]) rebuilds a server from whatever
//! the store returns.
//!
//! Two families of implementations exist:
//!
//! * [`MemoryStore`] (here) — the in-memory oracle: loss-free, used by
//!   tests and the simulator's crash scenarios to pin the recovery
//!   semantics independent of any file format;
//! * `dagbft_store::JournalStore` — the log-structured on-disk journal
//!   with checksummed records, torn-tail truncation, and fault-injected
//!   recovery matrices.
//!
//! Every failure mode maps to a typed [`StoreError`] / [`RecoverError`];
//! recovery never panics on corrupt input, and — the §7 equivocation
//! caveat — never resumes a builder's chain below the highest sequence
//! number it durably marked ([`BlockStore::mark_own_tip`]).

use std::error::Error;
use std::fmt;

use crate::block::{Block, BlockRef, LabeledRequest, SeqNum};
use crate::interpret::SnapshotError;
use crate::shim::SetupError;

/// Errors surfaced by a [`BlockStore`] implementation.
///
/// Corruption is always *typed*: implementations must never panic on
/// malformed persisted bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io(String),
    /// The journal's magic header is present but wrong — this is not a
    /// block journal (or a foreign format version).
    BadMagic,
    /// A size-complete record's checksum does not match its bytes: on-disk
    /// corruption that is *not* a torn tail write.
    ChecksumMismatch {
        /// Zero-based index of the corrupt record.
        record: usize,
    },
    /// A record's payload failed strict decoding.
    Decode {
        /// Zero-based index of the malformed record.
        record: usize,
        /// The underlying codec error, rendered.
        error: String,
    },
    /// A block record's recomputed `ref(B)` differs from the reference the
    /// record claims — the stored wire image is not the block that was
    /// admitted.
    RefMismatch {
        /// Zero-based index of the mismatching record.
        record: usize,
    },
    /// A record carries an unknown kind tag.
    UnknownKind {
        /// Zero-based index of the record.
        record: usize,
        /// The unrecognized kind byte.
        kind: u8,
    },
    /// A snapshot record claims to cover more blocks than precede it in
    /// the journal.
    SnapshotCoversFuture {
        /// Blocks the snapshot claims to cover.
        covered: u64,
        /// Blocks actually journaled before the snapshot record.
        blocks: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "store i/o error: {err}"),
            StoreError::BadMagic => write!(f, "not a block journal (bad magic)"),
            StoreError::ChecksumMismatch { record } => {
                write!(f, "record {record}: checksum mismatch")
            }
            StoreError::Decode { record, error } => {
                write!(f, "record {record}: payload does not decode: {error}")
            }
            StoreError::RefMismatch { record } => {
                write!(f, "record {record}: recomputed ref(B) differs from stored")
            }
            StoreError::UnknownKind { record, kind } => {
                write!(f, "record {record}: unknown record kind {kind}")
            }
            StoreError::SnapshotCoversFuture { covered, blocks } => {
                write!(
                    f,
                    "snapshot covers {covered} blocks but only {blocks} precede it"
                )
            }
        }
    }
}

impl Error for StoreError {}

/// Everything a [`BlockStore`] recovered from its durable medium.
///
/// `blocks` preserves journal (= admission) order, which is a topological
/// order of the DAG: the journal only ever appends blocks *after* their
/// predecessors were admitted.
#[derive(Debug, Clone, Default)]
pub struct StoreContents {
    /// Admitted blocks, in admission order.
    pub blocks: Vec<Block>,
    /// User requests buffered via `request()`, in arrival order — the
    /// write-ahead log that lets recovery re-buffer requests not yet
    /// sealed into an own block.
    pub requests: Vec<LabeledRequest>,
    /// The most recent interpreter snapshot, as
    /// `(covered_blocks, opaque payload)`.
    pub snapshot: Option<(u64, Vec<u8>)>,
    /// Highest own-chain sequence number ever durably marked
    /// ([`BlockStore::mark_own_tip`]); recovery refuses to resume below it.
    pub own_tip: Option<SeqNum>,
    /// Records dropped as an incomplete (torn) tail while reading. A clean
    /// shutdown reads back 0; a crash mid-append reads back at most 1.
    pub truncated_records: usize,
}

/// A durable, append-only store for one server's DAG history.
///
/// The shim appends every admitted block (in admission order), every
/// buffered request, and periodic interpreter snapshots;
/// [`BlockStore::sync`] makes previous appends durable. Reading back
/// via [`BlockStore::contents`] must tolerate arbitrarily corrupt media:
/// torn tails are truncated, everything else maps to a typed
/// [`StoreError`].
pub trait BlockStore: fmt::Debug + Send {
    /// Appends one admitted block. Implementations persist the block's
    /// cached canonical wire bytes verbatim.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write failure.
    fn append_block(&mut self, block: &Block) -> Result<(), StoreError>;

    /// Appends one buffered user request (the request WAL).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write failure.
    fn append_request(&mut self, request: &LabeledRequest) -> Result<(), StoreError>;

    /// Appends an interpreter snapshot covering the first `covered`
    /// journaled blocks. Only the latest snapshot is ever read back.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write failure.
    fn append_snapshot(&mut self, covered: u64, payload: &[u8]) -> Result<(), StoreError>;

    /// Durably records that this server sealed an own block at `seq`.
    /// Must be persistent *before* the block is broadcast — the §7
    /// equivocation guard: recovery refuses to resume below the marker
    /// even if the journal tail (the block itself) was lost.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write failure.
    fn mark_own_tip(&mut self, seq: SeqNum) -> Result<(), StoreError>;

    /// Makes all previous appends durable.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on sync failure.
    fn sync(&mut self) -> Result<(), StoreError>;

    /// Reads everything back from the durable medium.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`]; implementations must not panic on corrupt
    /// input.
    fn contents(&self) -> Result<StoreContents, StoreError>;
}

/// The in-memory oracle [`BlockStore`]: loss-free and infallible, used to
/// pin recovery semantics independent of any on-disk format, and by the
/// simulator's crash-at-instant scenarios.
#[derive(Debug, Default)]
pub struct MemoryStore {
    blocks: Vec<Block>,
    requests: Vec<LabeledRequest>,
    snapshot: Option<(u64, Vec<u8>)>,
    own_tip: Option<SeqNum>,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemoryStore::default()
    }

    /// Number of blocks stored.
    pub fn blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Test helper: drops the last `records` block records, simulating a
    /// torn tail that lost fully-written blocks (e.g. an unsynced page).
    /// The own-tip marker is *not* touched — exactly the situation the
    /// §7 equivocation guard must catch when an own block is lost.
    pub fn truncate_tail(&mut self, records: usize) {
        let keep = self.blocks.len().saturating_sub(records);
        self.blocks.truncate(keep);
    }
}

impl BlockStore for MemoryStore {
    fn append_block(&mut self, block: &Block) -> Result<(), StoreError> {
        self.blocks.push(block.clone());
        Ok(())
    }

    fn append_request(&mut self, request: &LabeledRequest) -> Result<(), StoreError> {
        self.requests.push(request.clone());
        Ok(())
    }

    fn append_snapshot(&mut self, covered: u64, payload: &[u8]) -> Result<(), StoreError> {
        self.snapshot = Some((covered, payload.to_vec()));
        Ok(())
    }

    fn mark_own_tip(&mut self, seq: SeqNum) -> Result<(), StoreError> {
        if self.own_tip.is_none_or(|tip| tip < seq) {
            self.own_tip = Some(seq);
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn contents(&self) -> Result<StoreContents, StoreError> {
        Ok(StoreContents {
            blocks: self.blocks.clone(),
            requests: self.requests.clone(),
            snapshot: self.snapshot.clone(),
            own_tip: self.own_tip,
            truncated_records: 0,
        })
    }
}

/// What a [`crate::Shim::recover_from_store`] call actually did — the
/// counters the snapshot-catch-up acceptance criteria assert on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Blocks read back from the journal.
    pub journal_blocks: usize,
    /// Blocks actually re-interpreted during recovery. Without a snapshot
    /// this equals `journal_blocks`; with one it is only the suffix past
    /// the snapshot's coverage.
    pub replayed_blocks: usize,
    /// Blocks whose interpretation the snapshot restored without replay.
    pub snapshot_covered: usize,
    /// Buffered requests re-queued (journaled but never sealed into an
    /// own block before the crash).
    pub requests_rebuffered: usize,
    /// Torn-tail records the store dropped while reading.
    pub truncated_records: usize,
}

/// Errors recovering a server from a [`BlockStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverError {
    /// Reading the store back failed.
    Store(StoreError),
    /// A journaled block references a predecessor that does not precede it
    /// in the journal — the journal is not a topological admission log.
    BrokenTopology {
        /// The offending block.
        block: BlockRef,
    },
    /// The journal's own chain ends below the highest own-block sequence
    /// number ever durably marked: resuming would rebuild — and re-sign —
    /// an already-broadcast sequence number, i.e. equivocate (§7).
    OwnChainTruncated {
        /// Highest own sequence number found in the journal, if any.
        journal: Option<SeqNum>,
        /// The durably marked own tip.
        marker: SeqNum,
    },
    /// The persisted interpreter snapshot is unusable.
    Snapshot(SnapshotError),
    /// The snapshot covers a block set that is not the journal prefix it
    /// claims — snapshot and journal are from different histories.
    SnapshotDiverged {
        /// Blocks the snapshot claims to cover.
        covered: u64,
    },
    /// Shim construction failed (no key material for this server).
    Setup(SetupError),
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Store(err) => write!(f, "reading store: {err}"),
            RecoverError::BrokenTopology { block } => {
                write!(f, "journal is not topological at block {block}")
            }
            RecoverError::OwnChainTruncated { journal, marker } => match journal {
                Some(journal) => write!(
                    f,
                    "own chain truncated: journal ends at {journal}, marker at {marker} \
                     (resuming would equivocate)"
                ),
                None => write!(
                    f,
                    "own chain truncated: journal has no own blocks, marker at {marker} \
                     (resuming would equivocate)"
                ),
            },
            RecoverError::Snapshot(err) => write!(f, "interpreter snapshot: {err}"),
            RecoverError::SnapshotDiverged { covered } => {
                write!(
                    f,
                    "snapshot covers {covered} blocks that are not the journal prefix"
                )
            }
            RecoverError::Setup(err) => write!(f, "{err}"),
        }
    }
}

impl Error for RecoverError {}

impl From<StoreError> for RecoverError {
    fn from(err: StoreError) -> Self {
        RecoverError::Store(err)
    }
}

impl From<SnapshotError> for RecoverError {
    fn from(err: SnapshotError) -> Self {
        RecoverError::Snapshot(err)
    }
}

impl From<SetupError> for RecoverError {
    fn from(err: SetupError) -> Self {
        RecoverError::Setup(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;
    use dagbft_crypto::{KeyRegistry, ServerId};

    fn block(seq: u64) -> Block {
        let registry = KeyRegistry::generate(1, 5);
        let signer = registry.signer(ServerId::new(0)).unwrap();
        Block::build(ServerId::new(0), SeqNum::new(seq), vec![], vec![], &signer)
    }

    #[test]
    fn memory_store_roundtrip() {
        let mut store = MemoryStore::new();
        let b = block(0);
        store.append_block(&b).unwrap();
        store
            .append_request(&LabeledRequest::encode(Label::new(1), &7u64))
            .unwrap();
        store.append_snapshot(1, &[1, 2, 3]).unwrap();
        store.mark_own_tip(SeqNum::ZERO).unwrap();
        store.sync().unwrap();
        let contents = store.contents().unwrap();
        assert_eq!(contents.blocks, vec![b]);
        assert_eq!(contents.requests.len(), 1);
        assert_eq!(contents.snapshot, Some((1, vec![1, 2, 3])));
        assert_eq!(contents.own_tip, Some(SeqNum::ZERO));
        assert_eq!(contents.truncated_records, 0);
    }

    #[test]
    fn memory_store_tip_is_monotonic() {
        let mut store = MemoryStore::new();
        store.mark_own_tip(SeqNum::new(3)).unwrap();
        store.mark_own_tip(SeqNum::new(1)).unwrap();
        assert_eq!(store.contents().unwrap().own_tip, Some(SeqNum::new(3)));
    }

    #[test]
    fn truncate_tail_drops_blocks_not_marker() {
        let mut store = MemoryStore::new();
        store.append_block(&block(0)).unwrap();
        store.mark_own_tip(SeqNum::ZERO).unwrap();
        store.truncate_tail(1);
        let contents = store.contents().unwrap();
        assert!(contents.blocks.is_empty());
        assert_eq!(contents.own_tip, Some(SeqNum::ZERO));
    }

    #[test]
    fn errors_render() {
        let cases: Vec<StoreError> = vec![
            StoreError::Io("disk".into()),
            StoreError::BadMagic,
            StoreError::ChecksumMismatch { record: 3 },
            StoreError::Decode {
                record: 1,
                error: "eof".into(),
            },
            StoreError::RefMismatch { record: 2 },
            StoreError::UnknownKind { record: 0, kind: 9 },
            StoreError::SnapshotCoversFuture {
                covered: 5,
                blocks: 2,
            },
        ];
        for case in cases {
            assert!(!case.to_string().is_empty());
            assert!(!RecoverError::Store(case).to_string().is_empty());
        }
        assert!(!RecoverError::OwnChainTruncated {
            journal: None,
            marker: SeqNum::new(4)
        }
        .to_string()
        .is_empty());
    }
}
