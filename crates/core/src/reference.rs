//! The naive clone-per-block interpreter, retained as a test/bench oracle.
//!
//! This module is the *literal* transcription of Algorithm 2: line 4's
//! `PIs := B_parent.PIs` is implemented as a deep clone of the whole
//! instance map, and every block retains its own full copy. That is
//! O(blocks × active labels × instance size) in memory and clone work —
//! exactly the cost the copy-on-write interpreter in [`crate::interpret`]
//! eliminates via structural sharing.
//!
//! It stays in the tree for two reasons:
//!
//! * **equivalence testing** — `crates/core/tests/reference_equivalence.rs`
//!   proptests that random DAGs (including equivocations and malformed
//!   requests) yield bit-identical per-block states, indications, and
//!   stats under both interpreters (Lemma 4.2 holds for either, so any
//!   divergence is an implementation bug, not a semantic choice);
//! * **benchmark baselines** — `interpret_offline` measures the win of
//!   sharing against this implementation on identical workloads.
//!
//! Production code paths (`Shim`, the simulator) must use
//! [`crate::interpret::Interpreter`]; nothing outside tests and benches
//! should instantiate [`ReferenceInterpreter`].

use std::collections::{BTreeMap, BTreeSet, HashMap};

use dagbft_codec::decode_from_slice;

use crate::block::BlockRef;
use crate::dag::BlockDag;
use crate::interpret::{Indication, InterpretError, InterpretStats};
use crate::label::Label;
use crate::protocol::{DeterministicProtocol, Envelope, Outbox, ProtocolConfig};

/// Interpretation state attached to one block under the naive interpreter:
/// a full private copy of `B.PIs`, plus the `B.Ms[out/in, ·]` buffers.
#[derive(Debug, Clone)]
pub struct ReferenceBlockState<P: DeterministicProtocol> {
    /// `B.PIs[ℓ]`: a full, private copy per block.
    pis: BTreeMap<Label, P>,
    /// `B.Ms[out, ℓ]`.
    outs: BTreeMap<Label, BTreeSet<Envelope<P::Message>>>,
    /// `B.Ms[in, ℓ]`.
    ins: BTreeMap<Label, BTreeSet<Envelope<P::Message>>>,
    /// Labels requested at this block or any ancestor.
    active: BTreeSet<Label>,
}

impl<P: DeterministicProtocol> ReferenceBlockState<P> {
    /// The simulated instance of `label`, if started.
    pub fn instance(&self, label: Label) -> Option<&P> {
        self.pis.get(&label)
    }

    /// Labels with a started instance at this block.
    pub fn instance_labels(&self) -> impl Iterator<Item = &Label> {
        self.pis.keys()
    }

    /// Out-going messages `B.Ms[out, ℓ]` produced at this block.
    pub fn out_messages(&self, label: Label) -> impl Iterator<Item = &Envelope<P::Message>> {
        self.outs.get(&label).into_iter().flatten()
    }

    /// In-coming messages `B.Ms[in, ℓ]` delivered at this block.
    pub fn in_messages(&self, label: Label) -> impl Iterator<Item = &Envelope<P::Message>> {
        self.ins.get(&label).into_iter().flatten()
    }

    /// Labels active at this block.
    pub fn active_labels(&self) -> impl Iterator<Item = &Label> {
        self.active.iter()
    }

    /// Labels for which this block produced out-going messages.
    pub fn out_labels(&self) -> impl Iterator<Item = &Label> {
        self.outs.keys()
    }
}

/// The clone-per-block `interpret(G, P)` oracle.
///
/// Semantically identical to [`crate::interpret::Interpreter`] (both
/// realize Algorithm 2); differs only in state representation and in
/// `eligible` performing the full O(V·E) rescan the original code used.
#[derive(Debug)]
pub struct ReferenceInterpreter<P: DeterministicProtocol> {
    config: ProtocolConfig,
    states: HashMap<BlockRef, ReferenceBlockState<P>>,
    order: Vec<BlockRef>,
    indications: Vec<Indication<P::Indication>>,
    stats: InterpretStats,
}

impl<P: DeterministicProtocol> ReferenceInterpreter<P> {
    /// Creates a reference interpreter for the given configuration.
    pub fn new(config: ProtocolConfig) -> Self {
        ReferenceInterpreter {
            config,
            states: HashMap::new(),
            order: Vec::new(),
            indications: Vec::new(),
            stats: InterpretStats::default(),
        }
    }

    /// `I[B]`: whether `block` has been interpreted.
    pub fn is_interpreted(&self, block: &BlockRef) -> bool {
        self.states.contains_key(block)
    }

    /// Number of interpreted blocks.
    pub fn interpreted_count(&self) -> usize {
        self.states.len()
    }

    /// Work counters.
    pub fn stats(&self) -> &InterpretStats {
        &self.stats
    }

    /// Interpretation state attached to `block`, if interpreted.
    pub fn state(&self, block: &BlockRef) -> Option<&ReferenceBlockState<P>> {
        self.states.get(block)
    }

    /// Blocks interpreted so far, in interpretation order.
    pub fn interpreted_order(&self) -> &[BlockRef] {
        &self.order
    }

    /// The blocks currently eligible, by full DAG rescan.
    pub fn eligible(&self, dag: &BlockDag) -> Vec<BlockRef> {
        dag.refs()
            .filter(|r| !self.is_interpreted(r))
            .filter(|r| dag.preds_of(r).iter().all(|p| self.is_interpreted(p)))
            .copied()
            .collect()
    }

    /// Interprets every block of `dag` that is or becomes eligible, to a
    /// fixed point, by repeated rescans. Returns the number interpreted.
    pub fn step(&mut self, dag: &BlockDag) -> usize {
        let mut total = 0;
        loop {
            let eligible = self.eligible(dag);
            if eligible.is_empty() {
                return total;
            }
            for block_ref in eligible {
                self.interpret_block(dag, &block_ref)
                    .expect("eligible block interprets");
                total += 1;
            }
        }
    }

    /// Interprets a single eligible block (Algorithm 2, lines 4–12), with
    /// line 4 as a literal deep clone of the parent's `PIs`.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::interpret::Interpreter::interpret_block`].
    pub fn interpret_block(
        &mut self,
        dag: &BlockDag,
        block_ref: &BlockRef,
    ) -> Result<(), InterpretError> {
        let block = dag
            .get(block_ref)
            .ok_or(InterpretError::UnknownBlock { block: *block_ref })?;
        if self.is_interpreted(block_ref) {
            return Err(InterpretError::AlreadyInterpreted { block: *block_ref });
        }
        let preds = dag.preds_of(block_ref);
        let pending: Vec<BlockRef> = preds
            .iter()
            .filter(|p| !self.is_interpreted(p))
            .copied()
            .collect();
        if !pending.is_empty() {
            return Err(InterpretError::NotEligible { pending });
        }

        let me = block.builder();

        // Line 4: PIs := deep copy of the parent's PIs.
        let parent = block
            .parent_via(|r| dag.meta(r))
            .expect("blocks in the DAG satisfy the parent rule");
        let mut pis: BTreeMap<Label, P> = match parent {
            Some(parent_ref) => self.states[&parent_ref].pis.clone(),
            None => BTreeMap::new(),
        };

        let mut active: BTreeSet<Label> = BTreeSet::new();
        for pred in &preds {
            active.extend(self.states[pred].active.iter().copied());
        }

        let mut outs: BTreeMap<Label, BTreeSet<Envelope<P::Message>>> = BTreeMap::new();
        let mut ins: BTreeMap<Label, BTreeSet<Envelope<P::Message>>> = BTreeMap::new();
        let mut touched: BTreeSet<Label> = BTreeSet::new();
        let config = self.config;

        // Lines 5–6: feed the block's own requests to B.n's instances.
        for labeled in block.requests() {
            let label = labeled.label;
            match decode_from_slice::<P::Request>(&labeled.payload) {
                Ok(request) => {
                    let instance = pis
                        .entry(label)
                        .or_insert_with(|| P::new(&config, label, me));
                    let mut outbox = Outbox::new();
                    instance.on_request(request, &mut outbox);
                    let envelopes: Vec<_> = outbox.into_envelopes(me).collect();
                    self.stats.messages_materialized += envelopes.len() as u64;
                    outs.entry(label).or_default().extend(envelopes);
                    active.insert(label);
                    touched.insert(label);
                    self.stats.requests_processed += 1;
                }
                Err(_) => {
                    self.stats.malformed_requests += 1;
                }
            }
        }

        // Lines 7–11: collect and deliver in-messages in the order <_M.
        for label in active.iter().copied() {
            let mut inbox: BTreeSet<Envelope<P::Message>> = BTreeSet::new();
            for pred in &preds {
                if let Some(out) = self.states[pred].outs.get(&label) {
                    inbox.extend(out.iter().filter(|e| e.receiver == me).cloned());
                }
            }
            if inbox.is_empty() {
                continue;
            }
            let instance = pis
                .entry(label)
                .or_insert_with(|| P::new(&config, label, me));
            for envelope in &inbox {
                let mut outbox = Outbox::new();
                instance.on_message(envelope.sender, envelope.message.clone(), &mut outbox);
                let envelopes: Vec<_> = outbox.into_envelopes(me).collect();
                self.stats.messages_materialized += envelopes.len() as u64;
                outs.entry(label).or_default().extend(envelopes);
                self.stats.messages_delivered += 1;
            }
            touched.insert(label);
            ins.insert(label, inbox);
        }

        // Lines 13–14: surface indications from the instances driven here.
        for label in &touched {
            if let Some(instance) = pis.get_mut(label) {
                for indication in instance.drain_indications() {
                    self.stats.indications += 1;
                    self.indications.push(Indication {
                        label: *label,
                        indication,
                        server: me,
                    });
                }
            }
        }

        // Line 12: I[B] := true.
        self.states.insert(
            *block_ref,
            ReferenceBlockState {
                pis,
                outs,
                ins,
                active,
            },
        );
        self.order.push(*block_ref);
        self.stats.blocks_interpreted += 1;
        Ok(())
    }

    /// Removes and returns the indications raised since the last drain.
    pub fn drain_indications(&mut self) -> Vec<Indication<P::Indication>> {
        std::mem::take(&mut self.indications)
    }
}
