//! The shim — Algorithm 3 of the paper.
//!
//! `shim(P)` choreographs the external user of `P`, the [`crate::gossip`]
//! protocol and the [`crate::interpret`] protocol:
//!
//! * `request(ℓ, r)` buffers the request (lines 6–7); the next
//!   `disseminate()` writes buffered requests into the current block
//!   (Algorithm 1, line 15), and interpretation eventually feeds them to
//!   `P` (Lemma A.17);
//! * indications raised by the interpretation *for this server* are
//!   forwarded to the user (lines 8–9, Lemma A.18);
//! * `disseminate()` is requested repeatedly (lines 10–11) — here by the
//!   caller (simulator or event loop), which controls pacing to meet `P`'s
//!   network assumptions.
//!
//! Theorem 5.1: with these pieces, `shim(P)` implements `P`'s interface and
//! preserves every property of `P` whose proof relies on the reliable
//! point-to-point link abstraction.
//!
//! The paper runs `gossip` and `interpret` as concurrent processes; this
//! implementation steps the interpreter after every DAG change. The two are
//! equivalent: interpretation is a deterministic function of the DAG alone
//! (Lemma 4.2), so scheduling cannot change any outcome — only *when* it
//! becomes observable.

use std::collections::{HashSet, VecDeque};
use std::error::Error;
use std::fmt;

use dagbft_crypto::{KeyRegistry, ServerId};

use crate::block::{BlockRef, LabeledRequest, SeqNum};
use crate::dag::BlockDag;
use crate::defense::DefenseConfig;
use crate::gossip::{AdmissionMode, Gossip, GossipConfig, NetCommand, NetMessage};
use crate::interpret::{Indication, Interpreter, InterpreterFootprint};
use crate::label::Label;
use crate::protocol::{DeterministicProtocol, ProtocolConfig, SnapshotProtocol};
use crate::store::{BlockStore, RecoverError, RecoveryReport, StoreContents, StoreError};
use crate::TimeMs;

/// Configuration for a [`Shim`] server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShimConfig {
    /// The embedded protocol's configuration (server count, fault bound).
    pub protocol: ProtocolConfig,
    /// `FWD` retransmission pacing (see [`GossipConfig`]).
    pub fwd_retry_ms: TimeMs,
    /// Maximum number of buffered requests injected per block
    /// (`rqsts.get()` returns "a suitable number", Algorithm 3).
    pub max_requests_per_block: usize,
    /// The gossip admission engine (see [`AdmissionMode`]).
    pub admission: AdmissionMode,
    /// Bound on gossip's pending buffer (see
    /// [`GossipConfig::pending_cap`]).
    pub pending_cap: usize,
    /// The adversarial peer-defense engine (see [`crate::defense`];
    /// disabled by default).
    pub defense: DefenseConfig,
}

impl ShimConfig {
    /// Creates a configuration with default pacing parameters.
    pub fn new(protocol: ProtocolConfig) -> Self {
        ShimConfig {
            protocol,
            fwd_retry_ms: 100,
            max_requests_per_block: 1024,
            admission: AdmissionMode::default(),
            pending_cap: crate::gossip::DEFAULT_PENDING_CAP,
            defense: DefenseConfig::default(),
        }
    }

    /// Sets the `FWD` retry interval.
    pub fn with_fwd_retry_ms(mut self, fwd_retry_ms: TimeMs) -> Self {
        self.fwd_retry_ms = fwd_retry_ms;
        self
    }

    /// Sets the per-block request cap.
    pub fn with_max_requests_per_block(mut self, max: usize) -> Self {
        self.max_requests_per_block = max;
        self
    }

    /// Selects the gossip admission engine.
    ///
    /// [`AdmissionMode::Parallel`] gives this server a private
    /// verification worker pool: each admission wave's signature checks
    /// are split across the pool's threads. [`Shim::on_message`] still
    /// waits for the verdicts, so this wins only when waves are wide
    /// enough for multi-core verification to beat the default
    /// single-threaded batch. All engines are byte-equivalent in every
    /// observable.
    pub fn with_admission(mut self, admission: AdmissionMode) -> Self {
        self.admission = admission;
        self
    }

    /// Bounds gossip's pending buffer (deterministic eviction past the
    /// cap; see the gossip module docs).
    pub fn with_pending_cap(mut self, cap: usize) -> Self {
        self.pending_cap = cap.max(1);
        self
    }

    /// Configures the peer-defense engine (scored admission, rate
    /// limits, time-decaying bans; see [`crate::defense`]).
    pub fn with_defense(mut self, defense: DefenseConfig) -> Self {
        self.defense = defense;
        self
    }

    fn gossip(&self) -> GossipConfig {
        GossipConfig {
            n: self.protocol.n,
            fwd_retry_ms: self.fwd_retry_ms,
            admission: self.admission,
            pending_cap: self.pending_cap,
            defense: self.defense,
        }
    }
}

/// Error constructing a shim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetupError {
    /// The server identity has no key in the registry.
    UnknownServer {
        /// The identity without key material.
        server: ServerId,
    },
}

impl fmt::Display for SetupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetupError::UnknownServer { server } => {
                write!(f, "no signing key for server {server}")
            }
        }
    }
}

impl Error for SetupError {}

/// Encodes an interpreter into snapshot bytes — a plain function pointer
/// so [`StoreBinding`] stays protocol-generic without extra bounds.
type SnapshotEncodeFn<P> = fn(&Interpreter<P>) -> Vec<u8>;

/// An attached [`BlockStore`] plus the shim's bookkeeping around it:
/// how much of the DAG's insertion order has been journaled, and the
/// snapshot cadence (installed by [`Shim::enable_snapshots`]).
#[derive(Debug)]
struct StoreBinding<P: DeterministicProtocol> {
    store: Box<dyn BlockStore>,
    /// Prefix of the DAG's insertion order already appended to the store.
    synced_blocks: usize,
    /// Snapshot cadence in blocks; 0 disables snapshots.
    snapshot_every: u64,
    /// Interpreted-block count at the last snapshot.
    last_snapshot_at: u64,
    /// Encodes the interpreter into snapshot bytes; present only when the
    /// protocol supports snapshots and they were enabled.
    encode: Option<SnapshotEncodeFn<P>>,
}

/// A complete block DAG server: `shim(P)` running as one member of `Srvrs`.
///
/// Drive it by delivering network messages ([`Shim::on_message`]), ticking
/// timers ([`Shim::on_tick`]), and requesting dissemination
/// ([`Shim::disseminate`]); it returns [`NetCommand`]s for the transport.
/// See the crate-level docs for a runnable example.
#[derive(Debug)]
pub struct Shim<P: DeterministicProtocol> {
    me: ServerId,
    config: ShimConfig,
    gossip: Gossip,
    interpreter: Interpreter<P>,
    /// The `rqsts` buffer shared between shim and gossip (Algorithm 3,
    /// line 2; ownership replaces sharing in this implementation).
    rqsts: VecDeque<LabeledRequest>,
    /// Indications for `me`, awaiting [`Shim::poll_indications`].
    delivered: VecDeque<(Label, P::Indication)>,
    /// Indications raised for *other* servers' simulations — not forwarded
    /// to the user (Algorithm 3 line 8 requires `s' = s`), but observable
    /// for auditing and tests.
    observed: Vec<Indication<P::Indication>>,
    /// Durable storage, when attached: every admitted block, buffered
    /// request, and periodic snapshot is journaled through it.
    store: Option<StoreBinding<P>>,
    /// A store write failure detaches the store (the server keeps running
    /// non-durably — storage must never panic or wedge consensus) and
    /// stashes the error here for the operator.
    store_error: Option<StoreError>,
}

impl<P: DeterministicProtocol> Shim<P> {
    /// Creates the shim for server `me`.
    ///
    /// # Errors
    ///
    /// [`SetupError::UnknownServer`] if `registry` has no key for `me`.
    pub fn new(
        me: ServerId,
        config: ShimConfig,
        registry: &KeyRegistry,
    ) -> Result<Self, SetupError> {
        let signer = registry
            .signer(me)
            .ok_or(SetupError::UnknownServer { server: me })?;
        Ok(Shim {
            me,
            config,
            gossip: Gossip::new(me, config.gossip(), signer, registry.verifier()),
            interpreter: Interpreter::new(config.protocol),
            rqsts: VecDeque::new(),
            delivered: VecDeque::new(),
            observed: Vec::new(),
            store: None,
            store_error: None,
        })
    }

    /// Reconstructs a server from its persisted DAG after a crash.
    ///
    /// Gossip resumes the own block chain ([`Gossip::resume`]); the
    /// interpreter re-derives every instance's state by re-interpreting
    /// the DAG from scratch — interpretation is a pure function of the DAG
    /// (Lemma 4.2), so the recovered state is identical to the lost one.
    /// The replay benefits from the interpreter's copy-on-write sharing
    /// (see [`crate::interpret`]): re-interpreting a long DAG allocates
    /// per-label instance state only at the blocks that touched the
    /// label, so recovery *memory* is bounded by activity. Wall-clock
    /// still visits every block once (Algorithm 2 interprets each block),
    /// so replay time remains linear in chain length, just with a far
    /// smaller per-block constant on quiescent stretches.
    /// Indications raised during the replay are delivered again; an
    /// application persisting its own progress should deduplicate them
    /// (the paper's "persist enough information … as part of P").
    ///
    /// # Errors
    ///
    /// [`SetupError::UnknownServer`] if `registry` has no key for `me`.
    pub fn recover(
        me: ServerId,
        config: ShimConfig,
        registry: &KeyRegistry,
        dag: BlockDag,
    ) -> Result<Self, SetupError> {
        let signer = registry
            .signer(me)
            .ok_or(SetupError::UnknownServer { server: me })?;
        let mut shim = Shim {
            me,
            config,
            gossip: Gossip::resume(me, config.gossip(), signer, registry.verifier(), dag),
            interpreter: Interpreter::new(config.protocol),
            rqsts: VecDeque::new(),
            delivered: VecDeque::new(),
            observed: Vec::new(),
            store: None,
            store_error: None,
        };
        shim.run_interpretation();
        Ok(shim)
    }

    /// The server this shim runs as.
    pub fn me(&self) -> ServerId {
        self.me
    }

    /// The shim's configuration.
    pub fn config(&self) -> &ShimConfig {
        &self.config
    }

    /// Read access to the local DAG.
    pub fn dag(&self) -> &BlockDag {
        self.gossip.dag()
    }

    /// Read access to the gossip layer (stats, pending buffer).
    pub fn gossip(&self) -> &Gossip {
        &self.gossip
    }

    /// Read access to the interpreter (per-block states, stats).
    pub fn interpreter(&self) -> &Interpreter<P> {
        &self.interpreter
    }

    /// The interpreter's memory footprint — total vs unique instances
    /// (the structural-sharing win), out- and in-envelopes. See
    /// [`Interpreter::footprint`].
    pub fn footprint(&self) -> InterpreterFootprint {
        self.interpreter.footprint()
    }

    /// Drops the interpreter's introspection-only in-buffers
    /// ([`Interpreter::compact`]); incremental, safe to call on a timer.
    /// Returns the number of envelopes dropped.
    pub fn compact(&mut self) -> usize {
        self.interpreter.compact()
    }

    /// `request(ℓ, r)`: buffer a user request for instance `ℓ`
    /// (Algorithm 3, lines 6–7).
    ///
    /// With a store attached, the request is also journaled (write-ahead):
    /// recovery re-buffers every journaled request not yet sealed into an
    /// own block, so accepted-but-unsealed requests survive a crash.
    pub fn request(&mut self, label: Label, request: P::Request) {
        let labeled = LabeledRequest::encode(label, &request);
        if self.store.is_some() {
            let result = self
                .store
                .as_mut()
                .expect("checked above")
                .store
                .append_request(&labeled);
            if let Err(err) = result {
                self.store = None;
                self.store_error = Some(err);
            }
        }
        self.rqsts.push_back(labeled);
    }

    /// Number of buffered requests not yet written into a block.
    pub fn pending_requests(&self) -> usize {
        self.rqsts.len()
    }

    /// Delivers a network message to this server.
    pub fn on_message(
        &mut self,
        from: ServerId,
        message: NetMessage,
        now: TimeMs,
    ) -> Vec<NetCommand> {
        let commands = self.gossip.on_message(from, message, now);
        self.run_interpretation();
        commands
    }

    /// Delivers a whole ingest burst through one deferred-admission
    /// bracket: blocks are indexed first and promoted in one
    /// cross-cascade pass ([`crate::Gossip::on_block_burst`] semantics),
    /// `FWD` requests are answered from the DAG as it stood when the
    /// burst began, and interpretation steps once for the whole burst
    /// instead of once per message. This is the hot ingest path for the
    /// simulator's burst delivery and the transport's channel drain.
    pub fn on_message_burst(
        &mut self,
        messages: impl IntoIterator<Item = (ServerId, NetMessage)>,
        now: TimeMs,
    ) -> Vec<NetCommand> {
        self.gossip.begin_burst();
        let mut commands = Vec::new();
        for (from, message) in messages {
            match message {
                NetMessage::Block(block) => {
                    let deferred = self.gossip.on_block_from(from, block, now);
                    debug_assert!(deferred.is_empty(), "bracketed on_block defers commands");
                }
                NetMessage::FwdRequest(block_ref) => {
                    if self.gossip.defense().is_banned(from, now) {
                        continue;
                    }
                    commands.extend(self.gossip.on_fwd_request(from, block_ref));
                }
            }
        }
        commands.extend(self.gossip.end_burst(now));
        self.run_interpretation();
        commands
    }

    /// Advances timers (`FWD` retries).
    pub fn on_tick(&mut self, now: TimeMs) -> Vec<NetCommand> {
        self.gossip.on_tick(now)
    }

    /// Reports `count` malformed frames received from `peer` — the
    /// transport-level offense feed for the peer-defense engine (see
    /// [`crate::defense`]).
    pub fn note_malformed_frames(&mut self, peer: ServerId, count: u64, now: TimeMs) {
        self.gossip.note_malformed_frames(peer, count, now);
    }

    /// Requests `gossip.disseminate()` (Algorithm 3, lines 10–11): seals
    /// the current block with up to
    /// [`ShimConfig::max_requests_per_block`] buffered requests.
    ///
    /// With a store attached, the sealed block is journaled, the journal
    /// synced, and the own-tip marker durably advanced *before* the
    /// broadcast commands are returned — so a crash can never lose an own
    /// block that other servers may already hold (the §7 equivocation
    /// caveat; see [`crate::store::RecoverError::OwnChainTruncated`]).
    pub fn disseminate(&mut self, now: TimeMs) -> Vec<NetCommand> {
        let take = self.rqsts.len().min(self.config.max_requests_per_block);
        let requests: Vec<LabeledRequest> = self.rqsts.drain(..take).collect();
        let (block, commands) = self.gossip.disseminate(requests, now);
        let sealed = block.seq();
        self.run_interpretation();
        if self.store.is_some() {
            if let Err(err) = self.seal_durable(sealed) {
                self.store = None;
                self.store_error = Some(err);
            }
        }
        commands
    }

    /// Journal sync first, then the own-tip marker: the marker must never
    /// get ahead of a durable journal, or recovery would refuse to resume
    /// after a crash that lost nothing observable.
    fn seal_durable(&mut self, seq: SeqNum) -> Result<(), StoreError> {
        let Some(binding) = self.store.as_mut() else {
            return Ok(());
        };
        binding.store.sync()?;
        binding.store.mark_own_tip(seq)?;
        Ok(())
    }

    /// Returns indications raised for this server since the last poll
    /// (Algorithm 3, lines 8–9).
    pub fn poll_indications(&mut self) -> Vec<(Label, P::Indication)> {
        self.delivered.drain(..).collect()
    }

    /// Indications observed for *other* servers' simulations (auditing;
    /// never part of `P`'s interface).
    pub fn drain_observed(&mut self) -> Vec<Indication<P::Indication>> {
        std::mem::take(&mut self.observed)
    }

    fn run_interpretation(&mut self) {
        self.interpreter.step(self.gossip.dag());
        for indication in self.interpreter.drain_indications() {
            if indication.server == self.me {
                self.delivered
                    .push_back((indication.label, indication.indication));
            } else {
                self.observed.push(indication);
            }
        }
        if self.store.is_some() {
            if let Err(err) = self.try_sync_store() {
                self.store = None;
                self.store_error = Some(err);
            }
        }
    }

    /// Appends DAG blocks admitted since the last sync to the store, and
    /// takes a snapshot when the cadence is due. Interpretation runs to a
    /// fixed point before this is called, so a due snapshot always
    /// captures a fully-interpreted DAG.
    fn try_sync_store(&mut self) -> Result<(), StoreError> {
        let Some(binding) = self.store.as_mut() else {
            return Ok(());
        };
        let dag = self.gossip.dag();
        let new: Vec<BlockRef> = dag.refs().skip(binding.synced_blocks).copied().collect();
        for block_ref in new {
            let block = dag.get(&block_ref).expect("ref comes from the dag");
            binding.store.append_block(block)?;
            binding.synced_blocks += 1;
        }
        if let Some(encode) = binding.encode {
            let covered = self.interpreter.interpreted_count() as u64;
            if binding.snapshot_every > 0
                && covered.saturating_sub(binding.last_snapshot_at) >= binding.snapshot_every
            {
                let payload = encode(&self.interpreter);
                binding.store.append_snapshot(covered, &payload)?;
                binding.last_snapshot_at = covered;
            }
        }
        Ok(())
    }

    /// Attaches a durable store. Every block already in the DAG beyond the
    /// store's current content is journaled immediately; from then on the
    /// shim appends admitted blocks, buffered requests, and (if enabled
    /// via [`Shim::enable_snapshots`]) periodic snapshots.
    ///
    /// The store's existing blocks must be a prefix of this shim's DAG
    /// insertion order (trivially true for an empty store, and guaranteed
    /// by [`Shim::recover_from_store`] when re-attaching after recovery).
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] reading the store's current content or writing
    /// the backlog; the store is not attached on error.
    pub fn attach_store(&mut self, store: Box<dyn BlockStore>) -> Result<(), StoreError> {
        let already = store.contents()?.blocks.len();
        self.attach_store_synced(store, already);
        if let Err(err) = self.try_sync_store() {
            self.store = None;
            return Err(err);
        }
        Ok(())
    }

    /// Attaches `store` asserting its first `synced_blocks` journal blocks
    /// already mirror the DAG prefix (the recovery re-attach path, which
    /// just rebuilt the DAG *from* that journal).
    fn attach_store_synced(&mut self, store: Box<dyn BlockStore>, synced_blocks: usize) {
        self.store = Some(StoreBinding {
            store,
            synced_blocks,
            snapshot_every: 0,
            last_snapshot_at: 0,
            encode: None,
        });
    }

    /// Detaches and returns the store, if one is attached. The shim keeps
    /// running non-durably.
    pub fn detach_store(&mut self) -> Option<Box<dyn BlockStore>> {
        self.store.take().map(|binding| binding.store)
    }

    /// Whether a store is currently attached.
    pub fn store_attached(&self) -> bool {
        self.store.is_some()
    }

    /// The error that detached the store, if a write ever failed.
    pub fn store_error(&self) -> Option<&StoreError> {
        self.store_error.as_ref()
    }

    /// Recovers a server from its durable store, replaying the whole
    /// journal from genesis (any persisted snapshot is ignored — this is
    /// the oracle path; see
    /// [`Shim::recover_from_store_with_snapshots`] for snapshot catch-up).
    ///
    /// The journal's blocks are re-inserted in admission order (a
    /// topological order by construction), gossip resumes the own chain
    /// ([`Gossip::resume`]), interpretation replays (pure function of the
    /// DAG, Lemma 4.2), journaled-but-unsealed requests are re-buffered,
    /// and the store is re-attached so journaling continues seamlessly.
    ///
    /// Indications raised by the replay are delivered again, exactly like
    /// [`Shim::recover`]; callers that must not re-deliver (the simulator's
    /// crash scenarios) discard the first poll.
    ///
    /// # Errors
    ///
    /// Any [`RecoverError`]; in particular
    /// [`RecoverError::OwnChainTruncated`] if the journal lost own blocks
    /// below the durable own-tip marker — resuming would equivocate (§7).
    pub fn recover_from_store(
        me: ServerId,
        config: ShimConfig,
        registry: &KeyRegistry,
        store: Box<dyn BlockStore>,
    ) -> Result<(Self, RecoveryReport), RecoverError> {
        let contents = store.contents()?;
        Self::recover_with_interpreter(
            me,
            config,
            registry,
            store,
            contents,
            Interpreter::new(config.protocol),
        )
    }

    /// Shared recovery tail: rebuild the DAG, enforce the own-tip guard,
    /// resume gossip, replay the suffix the interpreter has not covered,
    /// re-buffer unsealed requests, and re-attach the store.
    fn recover_with_interpreter(
        me: ServerId,
        config: ShimConfig,
        registry: &KeyRegistry,
        store: Box<dyn BlockStore>,
        contents: StoreContents,
        interpreter: Interpreter<P>,
    ) -> Result<(Self, RecoveryReport), RecoverError> {
        let signer = registry
            .signer(me)
            .ok_or(SetupError::UnknownServer { server: me })?;
        let mut dag = BlockDag::new();
        for block in &contents.blocks {
            let block_ref = block.block_ref();
            if dag.insert(block.clone()).is_err() {
                return Err(RecoverError::BrokenTopology { block: block_ref });
            }
        }
        if let Some(marker) = contents.own_tip {
            let journal = dag.height_of(me);
            if journal.is_none_or(|height| height < marker) {
                return Err(RecoverError::OwnChainTruncated { journal, marker });
            }
        }
        let snapshot_covered = interpreter.interpreted_count();
        let consumed: usize = contents
            .blocks
            .iter()
            .filter(|block| block.builder() == me)
            .map(|block| block.requests().len())
            .sum();
        let rqsts: VecDeque<LabeledRequest> = contents
            .requests
            .get(consumed..)
            .unwrap_or_default()
            .iter()
            .cloned()
            .collect();
        let report = RecoveryReport {
            journal_blocks: contents.blocks.len(),
            replayed_blocks: contents.blocks.len() - snapshot_covered,
            snapshot_covered,
            requests_rebuffered: rqsts.len(),
            truncated_records: contents.truncated_records,
        };
        let mut shim = Shim {
            me,
            config,
            gossip: Gossip::resume(me, config.gossip(), signer, registry.verifier(), dag),
            interpreter,
            rqsts,
            delivered: VecDeque::new(),
            observed: Vec::new(),
            store: None,
            store_error: None,
        };
        shim.run_interpretation();
        shim.attach_store_synced(store, contents.blocks.len());
        Ok((shim, report))
    }
}

impl<P: SnapshotProtocol> Shim<P>
where
    P::Message: dagbft_codec::WireEncode + dagbft_codec::WireDecode,
{
    /// Enables periodic interpreter snapshots through the attached store:
    /// one snapshot every `every` interpreted blocks, so recovery via
    /// [`Shim::recover_from_store_with_snapshots`] replays only the suffix
    /// past the last snapshot. No-op without an attached store.
    pub fn enable_snapshots(&mut self, every: u64) {
        let covered = self.interpreter.interpreted_count() as u64;
        if let Some(binding) = self.store.as_mut() {
            binding.snapshot_every = every.max(1);
            binding.last_snapshot_at = covered;
            binding.encode = Some(|interpreter| interpreter.encode_snapshot());
        }
    }

    /// Recovers a server from its durable store, restoring interpreter
    /// state from the latest persisted snapshot (if any) and replaying
    /// only the journal suffix past it — the snapshot catch-up path.
    ///
    /// The snapshot is validated before use: its version, `(n, f)`
    /// configuration, and covered block set must match the journal prefix
    /// exactly, otherwise a typed error is returned (never a divergent
    /// state). All other semantics match [`Shim::recover_from_store`].
    ///
    /// # Errors
    ///
    /// Any [`RecoverError`].
    pub fn recover_from_store_with_snapshots(
        me: ServerId,
        config: ShimConfig,
        registry: &KeyRegistry,
        store: Box<dyn BlockStore>,
    ) -> Result<(Self, RecoveryReport), RecoverError> {
        let contents = store.contents()?;
        let interpreter = match &contents.snapshot {
            Some((covered, payload)) => {
                let covered = *covered as usize;
                if covered > contents.blocks.len() {
                    return Err(RecoverError::SnapshotDiverged {
                        covered: covered as u64,
                    });
                }
                let interpreter = Interpreter::decode_snapshot(config.protocol, payload)?;
                let prefix: HashSet<BlockRef> = contents.blocks[..covered]
                    .iter()
                    .map(|block| block.block_ref())
                    .collect();
                let matches = interpreter.interpreted_count() == covered
                    && prefix.len() == covered
                    && interpreter
                        .interpreted_order()
                        .iter()
                        .all(|block_ref| prefix.contains(block_ref));
                if !matches {
                    return Err(RecoverError::SnapshotDiverged {
                        covered: covered as u64,
                    });
                }
                interpreter
            }
            None => Interpreter::new(config.protocol),
        };
        Self::recover_with_interpreter(me, config, registry, store, contents, interpreter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Outbox;
    use std::collections::BTreeSet;

    /// Minimal deterministic broadcast: on request, send the value to all;
    /// indicate each distinct value once on receipt.
    #[derive(Debug, Clone)]
    struct Flood {
        config: ProtocolConfig,
        seen: BTreeSet<u64>,
        pending: Vec<u64>,
    }

    impl DeterministicProtocol for Flood {
        type Request = u64;
        type Message = u64;
        type Indication = u64;

        fn new(config: &ProtocolConfig, _label: Label, _me: ServerId) -> Self {
            Flood {
                config: *config,
                seen: BTreeSet::new(),
                pending: Vec::new(),
            }
        }

        fn on_request(&mut self, request: u64, outbox: &mut Outbox<u64>) {
            outbox.broadcast(&self.config, request);
        }

        fn on_message(&mut self, _sender: ServerId, message: u64, _outbox: &mut Outbox<u64>) {
            if self.seen.insert(message) {
                self.pending.push(message);
            }
        }

        fn drain_indications(&mut self) -> Vec<u64> {
            std::mem::take(&mut self.pending)
        }
    }

    fn network(n: usize) -> Vec<Shim<Flood>> {
        let registry = KeyRegistry::generate(n, 77);
        let config = ShimConfig::new(ProtocolConfig::for_n(n));
        (0..n)
            .map(|i| Shim::new(ServerId::new(i as u32), config, &registry).unwrap())
            .collect()
    }

    /// Executes commands from `origin` against all shims, synchronously, to
    /// quiescence.
    fn run_commands(
        shims: &mut [Shim<Flood>],
        origin: usize,
        commands: Vec<NetCommand>,
        now: TimeMs,
    ) {
        let mut queue: Vec<(usize, NetCommand)> =
            commands.into_iter().map(|c| (origin, c)).collect();
        while let Some((from, command)) = queue.pop() {
            match command {
                NetCommand::Broadcast { message } => {
                    for (target, shim) in shims.iter_mut().enumerate() {
                        if target != from {
                            let follow =
                                shim.on_message(ServerId::new(from as u32), message.clone(), now);
                            queue.extend(follow.into_iter().map(|c| (target, c)));
                        }
                    }
                }
                NetCommand::SendTo { to, message } => {
                    let follow =
                        shims[to.index()].on_message(ServerId::new(from as u32), message, now);
                    queue.extend(follow.into_iter().map(|c| (to.index(), c)));
                }
            }
        }
    }

    #[test]
    fn request_travels_through_block_to_all_servers() {
        let mut shims = network(2);
        let label = Label::new(1);
        shims[0].request(label, 42);
        assert_eq!(shims[0].pending_requests(), 1);

        // s0 disseminates its genesis block with the request.
        let commands = shims[0].disseminate(0);
        assert_eq!(shims[0].pending_requests(), 0);
        run_commands(&mut shims, 0, commands, 0);

        // s1 must reference s0's block, then both deliver their own PING.
        let commands = shims[1].disseminate(1);
        run_commands(&mut shims, 1, commands, 1);
        let commands = shims[0].disseminate(2);
        run_commands(&mut shims, 0, commands, 2);

        assert_eq!(shims[1].poll_indications(), vec![(label, 42)]);
        assert_eq!(shims[0].poll_indications(), vec![(label, 42)]);
    }

    #[test]
    fn indications_only_for_own_simulation() {
        let mut shims = network(2);
        shims[0].request(Label::new(1), 5);
        let commands = shims[0].disseminate(0);
        run_commands(&mut shims, 0, commands, 0);
        let commands = shims[1].disseminate(1);
        run_commands(&mut shims, 1, commands, 1);

        // s0 observes the indication of s1's simulation but does not
        // deliver it to its own user.
        let observed = shims[0].drain_observed();
        assert!(observed.iter().all(|i| i.server != shims[0].me()));
        // s1 delivered for itself.
        assert_eq!(shims[1].poll_indications(), vec![(Label::new(1), 5)]);
    }

    #[test]
    fn request_cap_per_block() {
        let registry = KeyRegistry::generate(1, 3);
        let config = ShimConfig::new(ProtocolConfig::for_n(1)).with_max_requests_per_block(2);
        let mut shim: Shim<Flood> = Shim::new(ServerId::new(0), config, &registry).unwrap();
        for value in 0..5 {
            shim.request(Label::new(value), value);
        }
        shim.disseminate(0);
        assert_eq!(shim.pending_requests(), 3);
        shim.disseminate(1);
        assert_eq!(shim.pending_requests(), 1);
        let dag = shim.dag();
        let mut per_block: Vec<usize> = dag.iter().map(|b| b.requests().len()).collect();
        per_block.sort();
        assert_eq!(per_block, vec![2, 2]);
    }

    #[test]
    fn unknown_server_setup_error() {
        let registry = KeyRegistry::generate(2, 3);
        let config = ShimConfig::new(ProtocolConfig::for_n(2));
        let result: Result<Shim<Flood>, _> = Shim::new(ServerId::new(9), config, &registry);
        assert_eq!(
            result.err(),
            Some(SetupError::UnknownServer {
                server: ServerId::new(9)
            })
        );
    }

    #[test]
    fn recover_resumes_chain_without_equivocation() {
        let registry = KeyRegistry::generate(2, 77);
        let config = ShimConfig::new(ProtocolConfig::for_n(2));
        let mut shims = network(2);
        shims[0].request(Label::new(1), 42);
        let commands = shims[0].disseminate(0);
        run_commands(&mut shims, 0, commands, 0);
        let commands = shims[1].disseminate(1);
        run_commands(&mut shims, 1, commands, 1);
        let commands = shims[0].disseminate(2);
        run_commands(&mut shims, 0, commands, 2);
        // s0 delivered before the crash.
        assert_eq!(shims[0].poll_indications(), vec![(Label::new(1), 42)]);

        // "Crash" s0, persist its DAG, recover a fresh shim from it.
        let image = crate::recovery::persist_dag(shims[0].dag());
        let dag = crate::recovery::restore_dag(&image).unwrap();
        let expected_seq = dag.height_of(ServerId::new(0)).unwrap().next();
        let mut recovered: Shim<Flood> =
            Shim::recover(ServerId::new(0), config, &registry, dag).unwrap();

        // The replay re-derives the indication (application dedups).
        assert_eq!(recovered.poll_indications(), vec![(Label::new(1), 42)]);

        // The next disseminated block continues the chain: correct seq, no
        // second block at an already-used sequence number.
        recovered.disseminate(2);
        let own = recovered.me();
        let dag = recovered.dag();
        assert_eq!(dag.height_of(own), Some(expected_seq));
        for k in 0..=expected_seq.value() {
            assert_eq!(
                dag.blocks_at(own, crate::SeqNum::new(k)).len(),
                1,
                "no equivocation at k{k}"
            );
        }
        assert!(dag.check_invariants());
    }

    #[test]
    fn recover_references_unreferenced_blocks() {
        // s0 crashes having received a block from s1 it never referenced;
        // the recovery block must reference it, so its messages deliver.
        let registry = KeyRegistry::generate(2, 77);
        let config = ShimConfig::new(ProtocolConfig::for_n(2));
        let mut shims = network(2);
        // s1 disseminates; s0 receives but crashes before disseminating.
        let commands = shims[1].disseminate(0);
        run_commands(&mut shims, 1, commands, 0);
        let image = crate::recovery::persist_dag(shims[0].dag());
        let dag = crate::recovery::restore_dag(&image).unwrap();
        let s1_tip = dag.blocks_at(ServerId::new(1), crate::SeqNum::ZERO)[0];

        let mut recovered: Shim<Flood> =
            Shim::recover(ServerId::new(0), config, &registry, dag).unwrap();
        recovered.disseminate(1);
        let own_genesis = recovered
            .dag()
            .blocks_at(recovered.me(), crate::SeqNum::ZERO)[0];
        let block = recovered.dag().get(&own_genesis).unwrap();
        assert!(
            block.preds().contains(&s1_tip),
            "recovered block must reference the pre-crash backlog"
        );
    }

    #[test]
    fn footprint_and_compact_surface_sharing() {
        let registry = KeyRegistry::generate(1, 3);
        let config = ShimConfig::new(ProtocolConfig::for_n(1));
        let mut shim: Shim<Flood> = Shim::new(ServerId::new(0), config, &registry).unwrap();
        shim.request(Label::new(1), 7);
        // One request, then a long quiescent chain: activity dies out, so
        // instance state is shared across the tail blocks.
        for now in 0..12 {
            shim.disseminate(now);
        }
        let footprint = shim.footprint();
        assert_eq!(footprint.blocks, 12);
        assert!(
            footprint.unique_instances < footprint.instances,
            "structural sharing must be visible: {} unique of {}",
            footprint.unique_instances,
            footprint.instances
        );
        let dropped = shim.compact();
        assert_eq!(dropped, footprint.in_envelopes);
        assert_eq!(shim.compact(), 0, "second compaction is a no-op");
        assert_eq!(shim.footprint().in_envelopes, 0);
        // Interpretation still extends correctly after compaction.
        shim.disseminate(12);
        assert_eq!(shim.footprint().blocks, 13);
    }

    #[test]
    fn single_server_roundtrip() {
        let registry = KeyRegistry::generate(1, 3);
        let config = ShimConfig::new(ProtocolConfig::for_n(1));
        let mut shim: Shim<Flood> = Shim::new(ServerId::new(0), config, &registry).unwrap();
        shim.request(Label::new(1), 7);
        shim.disseminate(0); // request written into the genesis block
        shim.disseminate(1); // parent edge delivers the self-message
        assert_eq!(shim.poll_indications(), vec![(Label::new(1), 7)]);
    }
}
