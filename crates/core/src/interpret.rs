//! Interpreting a protocol on the block DAG — Algorithm 2 of the paper.
//!
//! Every server interprets the protocol `P` embedded in its local DAG `G`,
//! completely decoupled from building the DAG. To interpret one protocol
//! instance labeled `ℓ`, the server locally runs one process instance of
//! `P(ℓ)` for *every* server, and drives these simulations from the
//! structure of the DAG:
//!
//! * a request `(ℓ, r) ∈ B.rs` is fed to the instance of `B.n`
//!   (lines 5–6);
//! * an edge `B_i ⇀ B` materializes the delivery, to `B.n`'s instance, of
//!   every message in `B_i.Ms[out, ℓ]` addressed to `B.n` (lines 8–11), in
//!   the global total order `<_M`;
//! * the instance state `PIs` flows along parent edges (line 4).
//!
//! None of the materialized messages is ever sent over the network: they
//! are recomputed locally thanks to `P`'s determinism — the paper's
//! *message compression up to omission* (§4). Because interpretation only
//! reads `G` and `P` is deterministic, every server reaches exactly the
//! same states (Lemma 4.2), which is what makes the DAG an authenticated
//! perfect point-to-point link (Lemma 4.3).
//!
//! # Copy-on-write state sharing
//!
//! Algorithm 2's line 4 says `PIs := B_parent.PIs` — a *copy* of the whole
//! instance map per block. Taken literally (see [`crate::reference`] for
//! that transcription), memory and clone cost grow as
//! O(blocks × active labels × instance size), the unbounded-memory
//! limitation the paper itself flags in §7. This interpreter instead
//! shares per-block state structurally:
//!
//! * `B.PIs` is an `Arc<BTreeMap<Label, Arc<P>>>`. A block whose
//!   interpretation touches **no** label (no requests fed, no messages
//!   delivered) shares the parent's entire map by pointer — O(1).
//! * A block that touches some labels unshares the *map* once
//!   (cloning `Label → Arc<P>` entries, i.e. pointer bumps, not instance
//!   states), then clones only the **touched** instances via
//!   [`Arc::make_mut`]. Untouched entries keep pointing at the ancestor's
//!   instance allocation.
//! * The `active` label set is likewise an `Arc<BTreeSet<Label>>`, seeded
//!   from the largest predecessor's set and unshared only when the union
//!   over predecessors (plus this block's own requests) actually adds a
//!   label.
//!
//! A label is therefore *materialized* at a block exactly when Algorithm 2
//! drives its instance there: a request for it appears in `B.rs`
//! (lines 5–6) or a predecessor's out-buffer delivers a message to `B.n`
//! (lines 8–11). Everything else is shared, which
//! [`Interpreter::footprint`] makes measurable: `instances` counts map
//! entries across all blocks (what the naive interpreter would store),
//! `unique_instances` counts distinct instance allocations (what is
//! actually resident).
//!
//! Compaction ([`Interpreter::compact`]) drops the introspection-only
//! `Ms[in, ·]` buffers. It keeps a watermark into the interpretation
//! order, so repeated calls only visit blocks interpreted since the last
//! compaction and return 0 cheaply when there is nothing to drop.
//! Out-buffers and instance states are never dropped: any future block —
//! including a byzantine server's — may still reference an old block
//! directly (§7).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use dagbft_codec::{decode_from_slice, DecodeError, Reader, WireDecode, WireEncode};
use dagbft_crypto::ServerId;

use crate::block::BlockRef;
use crate::dag::BlockDag;
use crate::label::Label;
use crate::protocol::{DeterministicProtocol, Envelope, Outbox, ProtocolConfig, SnapshotProtocol};

/// An indication `(ℓ, i, s)` raised while interpreting: instance `ℓ` of the
/// *simulated* server `s` indicated `i` (Algorithm 2, lines 13–14).
///
/// The shim forwards only indications with `s = me` to the user
/// (Algorithm 3, line 8); the rest are observable for auditing.
#[derive(Debug, Clone, PartialEq)]
pub struct Indication<I> {
    /// The protocol instance that indicated.
    pub label: Label,
    /// The indication `i ∈ Inds_P`.
    pub indication: I,
    /// The simulated server on whose behalf the indication was produced.
    pub server: ServerId,
}

/// Errors from explicit single-block interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpretError {
    /// The reference does not resolve in the provided DAG.
    UnknownBlock {
        /// The unresolved reference.
        block: BlockRef,
    },
    /// The block has uninterpreted predecessors (`eligible(B)` is false).
    NotEligible {
        /// The predecessors still awaiting interpretation.
        pending: Vec<BlockRef>,
    },
    /// `I[B]` already holds; a block is interpreted exactly once.
    AlreadyInterpreted {
        /// The block in question.
        block: BlockRef,
    },
}

impl fmt::Display for InterpretError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpretError::UnknownBlock { block } => write!(f, "unknown block {block}"),
            InterpretError::NotEligible { pending } => {
                write!(
                    f,
                    "block not eligible: {} preds uninterpreted",
                    pending.len()
                )
            }
            InterpretError::AlreadyInterpreted { block } => {
                write!(f, "block {block} already interpreted")
            }
        }
    }
}

impl Error for InterpretError {}

/// The copy-on-write instance map `B.PIs`: shared with the parent block by
/// pointer, unshared entry-wise only for labels touched at this block.
type SharedInstances<P> = Arc<BTreeMap<Label, Arc<P>>>;

/// Interpretation state attached to one block `B`:
/// `B.PIs`, `B.Ms[out, ·]`, `B.Ms[in, ·]` in the paper's notation.
///
/// `pis` and `active` are structurally shared with ancestor blocks (see
/// the module docs); `outs`/`ins` are per-block by nature — they hold only
/// what was produced or delivered *at* this block.
#[derive(Debug, Clone)]
pub struct BlockState<P: DeterministicProtocol> {
    /// `B.PIs[ℓ]`: the state of process instance `ℓ` of server `B.n`,
    /// *after* interpreting `B`. Instances are created lazily on first
    /// request or message (the implementation refinement the paper notes
    /// in §4), and shared with the parent block unless touched here.
    pis: SharedInstances<P>,
    /// `B.Ms[out, ℓ]`: messages sent by `B.n`'s instance at this block.
    outs: BTreeMap<Label, BTreeSet<Envelope<P::Message>>>,
    /// `B.Ms[in, ℓ]`: messages delivered to `B.n`'s instance at this block.
    ins: BTreeMap<Label, BTreeSet<Envelope<P::Message>>>,
    /// Labels with a request at this block or any ancestor — the set the
    /// in-collection of line 7 ranges over (for descendants). Shared with
    /// the largest predecessor's set when the union adds nothing.
    active: Arc<BTreeSet<Label>>,
}

impl<P: DeterministicProtocol> BlockState<P> {
    /// The simulated instance of `label` for the block's builder, if it has
    /// been started.
    pub fn instance(&self, label: Label) -> Option<&P> {
        self.pis.get(&label).map(Arc::as_ref)
    }

    /// Labels with a started instance at this block.
    pub fn instance_labels(&self) -> impl Iterator<Item = &Label> {
        self.pis.keys()
    }

    /// Out-going messages `B.Ms[out, ℓ]` produced at this block.
    pub fn out_messages(&self, label: Label) -> impl Iterator<Item = &Envelope<P::Message>> {
        self.outs.get(&label).into_iter().flatten()
    }

    /// In-coming messages `B.Ms[in, ℓ]` delivered at this block.
    pub fn in_messages(&self, label: Label) -> impl Iterator<Item = &Envelope<P::Message>> {
        self.ins.get(&label).into_iter().flatten()
    }

    /// Labels active at this block (requested here or at an ancestor).
    pub fn active_labels(&self) -> impl Iterator<Item = &Label> {
        self.active.iter()
    }

    /// Labels for which this block produced out-going messages.
    pub fn out_labels(&self) -> impl Iterator<Item = &Label> {
        self.outs.keys()
    }

    /// Whether this state shares its *entire* instance map with `other`
    /// (i.e. no label was touched between the two blocks). Observability
    /// hook for the sharing claims; `true` implies every
    /// [`BlockState::instance`] of the two states is pointer-identical.
    pub fn shares_instances_with(&self, other: &BlockState<P>) -> bool {
        Arc::ptr_eq(&self.pis, &other.pis)
    }

    /// Whether `label`'s instance is the same allocation in both states
    /// (shared untouched along the parent chain).
    pub fn shares_instance_with(&self, other: &BlockState<P>, label: Label) -> bool {
        match (self.pis.get(&label), other.pis.get(&label)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// Approximate memory footprint of an interpreter (see
/// [`Interpreter::footprint`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterpreterFootprint {
    /// Interpreted blocks with stored state.
    pub blocks: usize,
    /// Protocol-instance map entries summed across all block states — what
    /// a clone-per-block interpreter would hold as full instance copies.
    pub instances: usize,
    /// Distinct instance allocations actually resident. Structural sharing
    /// makes this ≪ `instances` on long DAGs: only blocks that *touch* a
    /// label clone its instance.
    pub unique_instances: usize,
    /// Envelopes in out-buffers.
    pub out_envelopes: usize,
    /// Envelopes in in-buffers (droppable via [`Interpreter::compact`]).
    pub in_envelopes: usize,
}

impl InterpreterFootprint {
    /// `instances / unique_instances`: how many times the average resident
    /// instance is shared across block states. 1.0 means no sharing.
    pub fn sharing_ratio(&self) -> f64 {
        if self.unique_instances == 0 {
            return 1.0;
        }
        self.instances as f64 / self.unique_instances as f64
    }
}

impl std::ops::AddAssign for InterpreterFootprint {
    /// Field-wise sum, for aggregating over several interpreters (e.g. all
    /// servers of a simulation). Note `unique_instances` of a sum counts
    /// per-interpreter-unique allocations — interpreters never share
    /// memory with each other.
    fn add_assign(&mut self, rhs: InterpreterFootprint) {
        self.blocks += rhs.blocks;
        self.instances += rhs.instances;
        self.unique_instances += rhs.unique_instances;
        self.out_envelopes += rhs.out_envelopes;
        self.in_envelopes += rhs.in_envelopes;
    }
}

/// Counters describing an interpreter's work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterpretStats {
    /// Blocks interpreted (`I[B]` set).
    pub blocks_interpreted: u64,
    /// Requests fed to instances (line 6).
    pub requests_processed: u64,
    /// Requests whose payload failed to decode as `P::Request` (byzantine
    /// garbage; skipped — `P` never sees them).
    pub malformed_requests: u64,
    /// Messages materialized into out-buffers. These messages were *never*
    /// sent over the network (the compression claim, §4).
    pub messages_materialized: u64,
    /// Messages delivered from in-buffers to instances (line 11).
    pub messages_delivered: u64,
    /// Indications raised across all simulated servers.
    pub indications: u64,
}

/// The `interpret(G, P)` module of Algorithm 2, with copy-on-write state
/// sharing along parent edges (see the module docs).
///
/// The interpreter never mutates the DAG; it tracks which blocks it has
/// interpreted (`I[B]`, line 2) and owns the per-block protocol state. Feed
/// it a growing DAG via [`Interpreter::step`].
///
/// # Examples
///
/// See the crate-level docs; the interpreter is normally driven through
/// [`crate::Shim`].
#[derive(Debug)]
pub struct Interpreter<P: DeterministicProtocol> {
    config: ProtocolConfig,
    states: HashMap<BlockRef, BlockState<P>>,
    /// Interpretation order (for audits; any eligible-respecting order
    /// yields identical states, Lemma 4.2).
    order: Vec<BlockRef>,
    indications: Vec<Indication<P::Indication>>,
    stats: InterpretStats,
    /// Prefix of `order` whose in-buffers [`Interpreter::compact`] has
    /// already dropped; repeated compactions skip it.
    compacted: usize,
    /// Incremental eligibility tracking for [`Interpreter::step`]: how many
    /// blocks of the DAG's insertion order have been scanned …
    scanned: usize,
    /// … per uninterpreted block, the number of uninterpreted distinct
    /// predecessors …
    waiting: HashMap<BlockRef, usize>,
    /// … the reverse dependency index …
    dependents: HashMap<BlockRef, Vec<BlockRef>>,
    /// … and the queue of blocks whose predecessors are all interpreted.
    ready: std::collections::VecDeque<BlockRef>,
}

impl<P: DeterministicProtocol> Interpreter<P> {
    /// Creates an interpreter for the given protocol configuration.
    pub fn new(config: ProtocolConfig) -> Self {
        Interpreter {
            config,
            states: HashMap::new(),
            order: Vec::new(),
            indications: Vec::new(),
            stats: InterpretStats::default(),
            compacted: 0,
            scanned: 0,
            waiting: HashMap::new(),
            dependents: HashMap::new(),
            ready: std::collections::VecDeque::new(),
        }
    }

    /// `I[B]`: whether `block` has been interpreted.
    pub fn is_interpreted(&self, block: &BlockRef) -> bool {
        self.states.contains_key(block)
    }

    /// Number of interpreted blocks.
    pub fn interpreted_count(&self) -> usize {
        self.states.len()
    }

    /// Work counters.
    pub fn stats(&self) -> &InterpretStats {
        &self.stats
    }

    /// Interpretation state attached to `block`, if interpreted.
    pub fn state(&self, block: &BlockRef) -> Option<&BlockState<P>> {
        self.states.get(block)
    }

    /// Blocks interpreted so far, in interpretation order.
    pub fn interpreted_order(&self) -> &[BlockRef] {
        &self.order
    }

    /// The blocks currently eligible: `I[B]` is false and `I[B_i]` holds
    /// for every `B_i ∈ B.preds` (Algorithm 2, line 3).
    ///
    /// Served from the incremental `waiting`/`ready` bookkeeping that
    /// [`Interpreter::step`] maintains — only blocks appended to the DAG
    /// since the last call are scanned, never the whole DAG (the previous
    /// implementation rescanned all of `V` and `E` per call).
    ///
    /// Like [`Interpreter::step`], this requires every call on one
    /// interpreter to pass the *same, append-only* DAG (or a grown copy
    /// of it, `G ≤ G'`): the scan position is an index into the DAG's
    /// insertion order. Feeding unrelated DAGs to one interpreter yields
    /// stale results.
    pub fn eligible(&mut self, dag: &BlockDag) -> Vec<BlockRef> {
        self.scan_new_blocks(dag);
        // Prune blocks interpreted out-of-band (interpret_block() leaves
        // its entry behind) so the queue never accumulates stale refs
        // across repeated eligible()/interpret_block() driving loops.
        let states = &self.states;
        self.ready.retain(|r| !states.contains_key(r));
        self.ready.iter().copied().collect()
    }

    /// Interprets every block of `dag` that is or becomes eligible, to a
    /// fixed point. Returns the number of blocks interpreted.
    ///
    /// Since `G` is finite and acyclic, every block is picked eventually
    /// (Lemma A.10); a single call interprets everything currently in the
    /// DAG. Eligibility is tracked incrementally (`O(V + E)` across all
    /// calls), so repeatedly stepping a growing DAG — the shim does this
    /// after every gossip change — costs only the new blocks.
    pub fn step(&mut self, dag: &BlockDag) -> usize {
        self.scan_new_blocks(dag);
        let mut total = 0;
        while let Some(block_ref) = self.ready.pop_front() {
            if self.is_interpreted(&block_ref) {
                continue; // interpreted out-of-band via interpret_block()
            }
            self.interpret_block(dag, &block_ref)
                .expect("ready block interprets");
            total += 1;
        }
        total
    }

    /// Feeds blocks appended to the DAG since the last scan into the
    /// incremental eligibility tracker.
    fn scan_new_blocks(&mut self, dag: &BlockDag) {
        let refs: Vec<BlockRef> = dag.refs().skip(self.scanned).copied().collect();
        self.scanned += refs.len();
        for block_ref in refs {
            if self.is_interpreted(&block_ref) || self.waiting.contains_key(&block_ref) {
                continue;
            }
            let missing: Vec<BlockRef> = dag
                .preds_of(&block_ref)
                .into_iter()
                .filter(|p| !self.is_interpreted(p))
                .collect();
            if missing.is_empty() {
                self.ready.push_back(block_ref);
            } else {
                self.waiting.insert(block_ref, missing.len());
                for pred in missing {
                    self.dependents.entry(pred).or_default().push(block_ref);
                }
            }
        }
    }

    /// Called after a block was interpreted: releases dependents whose last
    /// missing predecessor it was.
    fn release_dependents(&mut self, block_ref: &BlockRef) {
        for dependent in self.dependents.remove(block_ref).unwrap_or_default() {
            if let Some(count) = self.waiting.get_mut(&dependent) {
                *count -= 1;
                if *count == 0 {
                    self.waiting.remove(&dependent);
                    self.ready.push_back(dependent);
                }
            }
        }
    }

    /// Materializes a mutable handle on `label`'s instance in `pis`:
    /// unshares the map (first touch at this block) and the instance
    /// itself (first touch of this label at this block) if currently
    /// shared with an ancestor; creates the instance lazily on first
    /// contact.
    fn touch<'a>(
        pis: &'a mut SharedInstances<P>,
        config: &ProtocolConfig,
        label: Label,
        me: ServerId,
    ) -> &'a mut P {
        let map = Arc::make_mut(pis);
        let slot = map
            .entry(label)
            .or_insert_with(|| Arc::new(P::new(config, label, me)));
        Arc::make_mut(slot)
    }

    /// Interprets a single eligible block (Algorithm 2, lines 4–12).
    ///
    /// Line 4 (`PIs := B_parent.PIs`) shares the parent's map by pointer;
    /// only labels touched here — requests fed (lines 5–6) or messages
    /// delivered (lines 8–11) — are cloned on write.
    ///
    /// # Errors
    ///
    /// * [`InterpretError::UnknownBlock`] — `block` not in `dag`;
    /// * [`InterpretError::AlreadyInterpreted`] — `I[B]` already holds;
    /// * [`InterpretError::NotEligible`] — some predecessor uninterpreted.
    pub fn interpret_block(
        &mut self,
        dag: &BlockDag,
        block_ref: &BlockRef,
    ) -> Result<(), InterpretError> {
        let block = dag
            .get(block_ref)
            .ok_or(InterpretError::UnknownBlock { block: *block_ref })?;
        if self.is_interpreted(block_ref) {
            return Err(InterpretError::AlreadyInterpreted { block: *block_ref });
        }
        let preds = dag.preds_of(block_ref);
        let pending: Vec<BlockRef> = preds
            .iter()
            .filter(|p| !self.is_interpreted(p))
            .copied()
            .collect();
        if !pending.is_empty() {
            return Err(InterpretError::NotEligible { pending });
        }

        let me = block.builder();

        // Line 4: PIs := the parent's PIs — shared by pointer, not copied.
        // Genesis blocks (and, for lazily created labels, first contact)
        // start fresh instances.
        let parent = block
            .parent_via(|r| dag.meta(r))
            .expect("blocks in the DAG satisfy the parent rule");
        let mut pis: SharedInstances<P> = match parent {
            Some(parent_ref) => Arc::clone(&self.states[&parent_ref].pis),
            None => Arc::new(BTreeMap::new()),
        };

        // Labels relevant at this block: requested at any strict ancestor
        // (union over preds of their active sets) — line 7 — plus the labels
        // requested at this block itself. Seeded from the largest
        // predecessor set; unshared only if the union adds labels.
        let mut active: Arc<BTreeSet<Label>> = preds
            .iter()
            .map(|pred| &self.states[pred].active)
            .max_by_key(|set| set.len())
            .map(Arc::clone)
            .unwrap_or_default();
        for pred in &preds {
            let pred_active = &self.states[pred].active;
            if Arc::ptr_eq(pred_active, &active) {
                continue;
            }
            for label in pred_active.iter() {
                if !active.contains(label) {
                    Arc::make_mut(&mut active).insert(*label);
                }
            }
        }

        let mut outs: BTreeMap<Label, BTreeSet<Envelope<P::Message>>> = BTreeMap::new();
        let mut ins: BTreeMap<Label, BTreeSet<Envelope<P::Message>>> = BTreeMap::new();
        let mut touched: BTreeSet<Label> = BTreeSet::new();
        let config = self.config;

        // Lines 5–6: feed the block's own requests to B.n's instances.
        for labeled in block.requests() {
            let label = labeled.label;
            match decode_from_slice::<P::Request>(&labeled.payload) {
                Ok(request) => {
                    let instance = Self::touch(&mut pis, &config, label, me);
                    let mut outbox = Outbox::new();
                    instance.on_request(request, &mut outbox);
                    let envelopes: Vec<_> = outbox.into_envelopes(me).collect();
                    self.stats.messages_materialized += envelopes.len() as u64;
                    outs.entry(label).or_default().extend(envelopes);
                    if !active.contains(&label) {
                        Arc::make_mut(&mut active).insert(label);
                    }
                    touched.insert(label);
                    self.stats.requests_processed += 1;
                }
                Err(_) => {
                    // A byzantine builder inscribed bytes that are not a
                    // request of P. P assumes requests are authentic
                    // (§5); garbage never reaches it.
                    self.stats.malformed_requests += 1;
                }
            }
        }

        // Lines 7–11: for every relevant label, collect the in-messages
        // addressed to B.n from the direct predecessors' out-buffers and
        // deliver them in the total order <_M. Only labels some
        // predecessor actually sent on can have a non-empty inbox — and
        // a block's out-labels are always active at its successors — so
        // ranging over the preds' out-label union instead of the whole
        // `active` set is observationally identical (the retained
        // reference interpreter iterates `active`; the equivalence suite
        // pins this) and keeps delivery cost proportional to traffic,
        // not to the lifetime label count.
        let mut sending: BTreeSet<Label> = BTreeSet::new();
        for pred in &preds {
            sending.extend(self.states[pred].outs.keys().copied());
        }
        for label in sending {
            let mut inbox: BTreeSet<Envelope<P::Message>> = BTreeSet::new();
            for pred in &preds {
                if let Some(out) = self.states[pred].outs.get(&label) {
                    inbox.extend(out.iter().filter(|e| e.receiver == me).cloned());
                }
            }
            if inbox.is_empty() {
                continue;
            }
            let instance = Self::touch(&mut pis, &config, label, me);
            for envelope in &inbox {
                let mut outbox = Outbox::new();
                instance.on_message(envelope.sender, envelope.message.clone(), &mut outbox);
                let envelopes: Vec<_> = outbox.into_envelopes(me).collect();
                self.stats.messages_materialized += envelopes.len() as u64;
                outs.entry(label).or_default().extend(envelopes);
                self.stats.messages_delivered += 1;
            }
            touched.insert(label);
            ins.insert(label, inbox);
        }

        // Lines 13–14: surface indications from the instances driven here.
        // Touched instances are already unshared, so make_mut is free.
        if !touched.is_empty() {
            let map = Arc::make_mut(&mut pis);
            for label in &touched {
                if let Some(slot) = map.get_mut(label) {
                    for indication in Arc::make_mut(slot).drain_indications() {
                        self.stats.indications += 1;
                        self.indications.push(Indication {
                            label: *label,
                            indication,
                            server: me,
                        });
                    }
                }
            }
        }

        // Line 12: I[B] := true.
        self.states.insert(
            *block_ref,
            BlockState {
                pis,
                outs,
                ins,
                active,
            },
        );
        self.order.push(*block_ref);
        self.stats.blocks_interpreted += 1;
        self.release_dependents(block_ref);
        Ok(())
    }

    /// Drops the stored `Ms[in, ·]` buffers of interpreted blocks.
    ///
    /// In-buffers are kept only for introspection (figure traces, audits);
    /// the interpretation itself never reads them back, so compaction is
    /// always safe. Out-buffers and instance states must be retained:
    /// *any* block — including a byzantine server's — may still reference
    /// an old block directly (§7 discusses this unbounded-memory
    /// limitation of the abstraction). Returns the number of envelopes
    /// dropped.
    ///
    /// Compaction is incremental: a watermark into the interpretation
    /// order skips already-compacted states, so calling this repeatedly
    /// (e.g. on a timer) costs only the blocks interpreted since the last
    /// call, and returns 0 in O(1) when there is nothing to drop.
    pub fn compact(&mut self) -> usize {
        if self.compacted == self.order.len() {
            return 0;
        }
        let mut dropped = 0;
        let (order, states) = (&self.order, &mut self.states);
        for block_ref in &order[self.compacted..] {
            if let Some(state) = states.get_mut(block_ref) {
                for (_, ins) in std::mem::take(&mut state.ins) {
                    dropped += ins.len();
                }
            }
        }
        self.compacted = self.order.len();
        dropped
    }

    /// Approximate memory footprint: stored protocol instances (total map
    /// entries *and* unique resident allocations), out- and in-envelopes
    /// across all interpreted blocks. Used by the bounded-memory
    /// experiments and as the input to compaction policies.
    ///
    /// `instances` is what a clone-per-block interpreter would store;
    /// `unique_instances` is what this interpreter actually keeps —
    /// their ratio is the structural-sharing win.
    pub fn footprint(&self) -> InterpreterFootprint {
        let mut footprint = InterpreterFootprint::default();
        let mut seen_maps: HashSet<*const BTreeMap<Label, Arc<P>>> = HashSet::new();
        let mut seen_instances: HashSet<*const P> = HashSet::new();
        for state in self.states.values() {
            footprint.instances += state.pis.len();
            if seen_maps.insert(Arc::as_ptr(&state.pis)) {
                // A map shared by pointer contributes its instances once;
                // distinct maps may still share entries, hence the second
                // dedup level.
                for slot in state.pis.values() {
                    if seen_instances.insert(Arc::as_ptr(slot)) {
                        footprint.unique_instances += 1;
                    }
                }
            }
            footprint.out_envelopes += state.outs.values().map(BTreeSet::len).sum::<usize>();
            footprint.in_envelopes += state.ins.values().map(BTreeSet::len).sum::<usize>();
        }
        footprint.blocks = self.states.len();
        footprint
    }

    /// Removes and returns the indications raised since the last drain.
    pub fn drain_indications(&mut self) -> Vec<Indication<P::Indication>> {
        std::mem::take(&mut self.indications)
    }
}

/// Errors decoding a persisted interpreter snapshot.
///
/// Corrupt snapshot bytes always map here — decoding never panics; recovery
/// can fall back to genesis replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot bytes do not decode.
    Corrupt(DecodeError),
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion(u8),
    /// The snapshot was taken under a different `(n, f)` configuration.
    ConfigMismatch {
        /// `n` recorded in the snapshot.
        n: u64,
        /// `f` recorded in the snapshot.
        f: u64,
    },
    /// A cross-reference into one of the snapshot's sharing tables is out
    /// of range.
    BadIndex,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Corrupt(err) => write!(f, "corrupt snapshot: {err}"),
            SnapshotError::UnsupportedVersion(version) => {
                write!(f, "unsupported snapshot version {version}")
            }
            SnapshotError::ConfigMismatch { n, f: faults } => {
                write!(
                    f,
                    "snapshot taken under different config (n={n}, f={faults})"
                )
            }
            SnapshotError::BadIndex => write!(f, "snapshot sharing-table index out of range"),
        }
    }
}

impl Error for SnapshotError {}

impl From<DecodeError> for SnapshotError {
    fn from(err: DecodeError) -> Self {
        SnapshotError::Corrupt(err)
    }
}

/// Snapshot format version written by [`Interpreter::encode_snapshot`].
const SNAPSHOT_VERSION: u8 = 1;

/// Reads a `u64` element count and checks feasibility against the remaining
/// input (each element needs at least `min_elem_size` bytes), so corrupt
/// counts can never force a large allocation.
fn read_count(reader: &mut Reader<'_>, min_elem_size: usize) -> Result<usize, SnapshotError> {
    let claimed = reader.read_u64()? as usize;
    let max = reader.remaining() / min_elem_size.max(1);
    if claimed > max {
        return Err(SnapshotError::Corrupt(DecodeError::LengthOutOfBounds {
            claimed,
            max,
        }));
    }
    Ok(claimed)
}

impl<P: SnapshotProtocol> Interpreter<P>
where
    P::Message: WireEncode + WireDecode,
{
    /// Serializes the complete interpretation state — order, counters, and
    /// every block's state with its copy-on-write structure *preserved*
    /// (shared maps, instances, and active sets are written once and
    /// cross-referenced), so a snapshot of a million-block DAG costs what
    /// is actually resident, not blocks × labels.
    ///
    /// Must be called at a fixed point ([`Interpreter::step`] returned and
    /// [`Interpreter::drain_indications`] was drained): pending eligibility
    /// bookkeeping and undrained indications are not captured.
    ///
    /// The `ins` buffers are deliberately not captured — they are
    /// introspection-only (see [`Interpreter::compact`]), and a restored
    /// interpreter behaves like a compacted one.
    pub fn encode_snapshot(&self) -> Vec<u8> {
        debug_assert!(
            self.ready.is_empty() && self.waiting.is_empty(),
            "snapshot requires interpretation at a fixed point"
        );
        debug_assert!(
            self.indications.is_empty(),
            "drain indications before snapshotting"
        );
        let mut out = Vec::new();
        out.push(SNAPSHOT_VERSION);
        (self.order.len() as u64).encode(&mut out);
        (self.config.n as u64).encode(&mut out);
        (self.config.f as u64).encode(&mut out);
        for block_ref in &self.order {
            block_ref.encode(&mut out);
        }
        for counter in [
            self.stats.blocks_interpreted,
            self.stats.requests_processed,
            self.stats.malformed_requests,
            self.stats.messages_materialized,
            self.stats.messages_delivered,
            self.stats.indications,
        ] {
            counter.encode(&mut out);
        }

        // Discover the unique allocations in deterministic (interpretation
        // order, then BTreeMap order) sequence, assigning dense indices.
        let mut map_index: HashMap<*const BTreeMap<Label, Arc<P>>, u64> = HashMap::new();
        let mut instance_index: HashMap<*const P, u64> = HashMap::new();
        let mut active_index: HashMap<*const BTreeSet<Label>, u64> = HashMap::new();
        let mut instances: Vec<Arc<P>> = Vec::new();
        let mut maps: Vec<SharedInstances<P>> = Vec::new();
        let mut actives: Vec<Arc<BTreeSet<Label>>> = Vec::new();
        use std::collections::hash_map::Entry;
        for block_ref in &self.order {
            let state = &self.states[block_ref];
            if let Entry::Vacant(entry) = map_index.entry(Arc::as_ptr(&state.pis)) {
                entry.insert(maps.len() as u64);
                maps.push(Arc::clone(&state.pis));
                for slot in state.pis.values() {
                    if let Entry::Vacant(entry) = instance_index.entry(Arc::as_ptr(slot)) {
                        entry.insert(instances.len() as u64);
                        instances.push(Arc::clone(slot));
                    }
                }
            }
            if let Entry::Vacant(entry) = active_index.entry(Arc::as_ptr(&state.active)) {
                entry.insert(actives.len() as u64);
                actives.push(Arc::clone(&state.active));
            }
        }

        // Table 1: unique instance states, length-prefixed.
        (instances.len() as u64).encode(&mut out);
        let mut scratch = Vec::new();
        for instance in &instances {
            scratch.clear();
            instance.encode_state(&mut scratch);
            (scratch.len() as u64).encode(&mut out);
            out.extend_from_slice(&scratch);
        }
        // Table 2: unique instance maps, as (label, instance index) pairs.
        (maps.len() as u64).encode(&mut out);
        for map in &maps {
            (map.len() as u64).encode(&mut out);
            for (label, slot) in map.iter() {
                label.encode(&mut out);
                instance_index[&Arc::as_ptr(slot)].encode(&mut out);
            }
        }
        // Table 3: unique active label sets.
        (actives.len() as u64).encode(&mut out);
        for active in &actives {
            (active.len() as u64).encode(&mut out);
            for label in active.iter() {
                label.encode(&mut out);
            }
        }
        // Per block, in interpretation order: table cross-references and
        // the (per-block by nature) out-buffers.
        for block_ref in &self.order {
            let state = &self.states[block_ref];
            map_index[&Arc::as_ptr(&state.pis)].encode(&mut out);
            active_index[&Arc::as_ptr(&state.active)].encode(&mut out);
            state.outs.encode(&mut out);
        }
        out
    }

    /// Rebuilds an interpreter from [`Interpreter::encode_snapshot`] bytes,
    /// restoring the copy-on-write sharing structure (shared allocations
    /// come back shared).
    ///
    /// The restored interpreter has scanned exactly the first
    /// `interpreted_count()` blocks of the DAG's insertion order — feed it
    /// the same, grown DAG and [`Interpreter::step`] replays only the
    /// suffix. The caller must verify the covered prefix matches
    /// (see `Shim::recover_from_store_with_snapshots`).
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]; corrupt input never panics.
    pub fn decode_snapshot(config: ProtocolConfig, bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut reader = Reader::new(bytes);
        let version = reader.read_u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let covered = read_count(&mut reader, 32)?;
        let n = reader.read_u64()?;
        let f = reader.read_u64()?;
        if n != config.n as u64 || f != config.f as u64 {
            return Err(SnapshotError::ConfigMismatch { n, f });
        }
        let mut order = Vec::with_capacity(covered);
        for _ in 0..covered {
            order.push(BlockRef::decode(&mut reader)?);
        }
        let stats = InterpretStats {
            blocks_interpreted: reader.read_u64()?,
            requests_processed: reader.read_u64()?,
            malformed_requests: reader.read_u64()?,
            messages_materialized: reader.read_u64()?,
            messages_delivered: reader.read_u64()?,
            indications: reader.read_u64()?,
        };

        let instance_count = read_count(&mut reader, 8)?;
        let mut instances: Vec<Arc<P>> = Vec::with_capacity(instance_count);
        for _ in 0..instance_count {
            let len = reader.read_u64()? as usize;
            let slice = reader.take(len)?;
            let mut sub = Reader::new(slice);
            let instance = P::decode_state(&mut sub)?;
            if sub.remaining() != 0 {
                return Err(SnapshotError::Corrupt(DecodeError::TrailingBytes {
                    remaining: sub.remaining(),
                }));
            }
            instances.push(Arc::new(instance));
        }
        let map_count = read_count(&mut reader, 8)?;
        let mut maps: Vec<SharedInstances<P>> = Vec::with_capacity(map_count);
        for _ in 0..map_count {
            let entries = read_count(&mut reader, 16)?;
            let mut map = BTreeMap::new();
            for _ in 0..entries {
                let label = Label::decode(&mut reader)?;
                let idx = reader.read_u64()? as usize;
                let slot = instances.get(idx).ok_or(SnapshotError::BadIndex)?;
                map.insert(label, Arc::clone(slot));
            }
            maps.push(Arc::new(map));
        }
        let active_count = read_count(&mut reader, 8)?;
        let mut actives: Vec<Arc<BTreeSet<Label>>> = Vec::with_capacity(active_count);
        for _ in 0..active_count {
            let labels = read_count(&mut reader, 8)?;
            let mut set = BTreeSet::new();
            for _ in 0..labels {
                set.insert(Label::decode(&mut reader)?);
            }
            actives.push(Arc::new(set));
        }

        let mut states: HashMap<BlockRef, BlockState<P>> = HashMap::with_capacity(covered);
        for block_ref in &order {
            let map_idx = reader.read_u64()? as usize;
            let active_idx = reader.read_u64()? as usize;
            let outs: BTreeMap<Label, BTreeSet<Envelope<P::Message>>> =
                WireDecode::decode(&mut reader)?;
            states.insert(
                *block_ref,
                BlockState {
                    pis: Arc::clone(maps.get(map_idx).ok_or(SnapshotError::BadIndex)?),
                    outs,
                    ins: BTreeMap::new(),
                    active: Arc::clone(actives.get(active_idx).ok_or(SnapshotError::BadIndex)?),
                },
            );
        }
        if reader.remaining() != 0 {
            return Err(SnapshotError::Corrupt(DecodeError::TrailingBytes {
                remaining: reader.remaining(),
            }));
        }
        let compacted = order.len();
        let scanned = order.len();
        Ok(Interpreter {
            config,
            states,
            order,
            indications: Vec::new(),
            stats,
            compacted,
            scanned,
            waiting: HashMap::new(),
            dependents: HashMap::new(),
            ready: std::collections::VecDeque::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, LabeledRequest, SeqNum};
    use dagbft_crypto::{KeyRegistry, Signer};

    /// A deterministic ping protocol: on request, send PING to everyone;
    /// on PING, indicate the value once.
    #[derive(Debug, Clone)]
    struct Ping {
        config: ProtocolConfig,
        seen: BTreeSet<u64>,
        pending: Vec<u64>,
    }

    impl DeterministicProtocol for Ping {
        type Request = u64;
        type Message = u64;
        type Indication = u64;

        fn new(config: &ProtocolConfig, _label: Label, _me: ServerId) -> Self {
            Ping {
                config: *config,
                seen: BTreeSet::new(),
                pending: Vec::new(),
            }
        }

        fn on_request(&mut self, request: u64, outbox: &mut Outbox<u64>) {
            outbox.broadcast(&self.config, request);
        }

        fn on_message(&mut self, _sender: ServerId, message: u64, _outbox: &mut Outbox<u64>) {
            if self.seen.insert(message) {
                self.pending.push(message);
            }
        }

        fn drain_indications(&mut self) -> Vec<u64> {
            std::mem::take(&mut self.pending)
        }
    }

    fn setup(n: usize) -> (KeyRegistry, Vec<Signer>) {
        let registry = KeyRegistry::generate(n, 21);
        let signers = (0..n)
            .map(|i| registry.signer(ServerId::new(i as u32)).unwrap())
            .collect();
        (registry, signers)
    }

    /// Two servers; s0's genesis carries a request; both build follow-ups
    /// referencing each other's blocks.
    fn two_server_dag() -> (BlockDag, Vec<Block>) {
        let (_, signers) = setup(2);
        let label = Label::new(1);
        let b0 = Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(label, &7u64)],
            &signers[0],
        );
        let b1 = Block::build(ServerId::new(1), SeqNum::ZERO, vec![], vec![], &signers[1]);
        // s1 references both genesis blocks: receives s0's PING here.
        let b2 = Block::build(
            ServerId::new(1),
            SeqNum::new(1),
            vec![b1.block_ref(), b0.block_ref()],
            vec![],
            &signers[1],
        );
        // s0 references its own genesis (self-delivery) and s1's chain.
        let b3 = Block::build(
            ServerId::new(0),
            SeqNum::new(1),
            vec![b0.block_ref(), b2.block_ref()],
            vec![],
            &signers[0],
        );
        let mut dag = BlockDag::new();
        for block in [&b0, &b1, &b2, &b3] {
            dag.insert(block.clone()).unwrap();
        }
        (dag, vec![b0, b1, b2, b3])
    }

    /// A single-server chain of `length` blocks; only the genesis carries a
    /// request, so blocks from index 2 on touch nothing (the PING
    /// self-delivers at index 1 and Ping replies with silence).
    fn single_chain(length: u64) -> (BlockDag, Vec<Block>) {
        let (_, signers) = setup(1);
        let mut dag = BlockDag::new();
        let mut blocks = Vec::new();
        let mut prev: Option<BlockRef> = None;
        for k in 0..length {
            let requests = if k == 0 {
                vec![LabeledRequest::encode(Label::new(1), &7u64)]
            } else {
                vec![]
            };
            let block = Block::build(
                ServerId::new(0),
                SeqNum::new(k),
                prev.into_iter().collect(),
                requests,
                &signers[0],
            );
            dag.insert(block.clone()).unwrap();
            prev = Some(block.block_ref());
            blocks.push(block);
        }
        (dag, blocks)
    }

    #[test]
    fn eligibility_respects_partial_order() {
        let (dag, blocks) = two_server_dag();
        let mut interpreter: Interpreter<Ping> = Interpreter::new(ProtocolConfig::for_n(2));
        let eligible = interpreter.eligible(&dag);
        // Only the two genesis blocks are eligible initially.
        assert_eq!(eligible.len(), 2);
        assert!(eligible.contains(&blocks[0].block_ref()));
        assert!(eligible.contains(&blocks[1].block_ref()));

        let err = interpreter
            .interpret_block(&dag, &blocks[2].block_ref())
            .unwrap_err();
        assert!(matches!(err, InterpretError::NotEligible { .. }));
    }

    #[test]
    fn eligible_tracks_incremental_progress() {
        // eligible() reflects interpret_block() progress without rescans:
        // interpreting a genesis block releases its dependents.
        let (dag, blocks) = two_server_dag();
        let mut interpreter: Interpreter<Ping> = Interpreter::new(ProtocolConfig::for_n(2));
        interpreter
            .interpret_block(&dag, &blocks[0].block_ref())
            .unwrap();
        interpreter
            .interpret_block(&dag, &blocks[1].block_ref())
            .unwrap();
        let eligible = interpreter.eligible(&dag);
        assert_eq!(eligible, vec![blocks[2].block_ref()]);
        interpreter
            .interpret_block(&dag, &blocks[2].block_ref())
            .unwrap();
        assert_eq!(interpreter.eligible(&dag), vec![blocks[3].block_ref()]);
        interpreter
            .interpret_block(&dag, &blocks[3].block_ref())
            .unwrap();
        assert!(interpreter.eligible(&dag).is_empty());
    }

    #[test]
    fn request_materializes_broadcast_messages() {
        let (dag, blocks) = two_server_dag();
        let mut interpreter: Interpreter<Ping> = Interpreter::new(ProtocolConfig::for_n(2));
        interpreter.step(&dag);
        let state = interpreter.state(&blocks[0].block_ref()).unwrap();
        let outs: Vec<_> = state.out_messages(Label::new(1)).collect();
        // PING 7 to s0 and s1.
        assert_eq!(outs.len(), 2);
        assert!(outs.iter().all(|e| e.sender == ServerId::new(0)));
        assert!(outs.iter().all(|e| e.message == 7));
    }

    #[test]
    fn edges_deliver_messages_and_raise_indications() {
        let (dag, blocks) = two_server_dag();
        let mut interpreter: Interpreter<Ping> = Interpreter::new(ProtocolConfig::for_n(2));
        let interpreted = interpreter.step(&dag);
        assert_eq!(interpreted, 4);

        // b2 (by s1) received PING 7 via the edge b0 ⇀ b2.
        let state_b2 = interpreter.state(&blocks[2].block_ref()).unwrap();
        let ins: Vec<_> = state_b2.in_messages(Label::new(1)).collect();
        assert_eq!(ins.len(), 1);
        assert_eq!(ins[0].receiver, ServerId::new(1));

        // b3 (by s0) received its own PING via b0 ⇀ b3 (self-delivery on
        // the next own block).
        let state_b3 = interpreter.state(&blocks[3].block_ref()).unwrap();
        let ins3: Vec<_> = state_b3.in_messages(Label::new(1)).collect();
        assert_eq!(ins3.len(), 1);
        assert_eq!(ins3[0].receiver, ServerId::new(0));

        // Both simulated servers indicated 7 exactly once.
        let indications = interpreter.drain_indications();
        let mut by_server: Vec<_> = indications
            .iter()
            .map(|i| (i.server.index(), i.indication))
            .collect();
        by_server.sort();
        assert_eq!(by_server, vec![(0, 7), (1, 7)]);
    }

    #[test]
    fn interpretation_is_idempotent_per_block() {
        let (dag, blocks) = two_server_dag();
        let mut interpreter: Interpreter<Ping> = Interpreter::new(ProtocolConfig::for_n(2));
        interpreter.step(&dag);
        let err = interpreter
            .interpret_block(&dag, &blocks[0].block_ref())
            .unwrap_err();
        assert!(matches!(err, InterpretError::AlreadyInterpreted { .. }));
        // step() on an unchanged DAG does nothing.
        assert_eq!(interpreter.step(&dag), 0);
    }

    #[test]
    fn lemma_4_2_interpretation_order_independent() {
        let (dag, _) = two_server_dag();
        // Interpreter A: default (topological) order via step().
        let mut a: Interpreter<Ping> = Interpreter::new(ProtocolConfig::for_n(2));
        a.step(&dag);
        // Interpreter B: repeatedly pick the *last* eligible block.
        let mut b: Interpreter<Ping> = Interpreter::new(ProtocolConfig::for_n(2));
        loop {
            let eligible = b.eligible(&dag);
            let Some(pick) = eligible.last() else { break };
            b.interpret_block(&dag, pick).unwrap();
        }
        for r in dag.refs() {
            let state_a = a.state(r).unwrap();
            let state_b = b.state(r).unwrap();
            let label = Label::new(1);
            let outs_a: Vec<_> = state_a.out_messages(label).collect();
            let outs_b: Vec<_> = state_b.out_messages(label).collect();
            assert_eq!(outs_a, outs_b);
            let ins_a: Vec<_> = state_a.in_messages(label).collect();
            let ins_b: Vec<_> = state_b.in_messages(label).collect();
            assert_eq!(ins_a, ins_b);
        }
        assert_eq!(a.stats().messages_delivered, b.stats().messages_delivered);
    }

    #[test]
    fn growing_dag_extends_interpretation() {
        let (dag_full, blocks) = two_server_dag();
        let mut dag_partial = BlockDag::new();
        dag_partial.insert(blocks[0].clone()).unwrap();
        dag_partial.insert(blocks[1].clone()).unwrap();

        let mut interpreter: Interpreter<Ping> = Interpreter::new(ProtocolConfig::for_n(2));
        assert_eq!(interpreter.step(&dag_partial), 2);
        // Extend to the full DAG (G ≤ G'): previously interpreted state is
        // reused, only the new blocks are processed.
        assert_eq!(interpreter.step(&dag_full), 2);
        assert_eq!(interpreter.interpreted_count(), 4);
    }

    #[test]
    fn malformed_request_payload_skipped() {
        let (_, signers) = setup(1);
        let garbage = LabeledRequest {
            label: Label::new(1),
            payload: bytes::Bytes::from_static(&[0xff, 0x01]),
        };
        let block = Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![garbage],
            &signers[0],
        );
        let mut dag = BlockDag::new();
        dag.insert(block.clone()).unwrap();
        let mut interpreter: Interpreter<Ping> = Interpreter::new(ProtocolConfig::for_n(1));
        interpreter.step(&dag);
        assert_eq!(interpreter.stats().malformed_requests, 1);
        assert_eq!(interpreter.stats().requests_processed, 0);
    }

    #[test]
    fn unknown_block_error() {
        let (dag, _) = two_server_dag();
        let mut interpreter: Interpreter<Ping> = Interpreter::new(ProtocolConfig::for_n(2));
        let bogus = BlockRef::from_digest(dagbft_crypto::Digest::ZERO);
        assert!(matches!(
            interpreter.interpret_block(&dag, &bogus),
            Err(InterpretError::UnknownBlock { .. })
        ));
    }

    #[test]
    fn equivocation_splits_instance_state() {
        // A byzantine s1 builds two k=0 blocks with different requests; the
        // interpreted instance state for s1 splits (Figure 3 discussion).
        let (_, signers) = setup(2);
        let label = Label::new(1);
        let b3 = Block::build(
            ServerId::new(1),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(label, &1u64)],
            &signers[1],
        );
        let b4 = Block::build(
            ServerId::new(1),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(label, &2u64)],
            &signers[1],
        );
        let mut dag = BlockDag::new();
        dag.insert(b3.clone()).unwrap();
        dag.insert(b4.clone()).unwrap();
        let mut interpreter: Interpreter<Ping> = Interpreter::new(ProtocolConfig::for_n(2));
        interpreter.step(&dag);
        let out3: Vec<_> = interpreter
            .state(&b3.block_ref())
            .unwrap()
            .out_messages(label)
            .map(|e| e.message)
            .collect();
        let out4: Vec<_> = interpreter
            .state(&b4.block_ref())
            .unwrap()
            .out_messages(label)
            .map(|e| e.message)
            .collect();
        assert!(out3.iter().all(|m| *m == 1));
        assert!(out4.iter().all(|m| *m == 2));
        // The split states are distinct allocations, never shared.
        let state3 = interpreter.state(&b3.block_ref()).unwrap();
        let state4 = interpreter.state(&b4.block_ref()).unwrap();
        assert!(!state3.shares_instance_with(state4, label));
    }

    #[test]
    fn incremental_step_matches_batch_interpretation() {
        // Interleave manual interpret_block() calls with step() on a
        // growing DAG: the tracker must neither skip nor double-interpret.
        let (dag_full, blocks) = two_server_dag();
        let mut dag_partial = BlockDag::new();
        dag_partial.insert(blocks[0].clone()).unwrap();
        dag_partial.insert(blocks[1].clone()).unwrap();

        let mut interpreter: Interpreter<Ping> = Interpreter::new(ProtocolConfig::for_n(2));
        // Manually interpret one genesis, then step the partial DAG.
        interpreter
            .interpret_block(&dag_partial, &blocks[1].block_ref())
            .unwrap();
        assert_eq!(interpreter.step(&dag_partial), 1);
        // Grow the DAG and step again.
        assert_eq!(interpreter.step(&dag_full), 2);
        assert_eq!(interpreter.interpreted_count(), 4);
        // No block interpreted twice: order has unique entries.
        let unique: std::collections::BTreeSet<_> =
            interpreter.interpreted_order().iter().collect();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn compact_drops_only_in_buffers() {
        let (dag, blocks) = two_server_dag();
        let mut interpreter: Interpreter<Ping> = Interpreter::new(ProtocolConfig::for_n(2));
        interpreter.step(&dag);

        let before = interpreter.footprint();
        assert!(before.in_envelopes > 0);
        assert!(before.out_envelopes > 0);
        let dropped = interpreter.compact();
        assert_eq!(dropped, before.in_envelopes);

        let after = interpreter.footprint();
        assert_eq!(after.in_envelopes, 0);
        assert_eq!(after.out_envelopes, before.out_envelopes);
        assert_eq!(after.instances, before.instances);
        // Out-buffers still serve future blocks correctly.
        let state = interpreter.state(&blocks[0].block_ref()).unwrap();
        assert_eq!(state.out_messages(Label::new(1)).count(), 2);
    }

    #[test]
    fn compact_is_incremental_across_calls() {
        let (dag_full, blocks) = two_server_dag();
        let mut dag_partial = BlockDag::new();
        dag_partial.insert(blocks[0].clone()).unwrap();
        dag_partial.insert(blocks[1].clone()).unwrap();

        let mut interpreter: Interpreter<Ping> = Interpreter::new(ProtocolConfig::for_n(2));
        interpreter.step(&dag_partial);
        // Genesis blocks have no preds, hence no in-buffers to drop.
        assert_eq!(interpreter.compact(), 0);
        // Re-compacting with no new blocks is a cheap no-op.
        assert_eq!(interpreter.compact(), 0);

        // Grow the DAG: only the two new blocks are visited, and exactly
        // their in-envelopes (one each) are dropped.
        interpreter.step(&dag_full);
        let before = interpreter.footprint();
        assert_eq!(interpreter.compact(), before.in_envelopes);
        assert_eq!(interpreter.compact(), 0);
        assert_eq!(interpreter.footprint().in_envelopes, 0);
    }

    #[test]
    fn untouched_blocks_share_state_with_parent() {
        // Chain of 6 blocks, one request at genesis: activity dies out
        // after index 1 (the self-delivered PING), so blocks 2.. share the
        // whole instance map — and the active set — with their parent.
        let (dag, blocks) = single_chain(6);
        let mut interpreter: Interpreter<Ping> = Interpreter::new(ProtocolConfig::for_n(1));
        interpreter.step(&dag);

        let state1 = interpreter.state(&blocks[1].block_ref()).unwrap();
        for later in &blocks[2..] {
            let state = interpreter.state(&later.block_ref()).unwrap();
            assert!(
                state.shares_instances_with(state1),
                "quiescent block must share the parent's map"
            );
        }
        // Genesis touched the label (request), block 1 touched it
        // (delivery): two unique instances; blocks 2.. add nothing.
        let footprint = interpreter.footprint();
        assert_eq!(footprint.blocks, 6);
        assert_eq!(footprint.instances, 6); // one label in every state
        assert_eq!(footprint.unique_instances, 2);
        assert!(footprint.sharing_ratio() > 2.9);
    }

    #[test]
    fn cow_write_does_not_leak_into_ancestors() {
        // The clone-on-write must isolate descendants from ancestors: after
        // block 1 drives the instance (PING delivery mutates `seen`), the
        // genesis state still shows the pre-delivery instance.
        let (dag, blocks) = single_chain(3);
        let mut interpreter: Interpreter<Ping> = Interpreter::new(ProtocolConfig::for_n(1));
        interpreter.step(&dag);

        let genesis = interpreter.state(&blocks[0].block_ref()).unwrap();
        let after = interpreter.state(&blocks[1].block_ref()).unwrap();
        let genesis_instance = genesis.instance(Label::new(1)).unwrap();
        let after_instance = after.instance(Label::new(1)).unwrap();
        assert!(genesis_instance.seen.is_empty(), "ancestor unmodified");
        assert_eq!(after_instance.seen.len(), 1, "descendant advanced");
        assert!(!genesis.shares_instance_with(after, Label::new(1)));
    }

    #[test]
    fn parallel_labels_are_independent() {
        let (_, signers) = setup(1);
        let b0 = Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![
                LabeledRequest::encode(Label::new(1), &10u64),
                LabeledRequest::encode(Label::new(2), &20u64),
            ],
            &signers[0],
        );
        let b1 = Block::build(
            ServerId::new(0),
            SeqNum::new(1),
            vec![b0.block_ref()],
            vec![],
            &signers[0],
        );
        let mut dag = BlockDag::new();
        dag.insert(b0.clone()).unwrap();
        dag.insert(b1.clone()).unwrap();
        let mut interpreter: Interpreter<Ping> = Interpreter::new(ProtocolConfig::for_n(1));
        interpreter.step(&dag);

        let state = interpreter.state(&b1.block_ref()).unwrap();
        let in1: Vec<_> = state
            .in_messages(Label::new(1))
            .map(|e| e.message)
            .collect();
        let in2: Vec<_> = state
            .in_messages(Label::new(2))
            .map(|e| e.message)
            .collect();
        assert_eq!(in1, vec![10]);
        assert_eq!(in2, vec![20]);

        let indications = interpreter.drain_indications();
        let labels: BTreeSet<_> = indications.iter().map(|i| i.label).collect();
        assert_eq!(labels.len(), 2);
    }
}
