//! Error types for the block DAG framework.

use std::error::Error;
use std::fmt;

use dagbft_crypto::ServerId;

use crate::block::{BlockRef, SeqNum};

/// Why a block failed the validity checks of Definition 3.3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidBlockError {
    /// `verify(B.n, B.σ)` failed — the block was not signed by its claimed
    /// builder (Definition 3.3 (i)).
    BadSignature {
        /// The claimed builder.
        claimed: ServerId,
    },
    /// A non-genesis block has no predecessor by the same builder with the
    /// preceding sequence number (Definition 3.3 (ii)(b)).
    MissingParent {
        /// The builder of the offending block.
        builder: ServerId,
        /// The sequence number of the offending block.
        seq: SeqNum,
    },
    /// A block names two *distinct* parents — two different predecessor
    /// blocks both built by `B.n` with sequence number `B.k − 1`
    /// ("every block has at most one parent", Definition 3.1).
    MultipleParents {
        /// The builder of the offending block.
        builder: ServerId,
        /// The two conflicting parent references.
        parents: (BlockRef, BlockRef),
    },
    /// The block identifies a builder outside the configured server set.
    UnknownBuilder {
        /// The out-of-range identity.
        claimed: ServerId,
    },
}

impl fmt::Display for InvalidBlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidBlockError::BadSignature { claimed } => {
                write!(f, "signature does not verify for claimed builder {claimed}")
            }
            InvalidBlockError::MissingParent { builder, seq } => {
                write!(f, "non-genesis block {builder}/{seq} lacks a parent")
            }
            InvalidBlockError::MultipleParents { builder, .. } => {
                write!(f, "block by {builder} references two distinct parents")
            }
            InvalidBlockError::UnknownBuilder { claimed } => {
                write!(f, "builder {claimed} is not in the server set")
            }
        }
    }
}

impl Error for InvalidBlockError {}

/// Errors raised by [`crate::BlockDag`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// Inserting a block whose predecessors are not all present would break
    /// Definition 3.4 (ii).
    MissingPredecessors {
        /// The block that could not be inserted.
        block: BlockRef,
        /// The predecessors that are not in the DAG.
        missing: Vec<BlockRef>,
    },
    /// The referenced block is not in the DAG.
    UnknownBlock {
        /// The reference that failed to resolve.
        block: BlockRef,
    },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::MissingPredecessors { block, missing } => write!(
                f,
                "cannot insert block {block}: {} predecessor(s) missing",
                missing.len()
            ),
            DagError::UnknownBlock { block } => write!(f, "unknown block {block}"),
        }
    }
}

impl Error for DagError {}

#[cfg(test)]
mod tests {
    use super::*;
    use dagbft_crypto::Digest;

    #[test]
    fn display_messages() {
        let err = InvalidBlockError::BadSignature {
            claimed: ServerId::new(3),
        };
        assert!(err.to_string().contains("s3"));

        let err = DagError::UnknownBlock {
            block: BlockRef::from_digest(Digest::ZERO),
        };
        assert!(err.to_string().contains("unknown block"));
    }
}
