//! Protocol instance labels.

use std::fmt;

use dagbft_codec::{DecodeError, Reader, WireDecode, WireEncode};

/// A label `ℓ ∈ L` distinguishing parallel instances of the embedded
/// protocol `P` (paper, Figure 1 and §4).
///
/// Every block may carry requests for many labels, and a single block's
/// edges materialize messages for *all* labeled instances at once — the
/// paper's "running many instances in parallel for free".
///
/// # Examples
///
/// ```
/// use dagbft_core::Label;
///
/// let label = Label::new(3);
/// assert_eq!(format!("{label}"), "ℓ3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(u64);

impl Label {
    /// Creates a label with the given numeric identity.
    pub fn new(id: u64) -> Self {
        Label(id)
    }

    /// The numeric identity of this label.
    pub fn id(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

impl From<u64> for Label {
    fn from(id: u64) -> Self {
        Label(id)
    }
}

impl WireEncode for Label {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl WireDecode for Label {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Label(u64::decode(reader)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagbft_codec::{decode_from_slice, encode_to_vec};

    #[test]
    fn roundtrip_and_order() {
        let label = Label::new(9);
        let bytes = encode_to_vec(&label);
        assert_eq!(decode_from_slice::<Label>(&bytes).unwrap(), label);
        assert!(Label::new(1) < Label::new(2));
    }

    #[test]
    fn from_u64() {
        assert_eq!(Label::from(5u64), Label::new(5));
    }
}
