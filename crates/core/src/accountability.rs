//! Accountability: cryptographic proofs of equivocation.
//!
//! §6 of the paper notes that "nothing precludes our proposed framework to
//! be adapted to hold equivocating servers accountable" (citing PeerReview
//! and Polygraph). The block DAG makes this almost free: an equivocation
//! *is* two validly signed blocks with the same `(builder, seq)` and
//! different content — self-contained, transferable evidence that convicts
//! the builder to any third party holding the key registry.
//!
//! [`EquivocationProof`] packages that evidence; [`collect_proofs`]
//! extracts every provable equivocation from a DAG.

use dagbft_codec::{DecodeError, Reader, WireDecode, WireEncode};
use dagbft_crypto::{ServerId, Verifier};

use crate::block::Block;
use crate::dag::BlockDag;

/// Self-contained, transferable proof that a server equivocated.
///
/// Valid iff both blocks verify against the accused builder's key, share
/// `(builder, seq)`, and differ in content (hence in `ref`). Forging a
/// proof against a correct server requires forging its signature.
///
/// # Examples
///
/// ```
/// use dagbft_core::accountability::EquivocationProof;
/// use dagbft_core::{Block, LabeledRequest, Label, SeqNum};
/// use dagbft_crypto::{KeyRegistry, ServerId};
///
/// let registry = KeyRegistry::generate(2, 1);
/// let signer = registry.signer(ServerId::new(0)).unwrap();
/// let a = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer);
/// let b = Block::build(
///     ServerId::new(0), SeqNum::ZERO, vec![],
///     vec![LabeledRequest::encode(Label::new(1), &1u8)], &signer,
/// );
/// let proof = EquivocationProof::new(a, b).unwrap();
/// assert!(proof.verify(&registry.verifier()));
/// assert_eq!(proof.accused(), ServerId::new(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivocationProof {
    /// One version (the one with the smaller reference, canonically).
    first: Block,
    /// The conflicting version.
    second: Block,
}

impl EquivocationProof {
    /// Packages two conflicting blocks as a proof.
    ///
    /// Returns `None` if the blocks do not conflict (different builders or
    /// sequence numbers, or identical content). Signature validity is
    /// checked by [`EquivocationProof::verify`], not here — construction
    /// is infallible bookkeeping, verification is the trust decision.
    pub fn new(a: Block, b: Block) -> Option<Self> {
        if a.builder() != b.builder() || a.seq() != b.seq() || a.block_ref() == b.block_ref() {
            return None;
        }
        // Canonical order makes proofs comparable and their encodings
        // deterministic regardless of discovery order.
        if a.block_ref() < b.block_ref() {
            Some(EquivocationProof {
                first: a,
                second: b,
            })
        } else {
            Some(EquivocationProof {
                first: b,
                second: a,
            })
        }
    }

    /// The convicted builder.
    pub fn accused(&self) -> ServerId {
        self.first.builder()
    }

    /// The two conflicting blocks.
    pub fn blocks(&self) -> (&Block, &Block) {
        (&self.first, &self.second)
    }

    /// Checks the proof: both blocks signed by the accused, same sequence
    /// number, different content.
    pub fn verify(&self, verifier: &Verifier) -> bool {
        self.first.builder() == self.second.builder()
            && self.first.seq() == self.second.seq()
            && self.first.block_ref() != self.second.block_ref()
            && self.first.verify_signature(verifier)
            && self.second.verify_signature(verifier)
    }
}

impl WireEncode for EquivocationProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.first.encode(out);
        self.second.encode(out);
    }
}

impl WireDecode for EquivocationProof {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let first = Block::decode(reader)?;
        let second = Block::decode(reader)?;
        EquivocationProof::new(first, second).ok_or(DecodeError::Invalid {
            reason: "blocks do not form an equivocation",
        })
    }
}

/// Extracts a proof for every `(server, seq)` at which `dag` holds more
/// than one block. Pairs beyond the first conflicting two are redundant
/// for conviction and are skipped.
pub fn collect_proofs(dag: &BlockDag) -> Vec<EquivocationProof> {
    let mut proofs = Vec::new();
    let servers: Vec<ServerId> = dag.known_servers().copied().collect();
    for server in servers {
        for (_, refs) in dag.equivocations(server) {
            if let [first, second, ..] = refs.as_slice() {
                let a = dag.get(first).expect("indexed block present").clone();
                let b = dag.get(second).expect("indexed block present").clone();
                if let Some(proof) = EquivocationProof::new(a, b) {
                    proofs.push(proof);
                }
            }
        }
    }
    proofs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{LabeledRequest, SeqNum};
    use crate::Label;
    use dagbft_codec::{decode_from_slice, encode_to_vec};
    use dagbft_crypto::KeyRegistry;

    fn conflicting_pair(registry: &KeyRegistry) -> (Block, Block) {
        let signer = registry.signer(ServerId::new(0)).unwrap();
        let a = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer);
        let b = Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(Label::new(1), &1u8)],
            &signer,
        );
        (a, b)
    }

    #[test]
    fn valid_proof_verifies() {
        let registry = KeyRegistry::generate(2, 1);
        let (a, b) = conflicting_pair(&registry);
        let proof = EquivocationProof::new(a, b).unwrap();
        assert!(proof.verify(&registry.verifier()));
        assert_eq!(proof.accused(), ServerId::new(0));
    }

    #[test]
    fn canonical_order_independent_of_discovery() {
        let registry = KeyRegistry::generate(2, 1);
        let (a, b) = conflicting_pair(&registry);
        let forward = EquivocationProof::new(a.clone(), b.clone()).unwrap();
        let backward = EquivocationProof::new(b, a).unwrap();
        assert_eq!(forward, backward);
        assert_eq!(encode_to_vec(&forward), encode_to_vec(&backward));
    }

    #[test]
    fn non_conflicting_blocks_rejected() {
        let registry = KeyRegistry::generate(2, 1);
        let signer0 = registry.signer(ServerId::new(0)).unwrap();
        let signer1 = registry.signer(ServerId::new(1)).unwrap();
        let a = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer0);
        // Different builder.
        let c = Block::build(ServerId::new(1), SeqNum::ZERO, vec![], vec![], &signer1);
        assert!(EquivocationProof::new(a.clone(), c).is_none());
        // Different seq.
        let d = Block::build(
            ServerId::new(0),
            SeqNum::new(1),
            vec![a.block_ref()],
            vec![],
            &signer0,
        );
        assert!(EquivocationProof::new(a.clone(), d).is_none());
        // Identical block.
        assert!(EquivocationProof::new(a.clone(), a).is_none());
    }

    #[test]
    fn forged_signature_fails_verification() {
        let registry = KeyRegistry::generate(2, 1);
        let (a, b) = conflicting_pair(&registry);
        // Re-sign "b" with the wrong key: same content, bogus signature.
        let forged = Block::build_with_signature(
            b.builder(),
            b.seq(),
            b.preds().to_vec(),
            b.requests().to_vec(),
            dagbft_crypto::Signature::NULL,
        );
        let proof = EquivocationProof::new(a, forged).unwrap();
        assert!(!proof.verify(&registry.verifier()));
    }

    #[test]
    fn wire_roundtrip_and_tamper_rejection() {
        let registry = KeyRegistry::generate(2, 1);
        let (a, b) = conflicting_pair(&registry);
        let proof = EquivocationProof::new(a.clone(), b).unwrap();
        let bytes = encode_to_vec(&proof);
        let decoded: EquivocationProof = decode_from_slice(&bytes).unwrap();
        assert_eq!(decoded, proof);
        assert!(decoded.verify(&registry.verifier()));

        // A "proof" of two identical blocks must not decode.
        let mut twice = Vec::new();
        a.encode(&mut twice);
        a.encode(&mut twice);
        assert!(decode_from_slice::<EquivocationProof>(&twice).is_err());
    }

    #[test]
    fn collect_from_dag() {
        let registry = KeyRegistry::generate(2, 1);
        let (a, b) = conflicting_pair(&registry);
        let honest = Block::build(
            ServerId::new(1),
            SeqNum::ZERO,
            vec![],
            vec![],
            &registry.signer(ServerId::new(1)).unwrap(),
        );
        let mut dag = BlockDag::new();
        dag.insert(a).unwrap();
        dag.insert(b).unwrap();
        dag.insert(honest).unwrap();
        let proofs = collect_proofs(&dag);
        assert_eq!(proofs.len(), 1);
        assert_eq!(proofs[0].accused(), ServerId::new(0));
        assert!(proofs[0].verify(&registry.verifier()));
    }

    #[test]
    fn clean_dag_yields_no_proofs() {
        let registry = KeyRegistry::generate(2, 1);
        let signer = registry.signer(ServerId::new(0)).unwrap();
        let a = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer);
        let b = Block::build(
            ServerId::new(0),
            SeqNum::new(1),
            vec![a.block_ref()],
            vec![],
            &signer,
        );
        let mut dag = BlockDag::new();
        dag.insert(a).unwrap();
        dag.insert(b).unwrap();
        assert!(collect_proofs(&dag).is_empty());
    }
}
